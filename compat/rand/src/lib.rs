//! Offline stand-in for the `rand` crate.
//!
//! The workspace's build environment cannot reach crates.io, so this
//! local crate implements exactly the slice of the rand 0.10 API the
//! workspace uses: [`rngs::StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`], [`RngExt::random_range`] over integer
//! and float ranges, and [`seq::SliceRandom::shuffle`]. The generator is
//! splitmix64 — statistically far weaker than rand's chacha-based
//! `StdRng`, but deterministic, seedable, and more than good enough for
//! workload generation and randomized tests.
//!
//! Streams differ from real rand, so seeds produce different (but still
//! deterministic) instances than an online build would.

#![warn(missing_docs)]

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding interface, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range types that [`RngExt::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                // Modulo bias is negligible for the small spans used in
                // tests and workload generation.
                self.start.wrapping_add((u128::from(rng.next_u64()) % span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128).wrapping_sub(lo as u128) + 1;
                lo.wrapping_add((u128::from(rng.next_u64()) % span) as $t)
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // 53 (resp. 24) uniform mantissa bits in [0, 1).
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

impl_float_sample_range!(f32, f64);

/// High-level sampling methods, mirroring the `rand::Rng` extension
/// trait (named `RngExt` in recent rand releases).
pub trait RngExt: RngCore {
    /// Samples uniformly from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random_range(0.0..1.0) < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic splitmix64 generator standing in for rand's
    /// `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{RngCore, RngExt};

    /// In-place slice shuffling, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Fisher–Yates shuffles the slice.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random_range(0u64..1000), b.random_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.random_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = rng.random_range(5i64..=9);
            assert!((5..=9).contains(&w));
            let f = rng.random_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn random_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }
}
