//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API surface the workspace's benches use —
//! [`Criterion::benchmark_group`], `sample_size`, `throughput`,
//! `bench_function`, [`criterion_group!`] and [`criterion_main!`] — with
//! a plain wall-clock harness: each benchmark runs `sample_size`
//! timed iterations and prints the mean time per iteration. There is no
//! statistical analysis, warm-up, or HTML report; the point is that
//! `cargo bench` produces comparable numbers offline and that bench
//! targets compile under `cargo test`/`clippy --all-targets`.

#![warn(missing_docs)]

use std::time::Instant;

/// Top-level bench harness handle.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }

    /// Runs a stand-alone benchmark (group-less).
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        run_benchmark(&name, 10, None, f);
        self
    }
}

/// Units of work per iteration, for derived throughput reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A named group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Declares the work performed per iteration.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Times one benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, name.into());
        run_benchmark(&id, self.sample_size, self.throughput, f);
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; [`Bencher::iter`] times the routine.
#[derive(Debug, Default)]
pub struct Bencher {
    iterations: u64,
    elapsed_nanos: u128,
}

impl Bencher {
    /// Times one call of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        let value = routine();
        self.elapsed_nanos += start.elapsed().as_nanos();
        self.iterations += 1;
        drop(value);
    }
}

fn run_benchmark<F>(id: &str, samples: usize, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher::default();
    for _ in 0..samples {
        f(&mut bencher);
    }
    if bencher.iterations == 0 {
        println!("bench {id}: no iterations recorded");
        return;
    }
    let per_iter = bencher.elapsed_nanos / u128::from(bencher.iterations);
    match throughput {
        Some(Throughput::Elements(n)) if per_iter > 0 => {
            let rate = n as f64 / (per_iter as f64 / 1e9);
            println!("bench {id}: {per_iter} ns/iter ({rate:.0} elem/s)");
        }
        Some(Throughput::Bytes(n)) if per_iter > 0 => {
            let rate = n as f64 / (per_iter as f64 / 1e9);
            println!("bench {id}: {per_iter} ns/iter ({rate:.0} B/s)");
        }
        _ => println!("bench {id}: {per_iter} ns/iter"),
    }
}

/// Bundles benchmark functions into one runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
