//! Offline stand-in for the `serde` crate.
//!
//! The build environment for this workspace has no access to crates.io,
//! so external dependencies are replaced by minimal local crates (see
//! `compat/README.md`). Workspace code only *derives*
//! `Serialize`/`Deserialize` as forward-looking markers — nothing
//! serializes through serde yet (persistence uses the hand-rolled text
//! formats in `tela_model::trace` and `tela_learned::persist`). The
//! traits here are therefore deliberately empty: deriving them compiles
//! to marker impls, and swapping this crate for real serde later only
//! requires pointing the workspace dependency back at crates.io.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de> {}
