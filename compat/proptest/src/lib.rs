//! Offline stand-in for the `proptest` crate.
//!
//! The workspace's build environment cannot reach crates.io, so this
//! local crate implements the slice of proptest used by the workspace's
//! property tests: the [`proptest!`] macro with a
//! `#![proptest_config(...)]` header, range/tuple/[`Just`]/mapped
//! strategies, [`prop_oneof!`], `prop::collection::vec`, and the
//! `prop_assert*` macros.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! - **No shrinking.** A failing case reports the generated value via the
//!   assertion panic message (strategies generate `Debug` values), but it
//!   is not minimized.
//! - **Deterministic seeding.** Each test function derives its RNG seed
//!   from its own name, so runs are reproducible and failures stable.
//! - `prop_assert!`/`prop_assert_eq!` panic immediately instead of
//!   recording and continuing.
//!
//! [`Just`]: strategy::Just

#![warn(missing_docs)]

pub mod strategy;

/// Test-runner configuration and RNG.
pub mod test_runner {
    /// Subset of proptest's run configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Deterministic splitmix64 generator driving value generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from a test name (FNV-1a hash), making
        /// every property deterministic per test function.
        pub fn deterministic(name: &str) -> Self {
            let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
            for byte in name.bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: hash }
        }

        /// Seeds the generator directly.
        pub fn seeded(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform sample in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "cannot sample below 0");
            self.next_u64() % bound
        }
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Size bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_exclusive: r.end().checked_add(1).expect("size range overflow"),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length is drawn from `size` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi_exclusive - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property test module needs, mirroring
/// `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Namespace mirror of proptest's `prop` module re-export.
pub mod prop {
    pub use crate::collection;
}

/// Asserts a condition inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skips the current case when an assumption does not hold. Only valid
/// directly inside a `proptest!` body (it expands to `continue`).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
}

/// Chooses uniformly among several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Declares property test functions: each case draws fresh random inputs
/// from the given strategies and runs the body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr); $(
        $(#[$attr:meta])* fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config = $config;
                let mut __proptest_rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                for __proptest_case in 0..config.cases {
                    let _ = __proptest_case;
                    $(let $pat = $crate::strategy::Strategy::generate(
                        &($strategy),
                        &mut __proptest_rng,
                    );)+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_and_maps_generate_in_bounds() {
        let strategy = (0u32..10, 1u64..5).prop_map(|(a, b)| (a, b * 2));
        let mut rng = TestRng::seeded(1);
        for _ in 0..200 {
            let (a, b) = strategy.generate(&mut rng);
            assert!(a < 10);
            assert!((2..10).contains(&b) && b % 2 == 0);
        }
    }

    #[test]
    fn oneof_only_produces_listed_values() {
        let strategy = prop_oneof![Just(1u64), Just(8), Just(32)];
        let mut rng = TestRng::seeded(2);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..100 {
            seen.insert(strategy.generate(&mut rng));
        }
        assert!(seen.iter().all(|v| [1, 8, 32].contains(v)));
        assert_eq!(seen.len(), 3, "all arms reachable");
    }

    #[test]
    fn vec_strategy_respects_length_bounds() {
        let strategy = crate::collection::vec(0u8..3, 2..6);
        let mut rng = TestRng::seeded(3);
        for _ in 0..100 {
            let v = strategy.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 3));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_generates_and_asserts(x in 0u32..100, y in 0u32..100) {
            prop_assert!(x < 100 && y < 100);
            prop_assert_eq!(x + y, y + x);
        }
    }
}
