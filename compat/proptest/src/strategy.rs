//! Value-generation strategies for the proptest stand-in.

use crate::test_runner::TestRng;

/// A recipe for generating random values of one type.
///
/// Unlike real proptest there is no value tree and no shrinking: a
/// strategy is just a deterministic function of the RNG stream.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `map`.
    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map {
            strategy: self,
            map,
        }
    }

    /// Generates a value and feeds it to a strategy-producing function;
    /// the final value comes from the produced strategy.
    fn prop_flat_map<O, F>(self, map: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        O: Strategy,
        F: Fn(Self::Value) -> O,
    {
        FlatMap {
            strategy: self,
            map,
        }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`](crate::prop_oneof)).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    strategy: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.strategy.generate(rng))
    }
}

/// Strategy produced by [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    strategy: S,
    map: F,
}

impl<S, O, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    O: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O::Value;

    fn generate(&self, rng: &mut TestRng) -> O::Value {
        (self.map)(self.strategy.generate(rng)).generate(rng)
    }
}

/// Uniform choice among several strategies of the same value type.
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> std::fmt::Debug for Union<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Union")
            .field("arms", &self.arms.len())
            .finish()
    }
}

impl<T> Union<T> {
    /// Builds a union; panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let arm = rng.below(self.arms.len() as u64) as usize;
        self.arms[arm].generate(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let offset = (u128::from(rng.next_u64()) % span) as $t;
                self.start.wrapping_add(offset)
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128).wrapping_sub(lo as u128) + 1;
                let offset = (u128::from(rng.next_u64()) % span) as $t;
                lo.wrapping_add(offset)
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
