//! Derive macros for the offline serde stand-in.
//!
//! The generated impls are empty marker impls of the (empty) traits in
//! the sibling `serde` stand-in crate. The macros parse just enough of
//! the item to recover its name; generic types are rejected with a clear
//! error because nothing in this workspace needs them.

use proc_macro::{TokenStream, TokenTree};

/// Derives the marker `serde::Serialize` impl.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "Serialize", "::serde::Serialize for")
}

/// Derives the marker `serde::Deserialize` impl.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "Deserialize", "<'de> ::serde::Deserialize<'de> for")
}

fn marker_impl(input: TokenStream, derive: &str, head: &str) -> TokenStream {
    let name = type_name(input)
        .unwrap_or_else(|| panic!("#[derive({derive})] stand-in: could not find type name"));
    format!("impl{head} {name} {{}}")
        .parse()
        .expect("generated impl parses")
}

/// Extracts the name of the struct/enum a derive was applied to.
fn type_name(input: TokenStream) -> Option<String> {
    let mut tokens = input.into_iter();
    while let Some(token) = tokens.next() {
        if let TokenTree::Ident(ident) = &token {
            let word = ident.to_string();
            if word == "struct" || word == "enum" || word == "union" {
                let name = match tokens.next() {
                    Some(TokenTree::Ident(name)) => name.to_string(),
                    other => panic!("serde stand-in derive: expected type name, got {other:?}"),
                };
                if let Some(TokenTree::Punct(p)) = tokens.next() {
                    if p.as_char() == '<' {
                        panic!(
                            "serde stand-in derive: generic type `{name}` is unsupported; \
                             write the marker impl by hand or extend compat/serde_derive"
                        );
                    }
                }
                return Some(name);
            }
        }
    }
    None
}
