//! Cross-crate integration: every allocator in the workspace against the
//! shared example instances and the synthetic model workloads, with all
//! solutions validated against the model crate's checker.

use tela_model::{examples, Budget, SolveOutcome};
use tela_workloads::{problem_with_slack, ModelKind};
use telamalloc::{Allocator, Stage, TelaConfig};

#[test]
fn every_allocator_validates_on_examples() {
    for problem in [examples::tiny(), examples::figure1(), examples::aligned()] {
        // Heuristics: may fail, but must never produce invalid packings.
        if let Some(s) = tela_heuristics::bfc::solve(&problem).solution {
            assert!(s.validate(&problem).is_ok());
        }
        if let Some(s) = tela_heuristics::greedy::solve(&problem).solution {
            assert!(s.validate(&problem).is_ok());
        }
        // Complete solvers must solve the feasible examples.
        let (cp, _) = tela_cp::search::solve_cp_only(&problem, &Budget::steps(500_000));
        assert!(cp
            .solution()
            .expect("cp solves examples")
            .validate(&problem)
            .is_ok());
        let (ilp, _) = tela_ilp::solve_ilp(&problem, &Budget::steps(500_000));
        assert!(ilp
            .solution()
            .expect("ilp solves examples")
            .validate(&problem)
            .is_ok());
        // TelaMalloc.
        let tela = telamalloc::solve(&problem, &Budget::steps(500_000), &TelaConfig::default());
        assert!(tela
            .outcome
            .solution()
            .expect("tela solves examples")
            .validate(&problem)
            .is_ok());
    }
}

#[test]
fn telamalloc_solves_every_model_workload_at_paper_slack() {
    for kind in ModelKind::PIXEL6 {
        let problem = problem_with_slack(kind.generate(0), 10);
        let result = telamalloc::solve(&problem, &Budget::steps(500_000), &TelaConfig::default());
        let solution = result
            .outcome
            .solution()
            .unwrap_or_else(|| panic!("{} must solve at 110% memory", kind.name()));
        assert!(solution.validate(&problem).is_ok(), "{}", kind.name());
    }
}

#[test]
fn pipeline_falls_back_exactly_when_heuristic_fails() {
    let allocator = Allocator::default();
    for kind in ModelKind::PIXEL6 {
        let problem = problem_with_slack(kind.generate(0), 10);
        let heuristic_solves = tela_heuristics::greedy::solve(&problem).solution.is_some();
        let result = allocator.allocate(&problem, &Budget::steps(500_000));
        match result.stage {
            Stage::Heuristic => assert!(heuristic_solves, "{}", kind.name()),
            Stage::TelaMalloc => assert!(!heuristic_solves, "{}", kind.name()),
        }
        assert!(result.outcome.is_solved(), "{}", kind.name());
    }
}

#[test]
fn heuristic_fails_on_some_models_like_the_paper() {
    // The paper's greedy baseline cannot solve all models at 110% memory
    // (Table 2 shows minimum ratios up to 1.43x); our synthetic set must
    // reproduce that split: some solved, some not.
    let mut solved = 0;
    let mut failed = 0;
    for kind in ModelKind::PIXEL6 {
        let problem = problem_with_slack(kind.generate(0), 10);
        match tela_heuristics::greedy::solve(&problem).solution {
            Some(_) => solved += 1,
            None => failed += 1,
        }
    }
    assert!(
        solved >= 4,
        "heuristic should handle the easy majority ({solved} solved)"
    );
    assert!(
        failed >= 2,
        "some models must need the search ({failed} failed)"
    );
}

#[test]
fn infeasible_instances_rejected_by_everyone() {
    let problem = examples::infeasible();
    assert!(tela_heuristics::greedy::solve(&problem).solution.is_none());
    let (cp, _) = tela_cp::search::solve_cp_only(&problem, &Budget::steps(100_000));
    assert_eq!(cp, SolveOutcome::Infeasible);
    let (ilp, _) = tela_ilp::solve_ilp(&problem, &Budget::steps(100_000));
    assert_eq!(ilp, SolveOutcome::Infeasible);
    let tela = telamalloc::solve(&problem, &Budget::steps(100_000), &TelaConfig::default());
    assert_eq!(tela.outcome, SolveOutcome::Infeasible);
}

#[test]
fn microbenchmarks_solve_without_backtracking() {
    for problem in [
        tela_workloads::micro::non_overlapping(200),
        tela_workloads::micro::full_overlap(50),
    ] {
        let result = telamalloc::solve(&problem, &Budget::unlimited(), &TelaConfig::default());
        assert!(result.outcome.is_solved());
        assert_eq!(
            result.stats.total_backtracks(),
            0,
            "Table 1 inputs never backtrack"
        );
    }
}
