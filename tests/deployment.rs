//! Deployment-path integration: train a policy, freeze it to text (the
//! §6.1 "baked into the binary" requirement), restore it, wrap it in the
//! §8.3 step gate, and run the whole thing inside the search.

use tela_learned::persist::{load_model, save_model};
use tela_learned::{collect_samples, CollectConfig, GatedPolicy, Gbt, GbtParams, LearnedPolicy};
use tela_model::{Budget, SolveOutcome};
use tela_workloads::sweep::certified_solvable;
use telamalloc::{solve_with, BacktrackPolicy, NullObserver, TelaConfig};

fn quick_collect() -> Vec<tela_learned::Sample> {
    let config = CollectConfig {
        oracle_steps: 5_000,
        oracle_timeout: Some(std::time::Duration::from_millis(50)),
        max_events_per_run: 50,
        ..CollectConfig::default()
    };
    let mut samples = Vec::new();
    for seed in 200..202u64 {
        samples.extend(collect_samples(
            &certified_solvable(seed),
            &Budget::steps(4_000),
            &TelaConfig::default(),
            &config,
            seed,
        ));
    }
    samples
}

#[test]
fn frozen_policy_round_trips_and_runs() {
    let samples = quick_collect();
    if samples.is_empty() {
        // Collection can legitimately come up empty on lucky seeds; the
        // deployment path is then the constant-fallback policy.
        return;
    }
    let rows: Vec<Vec<f64>> = samples.iter().map(|s| s.features.to_vec()).collect();
    let targets: Vec<f64> = samples.iter().map(|s| s.score).collect();
    let model = Gbt::fit(
        &rows,
        &targets,
        &GbtParams {
            n_trees: 15,
            ..GbtParams::default()
        },
    );

    // Freeze and restore.
    let frozen = save_model(&model);
    let restored = load_model(&frozen).expect("frozen model parses");
    assert_eq!(model, restored);

    // Deploy: learned backtracking inside the step gate.
    let policy = LearnedPolicy::new(restored);
    let mut gated = GatedPolicy::train(&samples, policy);
    let problem = certified_solvable(777);
    let mut obs = NullObserver;
    let result = solve_with(
        &problem,
        &Budget::steps(20_000),
        &TelaConfig::default(),
        &mut gated as &mut dyn BacktrackPolicy,
        &mut obs,
    );
    match result.outcome {
        SolveOutcome::Solved(s) => assert!(s.validate(&problem).is_ok()),
        SolveOutcome::Infeasible => panic!("certified instances are solvable"),
        SolveOutcome::GaveUp | SolveOutcome::BudgetExceeded | SolveOutcome::BestEffort(_) => {}
    }
}

#[test]
fn heuristic_family_never_produces_invalid_packings() {
    for seed in 0..6u64 {
        let problem = certified_solvable(seed);
        let runs = [
            tela_heuristics::greedy::solve(&problem),
            tela_heuristics::bfc::solve(&problem),
            tela_heuristics::ordered::solve_by_size(&problem),
            tela_heuristics::ordered::solve_by_area(&problem),
            tela_heuristics::ordered::solve_by_lifetime(&problem),
            tela_heuristics::ordered::solve_best_fit(&problem),
        ];
        for r in runs {
            if let Some(s) = r.solution {
                assert!(s.validate(&problem).is_ok(), "seed {seed}");
            } else {
                assert!(
                    r.peak > problem.capacity(),
                    "seed {seed}: failure implies overshoot"
                );
            }
        }
    }
}
