//! Cross-solver consistency on randomized instances: the two complete
//! solvers must agree on feasibility, TelaMalloc must never contradict
//! them, and trace round-trips must preserve solver behaviour.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use tela_model::{parse_problem, problem_to_text, Budget, Buffer, Problem, SolveOutcome};
use telamalloc::TelaConfig;

fn random_problem(seed: u64) -> Problem {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rng.random_range(3..10);
    let buffers: Vec<Buffer> = (0..n)
        .map(|_| {
            let start = rng.random_range(0u32..8);
            let len = rng.random_range(1u32..5);
            let size = rng.random_range(1u64..6);
            let align = [1u64, 2, 4][rng.random_range(0..3usize)];
            Buffer::new(start, start + len, size).with_align(align)
        })
        .collect();
    let capacity = rng.random_range(6u64..14);
    Problem::new(buffers, capacity).expect("sizes below capacity")
}

#[test]
fn complete_solvers_agree_on_feasibility() {
    let budget = || Budget::steps(1_000_000);
    for seed in 0..120 {
        let p = random_problem(seed);
        let (cp, _) = tela_cp::search::solve_cp_only(&p, &budget());
        let (ilp, _) = tela_ilp::solve_ilp(&p, &budget());
        match (&cp, &ilp) {
            (SolveOutcome::Solved(a), SolveOutcome::Solved(b)) => {
                assert!(a.validate(&p).is_ok(), "seed {seed}");
                assert!(b.validate(&p).is_ok(), "seed {seed}");
            }
            (SolveOutcome::Infeasible, SolveOutcome::Infeasible) => {}
            other => panic!("seed {seed}: solvers disagree: {other:?}\n{p:?}"),
        }
    }
}

#[test]
fn telamalloc_never_contradicts_complete_solvers() {
    for seed in 0..120 {
        let p = random_problem(seed);
        let tela = telamalloc::solve(&p, &Budget::steps(200_000), &TelaConfig::default());
        match tela.outcome {
            SolveOutcome::Solved(s) => {
                assert!(s.validate(&p).is_ok(), "seed {seed}");
            }
            SolveOutcome::Infeasible => {
                let (cp, _) = tela_cp::search::solve_cp_only(&p, &Budget::steps(1_000_000));
                assert_eq!(
                    cp,
                    SolveOutcome::Infeasible,
                    "seed {seed}: false infeasibility"
                );
            }
            SolveOutcome::GaveUp | SolveOutcome::BudgetExceeded | SolveOutcome::BestEffort(_) => {
                // Permitted: the search is incomplete. But the instance
                // must at least be hard enough that the heuristic failed.
                assert!(
                    tela_heuristics::greedy::solve(&p).solution.is_none() || tela.stats.steps > 0,
                    "seed {seed}"
                );
            }
        }
    }
}

#[test]
fn traces_preserve_solver_outcomes() {
    for seed in 0..40 {
        let p = random_problem(seed);
        let text = problem_to_text(&p);
        let q = parse_problem(&text).expect("round trip parses");
        assert_eq!(p, q);
        let a = telamalloc::solve(&p, &Budget::steps(100_000), &TelaConfig::default());
        let b = telamalloc::solve(&q, &Budget::steps(100_000), &TelaConfig::default());
        assert_eq!(a.outcome, b.outcome, "seed {seed}");
        assert_eq!(a.stats.steps, b.stats.steps, "seed {seed}");
    }
}

#[test]
fn model_workload_traces_round_trip() {
    use tela_workloads::{problem_with_slack, ModelKind};
    let p = problem_with_slack(ModelKind::Segmentation.generate(5), 10);
    let q = parse_problem(&problem_to_text(&p)).expect("round trip");
    assert_eq!(p, q);
}
