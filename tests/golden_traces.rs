//! Golden tests over the committed trace corpus (`traces/`): the traces
//! parse, their structural facts stay stable, and the allocators behave
//! as documented on each.

use tela_model::{parse_problem, Budget, Problem};
use telamalloc::{Allocator, TelaConfig};

fn load(name: &str) -> Problem {
    let path = format!("{}/traces/{name}", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    parse_problem(&text).unwrap_or_else(|e| panic!("parse {path}: {e}"))
}

#[test]
fn figure1_trace_matches_builtin_example() {
    let from_trace = load("figure1.trace");
    assert_eq!(from_trace, tela_model::examples::figure1());
}

#[test]
fn model_traces_have_expected_structure() {
    let fpn = load("fpn_110.trace");
    assert_eq!(fpn.len(), 388);
    assert_eq!(fpn.capacity(), 1504);

    let openpose = load("openpose_110.trace");
    assert_eq!(openpose.len(), 415);
    // 110% of contention.
    assert_eq!(
        openpose.capacity(),
        openpose.max_contention().saturating_mul(110).div_ceil(100)
    );

    let stereonet = load("stereonet_110.trace");
    assert!(stereonet
        .buffers()
        .iter()
        .any(|b| b.size() * 3 >= stereonet.max_contention()));
}

#[test]
fn all_traces_are_solvable_by_the_pipeline() {
    for name in [
        "figure1.trace",
        "fpn_110.trace",
        "openpose_110.trace",
        "stereonet_110.trace",
        "certified_005.trace",
    ] {
        let problem = load(name);
        let result = Allocator::default().allocate(&problem, &Budget::steps(500_000));
        let solution = result
            .outcome
            .solution()
            .unwrap_or_else(|| panic!("{name} should be solvable"));
        assert!(solution.validate(&problem).is_ok(), "{name}");
    }
}

#[test]
fn certified_trace_is_tight() {
    // Certified instances use their construction packing's exact peak as
    // the capacity: zero slack, maximally hard while provably solvable.
    let p = load("certified_005.trace");
    let result = telamalloc::solve(&p, &Budget::steps(500_000), &TelaConfig::default());
    if let Some(s) = result.outcome.solution() {
        let peak = s.validate(&p).expect("valid");
        assert!(peak <= p.capacity());
    }
}
