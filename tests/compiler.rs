//! Cross-crate integration: the mini compiler produces problems the
//! whole allocator stack agrees on.

use tela_model::{Budget, InstanceStats};
use tela_pixel::ir::zoo;
use tela_pixel::{Compiler, CompilerSettings};
use telamalloc::TelaConfig;

#[test]
fn compiled_problems_are_solvable_by_all_complete_solvers() {
    let compiled = Compiler::new(CompilerSettings {
        scratchpad_bytes: 512 * 1024,
        ..CompilerSettings::default()
    })
    .compile(&zoo::mobilenet_like(64, 6))
    .expect("compiles");
    let p = &compiled.problem;
    assert!(compiled.solution.validate(p).is_ok());

    let tela = telamalloc::solve(p, &Budget::steps(500_000), &TelaConfig::default());
    assert!(tela
        .outcome
        .solution()
        .expect("tela solves")
        .validate(p)
        .is_ok());
}

#[test]
fn spilled_compilations_shrink_the_instance() {
    let g = zoo::unet_like(96, 3);
    let roomy = Compiler::new(CompilerSettings {
        scratchpad_bytes: 16 * 1024 * 1024,
        ..CompilerSettings::default()
    })
    .compile(&g)
    .expect("roomy");
    let tight = Compiler::new(CompilerSettings {
        scratchpad_bytes: roomy.problem.max_contention() / 2,
        ..CompilerSettings::default()
    })
    .compile(&g)
    .expect("tight");
    assert!(tight.problem.max_contention() < roomy.problem.max_contention());
    let stats = InstanceStats::of(&tight.problem);
    assert!(stats.aligned_fraction > 0.0, "weight slices stay aligned");
}

#[test]
fn compiler_traces_round_trip_through_the_text_format() {
    let compiled = Compiler::new(CompilerSettings::default())
        .compile(&zoo::detector_like(96, 4))
        .expect("compiles");
    let text = tela_model::problem_to_text(&compiled.problem);
    let parsed = tela_model::parse_problem(&text).expect("parses");
    assert_eq!(parsed, compiled.problem);
}
