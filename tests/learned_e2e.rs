//! End-to-end imitation-learning pipeline: collect → train → deploy as a
//! backtrack policy, across the workspace crates.

use tela_learned::{collect_samples, train_policy_from_samples, CollectConfig, GbtParams};
use tela_model::Budget;
use tela_workloads::sweep::certified_solvable;
use telamalloc::{solve_with, BacktrackPolicy, NullObserver, TelaConfig};

/// Harvest samples from a couple of tight certified instances.
fn harvest() -> Vec<tela_learned::Sample> {
    let config = CollectConfig {
        oracle_steps: 5_000,
        oracle_timeout: Some(std::time::Duration::from_millis(50)),
        max_events_per_run: 60,
        ..CollectConfig::default()
    };
    let mut samples = Vec::new();
    for seed in 100..102u64 {
        let problem = certified_solvable(seed);
        samples.extend(collect_samples(
            &problem,
            &Budget::steps(4_000),
            &TelaConfig::default(),
            &config,
            seed,
        ));
    }
    samples
}

#[test]
fn collected_samples_are_well_formed() {
    let samples = harvest();
    for s in &samples {
        assert!((0.0..=10.0).contains(&s.score), "score {}", s.score);
        assert!(s.features.iter().all(|f| f.is_finite()));
        // Normalized size/lifetime/contention stay in [0, 1].
        assert!((0.0..=1.0).contains(&s.features[0]));
        assert!((0.0..=1.0).contains(&s.features[1]));
        assert!((0.0..=1.0).contains(&s.features[2]));
    }
}

#[test]
fn trained_policy_runs_in_the_search() {
    let samples = harvest();
    let params = GbtParams {
        n_trees: 20,
        ..GbtParams::default()
    };
    let policy = train_policy_from_samples(&samples, &params);

    // Deploy on an unseen instance; the search must stay sound.
    let problem = certified_solvable(999);
    let mut p = policy;
    let mut obs = NullObserver;
    let result = solve_with(
        &problem,
        &Budget::steps(30_000),
        &TelaConfig::default(),
        &mut p as &mut dyn BacktrackPolicy,
        &mut obs,
    );
    if let Some(s) = result.outcome.solution() {
        assert!(s.validate(&problem).is_ok());
    }
}

#[test]
fn learned_policy_is_deterministic_after_training() {
    // "Our memory allocator needs to behave consistently after it has
    // shipped" (§6.1): the frozen model must make identical decisions.
    let samples = harvest();
    let params = GbtParams {
        n_trees: 10,
        ..GbtParams::default()
    };
    let policy = train_policy_from_samples(&samples, &params);
    let problem = certified_solvable(7);
    let run = || {
        let mut p = policy.clone();
        let mut obs = NullObserver;
        solve_with(
            &problem,
            &Budget::steps(20_000),
            &TelaConfig::default(),
            &mut p as &mut dyn BacktrackPolicy,
            &mut obs,
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.outcome, b.outcome);
    assert_eq!(a.stats.steps, b.stats.steps);
    assert_eq!(a.stats.major_backtracks, b.stats.major_backtracks);
}

#[test]
fn oracle_prefix_matches_search_reality() {
    // For a certified instance, the full generation-order packing is a
    // solvable path at full depth.
    let problem = certified_solvable(3);
    // Re-derive the generation packing (lowest-fit in id order).
    let mut placed: Vec<(tela_model::Buffer, u64)> = Vec::new();
    let mut path = Vec::new();
    for (id, &b) in problem.iter().map(|(i, _)| i).zip(problem.buffers()) {
        let mut occupied: Vec<(u64, u64)> = placed
            .iter()
            .filter(|(q, _)| q.overlaps_in_time(&b))
            .map(|&(q, a)| (a, a + q.size()))
            .collect();
        occupied.sort_unstable();
        let mut addr = 0u64;
        for &(s, e) in &occupied {
            if s >= addr + b.size() {
                break;
            }
            if e > addr {
                addr = e;
            }
        }
        placed.push((b, addr));
        path.push(telamalloc::PlacedDecision {
            block: id,
            address: addr,
        });
    }
    // With the FULL packing fixed, feasibility is decided by propagation
    // alone, so even a tiny budget suffices and the oracle must report
    // the full depth.
    let depth =
        tela_learned::oracle::deepest_solvable_prefix(&problem, &path, &Budget::steps(200_000));
    assert_eq!(
        depth,
        path.len(),
        "the certified packing is solvable at full depth"
    );
}
