//! Umbrella crate for the TelaMalloc reproduction workspace.
//!
//! This crate re-exports the individual workspace crates so that the
//! integration tests under `tests/` and the runnable examples under
//! `examples/` can exercise the whole system through one dependency.
//!
//! The interesting code lives in the member crates:
//!
//! - [`tela_model`] — problem/solution model shared by every allocator.
//! - [`tela_cp`] — the constraint-propagation engine (the "Telamon"
//!   substrate of the paper).
//! - [`tela_ilp`] — the simplex + branch-and-bound ILP baseline.
//! - [`tela_heuristics`] — greedy baselines (BFC, skyline heuristic,
//!   block-selection strategies).
//! - [`telamalloc`] — the hybrid heuristic × solver search (the paper's
//!   core contribution).
//! - [`tela_learned`] — gradient-boosted-tree backtracking policy learned
//!   by imitation.
//! - [`tela_workloads`] — synthetic model workloads and microbenchmarks.
//! - [`tela_pixel`] — miniature ML-compiler front-end (graph IR,
//!   scheduling, buffer lowering, DRAM-spill fallback).
//! - [`tela_xla`] — simulated XLA memory-space-assignment repacker loop.

pub use tela_cp;
pub use tela_heuristics;
pub use tela_ilp;
pub use tela_learned;
pub use tela_model;
pub use tela_pixel;
pub use tela_workloads;
pub use tela_xla;
pub use telamalloc;
