//! Cross-checks the ILP branch and bound against the (independently
//! verified) CP search: both are complete, so their feasibility answers
//! must agree on random instances.

use proptest::prelude::*;
use tela_cp::search::solve_cp_only;
use tela_ilp::{solve_ilp, solve_ilp_with, IlpConfig};
use tela_model::{Budget, Buffer, Problem, SolveOutcome};

fn buffer_strategy() -> impl Strategy<Value = Buffer> {
    (
        0u32..6,
        1u32..5,
        1u64..6,
        prop_oneof![Just(1u64), Just(2), Just(4)],
    )
        .prop_map(|(start, len, size, align)| {
            Buffer::new(start, start + len, size).with_align(align)
        })
}

fn problem_strategy() -> impl Strategy<Value = Problem> {
    (prop::collection::vec(buffer_strategy(), 1..7), 6u64..13).prop_map(|(buffers, capacity)| {
        Problem::new(buffers, capacity).expect("sizes below capacity")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn ilp_and_cp_agree_on_feasibility(problem in problem_strategy()) {
        let budget = Budget::steps(1_000_000);
        let (cp, _) = solve_cp_only(&problem, &budget);
        let (ilp, _) = solve_ilp(&problem, &budget);
        match (&cp, &ilp) {
            (SolveOutcome::Solved(a), SolveOutcome::Solved(b)) => {
                prop_assert!(a.validate(&problem).is_ok());
                prop_assert!(b.validate(&problem).is_ok());
            }
            (SolveOutcome::Infeasible, SolveOutcome::Infeasible) => {}
            other => prop_assert!(false, "disagreement: {other:?} on {problem:?}"),
        }
    }

    #[test]
    fn lp_pruning_does_not_change_answers(problem in problem_strategy()) {
        let budget = Budget::steps(1_000_000);
        let with_lp = solve_ilp_with(&problem, &budget, &IlpConfig { lp_node_var_limit: 500, ..IlpConfig::default() }).0;
        let without_lp = solve_ilp_with(&problem, &budget, &IlpConfig { lp_node_var_limit: 0, ..IlpConfig::default() }).0;
        prop_assert_eq!(with_lp.is_solved(), without_lp.is_solved());
        prop_assert_eq!(
            matches!(with_lp, SolveOutcome::Infeasible),
            matches!(without_lp, SolveOutcome::Infeasible)
        );
    }
}
