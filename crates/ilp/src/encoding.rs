//! The Figure 5 ILP encoding of the allocation problem.
//!
//! Variables (in this order):
//!
//! 1. One scaled position `q_i` per buffer, with `pos_i = align_i * q_i`
//!    (the §5.5 alignment extension; `align_i == 1` reduces to the plain
//!    encoding) and bounds `0 <= q_i <= (M - size_i) / align_i`.
//! 2. One boolean `B_p` per time-overlapping pair `(i, j)`, encoding the
//!    XOR of the paper's `B_{i,j}` / `B̃_{i,j}` variables: `B_p = 1` means
//!    buffer `i` lies below buffer `j`.
//!
//! Rows (all `<=`), per pair `(i, j)` with memory limit `M`:
//!
//! ```text
//! A_i q_i - A_j q_j + M B_p <= M - size_i     (B=1 -> i below j)
//! A_j q_j - A_i q_i - M B_p <= -size_j        (B=0 -> j below i)
//! ```

use tela_model::{Address, BufferId, Problem, Solution};

/// A linear row `sum(coeff * var) <= rhs` over integer variables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Row {
    /// `(variable index, coefficient)` terms.
    pub terms: Vec<(u32, i64)>,
    /// Right-hand side.
    pub rhs: i64,
}

/// The materialized ILP for one allocation problem.
///
/// # Example
///
/// ```
/// use tela_ilp::IlpEncoding;
/// use tela_model::examples;
///
/// let enc = IlpEncoding::new(&examples::figure1());
/// assert_eq!(enc.num_position_vars(), 10);
/// assert_eq!(enc.num_rows(), 2 * enc.num_booleans());
/// ```
#[derive(Debug, Clone)]
pub struct IlpEncoding {
    problem: Problem,
    pairs: Vec<(u32, u32)>,
    bounds: Vec<(i64, i64)>,
    rows: Vec<Row>,
    /// For each variable, the rows it appears in.
    adjacency: Vec<Vec<u32>>,
}

impl IlpEncoding {
    /// Builds the encoding for `problem`.
    pub fn new(problem: &Problem) -> Self {
        let n = problem.len();
        let m = problem.capacity() as i64;
        let mut pairs: Vec<(u32, u32)> = problem
            .overlapping_pairs()
            .map(|(a, b)| (a.index() as u32, b.index() as u32))
            .collect();
        pairs.sort_unstable();

        let mut bounds = Vec::with_capacity(n + pairs.len());
        for b in problem.buffers() {
            let max_pos = (problem.capacity() - b.size()) / b.align();
            bounds.push((0, max_pos as i64));
        }
        bounds.extend(std::iter::repeat_n((0, 1), pairs.len()));

        let mut rows = Vec::with_capacity(2 * pairs.len());
        for (p, &(i, j)) in pairs.iter().enumerate() {
            let boolean = (n + p) as u32;
            let (ai, si) = scale_size(problem, i);
            let (aj, sj) = scale_size(problem, j);
            rows.push(Row {
                terms: vec![(i, ai), (j, -aj), (boolean, m)],
                rhs: m - si,
            });
            rows.push(Row {
                terms: vec![(j, aj), (i, -ai), (boolean, -m)],
                rhs: -sj,
            });
        }

        let mut adjacency = vec![Vec::new(); n + pairs.len()];
        for (r, row) in rows.iter().enumerate() {
            for &(v, _) in &row.terms {
                adjacency[v as usize].push(r as u32);
            }
        }
        IlpEncoding {
            problem: problem.clone(),
            pairs,
            bounds,
            rows,
            adjacency,
        }
    }

    /// The encoded problem.
    pub fn problem(&self) -> &Problem {
        &self.problem
    }

    /// Number of position variables (= number of buffers).
    pub fn num_position_vars(&self) -> usize {
        self.problem.len()
    }

    /// Number of pair booleans.
    pub fn num_booleans(&self) -> usize {
        self.pairs.len()
    }

    /// Total variable count (positions then booleans).
    pub fn num_vars(&self) -> usize {
        self.num_position_vars() + self.num_booleans()
    }

    /// Number of constraint rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Variable index of the `p`-th pair boolean.
    pub fn boolean_var(&self, p: usize) -> u32 {
        (self.num_position_vars() + p) as u32
    }

    /// The buffer pair `(i, j)` of the `p`-th boolean.
    pub fn pair(&self, p: usize) -> (BufferId, BufferId) {
        let (i, j) = self.pairs[p];
        (BufferId::new(i as usize), BufferId::new(j as usize))
    }

    /// Initial bounds `(lo, hi)` of every variable.
    pub fn bounds(&self) -> &[(i64, i64)] {
        &self.bounds
    }

    /// The constraint rows.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Rows that variable `var` appears in.
    pub fn rows_of(&self, var: u32) -> &[u32] {
        &self.adjacency[var as usize]
    }

    /// Converts scaled position values into a [`Solution`] in raw
    /// addresses.
    pub fn solution_from_positions(&self, q: &[i64]) -> Solution {
        Solution::new(
            self.problem
                .buffers()
                .iter()
                .zip(q)
                .map(|(b, &qi)| qi as Address * b.align())
                .collect(),
        )
    }
}

fn scale_size(problem: &Problem, i: u32) -> (i64, i64) {
    let b = &problem.buffers()[i as usize];
    (b.align() as i64, b.size() as i64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tela_model::{examples, Buffer};

    #[test]
    fn variable_and_row_counts() {
        let p = examples::figure1();
        let enc = IlpEncoding::new(&p);
        let pairs = p.overlapping_pairs().count();
        assert_eq!(enc.num_booleans(), pairs);
        assert_eq!(enc.num_vars(), p.len() + pairs);
        assert_eq!(enc.num_rows(), 2 * pairs);
    }

    #[test]
    fn bounds_scale_with_alignment() {
        let p = Problem::builder(100)
            .buffer(Buffer::new(0, 1, 8).with_align(32))
            .buffer(Buffer::new(0, 1, 10))
            .build()
            .unwrap();
        let enc = IlpEncoding::new(&p);
        // (100 - 8) / 32 = 2 -> q in {0, 1, 2} i.e. addresses {0, 32, 64}.
        assert_eq!(enc.bounds()[0], (0, 2));
        assert_eq!(enc.bounds()[1], (0, 90));
    }

    #[test]
    fn boolean_bounds_are_binary() {
        let enc = IlpEncoding::new(&examples::tiny());
        for p in 0..enc.num_booleans() {
            assert_eq!(enc.bounds()[enc.boolean_var(p) as usize], (0, 1));
        }
    }

    #[test]
    fn rows_encode_big_m_disjunction() {
        // One pair, sizes 6 and 4, capacity 10, no alignment.
        let p = Problem::builder(10)
            .buffer(Buffer::new(0, 2, 6))
            .buffer(Buffer::new(0, 2, 4))
            .build()
            .unwrap();
        let enc = IlpEncoding::new(&p);
        assert_eq!(enc.num_rows(), 2);
        assert_eq!(
            enc.rows()[0],
            Row {
                terms: vec![(0, 1), (1, -1), (2, 10)],
                rhs: 4
            }
        );
        assert_eq!(
            enc.rows()[1],
            Row {
                terms: vec![(1, 1), (0, -1), (2, -10)],
                rhs: -4
            }
        );
    }

    #[test]
    fn known_assignments_satisfy_rows() {
        // Check that a valid packing satisfies every row with the implied
        // boolean values, and an overlapping one violates some row for
        // both boolean values.
        let p = Problem::builder(10)
            .buffer(Buffer::new(0, 2, 6))
            .buffer(Buffer::new(0, 2, 4))
            .build()
            .unwrap();
        let enc = IlpEncoding::new(&p);
        let satisfied = |q0: i64, q1: i64, b: i64| {
            enc.rows().iter().all(|row| {
                let lhs: i64 = row
                    .terms
                    .iter()
                    .map(|&(v, c)| {
                        c * match v {
                            0 => q0,
                            1 => q1,
                            _ => b,
                        }
                    })
                    .sum();
                lhs <= row.rhs
            })
        };
        assert!(satisfied(0, 6, 1)); // buffer 0 below buffer 1
        assert!(satisfied(4, 0, 0)); // buffer 1 below buffer 0
        assert!(!satisfied(0, 3, 0) && !satisfied(0, 3, 1)); // overlap
    }

    #[test]
    fn solution_from_positions_rescales() {
        let p = Problem::builder(100)
            .buffer(Buffer::new(0, 1, 8).with_align(32))
            .build()
            .unwrap();
        let enc = IlpEncoding::new(&p);
        let s = enc.solution_from_positions(&[2]);
        assert_eq!(s.address(BufferId::new(0)), 64);
    }
}
