//! Dense-tableau primal simplex with the Big-M method.
//!
//! Solves `minimize c·x` subject to linear constraints and `x >= 0`.
//! This is the LP substrate under the ILP baseline's relaxation bounds;
//! it is small-scale by design (dense tableau), which matches its role:
//! the paper's point is that solver-based baselines are *expensive*, not
//! that they are clever.
//!
//! # Example
//!
//! ```
//! use tela_ilp::simplex::{LinearProgram, LpOutcome, Relation};
//!
//! // minimize -x - y  s.t.  x + y <= 4, x <= 3, y <= 2
//! let mut lp = LinearProgram::minimize(vec![-1.0, -1.0]);
//! lp.constrain(vec![1.0, 1.0], Relation::Le, 4.0);
//! lp.constrain(vec![1.0, 0.0], Relation::Le, 3.0);
//! lp.constrain(vec![0.0, 1.0], Relation::Le, 2.0);
//! match lp.solve() {
//!     LpOutcome::Optimal { objective, .. } => assert!((objective + 4.0).abs() < 1e-9),
//!     other => panic!("unexpected outcome {other:?}"),
//! }
//! ```

/// Relation of a linear constraint row to its right-hand side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// `a·x <= b`
    Le,
    /// `a·x >= b`
    Ge,
    /// `a·x == b`
    Eq,
}

/// Result of solving a [`LinearProgram`].
#[derive(Debug, Clone, PartialEq)]
pub enum LpOutcome {
    /// An optimal solution was found.
    Optimal {
        /// Optimal objective value.
        objective: f64,
        /// Optimal variable assignment.
        solution: Vec<f64>,
    },
    /// The feasible region is empty.
    Infeasible,
    /// The objective is unbounded below.
    Unbounded,
}

/// A linear program in inequality form over non-negative variables.
#[derive(Debug, Clone)]
pub struct LinearProgram {
    objective: Vec<f64>,
    rows: Vec<(Vec<f64>, Relation, f64)>,
}

const EPS: f64 = 1e-9;

impl LinearProgram {
    /// Starts a minimization problem with the given objective
    /// coefficients (one per variable).
    pub fn minimize(objective: Vec<f64>) -> Self {
        LinearProgram {
            objective,
            rows: Vec::new(),
        }
    }

    /// Number of structural variables.
    pub fn num_vars(&self) -> usize {
        self.objective.len()
    }

    /// Number of constraint rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Adds a constraint `coeffs · x (rel) rhs`.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs` does not have one entry per variable.
    pub fn constrain(&mut self, coeffs: Vec<f64>, rel: Relation, rhs: f64) -> &mut Self {
        assert_eq!(
            coeffs.len(),
            self.num_vars(),
            "coefficient row has wrong arity"
        );
        self.rows.push((coeffs, rel, rhs));
        self
    }

    /// Solves the program with the Big-M primal simplex method, using
    /// Bland's rule to guarantee termination.
    pub fn solve(&self) -> LpOutcome {
        let n = self.num_vars();
        let m = self.rows.len();

        // Normalize rows to non-negative rhs.
        let mut rows: Vec<(Vec<f64>, Relation, f64)> = self.rows.clone();
        for (coeffs, rel, rhs) in &mut rows {
            if *rhs < 0.0 {
                for c in coeffs.iter_mut() {
                    *c = -*c;
                }
                *rhs = -*rhs;
                *rel = match *rel {
                    Relation::Le => Relation::Ge,
                    Relation::Ge => Relation::Le,
                    Relation::Eq => Relation::Eq,
                };
            }
        }

        // Column layout: [structural | slack/surplus | artificial | rhs].
        let num_slack = rows
            .iter()
            .filter(|(_, rel, _)| matches!(rel, Relation::Le | Relation::Ge))
            .count();
        let num_artificial = rows
            .iter()
            .filter(|(_, rel, _)| matches!(rel, Relation::Ge | Relation::Eq))
            .count();
        let total = n + num_slack + num_artificial;
        let big_m = self.big_m_value();

        let mut tableau = vec![vec![0.0; total + 1]; m + 1];
        let mut basis = vec![0usize; m];
        let mut slack_idx = n;
        let mut art_idx = n + num_slack;
        let mut artificial_cols = Vec::new();

        for (r, (coeffs, rel, rhs)) in rows.iter().enumerate() {
            tableau[r][..n].copy_from_slice(coeffs);
            tableau[r][total] = *rhs;
            match rel {
                Relation::Le => {
                    tableau[r][slack_idx] = 1.0;
                    basis[r] = slack_idx;
                    slack_idx += 1;
                }
                Relation::Ge => {
                    tableau[r][slack_idx] = -1.0;
                    slack_idx += 1;
                    tableau[r][art_idx] = 1.0;
                    basis[r] = art_idx;
                    artificial_cols.push(art_idx);
                    art_idx += 1;
                }
                Relation::Eq => {
                    tableau[r][art_idx] = 1.0;
                    basis[r] = art_idx;
                    artificial_cols.push(art_idx);
                    art_idx += 1;
                }
            }
        }

        // Objective row: c for structural vars, big-M for artificials.
        for (j, &c) in self.objective.iter().enumerate() {
            tableau[m][j] = c;
        }
        for &col in &artificial_cols {
            tableau[m][col] = big_m;
        }
        // Price out the artificial basis columns.
        for r in 0..m {
            if tableau[m][basis[r]].abs() > EPS {
                let factor = tableau[m][basis[r]];
                let (head, tail) = tableau.split_at_mut(m);
                for (obj, row) in tail[0].iter_mut().zip(&head[r]) {
                    *obj -= factor * row;
                }
            }
        }

        // Primal simplex iterations with Bland's rule.
        loop {
            // Entering column: smallest index with negative reduced cost.
            let entering = (0..total).find(|&j| tableau[m][j] < -EPS);
            let Some(col) = entering else { break };
            // Leaving row: minimum ratio, ties by smallest basis index.
            let mut leave: Option<(usize, f64)> = None;
            for (r, row) in tableau.iter().enumerate().take(m) {
                if row[col] > EPS {
                    let ratio = row[total] / row[col];
                    let better = match leave {
                        None => true,
                        Some((lr, lratio)) => {
                            ratio < lratio - EPS || (ratio < lratio + EPS && basis[r] < basis[lr])
                        }
                    };
                    if better {
                        leave = Some((r, ratio));
                    }
                }
            }
            let Some((row, _)) = leave else {
                return LpOutcome::Unbounded;
            };
            self.pivot(&mut tableau, row, col);
            basis[row] = col;
        }

        // Artificial variables remaining basic at positive value mean the
        // original program is infeasible.
        for (r, &b) in basis.iter().enumerate() {
            if artificial_cols.contains(&b) && tableau[r][total] > 1e-6 {
                return LpOutcome::Infeasible;
            }
        }

        let mut solution = vec![0.0; n];
        for (r, &b) in basis.iter().enumerate() {
            if b < n {
                solution[b] = tableau[r][total];
            }
        }
        let objective: f64 = solution
            .iter()
            .zip(&self.objective)
            .map(|(x, c)| x * c)
            .sum();
        LpOutcome::Optimal {
            objective,
            solution,
        }
    }

    fn big_m_value(&self) -> f64 {
        let max_c = self.objective.iter().fold(1.0f64, |a, &c| a.max(c.abs()));
        let max_a = self
            .rows
            .iter()
            .flat_map(|(coeffs, _, rhs)| coeffs.iter().chain(std::iter::once(rhs)))
            .fold(1.0f64, |a, &c| a.max(c.abs()));
        (max_c + max_a) * 1e7
    }

    fn pivot(&self, tableau: &mut [Vec<f64>], row: usize, col: usize) {
        let pivot = tableau[row][col];
        for v in tableau[row].iter_mut() {
            *v /= pivot;
        }
        let pivot_row = tableau[row].clone();
        for (r, trow) in tableau.iter_mut().enumerate() {
            if r != row && trow[col].abs() > EPS {
                let factor = trow[col];
                for (v, pv) in trow.iter_mut().zip(&pivot_row) {
                    *v -= factor * pv;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn optimal(lp: &LinearProgram) -> (f64, Vec<f64>) {
        match lp.solve() {
            LpOutcome::Optimal {
                objective,
                solution,
            } => (objective, solution),
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn simple_maximization_via_negation() {
        // max x + 2y s.t. x + y <= 3, y <= 2 => (1, 2), objective 5.
        let mut lp = LinearProgram::minimize(vec![-1.0, -2.0]);
        lp.constrain(vec![1.0, 1.0], Relation::Le, 3.0);
        lp.constrain(vec![0.0, 1.0], Relation::Le, 2.0);
        let (obj, x) = optimal(&lp);
        assert!((obj + 5.0).abs() < 1e-6);
        assert!((x[0] - 1.0).abs() < 1e-6 && (x[1] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn equality_constraints_respected() {
        // min x + y s.t. x + y = 2, x - y = 0 => x = y = 1.
        let mut lp = LinearProgram::minimize(vec![1.0, 1.0]);
        lp.constrain(vec![1.0, 1.0], Relation::Eq, 2.0);
        lp.constrain(vec![1.0, -1.0], Relation::Eq, 0.0);
        let (obj, x) = optimal(&lp);
        assert!((obj - 2.0).abs() < 1e-6);
        assert!((x[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn ge_constraints_respected() {
        // min 2x + 3y s.t. x + y >= 4, x >= 1 => (4, 0) objective 8? y can
        // be 0: x >= 4 dominates, objective 8 at (4, 0).
        let mut lp = LinearProgram::minimize(vec![2.0, 3.0]);
        lp.constrain(vec![1.0, 1.0], Relation::Ge, 4.0);
        lp.constrain(vec![1.0, 0.0], Relation::Ge, 1.0);
        let (obj, x) = optimal(&lp);
        assert!((obj - 8.0).abs() < 1e-6, "objective {obj}, x {x:?}");
    }

    #[test]
    fn infeasible_detected() {
        // x <= 1 and x >= 2.
        let mut lp = LinearProgram::minimize(vec![1.0]);
        lp.constrain(vec![1.0], Relation::Le, 1.0);
        lp.constrain(vec![1.0], Relation::Ge, 2.0);
        assert_eq!(lp.solve(), LpOutcome::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        // min -x with no upper bound on x.
        let mut lp = LinearProgram::minimize(vec![-1.0]);
        lp.constrain(vec![-1.0], Relation::Le, 0.0);
        assert_eq!(lp.solve(), LpOutcome::Unbounded);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Classic degeneracy: multiple rows binding at the same vertex;
        // Bland's rule must avoid cycling.
        let mut lp = LinearProgram::minimize(vec![-0.75, 150.0, -0.02, 6.0]);
        lp.constrain(vec![0.25, -60.0, -0.04, 9.0], Relation::Le, 0.0);
        lp.constrain(vec![0.5, -90.0, -0.02, 3.0], Relation::Le, 0.0);
        lp.constrain(vec![0.0, 0.0, 1.0, 0.0], Relation::Le, 1.0);
        match lp.solve() {
            LpOutcome::Optimal { objective, .. } => {
                assert!((objective + 0.05).abs() < 1e-6, "objective {objective}");
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn zero_variable_lp() {
        let lp = LinearProgram::minimize(vec![]);
        match lp.solve() {
            LpOutcome::Optimal {
                objective,
                solution,
            } => {
                assert_eq!(objective, 0.0);
                assert!(solution.is_empty());
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn negative_rhs_normalized() {
        // x - y <= -1 with min x => x = 0, y >= 1 feasible.
        let mut lp = LinearProgram::minimize(vec![1.0, 0.0]);
        lp.constrain(vec![1.0, -1.0], Relation::Le, -1.0);
        let (obj, _) = optimal(&lp);
        assert!(obj.abs() < 1e-6);
    }

    #[test]
    fn relaxation_of_tiny_packing() {
        // Two overlapping buffers, sizes 6 and 4, capacity 10, boolean b:
        // p0 + 6 <= p1 + 10(1-b); p1 + 4 <= p0 + 10b; p0 <= 4; p1 <= 6.
        // LP relaxation (b fractional) is feasible.
        let mut lp = LinearProgram::minimize(vec![0.0, 0.0, 0.0]);
        lp.constrain(vec![1.0, -1.0, 10.0], Relation::Le, 4.0); // p0 - p1 + 10b <= 10 - 6
        lp.constrain(vec![-1.0, 1.0, -10.0], Relation::Le, -4.0); // p1 - p0 - 10b <= -4
        lp.constrain(vec![1.0, 0.0, 0.0], Relation::Le, 4.0);
        lp.constrain(vec![0.0, 1.0, 0.0], Relation::Le, 6.0);
        lp.constrain(vec![0.0, 0.0, 1.0], Relation::Le, 1.0);
        assert!(matches!(lp.solve(), LpOutcome::Optimal { .. }));
    }
}
