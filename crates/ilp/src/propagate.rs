//! Generic integer bound tightening over ILP rows.
//!
//! This is the presolve-style reasoning a MIP solver applies at every
//! branch-and-bound node: for each row `sum(a_k x_k) <= b`, the minimum
//! achievable value of all other terms implies a bound on each variable.
//! The store is trail-based so the branch-and-bound driver can backtrack
//! in `O(#changes)`.
//!
//! Deliberately domain-blind: the engine sees linear rows only, never the
//! 2D packing structure — the handicap the paper ascribes to pure
//! solver-based approaches (§4: "a rectangle may clearly not fit into a
//! particular gap, but the solver only sees a set of non-obvious
//! equations").

use crate::encoding::IlpEncoding;

/// Trail-based integer bounds store over an [`IlpEncoding`]'s rows.
///
/// # Example
///
/// ```
/// use tela_ilp::{propagate::BoundStore, IlpEncoding};
/// use tela_model::examples;
///
/// let enc = IlpEncoding::new(&examples::tiny());
/// let mut store = BoundStore::new(&enc);
/// store.push_level();
/// // Fix the first pair boolean to 1 (buffer 0 below buffer 1).
/// let b = enc.boolean_var(0);
/// assert!(store.fix(b, 1).is_ok());
/// store.pop_level();
/// ```
#[derive(Debug)]
pub struct BoundStore<'e> {
    encoding: &'e IlpEncoding,
    lo: Vec<i64>,
    hi: Vec<i64>,
    trail: Vec<(u32, i64, i64)>,
    levels: Vec<usize>,
    queue: Vec<u32>,
    in_queue: Vec<bool>,
    propagations: u64,
}

/// Error returned when propagation proves the current node infeasible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeInfeasible;

impl std::fmt::Display for NodeInfeasible {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "branch-and-bound node is infeasible")
    }
}

impl std::error::Error for NodeInfeasible {}

impl<'e> BoundStore<'e> {
    /// Creates a store with the encoding's initial bounds.
    pub fn new(encoding: &'e IlpEncoding) -> Self {
        let (lo, hi): (Vec<i64>, Vec<i64>) = encoding.bounds().iter().copied().unzip();
        let n = lo.len();
        BoundStore {
            encoding,
            lo,
            hi,
            trail: Vec::new(),
            levels: Vec::new(),
            queue: Vec::new(),
            in_queue: vec![false; n],
            propagations: 0,
        }
    }

    /// Current bounds of `var`.
    pub fn bounds(&self, var: u32) -> (i64, i64) {
        (self.lo[var as usize], self.hi[var as usize])
    }

    /// Returns true if `var` is fixed to a single value.
    pub fn is_fixed(&self, var: u32) -> bool {
        self.lo[var as usize] == self.hi[var as usize]
    }

    /// Number of row-propagation operations performed so far.
    pub fn propagations(&self) -> u64 {
        self.propagations
    }

    /// Current decision level.
    pub fn level(&self) -> usize {
        self.levels.len()
    }

    /// Opens a new decision level.
    pub fn push_level(&mut self) {
        self.levels.push(self.trail.len());
    }

    /// Undoes all changes of the most recent decision level. With no
    /// level open this is a no-op: the search drives pushes and pops in
    /// lock-step, and a stray pop must not abort a solve.
    // tela-lint: hot-path
    pub fn pop_level(&mut self) {
        let Some(mark) = self.levels.pop() else {
            return;
        };
        while self.trail.len() > mark {
            let Some((var, lo, hi)) = self.trail.pop() else {
                break;
            };
            self.lo[var as usize] = lo;
            self.hi[var as usize] = hi;
        }
        for &v in &self.queue {
            self.in_queue[v as usize] = false;
        }
        self.queue.clear();
    }

    /// Fixes `var := value` within the current level and propagates to a
    /// fixpoint.
    ///
    /// # Errors
    ///
    /// Returns [`NodeInfeasible`] if the fix (or its consequences) empty
    /// any variable's bounds. The caller should then pop the level.
    pub fn fix(&mut self, var: u32, value: i64) -> Result<(), NodeInfeasible> {
        if value < self.lo[var as usize] || value > self.hi[var as usize] {
            return Err(NodeInfeasible);
        }
        self.set_bounds(var, value, value)?;
        self.propagate()
    }

    /// Runs propagation over every row once, then to a fixpoint. Useful
    /// after construction to apply root-level reductions.
    ///
    /// # Errors
    ///
    /// Returns [`NodeInfeasible`] if the root is infeasible.
    pub fn propagate_all(&mut self) -> Result<(), NodeInfeasible> {
        for r in 0..self.encoding.num_rows() as u32 {
            self.propagate_row(r)?;
        }
        self.propagate()
    }

    fn set_bounds(&mut self, var: u32, lo: i64, hi: i64) -> Result<(), NodeInfeasible> {
        let v = var as usize;
        let (old_lo, old_hi) = (self.lo[v], self.hi[v]);
        let new_lo = old_lo.max(lo);
        let new_hi = old_hi.min(hi);
        if new_lo == old_lo && new_hi == old_hi {
            return Ok(());
        }
        self.trail.push((var, old_lo, old_hi));
        self.lo[v] = new_lo;
        self.hi[v] = new_hi;
        if new_lo > new_hi {
            return Err(NodeInfeasible);
        }
        if !self.in_queue[v] {
            self.in_queue[v] = true;
            self.queue.push(var);
        }
        Ok(())
    }

    fn propagate(&mut self) -> Result<(), NodeInfeasible> {
        while let Some(var) = self.queue.pop() {
            self.in_queue[var as usize] = false;
            // Clone the row list to release the borrow; row lists are
            // short (each variable appears in O(overlap degree) rows).
            let rows: Vec<u32> = self.encoding.rows_of(var).to_vec();
            for r in rows {
                if let Err(e) = self.propagate_row(r) {
                    for &v in &self.queue {
                        self.in_queue[v as usize] = false;
                    }
                    self.queue.clear();
                    return Err(e);
                }
            }
        }
        Ok(())
    }

    /// Tightens every variable of row `r` against the row's slack.
    fn propagate_row(&mut self, r: u32) -> Result<(), NodeInfeasible> {
        self.propagations += 1;
        let row = &self.encoding.rows()[r as usize];
        // Minimum achievable LHS.
        let mut min_sum: i128 = 0;
        for &(v, c) in &row.terms {
            let contrib = if c > 0 {
                self.lo[v as usize]
            } else {
                self.hi[v as usize]
            };
            min_sum += i128::from(c) * i128::from(contrib);
        }
        if min_sum > i128::from(row.rhs) {
            return Err(NodeInfeasible);
        }
        let terms = row.terms.clone();
        let rhs = i128::from(row.rhs);
        for (v, c) in terms {
            let contrib = if c > 0 {
                self.lo[v as usize]
            } else {
                self.hi[v as usize]
            };
            let rest = min_sum - i128::from(c) * i128::from(contrib);
            let budget = rhs - rest;
            if c > 0 {
                // c * x <= budget  ->  x <= floor(budget / c)
                let bound = budget.div_euclid(i128::from(c));
                let bound = bound.clamp(i128::from(i64::MIN), i128::from(i64::MAX)) as i64;
                self.set_bounds(v, i64::MIN, bound)?;
            } else {
                // c * x <= budget with c < 0  ->  x >= ceil(budget / c)
                let bound = -budget.div_euclid(i128::from(-c));
                let bound = bound.clamp(i128::from(i64::MIN), i128::from(i64::MAX)) as i64;
                self.set_bounds(v, bound, i64::MAX)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tela_model::{Buffer, Problem};

    fn two_buffer_encoding() -> IlpEncoding {
        // Sizes 6 and 4 in capacity 10: a single pair with one boolean.
        let p = Problem::builder(10)
            .buffer(Buffer::new(0, 2, 6))
            .buffer(Buffer::new(0, 2, 4))
            .build()
            .unwrap();
        IlpEncoding::new(&p)
    }

    #[test]
    fn fixing_boolean_derives_difference_bounds() {
        let enc = two_buffer_encoding();
        let mut store = BoundStore::new(&enc);
        store.push_level();
        // B = 1: buffer 0 below buffer 1 -> q1 >= 6, q0 <= 0.
        store.fix(enc.boolean_var(0), 1).unwrap();
        assert_eq!(store.bounds(1), (6, 6));
        assert_eq!(store.bounds(0), (0, 0));
    }

    #[test]
    fn fixing_boolean_other_way() {
        let enc = two_buffer_encoding();
        let mut store = BoundStore::new(&enc);
        store.push_level();
        // B = 0: buffer 1 below buffer 0 -> q0 >= 4, q1 <= 0.
        store.fix(enc.boolean_var(0), 0).unwrap();
        assert_eq!(store.bounds(0), (4, 4));
        assert_eq!(store.bounds(1), (0, 0));
    }

    #[test]
    fn pop_level_restores_bounds() {
        let enc = two_buffer_encoding();
        let mut store = BoundStore::new(&enc);
        let before0 = store.bounds(0);
        store.push_level();
        store.fix(enc.boolean_var(0), 1).unwrap();
        store.pop_level();
        assert_eq!(store.bounds(0), before0);
        assert_eq!(store.level(), 0);
    }

    #[test]
    fn infeasible_fix_detected() {
        // Sizes 6 and 6 in capacity 10: either order overflows.
        let p = Problem::builder(11)
            .buffer(Buffer::new(0, 2, 6))
            .buffer(Buffer::new(0, 2, 6))
            .build()
            .unwrap();
        let enc = IlpEncoding::new(&p);
        let mut store = BoundStore::new(&enc);
        store.push_level();
        // B = 1 -> q1 >= 6 but hi(q1) = 11 - 6 = 5.
        assert_eq!(store.fix(enc.boolean_var(0), 1), Err(NodeInfeasible));
        store.pop_level();
        store.push_level();
        assert_eq!(store.fix(enc.boolean_var(0), 0), Err(NodeInfeasible));
    }

    #[test]
    fn propagation_forces_boolean_from_positions() {
        let enc = two_buffer_encoding();
        let mut store = BoundStore::new(&enc);
        store.push_level();
        // Fix q0 = 0 (buffer 0 at the bottom). Row 2 (j below i):
        // q1 - q0 - 10 B <= -4 -> with q0 = 0, q1 >= 0: B >= (q1+4)/10 is
        // not directly derivable, but fixing q1 = 6 forces B = 1.
        store.fix(0, 0).unwrap();
        store.fix(1, 6).unwrap();
        assert_eq!(store.bounds(enc.boolean_var(0)), (1, 1));
    }

    #[test]
    fn out_of_bounds_fix_rejected() {
        let enc = two_buffer_encoding();
        let mut store = BoundStore::new(&enc);
        store.push_level();
        assert_eq!(store.fix(0, 99), Err(NodeInfeasible));
    }

    #[test]
    fn propagate_all_applies_root_reductions() {
        // Three mutually overlapping unit buffers in capacity 3: the root
        // is feasible; propagate_all must not error.
        let p = Problem::builder(3)
            .buffers((0..3).map(|_| Buffer::new(0, 2, 1)))
            .build()
            .unwrap();
        let enc = IlpEncoding::new(&p);
        let mut store = BoundStore::new(&enc);
        assert!(store.propagate_all().is_ok());
    }

    #[test]
    fn alignment_scaled_rows_propagate() {
        // 32-aligned buffer below an unaligned one.
        let p = Problem::builder(100)
            .buffer(Buffer::new(0, 2, 8).with_align(32))
            .buffer(Buffer::new(0, 2, 10))
            .build()
            .unwrap();
        let enc = IlpEncoding::new(&p);
        let mut store = BoundStore::new(&enc);
        store.push_level();
        // B = 1: 32 q0 + 8 <= q1 -> q1 >= 8 when q0 = 0.
        store.fix(enc.boolean_var(0), 1).unwrap();
        store.fix(0, 0).unwrap();
        assert_eq!(store.bounds(1).0, 8);
    }
}
