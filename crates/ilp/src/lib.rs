//! ILP baseline for the TelaMalloc reproduction.
//!
//! The paper's production baseline encodes the allocation problem as an
//! Integer Linear Program (Figure 5): one integer position variable per
//! buffer, one boolean per time-overlapping pair, and big-M constraints
//! implementing the "above or below" disjunction. This crate reproduces
//! that baseline from scratch:
//!
//! - [`simplex`] — a dense-tableau primal simplex LP solver (Big-M
//!   method), used for relaxation bounds on small instances and as a
//!   stand-alone LP solver.
//! - [`encoding`] — the Figure 5 matrix builder, including the §5.5
//!   alignment extension (positions expressed in multiples of each
//!   buffer's alignment).
//! - [`propagate`] — generic integer bound tightening over the rows (the
//!   presolve-style reasoning a MIP solver applies); deliberately
//!   domain-blind: it sees only linear rows, never "rectangles" or
//!   "gaps", which is exactly the handicap the paper ascribes to
//!   solver-only approaches (§4).
//! - [`bnb`] — depth-first branch and bound over the pair booleans.
//!
//! # Example
//!
//! ```
//! use tela_ilp::solve_ilp;
//! use tela_model::{examples, Budget};
//!
//! let problem = examples::figure1();
//! let (outcome, _stats) = solve_ilp(&problem, &Budget::steps(1_000_000));
//! let solution = outcome.solution().expect("figure1 is feasible");
//! assert!(solution.validate(&problem).is_ok());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bnb;
pub mod encoding;
pub mod propagate;
pub mod simplex;

pub use bnb::{min_required_memory, solve_ilp, solve_ilp_with, IlpConfig};
pub use encoding::IlpEncoding;
