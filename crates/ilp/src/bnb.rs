//! Depth-first branch and bound over the pair booleans of the Figure 5
//! encoding.
//!
//! At each node one unfixed boolean is chosen and both orderings are
//! tried; bound propagation ([`crate::propagate`]) prunes, and an
//! optional LP relaxation check (via [`crate::simplex`]) is applied at
//! small nodes. When every boolean is fixed, the propagation fixpoint's
//! lower bounds form a concrete packing (the rows then reduce to
//! difference constraints, whose least solution the propagation
//! computes).

use std::time::Instant;

use tela_audit::Verdict;
use tela_model::{Budget, Problem, Size, SolveOutcome, SolveStats};

use crate::encoding::IlpEncoding;
use crate::propagate::BoundStore;
use crate::simplex::{LinearProgram, LpOutcome, Relation};

/// Tuning knobs for the ILP branch and bound.
#[derive(Debug, Clone, Copy)]
pub struct IlpConfig {
    /// Apply an LP-relaxation feasibility check at nodes whose encoding
    /// has at most this many variables (0 disables LP entirely). LP
    /// checks are expensive (dense simplex) but can prune subtrees that
    /// bound propagation keeps.
    pub lp_node_var_limit: usize,
    /// Run the `tela-audit` static preflight before branching: provably
    /// infeasible instances are rejected and degenerate instances solved
    /// without expanding a single node.
    pub preflight_audit: bool,
}

impl Default for IlpConfig {
    fn default() -> Self {
        // The dense tableau is O(rows × vars); past a few hundred
        // variables the LP costs more than the subtree it might prune.
        IlpConfig {
            lp_node_var_limit: 120,
            preflight_audit: true,
        }
    }
}

/// Solves `problem` with the ILP baseline under a default configuration.
///
/// # Example
///
/// ```
/// use tela_ilp::solve_ilp;
/// use tela_model::{examples, Budget};
///
/// let (outcome, stats) = solve_ilp(&examples::tiny(), &Budget::steps(100_000));
/// assert!(outcome.is_solved());
/// assert!(stats.steps > 0);
/// ```
pub fn solve_ilp(problem: &Problem, budget: &Budget) -> (SolveOutcome, SolveStats) {
    solve_ilp_with(problem, budget, &IlpConfig::default())
}

/// Solves `problem` with the ILP baseline under an explicit
/// configuration.
pub fn solve_ilp_with(
    problem: &Problem,
    budget: &Budget,
    config: &IlpConfig,
) -> (SolveOutcome, SolveStats) {
    let start = Instant::now();
    let mut stats = SolveStats::default();

    if config.preflight_audit {
        match tela_audit::preflight(problem) {
            Verdict::ProvablyInfeasible(_) => {
                stats.elapsed = start.elapsed();
                return (SolveOutcome::Infeasible, stats);
            }
            Verdict::TriviallyFeasible(solution) => {
                stats.elapsed = start.elapsed();
                return (SolveOutcome::Solved(solution), stats);
            }
            Verdict::NeedsSearch(_) => {}
        }
    }

    let encoding = IlpEncoding::new(problem);
    let mut store = BoundStore::new(&encoding);

    if store.propagate_all().is_err() {
        stats.elapsed = start.elapsed();
        return (SolveOutcome::Infeasible, stats);
    }

    struct Frame {
        boolean: usize,
        first_value: i64,
        exhausted: bool,
        cursor: usize,
    }
    let mut frames: Vec<Frame> = Vec::new();
    let mut cursor = 0usize;
    let mut retry = false;

    loop {
        if budget.exhausted(stats.steps) {
            stats.elapsed = start.elapsed();
            return (SolveOutcome::BudgetExceeded, stats);
        }
        if retry {
            retry = false;
            let Some(frame) = frames.last_mut() else {
                // Retry with no open frame means the root alternatives
                // are spent; report infeasibility rather than panic.
                stats.elapsed = start.elapsed();
                return (SolveOutcome::Infeasible, stats);
            };
            if frame.exhausted {
                frames.pop();
                match frames.last() {
                    Some(_) => {
                        store.pop_level();
                        stats.major_backtracks += 1;
                        retry = true;
                        continue;
                    }
                    None => {
                        stats.elapsed = start.elapsed();
                        return (SolveOutcome::Infeasible, stats);
                    }
                }
            }
            frame.exhausted = true;
            let value = 1 - frame.first_value;
            let var = encoding.boolean_var(frame.boolean);
            cursor = frame.cursor;
            stats.steps += 1;
            store.push_level();
            if store.fix(var, value).is_err() || !lp_check(&encoding, &store, config) {
                store.pop_level();
                stats.minor_backtracks += 1;
                retry = true;
            }
            continue;
        }

        match next_unfixed_boolean(&encoding, &store, cursor) {
            None => {
                // All booleans fixed: the propagation fixpoint's lower
                // bounds satisfy every (now difference-form) row.
                let q: Vec<i64> = (0..encoding.num_position_vars())
                    .map(|v| store.bounds(v as u32).0)
                    .collect();
                let solution = encoding.solution_from_positions(&q);
                debug_assert!(solution.validate(problem).is_ok());
                stats.elapsed = start.elapsed();
                return (SolveOutcome::Solved(solution), stats);
            }
            Some(boolean) => {
                let var = encoding.boolean_var(boolean);
                let value = preferred_value(&encoding, &store, boolean);
                frames.push(Frame {
                    boolean,
                    first_value: value,
                    exhausted: false,
                    cursor,
                });
                cursor = boolean;
                stats.steps += 1;
                store.push_level();
                if store.fix(var, value).is_err() || !lp_check(&encoding, &store, config) {
                    store.pop_level();
                    stats.minor_backtracks += 1;
                    retry = true;
                }
            }
        }
    }
}

fn next_unfixed_boolean(encoding: &IlpEncoding, store: &BoundStore, from: usize) -> Option<usize> {
    (from..encoding.num_booleans()).find(|&p| !store.is_fixed(encoding.boolean_var(p)))
}

/// Value ordering: set the boolean so the buffer with the smaller current
/// lower bound goes below.
fn preferred_value(encoding: &IlpEncoding, store: &BoundStore, boolean: usize) -> i64 {
    let (i, j) = encoding.pair(boolean);
    let ai = encoding.problem().buffer(i).align() as i64;
    let aj = encoding.problem().buffer(j).align() as i64;
    let lo_i = store.bounds(i.index() as u32).0 * ai;
    let lo_j = store.bounds(j.index() as u32).0 * aj;
    // Boolean value 1 means `i` below `j` (see crate::encoding).
    if lo_i <= lo_j {
        1
    } else {
        0
    }
}

/// LP-relaxation feasibility check (returns true if the node survives).
fn lp_check(encoding: &IlpEncoding, store: &BoundStore, config: &IlpConfig) -> bool {
    if encoding.num_vars() > config.lp_node_var_limit {
        return true;
    }
    let n = encoding.num_vars();
    let mut lp = LinearProgram::minimize(vec![0.0; n]);
    for row in encoding.rows() {
        let mut coeffs = vec![0.0; n];
        for &(v, c) in &row.terms {
            coeffs[v as usize] = c as f64;
        }
        lp.constrain(coeffs, Relation::Le, row.rhs as f64);
    }
    for v in 0..n {
        let (lo, hi) = store.bounds(v as u32);
        let mut up = vec![0.0; n];
        up[v] = 1.0;
        lp.constrain(up, Relation::Le, hi as f64);
        if lo > 0 {
            let mut down = vec![0.0; n];
            down[v] = 1.0;
            lp.constrain(down, Relation::Ge, lo as f64);
        }
    }
    !matches!(lp.solve(), LpOutcome::Infeasible)
}

/// Finds the minimum memory capacity at which `problem` is feasible,
/// by binary search over the capacity with the ILP solver as the
/// feasibility oracle (the paper's Table 2 "theoretical minimum achieved
/// by the ILP solver").
///
/// The search range is `[max contention, sum of sizes]`. Each probe gets
/// the full `budget`; a probe that exceeds its budget is treated as
/// infeasible, so the result is an upper bound on the true minimum when
/// budgets are tight.
///
/// Returns `None` if even the sum of all sizes is not solvable within
/// budget (which cannot happen with a sane budget: placing buffers
/// end-to-end always works).
pub fn min_required_memory(problem: &Problem, budget: &Budget) -> Option<Size> {
    let lower = problem.max_contention().max(1);
    let upper: Size = problem
        .buffers()
        .iter()
        .map(|b| b.size() + (b.align() - 1))
        .sum();
    let upper = upper.max(lower);
    let feasible = |capacity: Size| -> bool {
        match problem.with_capacity(capacity) {
            Ok(p) => solve_ilp(&p, budget).0.is_solved(),
            Err(_) => false,
        }
    };
    if !feasible(upper) {
        return None;
    }
    let (mut lo, mut hi) = (lower, upper);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if feasible(mid) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    Some(hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tela_model::{examples, Buffer};

    fn solve(problem: &Problem) -> (SolveOutcome, SolveStats) {
        solve_ilp(problem, &Budget::steps(500_000))
    }

    #[test]
    fn solves_tiny() {
        let p = examples::tiny();
        let (outcome, _) = solve(&p);
        assert!(outcome.solution().unwrap().validate(&p).is_ok());
    }

    #[test]
    fn solves_figure1() {
        let p = examples::figure1();
        let (outcome, stats) = solve(&p);
        assert!(outcome.solution().unwrap().validate(&p).is_ok());
        assert!(stats.steps > 0);
    }

    #[test]
    fn solves_aligned_example() {
        let p = examples::aligned();
        let (outcome, _) = solve(&p);
        assert!(outcome.solution().unwrap().validate(&p).is_ok());
    }

    #[test]
    fn detects_contention_infeasibility() {
        let (outcome, _) = solve(&examples::infeasible());
        assert_eq!(outcome, SolveOutcome::Infeasible);
    }

    #[test]
    fn detects_alignment_infeasibility() {
        let p = Problem::builder(39)
            .buffer(Buffer::new(0, 2, 8).with_align(32))
            .buffer(Buffer::new(0, 2, 8).with_align(32))
            .build()
            .unwrap();
        let (outcome, _) = solve(&p);
        assert_eq!(outcome, SolveOutcome::Infeasible);
    }

    #[test]
    fn budget_exceeded_reported() {
        let p = examples::figure1();
        let (outcome, _) = solve_ilp(&p, &Budget::steps(1));
        assert!(matches!(
            outcome,
            SolveOutcome::BudgetExceeded | SolveOutcome::Solved(_)
        ));
    }

    #[test]
    fn empty_problem_is_trivially_solved() {
        let p = Problem::builder(10).build().unwrap();
        let (outcome, stats) = solve(&p);
        assert!(outcome.is_solved());
        assert_eq!(stats.steps, 0);
    }

    #[test]
    fn lp_disabled_still_solves() {
        let p = examples::figure1();
        let config = IlpConfig {
            lp_node_var_limit: 0,
            ..IlpConfig::default()
        };
        let (outcome, _) = solve_ilp_with(&p, &Budget::steps(500_000), &config);
        assert!(outcome.solution().unwrap().validate(&p).is_ok());
    }

    #[test]
    fn preflight_rejects_infeasibility_without_branching() {
        let (outcome, stats) = solve(&examples::infeasible());
        assert_eq!(outcome, SolveOutcome::Infeasible);
        assert_eq!(stats.steps, 0);
    }

    #[test]
    fn preflight_disabled_still_detects_infeasibility() {
        let config = IlpConfig {
            preflight_audit: false,
            ..IlpConfig::default()
        };
        let (outcome, stats) =
            solve_ilp_with(&examples::infeasible(), &Budget::steps(500_000), &config);
        assert_eq!(outcome, SolveOutcome::Infeasible);
        // Bound propagation has to do the work the audit would have done
        // statically (it also catches this one at the root, step-free).
        assert_eq!(stats.major_backtracks, 0);
    }

    #[test]
    fn preflight_solves_single_clique_without_branching() {
        // Two overlapping buffers form one clique; the audit stacks them
        // directly instead of opening the branch-and-bound tree.
        let p = Problem::builder(8)
            .buffer(Buffer::new(0, 2, 3))
            .buffer(Buffer::new(0, 2, 5))
            .build()
            .unwrap();
        let (outcome, stats) = solve(&p);
        assert!(outcome.solution().unwrap().validate(&p).is_ok());
        assert_eq!(stats.steps, 0);
    }

    #[test]
    fn min_memory_of_figure1_is_its_contention() {
        let p = examples::figure1();
        let min = min_required_memory(&p, &Budget::steps(500_000)).unwrap();
        assert_eq!(min, 4);
    }

    #[test]
    fn min_memory_accounts_for_fragmentation() {
        // Two overlapping blocks of sizes 3 and 5: contention 8 and a
        // perfect stacking exists, so the minimum is 8.
        let p = Problem::builder(100)
            .buffer(Buffer::new(0, 2, 3))
            .buffer(Buffer::new(0, 2, 5))
            .build()
            .unwrap();
        assert_eq!(min_required_memory(&p, &Budget::steps(100_000)), Some(8));
    }

    #[test]
    fn min_memory_with_alignment_padding() {
        // Two 4-aligned blocks of sizes 3 and 2: whichever goes on top
        // must start at address 4, so 6 units are needed even though
        // contention is only 5.
        let p = Problem::builder(100)
            .buffer(Buffer::new(0, 2, 3).with_align(4))
            .buffer(Buffer::new(0, 2, 2).with_align(4))
            .build()
            .unwrap();
        assert_eq!(min_required_memory(&p, &Budget::steps(100_000)), Some(6));
    }
}
