//! Span-tree reconstruction from a flat event stream.
//!
//! A trace is a seq-ordered list of begin/end/instant events; this
//! module rebuilds the nesting. The sweep keeps a list of *open* spans
//! (pairing begins with their ends by span id up front, so every span's
//! closing seq is known when its begin is seen) and parents each new
//! span under the deepest open span whose `[begin_seq, end_seq]`
//! interval fully contains it. For a single-threaded trace that is
//! exactly the call stack; for a multi-threaded trace (portfolio
//! workers interleave their seqs) partial overlaps walk up to the
//! nearest common ancestor — a variant span started on another thread
//! lands under `portfolio.race`, not under whichever sibling happened
//! to be open.
//!
//! Works identically for both clocks: nesting is decided by sequence
//! numbers (unique and totally ordered), durations come from
//! timestamps (logical ticks or nanoseconds).

use std::collections::HashMap;

use tela_trace::{ClockMode, Event, Phase, Trace, Value};

/// One reconstructed span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanNode {
    /// Emitting subsystem (`search`, `cp`, `server`, ...).
    pub layer: String,
    /// Span name within the layer.
    pub name: String,
    /// The span id shared by the begin/end pair.
    pub span_id: u64,
    /// Sequence number of the begin event.
    pub begin_seq: u64,
    /// Sequence number of the end event (last trace seq if unclosed).
    pub end_seq: u64,
    /// Begin timestamp (clock units).
    pub begin_ts: u64,
    /// End timestamp (clock units; last trace ts if unclosed).
    pub end_ts: u64,
    /// False when the trace ended before the span did.
    pub closed: bool,
    /// Arena index of the parent span, if nested.
    pub parent: Option<usize>,
    /// Arena indices of directly nested spans, in begin order.
    pub children: Vec<usize>,
    /// Work counters attributed to this span: every `u64` field of the
    /// end event (except the bookkeeping `dur` and correlation
    /// `request` fields) plus one `<layer>.<name>` count per instant
    /// event that occurred inside this span and no deeper one.
    pub counters: Vec<(String, u64)>,
}

impl SpanNode {
    /// The rollup key: `layer.name`.
    pub fn key(&self) -> String {
        format!("{}.{}", self.layer, self.name)
    }

    /// The span's duration in clock units.
    pub fn dur(&self) -> u64 {
        self.end_ts.saturating_sub(self.begin_ts)
    }
}

/// A reconstructed forest of spans backed by one arena.
#[derive(Debug, Clone, Default)]
pub struct SpanTree {
    /// The clock the trace was recorded under.
    pub clock: Option<ClockMode>,
    /// All spans, in begin-seq order.
    pub nodes: Vec<SpanNode>,
    /// Indices of spans with no parent, in begin order.
    pub roots: Vec<usize>,
}

impl SpanTree {
    /// Sum of root span durations: the trace's attributable total.
    pub fn root_total(&self) -> u64 {
        self.roots.iter().map(|&i| self.nodes[i].dur()).sum()
    }

    /// Self time of span `i`: its duration minus its direct children's.
    pub fn self_time(&self, i: usize) -> u64 {
        let node = &self.nodes[i];
        let child_total: u64 = node.children.iter().map(|&c| self.nodes[c].dur()).sum();
        node.dur().saturating_sub(child_total)
    }
}

/// Fields that decorate events rather than measure work; never folded
/// into span counters.
fn is_bookkeeping(key: &str) -> bool {
    matches!(key, "dur" | "request")
}

/// Rebuilds the span forest from a parsed trace.
pub fn build_tree(trace: &Trace) -> SpanTree {
    // Pass 1: find each span's end event so containment is decidable
    // the moment its begin is swept. Unclosed spans extend to the
    // trace's final seq/ts.
    let last_seq = trace.events.iter().map(|e| e.seq).max().unwrap_or(0);
    let last_ts = trace.events.iter().map(|e| e.ts).max().unwrap_or(0);
    let mut ends: HashMap<u64, &Event> = HashMap::new();
    for event in &trace.events {
        if event.phase == Phase::End {
            ends.entry(event.span).or_insert(event);
        }
    }

    let mut tree = SpanTree {
        clock: Some(trace.clock),
        ..SpanTree::default()
    };
    // Open spans as arena indices, outermost first. Not a strict stack:
    // an end event may close a span below the top (cross-thread
    // interleaving), so closing removes by position.
    let mut open: Vec<usize> = Vec::new();

    for event in &trace.events {
        match event.phase {
            Phase::Begin => {
                // An unclosed span (its thread panicked, or the trace
                // was snapshotted mid-solve) is clipped to the end of
                // its innermost still-live enclosing span: a search
                // killed by an injected panic ends when the variant's
                // catch_unwind does, instead of swallowing the rest of
                // the trace. With no enclosing span it runs to the
                // trace edge.
                let enclosing = open
                    .iter()
                    .rev()
                    .copied()
                    .find(|&i| tree.nodes[i].end_seq >= event.seq);
                let (end_seq, end_ts, closed) = match ends.get(&event.span) {
                    Some(end) => (end.seq, end.ts, true),
                    None => match enclosing {
                        Some(p) => (tree.nodes[p].end_seq, tree.nodes[p].end_ts, false),
                        None => (last_seq, last_ts, false),
                    },
                };
                // Deepest open span whose interval contains this one.
                let parent = open
                    .iter()
                    .rev()
                    .copied()
                    .find(|&i| tree.nodes[i].end_seq >= end_seq);
                let index = tree.nodes.len();
                let mut counters: Vec<(String, u64)> = Vec::new();
                if let Some(end) = ends.get(&event.span) {
                    for (k, v) in &end.fields {
                        if is_bookkeeping(k) {
                            continue;
                        }
                        if let Value::U64(v) = v {
                            counters.push((k.to_string(), *v));
                        }
                    }
                }
                tree.nodes.push(SpanNode {
                    layer: event.layer.to_string(),
                    name: event.name.to_string(),
                    span_id: event.span,
                    begin_seq: event.seq,
                    end_seq,
                    begin_ts: event.ts,
                    end_ts,
                    closed,
                    parent,
                    children: Vec::new(),
                    counters,
                });
                match parent {
                    Some(p) => tree.nodes[p].children.push(index),
                    None => tree.roots.push(index),
                }
                open.push(index);
            }
            Phase::End => {
                if let Some(pos) = open
                    .iter()
                    .rposition(|&i| tree.nodes[i].span_id == event.span)
                {
                    open.remove(pos);
                }
            }
            Phase::Instant => {
                // Attribute the instant to the innermost open span that
                // is still live at this seq.
                if let Some(&owner) = open
                    .iter()
                    .rev()
                    .find(|&&i| tree.nodes[i].end_seq >= event.seq)
                {
                    let key = format!("{}.{}", event.layer, event.name);
                    let node = &mut tree.nodes[owner];
                    match node.counters.iter_mut().find(|(k, _)| *k == key) {
                        Some((_, n)) => *n += 1,
                        None => node.counters.push((key, 1)),
                    }
                }
            }
        }
    }
    tree
}

#[cfg(test)]
mod tests {
    use super::*;
    use tela_trace::Tracer;

    #[test]
    fn nested_spans_reconstruct_as_a_tree() {
        let t = Tracer::logical();
        let outer = t.begin("search", "solve", vec![]);
        let inner = t.begin("cp", "solve", vec![]);
        t.instant("cp", "conflict", vec![]);
        t.instant("cp", "conflict", vec![]);
        t.end(inner, "cp", "solve", vec![("steps".into(), 9u64.into())]);
        t.end(outer, "search", "solve", vec![]);
        let tree = build_tree(&t.snapshot().unwrap());
        assert_eq!(tree.roots, vec![0]);
        assert_eq!(tree.nodes[0].key(), "search.solve");
        assert_eq!(tree.nodes[0].children, vec![1]);
        assert_eq!(tree.nodes[1].parent, Some(0));
        assert!(tree.nodes[1].closed);
        // End fields fold into counters; instants count under the
        // innermost span.
        assert!(tree.nodes[1].counters.contains(&("steps".to_string(), 9)));
        assert!(tree.nodes[1]
            .counters
            .contains(&("cp.conflict".to_string(), 2)));
        assert!(tree.nodes[0].counters.is_empty());
    }

    #[test]
    fn siblings_stay_siblings() {
        let t = Tracer::logical();
        let root = t.begin("ladder", "run", vec![]);
        let a = t.begin("ladder", "stage", vec![]);
        t.end(a, "ladder", "stage", vec![]);
        let b = t.begin("ladder", "stage", vec![]);
        t.end(b, "ladder", "stage", vec![]);
        t.end(root, "ladder", "run", vec![]);
        let tree = build_tree(&t.snapshot().unwrap());
        assert_eq!(tree.roots.len(), 1);
        assert_eq!(tree.nodes[0].children.len(), 2);
        // Self time: root dur 5 minus two stage durs of 1 each.
        assert_eq!(tree.nodes[0].dur(), 5);
        assert_eq!(tree.self_time(0), 3);
    }

    #[test]
    fn cross_thread_partial_overlap_walks_to_the_common_ancestor() {
        // Simulate two workers: variant A and variant B overlap
        // partially (neither contains the other), both inside race.
        // Reconstructed from the merged stream, B must become a child
        // of race, not of A.
        let t = Tracer::logical();
        let race = t.begin("portfolio", "race", vec![]);
        let a = t.begin("portfolio", "variant", vec![]);
        let b = t.begin("portfolio", "variant", vec![]);
        t.end(a, "portfolio", "variant", vec![]);
        t.end(b, "portfolio", "variant", vec![]);
        t.end(race, "portfolio", "race", vec![]);
        let tree = build_tree(&t.snapshot().unwrap());
        assert_eq!(tree.nodes[0].children, vec![1, 2]);
        assert_eq!(tree.nodes[2].parent, Some(0));
    }

    #[test]
    fn unclosed_spans_extend_to_the_trace_edge() {
        let t = Tracer::logical();
        let _open = t.begin("server", "request", vec![]);
        t.instant("server", "tick", vec![]);
        let tree = build_tree(&t.snapshot().unwrap());
        assert_eq!(tree.nodes.len(), 1);
        assert!(!tree.nodes[0].closed);
        assert_eq!(tree.nodes[0].end_ts, 2);
        assert_eq!(tree.root_total(), 1);
        // The instant still attributes to the unclosed span.
        assert!(tree.nodes[0]
            .counters
            .contains(&("server.tick".to_string(), 1)));
    }

    #[test]
    fn empty_trace_gives_empty_tree() {
        let tree = build_tree(&Tracer::logical().snapshot().unwrap());
        assert!(tree.nodes.is_empty());
        assert_eq!(tree.root_total(), 0);
    }
}
