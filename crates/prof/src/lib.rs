//! Trace profiling for the TelaMalloc reproduction.
//!
//! `tela-trace` records what happened; this crate answers *where the
//! time went*. It parses exported JSONL traces (or live
//! [`tela_trace::Trace`] snapshots) into a reconstructed span tree,
//! rolls the tree up into a per-span-name profile (self/total time,
//! call counts, folded work counters like `propagations` and
//! `min_pos_queries`), renders that as a text report or a flamegraph
//! SVG via `tela-viz`, and diffs two profiles to attribute a wall-time
//! delta to the spans responsible.
//!
//! The `prof` binary (`cargo prof`) exposes all of it:
//!
//! ```text
//! cargo prof report trace.jsonl          # sorted self-time table
//! cargo prof flame  trace.jsonl -o x.svg # flamegraph
//! cargo prof diff   old.jsonl new.jsonl  # delta attribution
//! ```
//!
//! Everything is deterministic for logical-clock traces — same trace,
//! same bytes out — which is what makes profiles golden-file testable
//! and regressions diffable in CI.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod diff;
mod rollup;
mod tree;

pub use diff::{diff, render_diff, Diff, DiffEntry};
pub use rollup::{render_report, rollup, Rollup, RollupEntry};
pub use tree::{build_tree, SpanNode, SpanTree};

use tela_viz::FlameFrame;

/// Convenience: parse JSONL, build the tree, and roll it up.
pub fn profile_jsonl(input: &str) -> Result<Rollup, tela_trace::ParseError> {
    let trace = tela_trace::parse_jsonl(input)?;
    Ok(rollup(&build_tree(&trace)))
}

/// Collapses a span tree into a flamegraph frame: a synthetic `all`
/// root spanning the trace's root total, with same-key sibling spans
/// merged at every level (the classic flamegraph collapse, so two
/// `cp.solve` calls under one stage render as one wide frame).
pub fn flamegraph(tree: &SpanTree) -> FlameFrame {
    fn merge(tree: &SpanTree, indices: &[usize]) -> Vec<FlameFrame> {
        // Preserve first-appearance order for determinism.
        let mut frames: Vec<(String, Vec<usize>)> = Vec::new();
        for &i in indices {
            let key = tree.nodes[i].key();
            match frames.iter_mut().find(|(k, _)| *k == key) {
                Some((_, members)) => members.push(i),
                None => frames.push((key, vec![i])),
            }
        }
        frames
            .into_iter()
            .map(|(key, members)| {
                let value = members.iter().map(|&i| tree.nodes[i].dur()).sum();
                let child_indices: Vec<usize> = members
                    .iter()
                    .flat_map(|&i| tree.nodes[i].children.iter().copied())
                    .collect();
                FlameFrame {
                    name: key,
                    value,
                    children: merge(tree, &child_indices),
                }
            })
            .collect()
    }
    FlameFrame {
        name: "all".to_string(),
        value: tree.root_total(),
        children: merge(tree, &tree.roots),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tela_trace::{write_jsonl, Tracer};

    #[test]
    fn profile_jsonl_round_trips_a_real_trace() {
        let t = Tracer::logical();
        let s = t.begin("search", "solve", vec![]);
        t.end(s, "search", "solve", vec![("steps".into(), 3u64.into())]);
        let text = write_jsonl(&t.snapshot().unwrap());
        let profile = profile_jsonl(&text).unwrap();
        assert_eq!(profile.entries.len(), 1);
        assert_eq!(profile.entries[0].key, "search.solve");
        assert_eq!(profile.entries[0].counters.get("steps"), Some(&3));
        assert!(profile_jsonl("not json").is_err());
    }

    #[test]
    fn flamegraph_merges_same_key_siblings() {
        let t = Tracer::logical();
        let run = t.begin("ladder", "run", vec![]);
        for _ in 0..3 {
            let cp = t.begin("cp", "solve", vec![]);
            t.end(cp, "cp", "solve", vec![]);
        }
        t.end(run, "ladder", "run", vec![]);
        let tree = build_tree(&t.snapshot().unwrap());
        let flame = flamegraph(&tree);
        assert_eq!(flame.name, "all");
        assert_eq!(flame.value, tree.root_total());
        assert_eq!(flame.children.len(), 1);
        let run_frame = &flame.children[0];
        assert_eq!(run_frame.name, "ladder.run");
        // Three cp.solve spans merge into one frame of summed width.
        assert_eq!(run_frame.children.len(), 1);
        assert_eq!(run_frame.children[0].name, "cp.solve");
        assert_eq!(run_frame.children[0].value, 3);
        // The SVG renderer accepts the collapsed tree.
        let svg = tela_viz::render_flamegraph(&flame, &Default::default());
        assert!(svg.contains("<title>cp.solve: 3"));
    }
}
