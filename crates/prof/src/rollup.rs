//! Per-span-name aggregation and the text profile report.
//!
//! The rollup answers "where did the time go" for a whole trace:
//! one entry per span key (`layer.name`) with call count, total
//! (inclusive) time, self time, and the work counters folded from the
//! spans' end events and enclosed instants. Self times partition the
//! trace — summed over every entry they equal the sum of root span
//! durations — which is what makes the sorted self-time table an
//! attribution rather than a leaderboard of overlapping numbers.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use tela_trace::ClockMode;

use crate::tree::SpanTree;

/// Aggregated numbers for one span key.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RollupEntry {
    /// The span key (`layer.name`).
    pub key: String,
    /// Number of spans with this key.
    pub count: u64,
    /// Inclusive time: sum of durations of spans with this key that are
    /// not nested inside another span with the same key (the standard
    /// recursion guard, so a self-recursive span is not counted twice).
    pub total: u64,
    /// Exclusive time: durations minus direct children, summed.
    pub self_time: u64,
    /// Longest single span with this key.
    pub max: u64,
    /// Folded work counters (name-ordered).
    pub counters: BTreeMap<String, u64>,
}

/// A whole-trace profile.
#[derive(Debug, Clone, Default)]
pub struct Rollup {
    /// The clock the trace was recorded under.
    pub clock: Option<ClockMode>,
    /// Sum of root span durations (the 100% mark for self%).
    pub root_total: u64,
    /// Entries sorted by self time descending, key ascending on ties.
    pub entries: Vec<RollupEntry>,
}

impl Rollup {
    /// Looks up an entry by span key.
    pub fn entry(&self, key: &str) -> Option<&RollupEntry> {
        self.entries.iter().find(|e| e.key == key)
    }
}

/// Aggregates a span tree into per-key entries.
pub fn rollup(tree: &SpanTree) -> Rollup {
    let mut by_key: BTreeMap<String, RollupEntry> = BTreeMap::new();
    for (i, node) in tree.nodes.iter().enumerate() {
        let key = node.key();
        let entry = by_key.entry(key.clone()).or_default();
        entry.key = key.clone();
        entry.count += 1;
        entry.self_time += tree.self_time(i);
        entry.max = entry.max.max(node.dur());
        // Recursion guard: only spans without a same-key ancestor
        // contribute to the inclusive total.
        let mut ancestor = node.parent;
        let mut nested_same_key = false;
        while let Some(a) = ancestor {
            if tree.nodes[a].key() == key {
                nested_same_key = true;
                break;
            }
            ancestor = tree.nodes[a].parent;
        }
        if !nested_same_key {
            entry.total += node.dur();
        }
        for (name, value) in &node.counters {
            *entry.counters.entry(name.clone()).or_insert(0) += value;
        }
    }
    let mut entries: Vec<RollupEntry> = by_key.into_values().collect();
    entries.sort_by(|a, b| {
        b.self_time
            .cmp(&a.self_time)
            .then_with(|| a.key.cmp(&b.key))
    });
    Rollup {
        clock: tree.clock,
        root_total: tree.root_total(),
        entries,
    }
}

/// Clock units label for report headers.
fn unit(clock: Option<ClockMode>) -> &'static str {
    match clock {
        Some(ClockMode::Wall) => "ns",
        Some(ClockMode::Logical) => "ticks",
        None => "units",
    }
}

/// Renders the profile as an aligned text table sorted by self time,
/// followed by the folded counters per span key. Deterministic for a
/// given rollup, so logical-clock profiles golden-file cleanly.
pub fn render_report(profile: &Rollup) -> String {
    let mut out = format!(
        "# profile: {} span keys, root total {} {}\n",
        profile.entries.len(),
        profile.root_total,
        unit(profile.clock),
    );
    let rows: Vec<[String; 6]> = profile
        .entries
        .iter()
        .map(|e| {
            let pct = if profile.root_total == 0 {
                0.0
            } else {
                e.self_time as f64 / profile.root_total as f64 * 100.0
            };
            [
                e.key.clone(),
                e.count.to_string(),
                e.total.to_string(),
                e.self_time.to_string(),
                format!("{pct:.1}%"),
                e.max.to_string(),
            ]
        })
        .collect();
    let header = ["span", "count", "total", "self", "self%", "max"];
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in &rows {
        for (w, cell) in widths.iter_mut().zip(row.iter()) {
            *w = (*w).max(cell.len());
        }
    }
    let render_row = |out: &mut String, cells: &[String]| {
        for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            let _ = write!(out, "{cell:<w$}");
        }
        // Trailing spaces would make golden files fragile to editors.
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
    };
    let header_cells: Vec<String> = header.iter().map(|h| h.to_string()).collect();
    render_row(&mut out, &header_cells);
    for row in &rows {
        render_row(&mut out, row.as_slice());
    }
    let with_counters: Vec<&RollupEntry> = profile
        .entries
        .iter()
        .filter(|e| !e.counters.is_empty())
        .collect();
    if !with_counters.is_empty() {
        out.push_str("# counters\n");
        for entry in with_counters {
            let _ = write!(out, "{}:", entry.key);
            for (name, value) in &entry.counters {
                let _ = write!(out, " {name}={value}");
            }
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::build_tree;
    use tela_trace::Tracer;

    fn sample_rollup() -> Rollup {
        let t = Tracer::logical();
        let run = t.begin("ladder", "run", vec![]);
        for _ in 0..2 {
            let stage = t.begin("ladder", "stage", vec![]);
            let cp = t.begin("cp", "solve", vec![]);
            t.end(
                cp,
                "cp",
                "solve",
                vec![("propagations".into(), 5u64.into())],
            );
            t.end(stage, "ladder", "stage", vec![]);
        }
        t.end(run, "ladder", "run", vec![]);
        rollup(&build_tree(&t.snapshot().unwrap()))
    }

    #[test]
    fn self_times_partition_the_root_total() {
        let profile = sample_rollup();
        let self_sum: u64 = profile.entries.iter().map(|e| e.self_time).sum();
        assert_eq!(self_sum, profile.root_total);
        assert_eq!(profile.root_total, 9);
    }

    #[test]
    fn counters_fold_by_key() {
        let profile = sample_rollup();
        let cp = profile.entry("cp.solve").unwrap();
        assert_eq!(cp.count, 2);
        assert_eq!(cp.counters.get("propagations"), Some(&10));
    }

    #[test]
    fn recursion_does_not_double_count_totals() {
        let t = Tracer::logical();
        let outer = t.begin("search", "solve", vec![]);
        let inner = t.begin("search", "solve", vec![]);
        t.end(inner, "search", "solve", vec![]);
        t.end(outer, "search", "solve", vec![]);
        let profile = rollup(&build_tree(&t.snapshot().unwrap()));
        let entry = profile.entry("search.solve").unwrap();
        assert_eq!(entry.count, 2);
        // Only the outer span counts toward total (dur 3, not 3 + 1).
        assert_eq!(entry.total, 3);
        assert_eq!(entry.self_time, 3);
    }

    #[test]
    fn report_is_sorted_and_deterministic() {
        let profile = sample_rollup();
        let report = render_report(&profile);
        assert_eq!(report, render_report(&sample_rollup()));
        assert!(report.starts_with("# profile:"));
        // Sorted by self time: the two stages (self 2 each -> 4) beat
        // the run's own bookkeeping.
        let first_data_line = report.lines().nth(2).unwrap();
        assert!(first_data_line.starts_with("ladder.stage"), "{report}");
        assert!(report.contains("# counters"));
        assert!(report.contains("cp.solve: propagations=10"));
        assert!(!report.lines().any(|l| l.ends_with(' ')));
    }
}
