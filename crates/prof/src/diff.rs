//! Attribution of a wall-time delta between two profiles.
//!
//! `diff` lines up two rollups of the same workload by span key and
//! computes per-key self-time deltas. Because self times partition each
//! trace's root total (see [`crate::rollup`]), the per-key deltas sum
//! to the root-total delta: the whole regression is accounted for, and
//! sorting by delta descending names the guilty spans first. This is
//! what `bench trend` prints when a Floor/Band gate fails.

use std::fmt::Write as _;

use crate::rollup::Rollup;

/// One span key's contribution to the delta.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffEntry {
    /// The span key (`layer.name`).
    pub key: String,
    /// Self time in the old trace (0 when the key is new).
    pub old_self: u64,
    /// Self time in the new trace (0 when the key vanished).
    pub new_self: u64,
    /// `new_self - old_self`.
    pub delta: i64,
    /// Call counts, old and new.
    pub counts: (u64, u64),
}

/// A profile-to-profile comparison.
#[derive(Debug, Clone, Default)]
pub struct Diff {
    /// Old trace's root total.
    pub old_total: u64,
    /// New trace's root total.
    pub new_total: u64,
    /// Entries sorted by delta descending (regressions first), key
    /// ascending on ties. Keys present in either profile appear.
    pub entries: Vec<DiffEntry>,
}

impl Diff {
    /// `new_total - old_total`.
    pub fn total_delta(&self) -> i64 {
        self.new_total as i64 - self.old_total as i64
    }

    /// The entry with the largest positive delta, if any grew.
    pub fn top_regression(&self) -> Option<&DiffEntry> {
        self.entries.first().filter(|e| e.delta > 0)
    }
}

/// Compares two profiles of the same workload.
pub fn diff(old: &Rollup, new: &Rollup) -> Diff {
    let mut keys: Vec<&str> = old
        .entries
        .iter()
        .chain(&new.entries)
        .map(|e| e.key.as_str())
        .collect();
    keys.sort_unstable();
    keys.dedup();
    let mut entries: Vec<DiffEntry> = keys
        .into_iter()
        .map(|key| {
            let o = old.entry(key);
            let n = new.entry(key);
            let old_self = o.map_or(0, |e| e.self_time);
            let new_self = n.map_or(0, |e| e.self_time);
            DiffEntry {
                key: key.to_string(),
                old_self,
                new_self,
                delta: new_self as i64 - old_self as i64,
                counts: (o.map_or(0, |e| e.count), n.map_or(0, |e| e.count)),
            }
        })
        .collect();
    entries.sort_by(|a, b| b.delta.cmp(&a.delta).then_with(|| a.key.cmp(&b.key)));
    Diff {
        old_total: old.root_total,
        new_total: new.root_total,
        entries,
    }
}

/// Renders the top `top` contributors (by |delta| relevance: entries
/// are already regression-first; shrinks appear at the bottom of the
/// listing and are included only as far as `top` allows).
pub fn render_diff(d: &Diff, top: usize) -> String {
    let mut out = format!(
        "# diff: root total {} -> {} ({}{})\n",
        d.old_total,
        d.new_total,
        if d.total_delta() >= 0 { "+" } else { "" },
        d.total_delta(),
    );
    out.push_str("delta      old_self   new_self   calls      span\n");
    for entry in d.entries.iter().take(top) {
        let _ = writeln!(
            out,
            "{:<+10} {:<10} {:<10} {:<10} {}",
            entry.delta,
            entry.old_self,
            entry.new_self,
            format!("{}->{}", entry.counts.0, entry.counts.1),
            entry.key,
        );
    }
    if d.entries.len() > top {
        let _ = writeln!(out, "# ({} more span keys)", d.entries.len() - top);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rollup::RollupEntry;

    fn profile(entries: &[(&str, u64)]) -> Rollup {
        Rollup {
            clock: None,
            root_total: entries.iter().map(|(_, s)| s).sum(),
            entries: entries
                .iter()
                .map(|(key, self_time)| RollupEntry {
                    key: key.to_string(),
                    count: 1,
                    total: *self_time,
                    self_time: *self_time,
                    max: *self_time,
                    counters: Default::default(),
                })
                .collect(),
        }
    }

    #[test]
    fn deltas_account_for_the_whole_regression() {
        let old = profile(&[("cp.solve", 100), ("heuristic.greedy", 20)]);
        let new = profile(&[
            ("cp.solve", 700),
            ("heuristic.greedy", 25),
            ("ladder.run", 5),
        ]);
        let d = diff(&old, &new);
        assert_eq!(d.total_delta(), 610);
        let delta_sum: i64 = d.entries.iter().map(|e| e.delta).sum();
        assert_eq!(delta_sum, d.total_delta());
        assert_eq!(d.top_regression().unwrap().key, "cp.solve");
        assert_eq!(d.entries[0].delta, 600);
        // Vanished keys still show up, as negative contributors.
        let d_rev = diff(&new, &old);
        assert_eq!(d_rev.entries.last().unwrap().key, "cp.solve");
        assert!(d_rev.top_regression().is_none() || d_rev.entries[0].delta > 0);
    }

    #[test]
    fn render_caps_at_top_and_is_deterministic() {
        let old = profile(&[("a.x", 10), ("b.y", 10), ("c.z", 10)]);
        let new = profile(&[("a.x", 30), ("b.y", 5), ("c.z", 10)]);
        let text = render_diff(&diff(&old, &new), 2);
        assert!(text.contains("a.x"));
        assert!(text.contains("(1 more span keys)"));
        assert_eq!(text, render_diff(&diff(&old, &new), 2));
    }

    #[test]
    fn no_regression_means_no_top_regression() {
        let p = profile(&[("a.x", 10)]);
        assert!(diff(&p, &p).top_regression().is_none());
    }
}
