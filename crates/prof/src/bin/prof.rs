//! `cargo prof`: profile, flamegraph, and diff exported JSONL traces.
//!
//! ```text
//! cargo prof report <trace.jsonl>                sorted self-time table
//! cargo prof flame  <trace.jsonl> [--out F.svg]  flamegraph SVG
//! cargo prof diff   <old.jsonl> <new.jsonl> [--top N]
//! ```
//!
//! Traces come from `TELA_TRACE=1` (wall clock) or `TELA_TRACE=logical`
//! runs of the examples and benches, or from `tela-server`'s per-request
//! tracing. Exit code 0 on success, 2 on usage or parse errors.

use std::process::ExitCode;

use tela_prof::{build_tree, diff, flamegraph, render_diff, render_report, rollup};

fn fail(message: &str) -> ExitCode {
    eprintln!("prof: {message}");
    eprintln!("usage: prof report <trace.jsonl>");
    eprintln!("       prof flame  <trace.jsonl> [--out FILE.svg]");
    eprintln!("       prof diff   <old.jsonl> <new.jsonl> [--top N]");
    ExitCode::from(2)
}

fn load(path: &str) -> Result<tela_trace::Trace, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    tela_trace::parse_jsonl(&text).map_err(|e| format!("{path}: {e}"))
}

/// Value of `--flag` in `args`, if present.
fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first().map(String::as_str) else {
        return fail("missing command");
    };
    let result = match command {
        "report" => {
            let Some(path) = args.get(1) else {
                return fail("report needs a trace path");
            };
            load(path).map(|trace| {
                print!("{}", render_report(&rollup(&build_tree(&trace))));
            })
        }
        "flame" => {
            let Some(path) = args.get(1) else {
                return fail("flame needs a trace path");
            };
            load(path).and_then(|trace| {
                let svg = tela_viz::render_flamegraph(
                    &flamegraph(&build_tree(&trace)),
                    &Default::default(),
                );
                match flag_value(&args, "--out") {
                    Some(out) => std::fs::write(out, &svg)
                        .map(|()| println!("wrote {out}"))
                        .map_err(|e| format!("cannot write {out}: {e}")),
                    None => {
                        print!("{svg}");
                        Ok(())
                    }
                }
            })
        }
        "diff" => {
            let (Some(old_path), Some(new_path)) = (args.get(1), args.get(2)) else {
                return fail("diff needs two trace paths");
            };
            let top = flag_value(&args, "--top")
                .and_then(|v| v.parse().ok())
                .unwrap_or(10);
            load(old_path).and_then(|old| {
                load(new_path).map(|new| {
                    let old_profile = rollup(&build_tree(&old));
                    let new_profile = rollup(&build_tree(&new));
                    print!("{}", render_diff(&diff(&old_profile, &new_profile), top));
                })
            })
        }
        other => return fail(&format!("unknown command '{other}'")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => fail(&message),
    }
}
