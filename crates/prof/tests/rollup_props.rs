//! Property tests for the rollup invariant: however a well-nested span
//! sequence interleaves begins, ends, instants, and abandoned
//! (unclosed) spans, every tick of root time is attributed to exactly
//! one span's self time — `Σ self == root_total`, no double counting,
//! no leaks.

use proptest::prelude::*;
use tela_prof::{build_tree, rollup};
use tela_trace::{SpanId, Tracer};

/// Span names drawn from a small pool so rollup keys collide (the
/// interesting case: recursion guards and per-key aggregation).
const NAMES: [(&str, &str); 4] = [
    ("search", "solve"),
    ("cp", "solve"),
    ("ladder", "stage"),
    ("heuristic", "greedy"),
];

/// Replays a random op stream against a logical-clock tracer. Ops:
/// 0 = begin a span, 1 = end the innermost open span, 2 = instant.
/// Whatever is still open when the stream runs out stays unclosed —
/// the panic/mid-snapshot case the tree builder clips.
fn record(ops: &[u8]) -> Tracer {
    let tracer = Tracer::logical();
    let mut stack: Vec<(SpanId, usize)> = Vec::new();
    for (i, op) in ops.iter().enumerate() {
        match op % 3 {
            0 => {
                let name = i % NAMES.len();
                let (layer, n) = NAMES[name];
                stack.push((tracer.begin(layer, n, vec![]), name));
            }
            1 => {
                if let Some((span, name)) = stack.pop() {
                    let (layer, n) = NAMES[name];
                    tracer.end(span, layer, n, vec![("work".into(), (i as u64).into())]);
                } else {
                    tracer.instant("loose", "tick", vec![]);
                }
            }
            _ => tracer.instant("loose", "tick", vec![]),
        }
    }
    tracer
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn self_times_partition_the_root_total(ops in prop::collection::vec(0u8..=2, 0..64)) {
        let tracer = record(&ops);
        let tree = build_tree(&tracer.snapshot().unwrap());
        let profile = rollup(&tree);

        // The invariant: per-key self times sum to the root total.
        let self_sum: u64 = profile.entries.iter().map(|e| e.self_time).sum();
        prop_assert_eq!(self_sum, profile.root_total);
        prop_assert_eq!(profile.root_total, tree.root_total());

        // Per-node sanity: children are contained in their parents, so
        // node-level self times partition too, and nobody's total is
        // smaller than their self time.
        let node_self: u64 = (0..tree.nodes.len()).map(|i| tree.self_time(i)).sum();
        prop_assert_eq!(node_self, tree.root_total());
        for entry in &profile.entries {
            prop_assert!(entry.total >= entry.self_time);
            prop_assert!(entry.count >= 1);
            prop_assert!(entry.max <= entry.total);
        }
    }

    #[test]
    fn every_span_lands_in_exactly_one_rollup_entry(ops in prop::collection::vec(0u8..=2, 0..64)) {
        let tracer = record(&ops);
        let tree = build_tree(&tracer.snapshot().unwrap());
        let profile = rollup(&tree);
        let counted: u64 = profile.entries.iter().map(|e| e.count).sum();
        prop_assert_eq!(counted, tree.nodes.len() as u64);
    }
}
