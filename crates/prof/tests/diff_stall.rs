//! The acceptance scenario for `cargo prof diff`: solve the same
//! instance twice on the wall clock — once calm, once with an injected
//! real stall (`FaultPlan::sleep_at_step`) inside the CP search — and
//! the differ must name the stalled span as the top delta contributor.
//!
//! This is the loop the trend gate closes automatically: "the gate
//! failed" becomes "cp.solve regressed by N ms".

use std::sync::Arc;
use std::time::Duration;

use tela_model::fault::FaultPlan;
use tela_model::Budget;
use tela_prof::{build_tree, diff, render_diff, rollup};
use tela_trace::Tracer;

#[test]
fn diff_names_the_stalled_span_as_top_regression() {
    let problem = tela_model::examples::figure1();

    let calm = Tracer::wall();
    let (outcome, _) =
        tela_cp::search::solve_cp_only_traced(&problem, &Budget::steps(200_000), &calm);
    assert!(outcome.is_solved());

    // Same instance, same entry point, but the budget carries a fault
    // injector that really sleeps 40ms the first time the search polls
    // it past step 2 — a one-shot wall-clock stall inside cp.solve.
    let plan = FaultPlan {
        sleep_at_step: Some((2, Duration::from_millis(40))),
        ..FaultPlan::default()
    };
    let stalled_budget = Budget::steps(200_000).with_fault_injector(Arc::new(plan.injector()));
    let slow = Tracer::wall();
    let (outcome, _) = tela_cp::search::solve_cp_only_traced(&problem, &stalled_budget, &slow);
    assert!(
        outcome.is_solved(),
        "a stall slows the solve, never breaks it"
    );

    let old = rollup(&build_tree(&calm.snapshot().unwrap()));
    let new = rollup(&build_tree(&slow.snapshot().unwrap()));
    let d = diff(&old, &new);

    let top = d.top_regression().expect("the stalled run regressed");
    assert_eq!(
        top.key, "cp.solve",
        "the stall lands in the span that slept"
    );
    assert!(
        top.delta >= 30_000_000,
        "a 40ms injected sleep dominates a sub-millisecond solve (saw {} ns)",
        top.delta
    );
    assert!(d.total_delta() >= 30_000_000);

    // The rendered report leads with the guilty span.
    let rendered = render_diff(&d, 5);
    let first_data_line = rendered.lines().nth(2).expect("header + columns + rows");
    assert!(
        first_data_line.ends_with("cp.solve"),
        "top line names the stalled span: {first_data_line:?}"
    );
}
