//! Golden-file tests for span-tree reconstruction and rollup.
//!
//! The committed artifacts live in `traces/`:
//!
//! - `golden_ladder.jsonl` — a logical-clock trace of a chaos-suite
//!   ladder solve (spill rounds + an injected variant panic + a failed
//!   spill). PR 5's byte-identical logical traces make this exactly
//!   reproducible, so the first test *regenerates* it and compares
//!   byte-for-byte (minus the wall-clock header line).
//! - `golden_ladder.report.txt` — the rendered rollup report for that
//!   trace, compared byte-for-byte.
//!
//! When the solver's event stream legitimately changes, refresh both
//! with `TELA_BLESS=1 cargo test -p tela-prof --test golden_rollup`
//! and review the diff like any other golden update.

use std::path::PathBuf;

use tela_model::fault::FaultPlan;
use tela_model::{Budget, Buffer, Problem};
use tela_prof::{build_tree, flamegraph, render_report, rollup};
use tela_trace::{parse_jsonl, write_jsonl, Tracer};
use telamalloc::{EscalationLadder, SpillHook, TelaConfig};

fn traces_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../traces")
}

fn blessing() -> bool {
    std::env::var_os("TELA_BLESS").is_some()
}

/// Drops the last buffer each spill round (the determinism suite's
/// hook), so the ladder exercises spill rounds and certificates.
struct DropLast {
    buffers: Vec<Buffer>,
    capacity: u64,
}

impl SpillHook for DropLast {
    fn spill(&mut self, _round: u32) -> Option<Problem> {
        self.buffers.pop()?;
        Problem::new(self.buffers.clone(), self.capacity).ok()
    }
}

/// Regenerates the golden trace: single-threaded (determinism requires
/// the sequential race), logical clock, two solves into one tracer —
/// the chaos suite's two signature scenarios back to back:
///
/// 1. figure1 with an injected panic in variant 0: greedy fails, the
///    race runs real CP searches, the victim dies mid-search and a
///    survivor wins — the trace gets `portfolio.variant`, `search` and
///    `cp` spans plus the panic event.
/// 2. an overloaded instance through the spill ladder: preflight
///    certificates, spill rounds, and the greedy endgame;
/// 3. a direct CP-engine solve, whose completed `cp.solve` span carries
///    the work counters (`propagations`, `min_pos_queries`, backtracks)
///    the rollup folds.
fn generate() -> String {
    let tracer = Tracer::logical();
    let chaos = TelaConfig {
        threads: 1,
        tracer: tracer.clone(),
        fault_plan: Some(FaultPlan {
            panic_at_step: Some(5),
            victim_variant: Some(0),
            ..FaultPlan::default()
        }),
        ..TelaConfig::default()
    };
    let p = tela_model::examples::figure1();
    let race = telamalloc::solve_portfolio(&p, &Budget::steps(200_000), &chaos);
    assert!(race.result.outcome.is_solved(), "survivors win figure1");
    assert_eq!(race.panicked(), 1, "the victim variant panicked");

    let calm = TelaConfig {
        fault_plan: None,
        ..chaos
    };
    let buffers: Vec<Buffer> = (0..6).map(|_| Buffer::new(0, 4, 2)).collect();
    let overloaded = Problem::new(buffers.clone(), 8).unwrap();
    let mut hook = DropLast {
        buffers,
        capacity: 8,
    };
    let ladder = EscalationLadder::new(calm);
    let result = ladder.solve_with_spill(overloaded, &Budget::steps(200_000), &mut hook);
    assert!(result.spill_rounds > 0, "the golden run must spill");

    let (outcome, _) = tela_cp::search::solve_cp_only_traced(&p, &Budget::steps(200_000), &tracer);
    assert!(outcome.is_solved(), "the CP engine solves figure1");
    write_jsonl(&tracer.snapshot().expect("tracer is enabled"))
}

/// Everything after the (wall-clock) header line.
fn body(jsonl: &str) -> &str {
    jsonl.split_once('\n').expect("header line").1
}

fn read_golden(name: &str) -> String {
    let path = traces_dir().join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); bless with TELA_BLESS=1",
            path.display()
        )
    })
}

#[test]
fn committed_trace_matches_a_fresh_generation() {
    let generated = generate();
    if blessing() {
        std::fs::write(traces_dir().join("golden_ladder.jsonl"), &generated).unwrap();
        return;
    }
    let committed = read_golden("golden_ladder.jsonl");
    assert_eq!(
        body(&committed),
        body(&generated),
        "the solver's event stream changed; review and re-bless with TELA_BLESS=1"
    );
}

#[test]
fn rollup_report_matches_golden() {
    let committed = read_golden("golden_ladder.jsonl");
    let trace = parse_jsonl(&committed).expect("golden trace parses");
    let report = render_report(&rollup(&build_tree(&trace)));
    let path = traces_dir().join("golden_ladder.report.txt");
    if blessing() {
        std::fs::write(path, &report).unwrap();
        return;
    }
    assert_eq!(
        std::fs::read_to_string(&path).expect("committed report"),
        report,
        "rollup output changed; review and re-bless with TELA_BLESS=1"
    );
}

#[test]
fn golden_tree_has_the_expected_shape() {
    let trace = parse_jsonl(&read_golden("golden_ladder.jsonl")).unwrap();
    let tree = build_tree(&trace);
    assert!(!tree.nodes.is_empty());
    // Three top-level solves: the chaos race, the spill ladder, and the
    // direct CP solve — in that order.
    let root_keys: Vec<String> = tree.roots.iter().map(|&i| tree.nodes[i].key()).collect();
    assert_eq!(root_keys, ["portfolio.race", "ladder.solve", "cp.solve"]);
    // Variants nest under the race; the victim's search span never
    // closed (injected panic) and is clipped to its variant's end
    // instead of swallowing the rest of the trace.
    let variants: Vec<usize> = (0..tree.nodes.len())
        .filter(|&i| tree.nodes[i].key() == "portfolio.variant")
        .collect();
    assert_eq!(variants.len(), 2);
    for &i in &variants {
        let parent = tree.nodes[i].parent.expect("variants nest under the race");
        assert_eq!(tree.nodes[parent].key(), "portfolio.race");
    }
    let victim_search = (0..tree.nodes.len())
        .find(|&i| tree.nodes[i].key() == "search.solve")
        .expect("the victim got as far as its search");
    assert!(!tree.nodes[victim_search].closed);
    assert_eq!(tree.nodes[victim_search].parent, Some(variants[0]));
    assert_eq!(
        tree.nodes[victim_search].end_seq,
        tree.nodes[variants[0]].end_seq
    );
    // Ladder stages are instants, not spans: they show up as counters
    // on the enclosing ladder.solve span.
    let profile = rollup(&tree);
    let ladder = profile.entry("ladder.solve").expect("ladder span present");
    assert_eq!(ladder.counters.get("ladder.stage"), Some(&2));
    assert_eq!(ladder.counters.get("ladder.spill"), Some(&2));
    // Self times partition the root total (the rollup invariant, on a
    // real multi-layer trace rather than a synthetic one).
    let self_sum: u64 = profile.entries.iter().map(|e| e.self_time).sum();
    assert_eq!(self_sum, profile.root_total);
    // CP work counters folded up from the cp.solve end event.
    let cp = profile.entry("cp.solve").expect("cp spans present");
    assert!(cp.counters.contains_key("propagations"));
    assert!(cp.counters.contains_key("min_pos_queries"));
    assert!(cp.counters.contains_key("steps"));
}

#[test]
fn flamegraph_renders_nonempty_on_the_golden_trace() {
    let trace = parse_jsonl(&read_golden("golden_ladder.jsonl")).unwrap();
    let flame = flamegraph(&build_tree(&trace));
    assert!(flame.value > 0);
    let svg = tela_viz::render_flamegraph(&flame, &Default::default());
    assert!(svg.starts_with("<svg") && svg.contains("</svg>"));
    assert!(svg.matches("<rect").count() > 3, "flamegraph has frames");
    assert!(svg.contains("ladder.solve"));
}
