//! Synthetic TPU programs for the Figure 18 experiment.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use tela_model::Buffer;

/// One tensor of a compiled program, with its access intensity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XlaBuffer {
    /// Live range and size (size in KiB units).
    pub buffer: Buffer,
    /// How many times kernels read or write this tensor over the
    /// program; promotion benefit is `accesses × size`.
    pub accesses: u64,
}

/// A compiled program: tensors plus the compute time that memory
/// traffic overlaps with.
#[derive(Debug, Clone)]
pub struct XlaProgram {
    /// Display name (Figure 18 x-axis).
    pub name: String,
    /// All tensors considered for SRAM promotion.
    pub buffers: Vec<XlaBuffer>,
    /// Pure compute cost, in the same abstract time units as memory
    /// cost; the larger this is relative to traffic, the less
    /// memory-bound the program ("not all of the ML models that use XLA
    /// are memory-bound", §7.4).
    pub compute_time: f64,
}

impl XlaProgram {
    /// Total bytes×accesses over all tensors.
    pub fn total_traffic(&self) -> u64 {
        self.buffers
            .iter()
            .map(|b| b.accesses * b.buffer.size())
            .sum()
    }
}

/// Generates a mix of TPU-style training/inference programs with varying
/// degrees of memory-boundedness, deterministically in `seed`.
pub fn tpu_workloads(seed: u64) -> Vec<XlaProgram> {
    // (name, layers, base tensor size, accesses scale, memory-boundedness)
    let specs: [(&str, u32, u64, u64, f64); 8] = [
        ("transformer-big", 96, 512, 24, 0.7),
        ("transformer-small", 48, 256, 16, 0.6),
        ("bert-like", 72, 384, 20, 0.7),
        ("resnet-like", 120, 192, 12, 0.4),
        ("mlp-mixer", 64, 448, 18, 0.6),
        ("recommender", 40, 640, 30, 0.65),
        ("speech-rnn", 80, 160, 14, 0.5),
        ("vision-vit", 88, 320, 16, 0.3),
    ];
    specs
        .iter()
        .enumerate()
        .map(|(i, &(name, layers, base, acc, boundedness))| {
            let mut rng = StdRng::seed_from_u64(seed.wrapping_add(i as u64 * 7919));
            let mut buffers = Vec::new();
            for l in 0..layers {
                let t = l * 2;
                // Activation: consumed by the next layer.
                buffers.push(XlaBuffer {
                    buffer: Buffer::new(t, t + 3, rng.random_range(base / 2..base * 2)),
                    accesses: rng.random_range(acc / 2..acc * 2),
                });
                // Weights slice: high reuse.
                buffers.push(XlaBuffer {
                    buffer: Buffer::new(t, t + 2, rng.random_range(base / 4..base)),
                    accesses: rng.random_range(acc..acc * 3),
                });
                // Occasional long-lived residual.
                if l % 6 == 0 {
                    buffers.push(XlaBuffer {
                        buffer: Buffer::new(t, (t + 16).min(layers * 2 + 1), base / 3 + 1),
                        accesses: rng.random_range(acc / 2..acc),
                    });
                }
            }
            let traffic: u64 = buffers.iter().map(|b| b.accesses * b.buffer.size()).sum();
            // compute_time chosen so that memory traffic at HBM cost is
            // `boundedness` of the total runtime.
            let hbm_time = traffic as f64; // unit HBM cost
            let compute_time = hbm_time * (1.0 - boundedness) / boundedness;
            XlaProgram {
                name: name.to_string(),
                buffers,
                compute_time,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_are_deterministic() {
        let a = tpu_workloads(3);
        let b = tpu_workloads(3);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.buffers, y.buffers);
        }
    }

    #[test]
    fn eight_programs_with_traffic() {
        let ws = tpu_workloads(0);
        assert_eq!(ws.len(), 8);
        for w in &ws {
            assert!(w.buffers.len() > 50, "{}", w.name);
            assert!(w.total_traffic() > 0);
            assert!(w.compute_time > 0.0);
        }
    }

    #[test]
    fn memory_boundedness_varies() {
        let ws = tpu_workloads(0);
        let ratio = |w: &XlaProgram| w.compute_time / w.total_traffic() as f64;
        let most_bound = ws.iter().find(|w| w.name == "recommender").unwrap();
        let least_bound = ws.iter().find(|w| w.name == "vision-vit").unwrap();
        assert!(ratio(most_bound) < ratio(least_bound));
    }
}
