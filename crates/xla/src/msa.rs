//! Memory-space assignment with an allocator-driven repacking loop
//! (paper §2.3, §5.6, §7.4).

use tela_model::{Budget, Problem, Size};

use crate::workloads::XlaProgram;

/// SRAM/HBM cost model.
#[derive(Debug, Clone, Copy)]
pub struct MemoryConfig {
    /// On-chip SRAM (CMEM) capacity, in the workload's size units.
    pub sram_capacity: Size,
    /// Cost per byte-access served from SRAM.
    pub sram_cost: f64,
    /// Cost per byte-access served from HBM.
    pub hbm_cost: f64,
    /// Maximum repacker invocations in the inner loop (the paper's is
    /// "up to 50 times").
    pub max_repacks: u32,
    /// Step budget per repack.
    pub repack_steps: u64,
}

impl Default for MemoryConfig {
    fn default() -> Self {
        MemoryConfig {
            sram_capacity: 2048,
            sram_cost: 0.35,
            hbm_cost: 1.0,
            max_repacks: 50,
            repack_steps: 50_000,
        }
    }
}

/// Which allocator serves as the repacker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Packer {
    /// The best-fit baseline (TensorFlow/XLA's previous algorithm).
    BestFit,
    /// The TelaMalloc pipeline (greedy heuristic, then the hybrid
    /// search).
    TelaMalloc,
}

impl Packer {
    fn pack(&self, problem: &Problem, steps: u64) -> bool {
        match self {
            Packer::BestFit => tela_heuristics::bfc::solve(problem).solution.is_some(),
            Packer::TelaMalloc => {
                let allocator = telamalloc::Allocator::default();
                allocator
                    .allocate(problem, &Budget::steps(steps))
                    .outcome
                    .is_solved()
            }
        }
    }
}

/// Result of the memory-space assignment loop.
#[derive(Debug, Clone)]
pub struct AssignmentReport {
    /// Per-buffer: promoted to SRAM?
    pub in_sram: Vec<bool>,
    /// Number of buffers promoted.
    pub sram_buffers: usize,
    /// Access-weighted bytes served from SRAM.
    pub sram_traffic: u64,
    /// Repacker invocations consumed.
    pub repacks: u32,
}

/// Greedily promotes access-intensive buffers into SRAM, invoking the
/// repacker whenever the current SRAM set plus the candidate no longer
/// packs. Candidates are tried in decreasing benefit (`accesses ×
/// size`), matching XLA's utility-maximizing heuristic (§2.3).
pub fn assign_memory_space(
    program: &XlaProgram,
    config: &MemoryConfig,
    packer: Packer,
) -> AssignmentReport {
    let n = program.buffers.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| {
        let b = &program.buffers[i];
        (std::cmp::Reverse(b.accesses * b.buffer.size()), i)
    });

    let mut in_sram = vec![false; n];
    let mut chosen: Vec<usize> = Vec::new();
    let mut repacks = 0u32;
    for i in order {
        let candidate = &program.buffers[i];
        if candidate.buffer.size() > config.sram_capacity {
            continue;
        }
        // Quick admission test: does the contention bound still fit? If
        // not, no packing exists and the repacker need not run.
        let mut buffers: Vec<_> = chosen.iter().map(|&j| program.buffers[j].buffer).collect();
        buffers.push(candidate.buffer);
        let Ok(problem) = Problem::new(buffers, config.sram_capacity) else {
            continue;
        };
        if problem.max_contention() > config.sram_capacity {
            continue;
        }
        // The repacker decides whether the denser set still packs.
        if repacks >= config.max_repacks {
            break;
        }
        repacks += 1;
        if packer.pack(&problem, config.repack_steps) {
            in_sram[i] = true;
            chosen.push(i);
        }
    }
    let sram_traffic = program
        .buffers
        .iter()
        .zip(&in_sram)
        .filter(|&(_, &s)| s)
        .map(|(b, _)| b.accesses * b.buffer.size())
        .sum();
    AssignmentReport {
        sram_buffers: chosen.len(),
        in_sram,
        sram_traffic,
        repacks,
    }
}

/// Analytic execution time: compute plus access-weighted memory cost of
/// every tensor from its assigned memory.
pub fn execution_time(
    program: &XlaProgram,
    report: &AssignmentReport,
    config: &MemoryConfig,
) -> f64 {
    let memory: f64 = program
        .buffers
        .iter()
        .zip(&report.in_sram)
        .map(|(b, &sram)| {
            let traffic = (b.accesses * b.buffer.size()) as f64;
            traffic
                * if sram {
                    config.sram_cost
                } else {
                    config.hbm_cost
                }
        })
        .sum();
    program.compute_time + memory
}

/// End-to-end program speedup of the TelaMalloc repacker over the
/// best-fit repacker (the Figure 18 metric: execution-time speedup of
/// the compiled program).
pub fn speedup_over_best_fit(program: &XlaProgram, config: &MemoryConfig) -> f64 {
    let best_fit = assign_memory_space(program, config, Packer::BestFit);
    let tela = assign_memory_space(program, config, Packer::TelaMalloc);
    let t_best_fit = execution_time(program, &best_fit, config);
    let t_tela = execution_time(program, &tela, config);
    t_best_fit / t_tela
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::tpu_workloads;

    fn small_config() -> MemoryConfig {
        MemoryConfig {
            sram_capacity: 1024,
            ..MemoryConfig::default()
        }
    }

    #[test]
    fn assignment_respects_capacity() {
        let p = &tpu_workloads(0)[0];
        let config = small_config();
        for packer in [Packer::BestFit, Packer::TelaMalloc] {
            let report = assign_memory_space(p, &config, packer);
            // The promoted set must actually pack into SRAM.
            let buffers: Vec<_> = p
                .buffers
                .iter()
                .zip(&report.in_sram)
                .filter(|&(_, &s)| s)
                .map(|(b, _)| b.buffer)
                .collect();
            let problem = Problem::new(buffers, config.sram_capacity).unwrap();
            assert!(problem.max_contention() <= config.sram_capacity);
            assert!(report.repacks <= config.max_repacks);
        }
    }

    #[test]
    fn telamalloc_promotes_at_least_as_much_traffic() {
        let config = small_config();
        for p in &tpu_workloads(0)[..4] {
            let bf = assign_memory_space(p, &config, Packer::BestFit);
            let tm = assign_memory_space(p, &config, Packer::TelaMalloc);
            assert!(
                tm.sram_traffic * 100 >= bf.sram_traffic * 95,
                "{}: tela {} vs best-fit {}",
                p.name,
                tm.sram_traffic,
                bf.sram_traffic
            );
        }
    }

    #[test]
    fn execution_time_decreases_with_promotion() {
        let p = &tpu_workloads(0)[0];
        let config = small_config();
        let none = AssignmentReport {
            in_sram: vec![false; p.buffers.len()],
            sram_buffers: 0,
            sram_traffic: 0,
            repacks: 0,
        };
        let some = assign_memory_space(p, &config, Packer::TelaMalloc);
        assert!(execution_time(p, &some, &config) <= execution_time(p, &none, &config));
    }

    #[test]
    fn speedup_is_at_least_break_even_on_average() {
        let config = small_config();
        let speedups: Vec<f64> = tpu_workloads(0)
            .iter()
            .take(4)
            .map(|p| speedup_over_best_fit(p, &config))
            .collect();
        let mean = speedups.iter().sum::<f64>() / speedups.len() as f64;
        assert!(
            mean >= 0.99,
            "mean speedup {mean}, per-program {speedups:?}"
        );
    }

    #[test]
    fn oversized_buffers_never_promoted() {
        let p = &tpu_workloads(0)[0];
        let config = MemoryConfig {
            sram_capacity: 1,
            ..MemoryConfig::default()
        };
        let report = assign_memory_space(p, &config, Packer::TelaMalloc);
        assert_eq!(report.sram_buffers, 0);
    }
}
