//! Simulated XLA memory-space assignment for the TPUv4 experiment
//! (paper §2.3, §5.6, §7.4).
//!
//! On TPUv4, XLA *opportunistically* promotes access-intensive buffers
//! from HBM into the 128 MB on-chip CMEM: kernels then fetch data from
//! SRAM instead of HBM and execute faster. The allocator's job inside
//! this loop is *repacking* — given the set of buffers currently
//! assigned to SRAM, pack them as densely as possible so another
//! candidate fits. The repacker runs up to 50 times in the inner loop;
//! a better repacker ⇒ more bytes-of-access served from SRAM ⇒ a faster
//! *program* (Figure 18 reports program speedup, not allocator speedup).
//!
//! The paper's testbed is a real TPUv4; this reproduction substitutes an
//! analytic execution-time model: the relative speedup only depends on
//! which access-weighted bytes end up in SRAM, which the model captures
//! exactly.
//!
//! # Example
//!
//! ```
//! use tela_xla::{tpu_workloads, MemoryConfig, Packer};
//!
//! let programs = tpu_workloads(1);
//! let config = MemoryConfig::default();
//! let report = tela_xla::assign_memory_space(&programs[0], &config, Packer::TelaMalloc);
//! assert!(report.sram_buffers > 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod msa;
mod workloads;

pub use msa::{
    assign_memory_space, execution_time, speedup_over_best_fit, AssignmentReport, MemoryConfig,
    Packer,
};
pub use workloads::{tpu_workloads, XlaBuffer, XlaProgram};
