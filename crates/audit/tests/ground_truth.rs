//! Soundness of the static audit against ground truth on small random
//! instances:
//!
//! - `ProvablyInfeasible` must imply that exhaustive enumeration finds
//!   no packing (and the complete CP search agrees),
//! - `TriviallyFeasible` solutions must validate against the problem,
//! - every certificate must pass its own independent verification.

use proptest::prelude::*;
use tela_audit::{preflight, Verdict};
use tela_model::{Budget, Buffer, Problem, SolveOutcome};

/// Exhaustively decides feasibility by trying every address combination.
fn brute_force_feasible(problem: &Problem) -> bool {
    fn rec(problem: &Problem, chosen: &mut Vec<u64>) -> bool {
        let idx = chosen.len();
        if idx == problem.len() {
            return true;
        }
        let b = problem.buffers()[idx];
        let mut addr = 0u64;
        while addr + b.size() <= problem.capacity() {
            if addr.is_multiple_of(b.align()) {
                let ok = problem.buffers()[..idx]
                    .iter()
                    .enumerate()
                    .all(|(j, other)| {
                        !other.overlaps_in_time(&b)
                            || chosen[j] + other.size() <= addr
                            || addr + b.size() <= chosen[j]
                    });
                if ok {
                    chosen.push(addr);
                    if rec(problem, chosen) {
                        return true;
                    }
                    chosen.pop();
                }
            }
            addr += 1;
        }
        false
    }
    rec(problem, &mut Vec::new())
}

fn buffer_strategy() -> impl Strategy<Value = Buffer> {
    (
        0u32..6,
        1u32..5,
        1u64..6,
        prop_oneof![Just(1u64), Just(2), Just(4)],
    )
        .prop_map(|(start, len, size, align)| {
            Buffer::new(start, start + len, size).with_align(align)
        })
}

/// Capacities start low enough (at the maximum single size) that many
/// generated instances are genuinely infeasible, exercising the
/// certificate-producing passes rather than only `NeedsSearch`.
fn problem_strategy() -> impl Strategy<Value = Problem> {
    (prop::collection::vec(buffer_strategy(), 1..6), 5u64..13).prop_map(|(buffers, capacity)| {
        // Every generated size (<= 5) fits in every capacity (>= 5).
        Problem::new(buffers, capacity).expect("sizes below capacity")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    #[test]
    fn infeasibility_certificates_are_sound(problem in problem_strategy()) {
        if let Verdict::ProvablyInfeasible(cert) = preflight(&problem) {
            prop_assert!(cert.verify(&problem), "certificate fails verification: {cert}");
            prop_assert!(
                !brute_force_feasible(&problem),
                "certified-infeasible instance has a packing: {cert} for {problem:?}"
            );
        }
    }

    #[test]
    fn trivially_feasible_solutions_validate(problem in problem_strategy()) {
        if let Verdict::TriviallyFeasible(solution) = preflight(&problem) {
            prop_assert!(
                solution.validate(&problem).is_ok(),
                "trivial solution invalid: {:?} for {problem:?}",
                solution.validate(&problem)
            );
        }
    }

    #[test]
    fn preflight_agrees_with_complete_cp_search(problem in problem_strategy()) {
        let verdict = preflight(&problem);
        let (outcome, _) =
            tela_cp::search::solve_cp_only(&problem, &Budget::steps(1_000_000));
        match (&verdict, &outcome) {
            (Verdict::ProvablyInfeasible(cert), SolveOutcome::Solved(s)) => {
                prop_assert!(
                    false,
                    "audit certified {cert} but CP found {s:?} for {problem:?}"
                );
            }
            (Verdict::TriviallyFeasible(_), SolveOutcome::Infeasible) => {
                prop_assert!(false, "audit solved an instance CP proves infeasible");
            }
            _ => {}
        }
    }

    #[test]
    fn preflight_agrees_with_ilp_when_audit_disabled(problem in problem_strategy()) {
        // Run the ILP baseline with its own preflight off, so the two
        // judgements are independent.
        let config = tela_ilp::IlpConfig { preflight_audit: false, ..Default::default() };
        let (outcome, _) =
            tela_ilp::solve_ilp_with(&problem, &Budget::steps(1_000_000), &config);
        match (preflight(&problem), outcome) {
            (Verdict::ProvablyInfeasible(cert), SolveOutcome::Solved(s)) => {
                prop_assert!(
                    false,
                    "audit certified {cert} but ILP found {s:?} for {problem:?}"
                );
            }
            (Verdict::TriviallyFeasible(_), SolveOutcome::Infeasible) => {
                prop_assert!(false, "audit solved an instance ILP proves infeasible");
            }
            _ => {}
        }
    }
}
