//! Individual certificate-producing analysis passes.
//!
//! Each pass inspects one structural aspect of a [`Problem`] and returns
//! a [`Certificate`] if it can prove infeasibility, or `None` if that
//! aspect is inconclusive. Passes never prove feasibility; the trivial
//! constructive path lives in [`trivial_solution`]. All certificates
//! returned here satisfy [`Certificate::verify`] by construction — the
//! ground-truth property tests in this crate enforce that.

use tela_model::{Buffer, BufferId, LiveSet, Problem, Size, Solution};

use crate::certificate::{ceil_div, pair_requirement, Certificate};

/// Rejects problems containing a buffer larger than the whole memory.
///
/// [`Problem::new`] already refuses to build such instances, so this pass
/// is a cheap defense-in-depth check for problems arriving through other
/// paths (deserialization, capacity sweeps); it keeps the audit's
/// soundness independent of constructor guarantees.
pub fn oversized_buffer(problem: &Problem) -> Option<Certificate> {
    problem.iter().find_map(|(id, b)| {
        (b.size() > problem.capacity()).then(|| Certificate::OversizedBuffer {
            buffer: id,
            size: b.size(),
            capacity: problem.capacity(),
        })
    })
}

/// The paper's structural lower bound (§3.1): if the total size of live
/// buffers at any time step exceeds capacity, no packing exists. Runs in
/// `O(n + horizon)` off the problem's contention profile.
pub fn contention_bound(problem: &Problem) -> Option<Certificate> {
    let profile = problem.contention();
    profile
        .as_slice()
        .iter()
        .enumerate()
        .find(|&(_, &c)| c > problem.capacity())
        .map(|(t, &c)| Certificate::ContentionBound {
            time: t as u32,
            contention: c,
            capacity: problem.capacity(),
        })
}

/// Pairwise pigeonhole: two simultaneously live buffers must stack in
/// one of two vertical orders, and alignment padding can push both
/// orders past capacity even when raw contention fits. Cost is
/// `O(n log n + k)` over the `k` time-overlapping pairs.
pub fn pair_pigeonhole<'a>(
    problem: &Problem,
    pairs: impl IntoIterator<Item = &'a (BufferId, BufferId)>,
) -> Option<Certificate> {
    pairs.into_iter().find_map(|&(first, second)| {
        let required = pair_requirement(problem.buffer(first), problem.buffer(second));
        (required > problem.capacity()).then_some(Certificate::PairPigeonhole {
            first,
            second,
            required,
            capacity: problem.capacity(),
        })
    })
}

/// Alignment-aware contention: within one maximal live set, take the gcd
/// `A` of all member alignments. Every member starts at a multiple of
/// `A`, so members occupy pairwise-disjoint `A`-blocks and each consumes
/// `ceil(size/A)` of the `ceil(capacity/A)` blocks that fit below the
/// capacity. With `A = 1` this degenerates to [`contention_bound`], so
/// sets whose gcd is 1 are skipped.
pub fn aligned_contention_bound(problem: &Problem, sets: &[LiveSet]) -> Option<Certificate> {
    sets.iter().find_map(|set| {
        let block = set
            .members
            .iter()
            .map(|id| problem.buffer(*id).align())
            .fold(0, gcd);
        if block <= 1 {
            return None;
        }
        block_bound_for(problem, set, block, &set.members)
    })
}

/// Maximal-clique block bound: strictly stronger than
/// [`aligned_contention_bound`] on mixed-alignment cliques. For each
/// maximal live set and each distinct member alignment `a > 1`, count
/// only the members whose alignment is a multiple of `a` — those members
/// alone occupy disjoint `a`-blocks, so a coarse-aligned sub-clique can
/// be overcommitted even when the whole set's gcd collapses to 1.
pub fn clique_block_bound(problem: &Problem, sets: &[LiveSet]) -> Option<Certificate> {
    sets.iter().find_map(|set| {
        let mut aligns: Vec<Size> = set
            .members
            .iter()
            .map(|id| problem.buffer(*id).align())
            .filter(|&a| a > 1)
            .collect();
        aligns.sort_unstable();
        aligns.dedup();
        aligns.into_iter().find_map(|block| {
            let members: Vec<BufferId> = set
                .members
                .iter()
                .copied()
                .filter(|id| problem.buffer(*id).align().is_multiple_of(block))
                .collect();
            if members.len() < 2 {
                // A lone in-capacity buffer can never overcommit blocks.
                return None;
            }
            block_bound_for(problem, set, block, &members)
        })
    })
}

fn block_bound_for(
    problem: &Problem,
    set: &LiveSet,
    block: Size,
    members: &[BufferId],
) -> Option<Certificate> {
    let needed: u128 = members
        .iter()
        .map(|id| ceil_div(problem.buffer(*id).size(), block))
        .sum();
    let available = ceil_div(problem.capacity(), block);
    (needed > available).then(|| Certificate::BlockBound {
        time: set.time,
        block,
        members: members.to_vec(),
        blocks_needed: u64::try_from(needed).unwrap_or(u64::MAX),
        blocks_available: u64::try_from(available).unwrap_or(u64::MAX),
        capacity: problem.capacity(),
    })
}

/// Constructive fast path for degenerate instances, cross-checked with
/// [`Solution::validate`] before being returned:
///
/// - **No time overlaps at all**: every buffer goes to address 0 (which
///   satisfies any alignment).
/// - **A single clique** (every pair overlaps, `k = n(n-1)/2`): stack the
///   buffers bottom-up in descending-alignment order; if the aligned
///   stack height fits in capacity the stacking is a solution. A stack
///   that overflows proves nothing (a different order might fit), so
///   `None` is returned and the instance goes to search.
pub fn trivial_solution(problem: &Problem, pair_count: usize) -> Option<Solution> {
    let n = problem.len();
    if pair_count == 0 {
        return checked(problem, Solution::new(vec![0; n]));
    }
    if pair_count == n * (n - 1) / 2 {
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&i| {
            let b = &problem.buffers()[i];
            (std::cmp::Reverse(b.align()), std::cmp::Reverse(b.size()), i)
        });
        let mut addresses = vec![0u64; n];
        let mut top: u64 = 0;
        for &i in &order {
            let b: &Buffer = &problem.buffers()[i];
            let base = b.align_up(top)?;
            addresses[i] = base;
            top = base.checked_add(b.size())?;
        }
        if top <= problem.capacity() {
            return checked(problem, Solution::new(addresses));
        }
    }
    None
}

fn checked(problem: &Problem, solution: Solution) -> Option<Solution> {
    match solution.validate(problem) {
        Ok(_) => Some(solution),
        Err(err) => {
            debug_assert!(false, "trivial solution failed validation: {err}");
            None
        }
    }
}

fn gcd(a: Size, b: Size) -> Size {
    if a == 0 {
        b
    } else {
        gcd(b % a, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tela_model::{examples, maximal_live_sets, Buffer};

    fn pairs(problem: &Problem) -> Vec<(BufferId, BufferId)> {
        problem.overlapping_pairs().collect()
    }

    #[test]
    fn contention_bound_catches_overcommit() {
        let cert = contention_bound(&examples::infeasible()).expect("provably infeasible");
        assert!(matches!(
            cert,
            Certificate::ContentionBound {
                contention: 9,
                capacity: 8,
                ..
            }
        ));
        assert!(cert.verify(&examples::infeasible()));
    }

    #[test]
    fn contention_bound_passes_tight_feasible_instance() {
        assert_eq!(contention_bound(&examples::figure1()), None);
        assert_eq!(contention_bound(&examples::aligned()), None);
    }

    #[test]
    fn pair_pigeonhole_sees_alignment_padding() {
        // Raw sizes 5 + 6 = 11 ≤ 12, but whichever buffer sits on top
        // starts at align_up(bottom, 8) = 8, so the stack needs 13 or 14.
        let p = Problem::builder(12)
            .buffer(Buffer::new(0, 4, 5).with_align(8))
            .buffer(Buffer::new(0, 4, 6).with_align(8))
            .build()
            .unwrap();
        assert_eq!(contention_bound(&p), None);
        let cert = pair_pigeonhole(&p, &pairs(&p)).expect("pair cannot fit");
        assert!(matches!(
            cert,
            Certificate::PairPigeonhole { required: 13, .. }
        ));
        assert!(cert.verify(&p));
    }

    #[test]
    fn aligned_contention_counts_blocks() {
        // Three 64-aligned buffers of size 1 live together: 3 blocks
        // needed, but only ceil(100/64) = 2 block slots exist.
        let p = Problem::builder(100)
            .buffers((0..3).map(|_| Buffer::new(0, 2, 1).with_align(64)))
            .build()
            .unwrap();
        let sets = maximal_live_sets(&p);
        let cert = aligned_contention_bound(&p, &sets).expect("blocks overcommitted");
        assert!(matches!(
            cert,
            Certificate::BlockBound {
                block: 64,
                blocks_needed: 3,
                blocks_available: 2,
                ..
            }
        ));
        assert!(cert.verify(&p));
    }

    #[test]
    fn clique_bound_isolates_coarse_subclique() {
        // An unaligned buffer drags the live-set gcd to 1, hiding the
        // overcommitted 64-aligned trio from the gcd pass; the per-align
        // sub-clique pass still finds it.
        let p = Problem::builder(100)
            .buffers((0..3).map(|_| Buffer::new(0, 2, 1).with_align(64)))
            .buffer(Buffer::new(0, 2, 1))
            .build()
            .unwrap();
        let sets = maximal_live_sets(&p);
        assert_eq!(aligned_contention_bound(&p, &sets), None);
        let cert = clique_block_bound(&p, &sets).expect("sub-clique overcommitted");
        assert!(matches!(
            &cert,
            Certificate::BlockBound { block: 64, members, .. } if members.len() == 3
        ));
        assert!(cert.verify(&p));
    }

    #[test]
    fn trivial_solution_places_disjoint_buffers_at_zero() {
        let p = Problem::builder(10)
            .buffers((0..4).map(|i| Buffer::new(i * 2, i * 2 + 2, 7)))
            .build()
            .unwrap();
        let sol = trivial_solution(&p, 0).expect("disjoint instance is trivial");
        assert!(sol.addresses().iter().all(|&a| a == 0));
    }

    #[test]
    fn trivial_solution_stacks_single_clique() {
        let p = Problem::builder(64)
            .buffer(Buffer::new(0, 4, 10))
            .buffer(Buffer::new(0, 4, 20).with_align(32))
            .buffer(Buffer::new(0, 4, 8).with_align(8))
            .build()
            .unwrap();
        let k = pairs(&p).len();
        assert_eq!(k, 3);
        let sol = trivial_solution(&p, k).expect("stack fits");
        assert!(sol.validate(&p).is_ok());
    }

    #[test]
    fn trivial_solution_declines_tight_or_mixed_instances() {
        // figure1 is neither overlap-free nor a single clique.
        let p = examples::figure1();
        assert_eq!(trivial_solution(&p, pairs(&p).len()), None);
    }

    #[test]
    fn oversized_pass_matches_constructor_guard() {
        // Problems built through Problem::new can never trip this pass.
        for p in [
            examples::figure1(),
            examples::tiny(),
            examples::infeasible(),
            examples::aligned(),
        ] {
            assert_eq!(oversized_buffer(&p), None);
        }
    }
}
