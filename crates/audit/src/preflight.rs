//! The preflight driver: runs every pass in cost order and produces one
//! [`Verdict`].

use tela_model::{maximal_live_sets, BufferId, InstanceStats, Problem, Solution};

use crate::certificate::Certificate;
use crate::passes;

/// Which passes the preflight runs, and how hard it may work.
///
/// All passes default to on; disabling passes only ever weakens the
/// audit (it can never change a sound verdict into an unsound one,
/// merely turn `ProvablyInfeasible`/`TriviallyFeasible` into
/// `NeedsSearch`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditConfig {
    /// Reject problems with a buffer larger than the whole memory.
    pub oversized: bool,
    /// Run the per-time-step contention bound (paper §3.1).
    pub contention: bool,
    /// Run the alignment-padding pair pigeonhole over overlapping pairs.
    pub pair_pigeonhole: bool,
    /// Run the gcd-block bound over maximal live sets.
    pub aligned_contention: bool,
    /// Run the per-alignment sub-clique block bound.
    pub clique_blocks: bool,
    /// Solve overlap-free and single-clique instances constructively.
    pub trivial_feasibility: bool,
    /// Skip the pair/clique/trivial passes (which enumerate overlap
    /// structure and can cost `O(n²)` on dense instances) for problems
    /// with more buffers than this. The `O(n + horizon)` passes always
    /// run.
    pub exhaustive_limit: usize,
}

impl Default for AuditConfig {
    fn default() -> Self {
        AuditConfig {
            oversized: true,
            contention: true,
            pair_pigeonhole: true,
            aligned_contention: true,
            clique_blocks: true,
            trivial_feasibility: true,
            exhaustive_limit: 10_000,
        }
    }
}

/// What the static audit concluded about a problem.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// No solution exists; the certificate is independently checkable
    /// with [`Certificate::verify`].
    ProvablyInfeasible(Certificate),
    /// The instance is degenerate enough to solve without search; the
    /// solution has already passed
    /// [`Solution::validate`](tela_model::Solution::validate).
    TriviallyFeasible(Solution),
    /// The audit proved nothing either way; the instance needs a real
    /// solver. Carries the structural summary the passes computed.
    NeedsSearch(InstanceStats),
}

impl Verdict {
    /// The certificate, if the verdict is `ProvablyInfeasible`.
    pub fn certificate(&self) -> Option<&Certificate> {
        match self {
            Verdict::ProvablyInfeasible(cert) => Some(cert),
            _ => None,
        }
    }

    /// True if the audit proved no solution exists.
    pub fn is_infeasible(&self) -> bool {
        matches!(self, Verdict::ProvablyInfeasible(_))
    }

    /// True if the audit produced a validated solution.
    pub fn is_trivially_feasible(&self) -> bool {
        matches!(self, Verdict::TriviallyFeasible(_))
    }

    /// True if the instance must go to a solver.
    pub fn needs_search(&self) -> bool {
        matches!(self, Verdict::NeedsSearch(_))
    }
}

/// Audits `problem` with the default [`AuditConfig`].
///
/// This is the preflight every solver in the workspace runs before
/// search: it either proves infeasibility with a [`Certificate`], solves
/// a degenerate instance outright, or hands back instance statistics for
/// the search to use.
pub fn preflight(problem: &Problem) -> Verdict {
    preflight_with(problem, &AuditConfig::default())
}

/// Audits `problem` with an explicit pass selection.
pub fn preflight_with(problem: &Problem, config: &AuditConfig) -> Verdict {
    if problem.is_empty() {
        return Verdict::TriviallyFeasible(Solution::new(Vec::new()));
    }
    // Cheap O(n + horizon) passes first.
    if config.oversized {
        if let Some(cert) = passes::oversized_buffer(problem) {
            return Verdict::ProvablyInfeasible(cert);
        }
    }
    if config.contention {
        if let Some(cert) = passes::contention_bound(problem) {
            return Verdict::ProvablyInfeasible(cert);
        }
    }
    // Passes that need the explicit overlap structure.
    if problem.len() <= config.exhaustive_limit {
        let pairs: Vec<(BufferId, BufferId)> = problem.overlapping_pairs().collect();
        if config.pair_pigeonhole {
            if let Some(cert) = passes::pair_pigeonhole(problem, &pairs) {
                return Verdict::ProvablyInfeasible(cert);
            }
        }
        if config.aligned_contention || config.clique_blocks {
            let sets = maximal_live_sets(problem);
            if config.aligned_contention {
                if let Some(cert) = passes::aligned_contention_bound(problem, &sets) {
                    return Verdict::ProvablyInfeasible(cert);
                }
            }
            if config.clique_blocks {
                if let Some(cert) = passes::clique_block_bound(problem, &sets) {
                    return Verdict::ProvablyInfeasible(cert);
                }
            }
        }
        if config.trivial_feasibility {
            if let Some(solution) = passes::trivial_solution(problem, pairs.len()) {
                return Verdict::TriviallyFeasible(solution);
            }
        }
    }
    Verdict::NeedsSearch(InstanceStats::of(problem))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tela_model::{examples, Buffer};

    #[test]
    fn infeasible_example_gets_certificate() {
        let verdict = preflight(&examples::infeasible());
        let cert = verdict.certificate().expect("provably infeasible");
        assert!(cert.verify(&examples::infeasible()));
    }

    #[test]
    fn figure1_needs_search() {
        // Tight but feasible: zero slack, so no bound fires and it is not
        // degenerate; search must handle it.
        let verdict = preflight(&examples::figure1());
        assert!(verdict.needs_search());
        match verdict {
            Verdict::NeedsSearch(stats) => {
                assert_eq!(stats.buffers, 10);
                assert_eq!(stats.max_contention, 4);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn empty_problem_is_trivially_feasible() {
        let p = Problem::builder(0).build().unwrap();
        match preflight(&p) {
            Verdict::TriviallyFeasible(sol) => assert!(sol.is_empty()),
            other => panic!("expected trivial solution, got {other:?}"),
        }
    }

    #[test]
    fn overlap_free_instance_is_trivially_feasible() {
        let p = Problem::builder(100)
            .buffers((0..5).map(|i| Buffer::new(i * 2, i * 2 + 2, 90).with_align(4)))
            .build()
            .unwrap();
        match preflight(&p) {
            Verdict::TriviallyFeasible(sol) => {
                assert!(sol.validate(&p).is_ok());
            }
            other => panic!("expected trivial solution, got {other:?}"),
        }
    }

    #[test]
    fn exhaustive_limit_degrades_to_needs_search() {
        // Force the limit below the instance size: the pair pass would
        // have proven infeasibility, but only cheap passes run.
        let p = Problem::builder(12)
            .buffer(Buffer::new(0, 4, 5).with_align(8))
            .buffer(Buffer::new(0, 4, 6).with_align(8))
            .build()
            .unwrap();
        let full = preflight(&p);
        assert!(full.is_infeasible());
        let capped = preflight_with(
            &p,
            &AuditConfig {
                exhaustive_limit: 1,
                ..AuditConfig::default()
            },
        );
        assert!(capped.needs_search());
    }

    #[test]
    fn disabled_passes_turn_verdicts_into_needs_search() {
        let config = AuditConfig {
            contention: false,
            aligned_contention: false,
            clique_blocks: false,
            pair_pigeonhole: false,
            trivial_feasibility: false,
            ..AuditConfig::default()
        };
        assert!(preflight_with(&examples::infeasible(), &config).needs_search());
    }
}
