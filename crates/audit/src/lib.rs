//! Static preflight analysis for TelaMalloc allocation problems.
//!
//! Before any solver spends search budget on an instance, this crate
//! answers three questions with certainty where it can:
//!
//! 1. **Is the instance provably infeasible?** A family of counting
//!    arguments — per-slot contention (paper §3.1), alignment-aware
//!    block pigeonholes over maximal live sets, and pairwise stacking
//!    bounds — each produce a [`Certificate`]: a small witness that can
//!    be independently re-checked against the problem with
//!    [`Certificate::verify`].
//! 2. **Is the instance degenerate enough to solve without search?**
//!    Overlap-free instances and single-clique instances are solved
//!    constructively and the solution validated before being returned.
//! 3. **Otherwise**, the instance [`NeedsSearch`](Verdict::NeedsSearch)
//!    and the audit hands back the [`InstanceStats`] it computed along
//!    the way.
//!
//! The entry point is [`preflight`] (or [`preflight_with`] to select
//! passes); every solver crate in the workspace calls it before
//! searching, so infeasible inputs fail fast with an explanation instead
//! of burning their step budget.
//!
//! # Example
//!
//! ```
//! use tela_audit::{preflight, Verdict};
//! use tela_model::examples;
//!
//! let problem = examples::infeasible();
//! match preflight(&problem) {
//!     Verdict::ProvablyInfeasible(cert) => {
//!         assert!(cert.verify(&problem));
//!         println!("rejected: {cert}");
//!     }
//!     other => panic!("expected a certificate, got {other:?}"),
//! }
//! ```
//!
//! [`InstanceStats`]: tela_model::InstanceStats

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod certificate;
pub mod passes;
mod preflight;

pub use certificate::Certificate;
pub use preflight::{preflight, preflight_with, AuditConfig, Verdict};
