//! Checkable evidence of infeasibility.
//!
//! A [`Certificate`] is a small, self-contained witness that a
//! [`Problem`] admits no valid [`Solution`](tela_model::Solution). Each
//! variant encodes one counting argument whose premises can be re-checked
//! against the problem in (near-)linear time with [`Certificate::verify`]
//! — the consumer does not have to trust the pass that produced it.

use tela_model::{Buffer, BufferId, Problem, Size, TimeStep};

/// A witness that a problem is infeasible.
///
/// Every variant is a *sound* argument: if [`Certificate::verify`]
/// accepts it against a problem, that problem has no valid solution. The
/// variants are ordered roughly by the strength (and cost) of the
/// underlying bound; the same variant may be produced by more than one
/// audit pass — the certificate records the mathematical claim, not the
/// pass that discovered it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Certificate {
    /// A single buffer is larger than the whole memory.
    OversizedBuffer {
        /// The buffer that cannot fit on its own.
        buffer: BufferId,
        /// Its size.
        size: Size,
        /// The memory capacity.
        capacity: Size,
    },
    /// The sum of sizes of buffers live at `time` exceeds capacity
    /// (paper §3.1: contention is a lower bound on required memory).
    ContentionBound {
        /// The overloaded time step.
        time: TimeStep,
        /// Total live bytes at `time`.
        contention: Size,
        /// The memory capacity.
        capacity: Size,
    },
    /// Two buffers that are live simultaneously cannot both fit below
    /// capacity in either vertical order once alignment padding is
    /// accounted for.
    PairPigeonhole {
        /// The lower-id buffer of the pair.
        first: BufferId,
        /// The higher-id buffer of the pair.
        second: BufferId,
        /// Minimum memory any disjoint placement of the pair needs
        /// (saturating at `u64::MAX`).
        required: Size,
        /// The memory capacity.
        capacity: Size,
    },
    /// A set of simultaneously live buffers, each of whose alignments is
    /// a multiple of `block`, needs more `block`-sized blocks than the
    /// memory provides. Because every member starts block-aligned, no two
    /// members can share a block, so `Σ ceil(size/block)` blocks are
    /// consumed out of `ceil(capacity/block)` available.
    BlockBound {
        /// A time step at which every member is live.
        time: TimeStep,
        /// The block granularity; divides every member's alignment.
        block: Size,
        /// The simultaneously live buffers being counted.
        members: Vec<BufferId>,
        /// `Σ ceil(size/block)` over members (saturating at `u64::MAX`).
        blocks_needed: u64,
        /// `ceil(capacity/block)`.
        blocks_available: u64,
        /// The memory capacity.
        capacity: Size,
    },
}

impl Certificate {
    /// A stable snake_case tag naming the certificate variant, used by
    /// trace events and metric series names.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Certificate::OversizedBuffer { .. } => "oversized_buffer",
            Certificate::ContentionBound { .. } => "contention_bound",
            Certificate::PairPigeonhole { .. } => "pair_pigeonhole",
            Certificate::BlockBound { .. } => "block_bound",
        }
    }

    /// Re-checks this certificate's premises and conclusion against
    /// `problem`, returning true only if the infeasibility argument holds.
    ///
    /// This recomputes every quantity the certificate claims (live-ness,
    /// alignment divisibility, block counts) from the problem itself, so a
    /// corrupted or mismatched certificate is rejected rather than
    /// trusted.
    pub fn verify(&self, problem: &Problem) -> bool {
        let capacity = problem.capacity();
        match self {
            Certificate::OversizedBuffer {
                buffer,
                size,
                capacity: cap,
            } => {
                *cap == capacity
                    && buffer.index() < problem.len()
                    && problem.buffer(*buffer).size() == *size
                    && *size > capacity
            }
            Certificate::ContentionBound {
                time,
                contention,
                capacity: cap,
            } => {
                *cap == capacity
                    && problem.contention().at(*time) == *contention
                    && *contention > capacity
            }
            Certificate::PairPigeonhole {
                first,
                second,
                required,
                capacity: cap,
            } => {
                if *cap != capacity
                    || first.index() >= problem.len()
                    || second.index() >= problem.len()
                    || first == second
                {
                    return false;
                }
                let (a, b) = (problem.buffer(*first), problem.buffer(*second));
                a.overlaps_in_time(b) && pair_requirement(a, b) == *required && *required > capacity
            }
            Certificate::BlockBound {
                time,
                block,
                members,
                blocks_needed,
                blocks_available,
                capacity: cap,
            } => {
                if *cap != capacity || *block == 0 || members.is_empty() {
                    return false;
                }
                let mut seen = vec![false; problem.len()];
                for id in members {
                    if id.index() >= problem.len() || seen[id.index()] {
                        return false;
                    }
                    seen[id.index()] = true;
                    let b = problem.buffer(*id);
                    if !b.live_at(*time) || !b.align().is_multiple_of(*block) {
                        return false;
                    }
                }
                let needed: u128 = members
                    .iter()
                    .map(|id| ceil_div(problem.buffer(*id).size(), *block))
                    .sum();
                let available = ceil_div(capacity, *block);
                u128::from(*blocks_needed) == needed.min(u128::from(u64::MAX))
                    && u128::from(*blocks_available) == available
                    && needed > available
            }
        }
    }
}

/// Minimum memory needed to place two time-overlapping buffers at
/// disjoint, aligned addresses: the smaller of "first below second" and
/// "second below first", where the upper buffer's base is the lower
/// buffer's size rounded up to the upper buffer's alignment. Saturates at
/// `u64::MAX`.
pub(crate) fn pair_requirement(a: &Buffer, b: &Buffer) -> Size {
    let a_below_b = align_up_u128(a.size(), b.align()) + u128::from(b.size());
    let b_below_a = align_up_u128(b.size(), a.align()) + u128::from(a.size());
    u64::try_from(a_below_b.min(b_below_a)).unwrap_or(u64::MAX)
}

pub(crate) fn ceil_div(value: Size, divisor: Size) -> u128 {
    debug_assert!(divisor > 0);
    u128::from(value).div_ceil(u128::from(divisor))
}

fn align_up_u128(value: Size, align: Size) -> u128 {
    debug_assert!(align > 0);
    ceil_div(value, align) * u128::from(align)
}

impl std::fmt::Display for Certificate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Certificate::OversizedBuffer {
                buffer,
                size,
                capacity,
            } => write!(
                f,
                "buffer {buffer} of size {size} exceeds memory capacity {capacity}"
            ),
            Certificate::ContentionBound {
                time,
                contention,
                capacity,
            } => write!(
                f,
                "contention {contention} at time {time} exceeds memory capacity {capacity}"
            ),
            Certificate::PairPigeonhole {
                first,
                second,
                required,
                capacity,
            } => write!(
                f,
                "simultaneously live buffers {first} and {second} need {required} \
                 aligned bytes in any order, exceeding memory capacity {capacity}"
            ),
            Certificate::BlockBound {
                time,
                block,
                members,
                blocks_needed,
                blocks_available,
                ..
            } => write!(
                f,
                "{} buffers live at time {time} with alignments divisible by {block} \
                 need {blocks_needed} blocks of {block} but only {blocks_available} fit in memory",
                members.len()
            ),
        }
    }
}

impl std::error::Error for Certificate {}

#[cfg(test)]
mod tests {
    use super::*;
    use tela_model::examples;

    #[test]
    fn contention_certificate_verifies_against_its_problem_only() {
        let p = examples::infeasible();
        let cert = Certificate::ContentionBound {
            time: 0,
            contention: 9,
            capacity: 8,
        };
        assert!(cert.verify(&p));
        // Same claim against an unrelated (feasible) problem is rejected.
        assert!(!cert.verify(&examples::tiny()));
    }

    #[test]
    fn tampered_certificates_are_rejected() {
        let p = examples::infeasible();
        let wrong_math = Certificate::ContentionBound {
            time: 0,
            contention: 7, // actual contention is 9; 7 ≤ 8 proves nothing
            capacity: 8,
        };
        assert!(!wrong_math.verify(&p));
        let out_of_range = Certificate::OversizedBuffer {
            buffer: BufferId::new(99),
            size: 100,
            capacity: 8,
        };
        assert!(!out_of_range.verify(&p));
    }

    #[test]
    fn block_bound_rejects_duplicate_members() {
        let p = examples::infeasible();
        let cert = Certificate::BlockBound {
            time: 0,
            block: 1,
            members: vec![BufferId::new(0); 3], // 3 copies of one buffer
            blocks_needed: 9,
            blocks_available: 8,
            capacity: 8,
        };
        assert!(!cert.verify(&p));
    }

    #[test]
    fn pair_requirement_accounts_for_alignment_padding() {
        let plain = Buffer::new(0, 4, 10);
        let aligned = Buffer::new(0, 4, 16).with_align(8);
        // plain below aligned: align_up(10, 8) + 16 = 32.
        // aligned below plain: 16 + 10 = 26.
        assert_eq!(pair_requirement(&plain, &aligned), 26);
        assert_eq!(pair_requirement(&aligned, &plain), 26);
    }

    #[test]
    fn display_is_informative() {
        let cert = Certificate::PairPigeonhole {
            first: BufferId::new(0),
            second: BufferId::new(1),
            required: 40,
            capacity: 32,
        };
        let text = cert.to_string();
        assert!(text.contains("b0") && text.contains("b1") && text.contains("40"));
    }
}
