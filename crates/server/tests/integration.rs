//! End-to-end tests over real TCP: the full request pipeline, the
//! cache/no-solve-path guarantee, admission, degradation, deadlines,
//! live introspection (`stats`/`trace` commands, per-request tracing),
//! and the 32-client concurrency smoke with a latency budget.

use std::net::{SocketAddr, TcpListener};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};
use tela_model::{examples, problem_to_text, Buffer, Problem, Solution};
use tela_server::json::Value;
use tela_server::{
    AdmissionController, Client, Request, Server, ServerConfig, Status, TenantConfig,
};

/// Runs `body` against a live server, guaranteeing shutdown (and thread
/// join) even when the body panics, so failed assertions fail fast
/// instead of hanging the suite.
fn with_server<T>(server: Server, body: impl FnOnce(SocketAddr, &Server) -> T) -> T {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let shutdown = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let serving = scope.spawn(|| server.serve(listener, &shutdown));
        let result = catch_unwind(AssertUnwindSafe(|| body(addr, &server)));
        shutdown.store(true, Ordering::Release);
        serving.join().unwrap().unwrap();
        match result {
            Ok(value) => value,
            Err(payload) => resume_unwind(payload),
        }
    })
}

fn request(id: u64, problem: &Problem) -> Request {
    Request {
        id,
        tenant: "test".into(),
        problem: problem_to_text(problem),
        max_steps: Some(500_000),
        deadline_ms: Some(5_000),
        trace: false,
    }
}

/// A solvable problem unique to `tag` (distinct canonical form per tag).
fn unique_problem(tag: u64) -> Problem {
    Problem::builder(64 + tag)
        .buffer(Buffer::new(0, 4, 30 + tag))
        .buffer(Buffer::new(2, 6, 20))
        .buffer(Buffer::new(5, 9, 34))
        .build()
        .unwrap()
}

#[test]
fn solves_over_the_wire_and_validates() {
    with_server(Server::new(ServerConfig::default()), |addr, server| {
        let mut client = Client::connect(addr).unwrap();
        let problem = examples::figure1();
        let response = client.request(&request(1, &problem)).unwrap();
        assert_eq!(response.status, Status::Solved);
        assert!(!response.cache_hit);
        let solution = Solution::new(response.addresses.unwrap());
        assert!(solution.validate(&problem).is_ok());
        assert_eq!(server.stats().solve_calls.load(Ordering::Relaxed), 1);
    });
}

#[test]
fn warm_cache_answers_without_entering_the_solve_path() {
    with_server(Server::new(ServerConfig::default()), |addr, server| {
        let mut client = Client::connect(addr).unwrap();
        let problem = examples::figure1();
        let cold = client.request(&request(1, &problem)).unwrap();
        assert_eq!(cold.status, Status::Solved);
        assert!(!cold.cache_hit);
        let solves_after_cold = server.stats().solve_calls.load(Ordering::Relaxed);

        // Same problem, buffers renamed and schedule shifted: still a hit.
        let mut renamed: Vec<Buffer> = problem
            .buffers()
            .iter()
            .map(|b| Buffer::new(b.start() + 7, b.end() + 7, b.size()).with_align(b.align()))
            .collect();
        renamed.reverse();
        let renamed = Problem::new(renamed, problem.capacity()).unwrap();
        for id in 2..5 {
            let warm = client.request(&request(id, &renamed)).unwrap();
            assert_eq!(warm.status, Status::Solved);
            assert!(warm.cache_hit, "request {id} must be served from cache");
            assert_eq!(warm.steps, 0);
            let solution = Solution::new(warm.addresses.unwrap());
            assert!(solution.validate(&renamed).is_ok());
        }
        // The solve path ran exactly once — for the cold request.
        assert_eq!(
            server.stats().solve_calls.load(Ordering::Relaxed),
            solves_after_cold
        );
        assert_eq!(server.stats().cache_hits.load(Ordering::Relaxed), 3);
    });
}

#[test]
fn infeasible_problems_get_a_terminal_infeasible() {
    with_server(Server::new(ServerConfig::default()), |addr, _| {
        let mut client = Client::connect(addr).unwrap();
        let response = client
            .request(&request(1, &examples::infeasible()))
            .unwrap();
        assert_eq!(response.status, Status::Infeasible);
    });
}

#[test]
fn malformed_requests_are_rejected_terminally() {
    with_server(Server::new(ServerConfig::default()), |addr, _| {
        let mut client = Client::connect(addr).unwrap();
        // Parseable JSON, wrong shape: keeps the id in the rejection.
        let bad_shape = Request {
            id: 9,
            tenant: "t".into(),
            problem: "capacity ten\nbuffer what\n".into(),
            max_steps: None,
            deadline_ms: None,
            trace: false,
        };
        let response = client.request(&bad_shape).unwrap();
        assert_eq!(response.status, Status::Rejected);
        assert_eq!(response.id, 9);
        assert!(response.detail.contains("malformed problem"));
        // The connection survives a malformed request.
        let ok = client.request(&request(10, &examples::tiny())).unwrap();
        assert_eq!(ok.status, Status::Solved);
    });
}

#[test]
fn admission_control_rejects_with_a_retry_hint() {
    let admission = AdmissionController::new(TenantConfig::default()).with_tenant(
        "throttled",
        TenantConfig {
            refill_per_sec: 1,
            burst: 1,
            ..TenantConfig::default()
        },
    );
    let server = Server::with_admission(admission, ServerConfig::default());
    with_server(server, |addr, _| {
        let mut client = Client::connect(addr).unwrap();
        let mut first = request(1, &unique_problem(1));
        first.tenant = "throttled".into();
        let mut second = request(2, &unique_problem(2));
        second.tenant = "throttled".into();
        assert_eq!(client.request(&first).unwrap().status, Status::Solved);
        let denied = client.request(&second).unwrap();
        assert_eq!(denied.status, Status::Rejected);
        let retry = denied
            .retry_after_ms
            .expect("rejection carries a retry hint");
        assert!(retry >= 1, "retry hint must be positive");
        // An un-throttled tenant is unaffected.
        let other = client.request(&request(3, &unique_problem(3))).unwrap();
        assert_eq!(other.status, Status::Solved);
    });
}

#[test]
fn cache_hits_are_served_even_when_the_tenant_is_throttled() {
    let admission = AdmissionController::new(TenantConfig::default()).with_tenant(
        "throttled",
        TenantConfig {
            refill_per_sec: 1,
            burst: 1,
            ..TenantConfig::default()
        },
    );
    let server = Server::with_admission(admission, ServerConfig::default());
    with_server(server, |addr, _| {
        let mut client = Client::connect(addr).unwrap();
        let problem = unique_problem(7);
        let mut solve = request(1, &problem);
        solve.tenant = "throttled".into();
        assert_eq!(client.request(&solve).unwrap().status, Status::Solved);
        // The bucket is now empty, but the repeat is a cache hit and is
        // served unconditionally.
        let mut repeat = request(2, &problem);
        repeat.tenant = "throttled".into();
        let warm = client.request(&repeat).unwrap();
        assert_eq!(warm.status, Status::Solved);
        assert!(warm.cache_hit);
    });
}

#[test]
fn zero_deadline_times_out_terminally() {
    with_server(Server::new(ServerConfig::default()), |addr, _| {
        let mut client = Client::connect(addr).unwrap();
        let mut r = request(1, &unique_problem(11));
        r.deadline_ms = Some(0);
        let response = client.request(&r).unwrap();
        assert_eq!(response.status, Status::TimedOut);
    });
}

#[test]
fn saturation_degrades_to_greedy_with_a_terminal_answer() {
    // degrade_watermark 0: every admitted request takes the inline
    // greedy path, deterministically.
    let server = Server::new(ServerConfig {
        degrade_watermark: 0,
        ..ServerConfig::default()
    });
    with_server(server, |addr, server| {
        let mut client = Client::connect(addr).unwrap();
        let problem = examples::figure1();
        let response = client.request(&request(1, &problem)).unwrap();
        assert!(
            matches!(response.status, Status::Solved | Status::BestEffort),
            "degraded path must still answer terminally"
        );
        assert!(response.detail.contains("degraded"));
        assert_eq!(server.stats().degraded.load(Ordering::Relaxed), 1);
        // The full ladder never ran.
        assert_eq!(server.stats().solve_calls.load(Ordering::Relaxed), 0);
    });
}

#[test]
fn thirty_two_concurrent_clients_all_get_terminal_answers() {
    const CLIENTS: u64 = 32;
    const PER_CLIENT: u64 = 4;
    let server = Server::new(ServerConfig {
        workers: 4,
        ..ServerConfig::default()
    });
    with_server(server, |addr, server| {
        let mut latencies: Vec<Duration> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..CLIENTS)
                .map(|c| {
                    scope.spawn(move || {
                        let mut client = Client::connect(addr).unwrap();
                        let mut latencies = Vec::new();
                        for i in 0..PER_CLIENT {
                            // Half unique problems, half shared (cacheable).
                            let problem = if i % 2 == 0 {
                                unique_problem(c * PER_CLIENT + i)
                            } else {
                                examples::figure1()
                            };
                            let t0 = Instant::now();
                            let response = client.request(&request(c * 100 + i, &problem)).unwrap();
                            latencies.push(t0.elapsed());
                            // Every status in the enum is terminal; a
                            // solvable workload must never be Infeasible.
                            assert_ne!(response.status, Status::Infeasible);
                        }
                        latencies
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        let total = CLIENTS * PER_CLIENT;
        let stats = server.stats();
        // Zero non-terminal responses: every request answered, and every
        // answer carried a terminal status.
        assert_eq!(stats.responses.load(Ordering::Relaxed), total);
        assert_eq!(stats.terminal_total(), total);
        // p99 latency stays within a generous smoke budget.
        latencies.sort_unstable();
        let p99 = latencies[(latencies.len() * 99 / 100).min(latencies.len() - 1)];
        assert!(
            p99 < Duration::from_secs(5),
            "p99 latency {p99:?} exceeds the smoke budget"
        );
    });
}

#[test]
fn connection_flood_is_refused_with_terminal_rejections() {
    let server = Server::new(ServerConfig {
        max_connections: 2,
        ..ServerConfig::default()
    });
    with_server(server, |addr, server| {
        // Fill the cap, round-tripping a request on each connection so
        // both connection threads are provably live.
        let mut held: Vec<Client> = (0..2).map(|_| Client::connect(addr).unwrap()).collect();
        for (i, client) in held.iter_mut().enumerate() {
            let r = client
                .request(&request(i as u64, &unique_problem(900 + i as u64)))
                .unwrap();
            assert_eq!(r.status, Status::Solved);
        }
        // The connection over the cap gets a terminal rejection with a
        // retry hint, then the server closes it — no thread is spawned.
        let mut extra = Client::connect(addr).unwrap();
        extra
            .set_reply_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let refused = extra.read_response().unwrap();
        assert_eq!(refused.status, Status::Rejected);
        assert!(refused.detail.contains("connection capacity"));
        assert!(refused.retry_after_ms.is_some());
        assert!(server.stats().conn_refused.load(Ordering::Relaxed) >= 1);
        // Closing a held connection frees its slot (after the server's
        // poll notices the EOF), and new connections are served again.
        drop(held.pop());
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let mut fresh = Client::connect(addr).unwrap();
            fresh
                .set_reply_timeout(Some(Duration::from_secs(5)))
                .unwrap();
            let response = fresh.request(&request(99, &unique_problem(990))).unwrap();
            match response.status {
                Status::Solved => break,
                Status::Rejected if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                other => panic!("expected the freed slot to serve, got {other:?}"),
            }
        }
    });
}

/// A server whose shared tracer is live (the introspection tests need
/// a metrics registry and a span stream to look at).
fn traced_server() -> Server {
    Server::new(ServerConfig {
        tela: telamalloc::TelaConfig {
            tracer: tela_trace::Tracer::wall(),
            ..telamalloc::TelaConfig::default()
        },
        ..ServerConfig::default()
    })
}

#[test]
fn stats_command_reports_counters_quantiles_and_tenants() {
    with_server(traced_server(), |addr, server| {
        let mut client = Client::connect(addr).unwrap();
        let problem = examples::figure1();
        assert_eq!(
            client.request(&request(1, &problem)).unwrap().status,
            Status::Solved
        );
        let warm = client.request(&request(2, &problem)).unwrap();
        assert!(warm.cache_hit);

        let snapshot = client.stats().unwrap();
        assert_eq!(snapshot.get("id").and_then(Value::as_u64), Some(1));
        let stats = snapshot.get("stats").expect("stats body");
        let responses = stats.get("responses").expect("responses object");
        assert_eq!(responses.get("total").and_then(Value::as_u64), Some(2));
        assert_eq!(responses.get("solved").and_then(Value::as_u64), Some(2));
        let cache = stats.get("cache").expect("cache object");
        assert_eq!(cache.get("hits").and_then(Value::as_u64), Some(1));
        assert_eq!(cache.get("misses").and_then(Value::as_u64), Some(1));
        assert_eq!(cache.get("hit_rate_pct").and_then(Value::as_u64), Some(50));
        assert_eq!(stats.get("queue_depth").and_then(Value::as_u64), Some(0));
        let tenants = stats.get("tenants").expect("tenants object");
        let test_tenant = tenants.get("test").expect("the requesting tenant appears");
        // Admission saw exactly the cold request (the warm one was a
        // cache hit, served before admission).
        assert_eq!(test_tenant.get("admitted").and_then(Value::as_u64), Some(1));
        assert_eq!(test_tenant.get("denied").and_then(Value::as_u64), Some(0));

        // The registry mirror agrees with the atomics: the JSONL dump
        // and the stats command tell the same story as terminal_total().
        let metrics = stats.get("metrics").expect("metrics object");
        assert_eq!(
            metrics.get("server.responses").and_then(Value::as_u64),
            Some(server.stats().terminal_total())
        );
        assert_eq!(
            metrics
                .get("server.responses.solved")
                .and_then(Value::as_u64),
            Some(2)
        );
        assert_eq!(
            metrics.get("server.cache_hits").and_then(Value::as_u64),
            Some(1)
        );
        assert_eq!(
            metrics.get("server.solve_calls").and_then(Value::as_u64),
            Some(1)
        );
        // Histogram series carry quantiles (ladder stage steps exist
        // after one real solve).
        let histogram = metrics
            .get("ladder.stage.steps")
            .expect("ladder histogram present after a solve");
        for key in ["count", "p50", "p90", "p99"] {
            assert!(
                histogram.get(key).and_then(Value::as_u64).is_some(),
                "histogram carries {key}"
            );
        }
        // Introspection is not a terminal response: counts unchanged.
        assert_eq!(server.stats().terminal_total(), 2);
    });
}

#[test]
fn trace_command_returns_an_aggregate_rollup_without_request_fields() {
    with_server(traced_server(), |addr, _| {
        let mut client = Client::connect(addr).unwrap();
        assert_eq!(
            client
                .request(&request(1, &unique_problem(40)))
                .unwrap()
                .status,
            Status::Solved
        );
        let snapshot = client.trace_rollup().unwrap();
        let trace = snapshot.get("trace").expect("trace body");
        assert_eq!(trace.get("enabled").and_then(Value::as_bool), Some(true));
        assert_eq!(trace.get("clock").and_then(Value::as_str), Some("wall"));
        let spans = trace
            .get("spans")
            .and_then(Value::as_array)
            .expect("spans array");
        let request_span = spans
            .iter()
            .find(|s| s.get("span").and_then(Value::as_str) == Some("server.request"))
            .expect("server.request span in the rollup");
        assert!(request_span.get("count").and_then(Value::as_u64) >= Some(1));
        // Aggregates only: no per-request payloads anywhere in the body.
        let rendered = tela_server::json::render(trace);
        assert!(!rendered.contains("problem"), "no request payloads leak");
    });
}

#[test]
fn stats_command_works_without_a_tracer() {
    with_server(Server::new(ServerConfig::default()), |addr, _| {
        let mut client = Client::connect(addr).unwrap();
        let snapshot = client.stats().unwrap();
        let stats = snapshot.get("stats").expect("stats body");
        assert_eq!(
            stats
                .get("responses")
                .and_then(|r| r.get("total"))
                .and_then(Value::as_u64),
            Some(0)
        );
        // No tracer → no registry, but the command still answers.
        assert!(matches!(stats.get("metrics"), Some(Value::Object(m)) if m.is_empty()));
        let trace = client.trace_rollup().unwrap();
        assert_eq!(
            trace
                .get("trace")
                .and_then(|t| t.get("enabled"))
                .and_then(Value::as_bool),
            Some(false)
        );
    });
}

#[test]
fn traced_requests_get_their_own_spans_and_only_theirs() {
    with_server(traced_server(), |addr, _| {
        let mut client = Client::connect(addr).unwrap();

        // An untraced request carries no trace.
        let plain = client.request(&request(1, &unique_problem(50))).unwrap();
        assert_eq!(plain.status, Status::Solved);
        assert!(plain.trace_jsonl.is_none());

        // Two traced requests from different tenants: each response
        // carries that request's spans, stamped with its id, and
        // nothing from the other.
        let mut traced_a = request(51, &unique_problem(51));
        traced_a.trace = true;
        let mut traced_b = request(52, &unique_problem(52));
        traced_b.trace = true;
        traced_b.tenant = "other".into();
        let a = client.request(&traced_a).unwrap();
        let b = client.request(&traced_b).unwrap();
        for (response, id) in [(&a, 51u64), (&b, 52u64)] {
            assert_eq!(response.status, Status::Solved);
            let jsonl = response
                .trace_jsonl
                .as_ref()
                .expect("traced request returns spans");
            let trace = tela_trace::parse_jsonl(jsonl).expect("returned trace parses");
            assert!(!trace.events.is_empty(), "the solve produced spans");
            // The ladder ran under the per-request tracer.
            assert!(trace
                .events
                .iter()
                .any(|e| e.layer.as_ref() == "ladder" && e.name.as_ref() == "solve"));
            // Per-request isolation: every event carries this request's
            // id and no event carries the other's.
            for event in &trace.events {
                let stamped = event
                    .fields
                    .iter()
                    .any(|(k, v)| k.as_ref() == "request" && *v == tela_trace::Value::U64(id));
                assert!(
                    stamped,
                    "event {}.{} missing request id",
                    event.layer, event.name
                );
            }
        }
    });
}

#[test]
fn shutdown_drains_queued_work_into_rejections() {
    // One worker, tiny watermark avoided; stuff the queue with slow-ish
    // work, then shut down and verify every response is terminal.
    let server = Server::new(ServerConfig {
        workers: 1,
        queue_capacity: 8,
        degrade_watermark: 8,
        ..ServerConfig::default()
    });
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let shutdown = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let serving = scope.spawn(|| server.serve(listener, &shutdown));
        let clients: Vec<_> = (0..4)
            .map(|c| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    client
                        .request(&request(c, &unique_problem(c)))
                        .map(|r| r.status)
                })
            })
            .collect();
        // Give the requests a moment to land, then pull the plug.
        std::thread::sleep(Duration::from_millis(150));
        shutdown.store(true, Ordering::Release);
        serving.join().unwrap().unwrap();
        for handle in clients {
            // Either a terminal response arrived (possibly the shutdown
            // rejection) or the connection closed before the reply could
            // be written — but never a hang and never a non-terminal.
            if let Ok(status) = handle.join().unwrap() {
                assert!(matches!(
                    status,
                    Status::Solved
                        | Status::Infeasible
                        | Status::BestEffort
                        | Status::Rejected
                        | Status::TimedOut
                ));
            }
        }
    });
}
