//! Seeded chaos soak (gating, `fault-inject` feature only): server-shaped
//! faults — worker panics mid-request, client stalls and disconnects,
//! queue-full bursts, solver-level stalls/cancellations — driven by
//! [`ServerFaultPlan`] seeds, with one invariant checked throughout:
//! **every surviving request gets exactly one terminal response, and the
//! service keeps answering afterwards.**

#![cfg(feature = "fault-inject")]

use std::net::{SocketAddr, TcpListener};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;
use tela_model::{problem_to_text, Buffer, Problem, ServerFaultPlan};
use tela_server::{Client, Request, Server, ServerConfig, Status, TenantConfig};

fn with_server<T>(server: Server, body: impl FnOnce(SocketAddr, &Server) -> T) -> T {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let shutdown = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let serving = scope.spawn(|| server.serve(listener, &shutdown));
        let result = catch_unwind(AssertUnwindSafe(|| body(addr, &server)));
        shutdown.store(true, Ordering::Release);
        serving.join().unwrap().unwrap();
        match result {
            Ok(value) => value,
            Err(payload) => resume_unwind(payload),
        }
    })
}

fn chaos_config(plan: ServerFaultPlan) -> ServerConfig {
    ServerConfig {
        workers: 2,
        queue_capacity: 8,
        degrade_watermark: 6,
        admission: TenantConfig {
            // Generous admission so the interesting rejections come from
            // shedding and faults, not the token bucket.
            refill_per_sec: 10_000,
            burst: 1_000,
            deadline_cap: Duration::from_secs(5),
            ..TenantConfig::default()
        },
        fault_plan: Some(plan),
        ..ServerConfig::default()
    }
}

/// A solvable problem unique to `tag`.
fn unique_problem(tag: u64) -> Problem {
    Problem::builder(64 + tag)
        .buffer(Buffer::new(0, 4, 30 + tag))
        .buffer(Buffer::new(2, 6, 20))
        .buffer(Buffer::new(5, 9, 34))
        .build()
        .unwrap()
}

fn request(id: u64, problem: &Problem) -> Request {
    Request {
        id,
        tenant: "chaos".into(),
        problem: problem_to_text(problem),
        max_steps: Some(200_000),
        deadline_ms: Some(3_000),
        trace: false,
    }
}

const TERMINAL: [Status; 5] = [
    Status::Solved,
    Status::Infeasible,
    Status::BestEffort,
    Status::Rejected,
    Status::TimedOut,
];

/// Deterministic reply-then-die: the request whose worker panics still
/// gets a terminal answer, the worker is respawned, and the next
/// request solves normally.
#[test]
fn worker_panic_answers_terminally_and_respawns() {
    let plan = ServerFaultPlan {
        worker_panic_request: Some(2),
        ..ServerFaultPlan::default()
    };
    with_server(Server::new(chaos_config(plan)), |addr, server| {
        let mut client = Client::connect(addr).unwrap();
        for ordinal in 0u64..5 {
            let response = client
                .request(&request(ordinal, &unique_problem(ordinal)))
                .unwrap();
            if ordinal == 2 {
                assert_eq!(response.status, Status::BestEffort);
                assert!(response.detail.contains("worker fault"));
            } else {
                assert_eq!(response.status, Status::Solved, "request {ordinal}");
            }
        }
        assert_eq!(server.stats().worker_respawns.load(Ordering::Relaxed), 1);
        assert_eq!(server.stats().responses.load(Ordering::Relaxed), 5);
        assert_eq!(server.stats().terminal_total(), 5);
    });
}

/// A client that sends a request and hangs up must flip the job's
/// cancel flag; the server stays healthy and still counts a terminal
/// response for the abandoned request.
#[test]
fn client_disconnect_cancels_and_leaves_the_server_healthy() {
    with_server(
        Server::new(chaos_config(ServerFaultPlan::default())),
        |addr, server| {
            {
                let mut ghost = Client::connect(addr).unwrap();
                ghost.send(&request(1, &unique_problem(100))).unwrap();
                // Drop without reading: mid-flight disconnect.
            }
            // The service keeps serving new clients.
            let mut client = Client::connect(addr).unwrap();
            for id in 2..6 {
                let response = client.request(&request(id, &unique_problem(id))).unwrap();
                assert_eq!(response.status, Status::Solved);
            }
            // The ghost's request was answered terminally (even though
            // nobody read it) — give the worker a moment to finish.
            let mut waited = 0;
            while server.stats().responses.load(Ordering::Relaxed) < 5 && waited < 200 {
                std::thread::sleep(Duration::from_millis(25));
                waited += 1;
            }
            assert_eq!(server.stats().responses.load(Ordering::Relaxed), 5);
            assert_eq!(server.stats().terminal_total(), 5);
        },
    );
}

/// A stalled reader does not lose its response: the server keeps the
/// terminal reply waiting on the socket.
#[test]
fn stalled_clients_still_receive_their_answer() {
    with_server(
        Server::new(chaos_config(ServerFaultPlan::default())),
        |addr, _| {
            let mut client = Client::connect(addr).unwrap();
            client.send(&request(1, &unique_problem(200))).unwrap();
            std::thread::sleep(Duration::from_millis(300));
            let response = client.read_response().unwrap();
            assert_eq!(response.status, Status::Solved);
        },
    );
}

/// A burst far beyond queue capacity: some requests are shed with
/// `Rejected{retry_after}` or degraded to greedy, but all of them get a
/// terminal answer and the queue never wedges.
#[test]
fn queue_full_burst_sheds_with_backpressure_not_silence() {
    let server = Server::new(ServerConfig {
        workers: 1,
        queue_capacity: 2,
        degrade_watermark: 64, // keep degradation out of this test's way
        fault_plan: None,
        ..chaos_config(ServerFaultPlan::default())
    });
    with_server(server, |addr, server| {
        let answered = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for c in 0u64..12 {
                let answered = &answered;
                scope.spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    let response = client
                        .request(&request(c, &unique_problem(300 + c)))
                        .unwrap();
                    assert!(TERMINAL.contains(&response.status));
                    if response.status == Status::Rejected {
                        assert!(
                            response.retry_after_ms.is_some(),
                            "shed rejections carry a retry hint"
                        );
                    }
                    answered.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(answered.load(Ordering::Relaxed), 12);
        assert_eq!(server.stats().terminal_total(), 12);
    });
}

/// The seeded soak: 24 seeds × a mixed workload under whatever faults
/// the seed scripts, including scripted client misbehaviour. The
/// invariant is liveness + terminality, not any particular status mix.
#[test]
fn seeded_soak_survives_scripted_faults() {
    for seed in 0u64..24 {
        let plan = ServerFaultPlan::from_seed(seed);
        let client_disconnect = plan.client_disconnect_request;
        let client_stall = plan.client_stall_request;
        let burst = plan.burst;
        let server = Server::new(chaos_config(plan));
        with_server(server, |addr, server| {
            let abandoned = AtomicU64::new(0);
            std::thread::scope(|scope| {
                for lane in 0u64..4 {
                    let abandoned = &abandoned;
                    scope.spawn(move || {
                        let mut client = Client::connect(addr).unwrap();
                        for slot in 0..6 {
                            let ordinal = lane * 6 + slot;
                            let problem = unique_problem(seed * 1_000 + ordinal);
                            let r = request(ordinal, &problem);
                            if client_disconnect == Some(ordinal) {
                                // Scripted mid-flight disconnect.
                                client.send(&r).unwrap();
                                abandoned.fetch_add(1, Ordering::Relaxed);
                                client = Client::connect(addr).unwrap();
                                continue;
                            }
                            if let Some((at, stall)) = client_stall {
                                if at == ordinal {
                                    client.send(&r).unwrap();
                                    std::thread::sleep(stall.min(Duration::from_millis(150)));
                                    let response = client.read_response().unwrap();
                                    assert!(TERMINAL.contains(&response.status));
                                    continue;
                                }
                            }
                            if let Some((at, size)) = burst {
                                if at == ordinal {
                                    // Scripted thundering herd.
                                    std::thread::scope(|burst_scope| {
                                        for b in 0..size {
                                            let extra =
                                                unique_problem(seed * 1_000 + 500 + u64::from(b));
                                            let req = request(9_000 + u64::from(b), &extra);
                                            burst_scope.spawn(move || {
                                                let mut c = Client::connect(addr).unwrap();
                                                let response = c.request(&req).unwrap();
                                                assert!(TERMINAL.contains(&response.status));
                                            });
                                        }
                                    });
                                }
                            }
                            let response = client.request(&r).unwrap();
                            assert!(
                                TERMINAL.contains(&response.status),
                                "seed {seed} ordinal {ordinal}"
                            );
                        }
                    });
                }
            });
            // Post-soak liveness probe: the service still solves.
            let mut client = Client::connect(addr).unwrap();
            let probe = client
                .request(&request(77, &unique_problem(seed * 1_000 + 999)))
                .unwrap();
            assert!(
                matches!(probe.status, Status::Solved | Status::Rejected),
                "seed {seed}: post-soak probe got {:?}",
                probe.status
            );
            // Terminality in countable form; abandoned requests may
            // still be mid-solve, so allow the in-flight remainder to
            // settle before checking.
            let expected_min = 24 - abandoned.load(Ordering::Relaxed) + 1;
            let mut waited = 0;
            while server.stats().terminal_total()
                != server.stats().responses.load(Ordering::Relaxed)
                && waited < 100
            {
                std::thread::sleep(Duration::from_millis(10));
                waited += 1;
            }
            let stats = server.stats();
            assert_eq!(
                stats.terminal_total(),
                stats.responses.load(Ordering::Relaxed),
                "seed {seed}: some response carried a non-terminal accounting"
            );
            assert!(
                stats.responses.load(Ordering::Relaxed) >= expected_min,
                "seed {seed}: {} responses < {expected_min} minimum",
                stats.responses.load(Ordering::Relaxed)
            );
        });
    }
}
