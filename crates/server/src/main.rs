//! The `tela-server` binary: bind, serve, and (optionally) stop after a
//! fixed run time.
//!
//! ```text
//! tela-server [--addr 127.0.0.1:7171] [--workers 4] [--queue 64]
//!             [--degrade 48] [--cache 256] [--max-conns 128]
//!             [--run-seconds 0]
//! ```
//!
//! `--run-seconds 0` (the default) serves until the process is killed;
//! a positive value runs a timed session and prints a stats summary —
//! which is how the CI smoke drives it.
//!
//! `TELA_TRACE=1` (wall clock) opts the shared pipeline into tracing:
//! the `stats` command then reports mirrored response counters and
//! histogram quantiles from the live metrics registry, and the `trace`
//! command returns a span rollup. Off by default — a shared tracer's
//! event buffer grows for the life of the process. Per-request tracing
//! (`"trace": true` on a solve request) works either way.

use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;
use tela_server::{Server, ServerConfig};

fn arg<T: std::str::FromStr>(flag: &str, default: T) -> T {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == flag {
            if let Some(value) = args.next() {
                if let Ok(parsed) = value.parse() {
                    return parsed;
                }
            }
        }
    }
    default
}

fn main() -> std::io::Result<()> {
    let addr: String = arg("--addr", "127.0.0.1:7171".to_string());
    let run_seconds: u64 = arg("--run-seconds", 0);
    let config = ServerConfig {
        workers: arg("--workers", 4),
        queue_capacity: arg("--queue", 64),
        degrade_watermark: arg("--degrade", 48),
        cache_capacity: arg("--cache", 256),
        max_connections: arg("--max-conns", 128),
        tela: telamalloc::TelaConfig {
            tracer: tela_trace::Tracer::from_env(),
            ..telamalloc::TelaConfig::default()
        },
        ..ServerConfig::default()
    };
    let listener = TcpListener::bind(&addr)?;
    println!("tela-server listening on {}", listener.local_addr()?);
    let server = Server::new(config);
    let shutdown = AtomicBool::new(false);
    std::thread::scope(|scope| {
        if run_seconds > 0 {
            scope.spawn(|| {
                std::thread::sleep(Duration::from_secs(run_seconds));
                shutdown.store(true, Ordering::Release);
            });
        }
        server.serve(listener, &shutdown)
    })?;
    let stats = server.stats();
    println!(
        "served {} responses (solved {}, infeasible {}, best_effort {}, rejected {}, timed_out {}); \
         cache hits {}, shed {}, degraded {}, worker respawns {}",
        stats.responses.load(Ordering::Relaxed),
        stats.solved.load(Ordering::Relaxed),
        stats.infeasible.load(Ordering::Relaxed),
        stats.best_effort.load(Ordering::Relaxed),
        stats.rejected.load(Ordering::Relaxed),
        stats.timed_out.load(Ordering::Relaxed),
        stats.cache_hits.load(Ordering::Relaxed),
        stats.shed.load(Ordering::Relaxed),
        stats.degraded.load(Ordering::Relaxed),
        stats.worker_respawns.load(Ordering::Relaxed),
    );
    Ok(())
}
