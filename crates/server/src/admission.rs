//! Per-tenant admission control: token buckets and solve quotas.
//!
//! Each tenant owns a token bucket (`burst` capacity, `refill_per_sec`
//! tokens per second) plus hard caps on the step budget and deadline any
//! one request may claim. Admission is the *first* gate after the cache:
//! a request that cannot take a token is answered `Rejected` with a
//! `retry_after_ms` hint computed from the bucket's actual deficit, so
//! well-behaved clients converge on the sustainable rate instead of
//! hammering.
//!
//! All decisions take an explicit `now: Instant`, which keeps the logic
//! deterministic under test; the server passes the real clock.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Per-tenant limits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantConfig {
    /// Sustained admission rate, tokens (requests) per second.
    pub refill_per_sec: u32,
    /// Bucket capacity: how many requests may burst at once.
    pub burst: u32,
    /// Hard cap on one request's step budget.
    pub step_quota: u64,
    /// Hard cap on one request's deadline.
    pub deadline_cap: Duration,
}

impl Default for TenantConfig {
    fn default() -> Self {
        TenantConfig {
            refill_per_sec: 50,
            burst: 20,
            step_quota: 2_000_000,
            deadline_cap: Duration::from_secs(10),
        }
    }
}

/// One tenant's bucket state, in token-nanoseconds to avoid floats.
#[derive(Debug)]
struct Bucket {
    /// Tokens × `NANOS_PER_TOKEN` currently available.
    level: u128,
    /// Last refill instant.
    refreshed: Instant,
    /// Requests granted a token so far.
    admitted: u64,
    /// Requests refused for lack of a token so far.
    denied: u64,
}

/// One tenant's admission history (for the server's `stats` command).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TenantStats {
    /// Requests granted a token.
    pub admitted: u64,
    /// Requests refused for lack of a token.
    pub denied: u64,
}

const NANOS_PER_TOKEN: u128 = 1_000_000_000;

/// The admission decision for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Admitted; a token was consumed.
    Granted,
    /// Refused; retry after roughly this long.
    Denied {
        /// How long until a token will be available.
        retry_after: Duration,
    },
}

/// Thread-safe admission controller over all tenants.
///
/// Unknown tenants get the default [`TenantConfig`]; named overrides
/// are fixed at construction.
#[derive(Debug, Default)]
pub struct AdmissionController {
    default_config: TenantConfig,
    overrides: HashMap<String, TenantConfig>,
    buckets: Mutex<HashMap<String, Bucket>>,
}

impl AdmissionController {
    /// Creates a controller with `default_config` for unknown tenants.
    pub fn new(default_config: TenantConfig) -> Self {
        AdmissionController {
            default_config,
            overrides: HashMap::new(),
            buckets: Mutex::new(HashMap::new()),
        }
    }

    /// Adds a per-tenant override.
    pub fn with_tenant(mut self, name: impl Into<String>, config: TenantConfig) -> Self {
        self.overrides.insert(name.into(), config);
        self
    }

    /// The limits that apply to `tenant`.
    pub fn config_for(&self, tenant: &str) -> &TenantConfig {
        self.overrides.get(tenant).unwrap_or(&self.default_config)
    }

    /// Tries to admit one request for `tenant` at `now`.
    pub fn try_admit_at(&self, tenant: &str, now: Instant) -> Admission {
        let config = self.config_for(tenant);
        let rate = u128::from(config.refill_per_sec.max(1));
        let capacity = u128::from(config.burst.max(1)) * NANOS_PER_TOKEN;
        let mut buckets = self
            .buckets
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let bucket = buckets.entry(tenant.to_string()).or_insert(Bucket {
            level: capacity,
            refreshed: now,
            admitted: 0,
            denied: 0,
        });
        // Refill for elapsed time, saturating at the burst capacity.
        let elapsed = now.saturating_duration_since(bucket.refreshed).as_nanos();
        bucket.level = (bucket.level + elapsed * rate).min(capacity);
        bucket.refreshed = now;
        if bucket.level >= NANOS_PER_TOKEN {
            bucket.level -= NANOS_PER_TOKEN;
            bucket.admitted += 1;
            Admission::Granted
        } else {
            bucket.denied += 1;
            let deficit = NANOS_PER_TOKEN - bucket.level;
            let wait_nanos = deficit.div_ceil(rate);
            Admission::Denied {
                retry_after: Duration::from_nanos(wait_nanos.min(u128::from(u64::MAX)) as u64),
            }
        }
    }

    /// Per-tenant admitted/denied counts, name-ordered. Only tenants
    /// that have actually sent a request appear.
    pub fn tenant_stats(&self) -> Vec<(String, TenantStats)> {
        let buckets = self
            .buckets
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut stats: Vec<(String, TenantStats)> = buckets
            .iter()
            .map(|(name, b)| {
                (
                    name.clone(),
                    TenantStats {
                        admitted: b.admitted,
                        denied: b.denied,
                    },
                )
            })
            .collect();
        stats.sort_by(|a, b| a.0.cmp(&b.0));
        stats
    }

    /// Clamps a request's asked step budget to the tenant's quota.
    pub fn clamp_steps(&self, tenant: &str, asked: Option<u64>) -> u64 {
        let quota = self.config_for(tenant).step_quota;
        asked.map_or(quota, |steps| steps.min(quota))
    }

    /// Clamps a request's asked deadline to the tenant's cap.
    pub fn clamp_deadline(&self, tenant: &str, asked: Option<Duration>) -> Duration {
        let cap = self.config_for(tenant).deadline_cap;
        asked.map_or(cap, |d| d.min(cap))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller(refill_per_sec: u32, burst: u32) -> AdmissionController {
        AdmissionController::new(TenantConfig {
            refill_per_sec,
            burst,
            ..TenantConfig::default()
        })
    }

    #[test]
    fn bursts_up_to_capacity_then_denies() {
        let c = controller(10, 3);
        let t0 = Instant::now();
        for _ in 0..3 {
            assert_eq!(c.try_admit_at("a", t0), Admission::Granted);
        }
        let Admission::Denied { retry_after } = c.try_admit_at("a", t0) else {
            panic!("fourth request must be denied");
        };
        // Empty bucket at 10/s: the next token is 100ms away.
        assert_eq!(retry_after, Duration::from_millis(100));
    }

    #[test]
    fn refill_restores_tokens_at_the_configured_rate() {
        let c = controller(10, 2);
        let t0 = Instant::now();
        assert_eq!(c.try_admit_at("a", t0), Admission::Granted);
        assert_eq!(c.try_admit_at("a", t0), Admission::Granted);
        assert!(matches!(c.try_admit_at("a", t0), Admission::Denied { .. }));
        // 100ms refills exactly one token at 10/s.
        let t1 = t0 + Duration::from_millis(100);
        assert_eq!(c.try_admit_at("a", t1), Admission::Granted);
        assert!(matches!(c.try_admit_at("a", t1), Admission::Denied { .. }));
        // A long quiet period saturates at burst, not beyond.
        let t2 = t1 + Duration::from_secs(60);
        assert_eq!(c.try_admit_at("a", t2), Admission::Granted);
        assert_eq!(c.try_admit_at("a", t2), Admission::Granted);
        assert!(matches!(c.try_admit_at("a", t2), Admission::Denied { .. }));
    }

    #[test]
    fn tenants_have_independent_buckets() {
        let c = controller(1, 1);
        let t0 = Instant::now();
        assert_eq!(c.try_admit_at("a", t0), Admission::Granted);
        assert!(matches!(c.try_admit_at("a", t0), Admission::Denied { .. }));
        assert_eq!(c.try_admit_at("b", t0), Admission::Granted);
        // Each decision lands in its tenant's admitted/denied history.
        assert_eq!(
            c.tenant_stats(),
            vec![
                (
                    "a".to_string(),
                    TenantStats {
                        admitted: 1,
                        denied: 1
                    }
                ),
                (
                    "b".to_string(),
                    TenantStats {
                        admitted: 1,
                        denied: 0
                    }
                ),
            ]
        );
    }

    #[test]
    fn overrides_beat_the_default() {
        let c = controller(1, 1).with_tenant(
            "vip",
            TenantConfig {
                refill_per_sec: 100,
                burst: 50,
                step_quota: 9,
                deadline_cap: Duration::from_millis(500),
            },
        );
        assert_eq!(c.config_for("vip").burst, 50);
        assert_eq!(c.config_for("other").burst, 1);
        assert_eq!(c.clamp_steps("vip", Some(1_000_000)), 9);
        assert_eq!(c.clamp_steps("vip", None), 9);
        assert_eq!(
            c.clamp_deadline("vip", Some(Duration::from_secs(30))),
            Duration::from_millis(500)
        );
        assert_eq!(c.clamp_deadline("vip", None), Duration::from_millis(500));
    }

    #[test]
    fn time_going_backwards_is_harmless() {
        let c = controller(10, 1);
        let t0 = Instant::now() + Duration::from_secs(10);
        assert_eq!(c.try_admit_at("a", t0), Admission::Granted);
        // An earlier `now` (monotonic clock oddity) must not panic or
        // mint tokens.
        let earlier = t0 - Duration::from_secs(5);
        assert!(matches!(
            c.try_admit_at("a", earlier),
            Admission::Denied { .. }
        ));
    }
}
