//! A minimal blocking client, used by the integration tests, the chaos
//! harness, and the throughput bench.

use crate::json::{self, Value};
use crate::protocol::{
    parse_response, render_request, write_frame, Frame, FrameReader, Request, Response,
};
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A blocking connection to a tela-server.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    reader: FrameReader,
}

impl Client {
    /// Connects to `addr`.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            reader: FrameReader::new(),
        })
    }

    /// Sets how long [`Client::request`] may wait for the reply frame
    /// (`None` blocks forever).
    pub fn set_reply_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// Sends `request` and blocks for its terminal response.
    pub fn request(&mut self, request: &Request) -> io::Result<Response> {
        self.send(request)?;
        self.read_response()
    }

    /// Sends `request` without reading the reply — the chaos harness
    /// uses this to script stalls and mid-flight disconnects.
    pub fn send(&mut self, request: &Request) -> io::Result<()> {
        write_frame(&mut self.stream, &render_request(request))
    }

    /// Blocks for the next response frame.
    pub fn read_response(&mut self) -> io::Result<Response> {
        match self.reader.poll(&mut self.stream)? {
            Frame::Payload(payload) => parse_response(&payload)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string())),
            Frame::Eof => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection before replying",
            )),
            Frame::Pending => Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "reply timeout elapsed",
            )),
        }
    }

    /// Requests the server's live metrics snapshot (`{"cmd": "stats"}`):
    /// counters, gauges, histogram quantiles, queue depth, cache hit
    /// rate, and per-tenant admission stats, as parsed JSON.
    pub fn stats(&mut self) -> io::Result<Value> {
        self.command("stats")
    }

    /// Requests the server's aggregate span rollup (`{"cmd": "trace"}`):
    /// span keys, counts, and totals from the shared trace.
    pub fn trace_rollup(&mut self) -> io::Result<Value> {
        self.command("trace")
    }

    fn command(&mut self, cmd: &str) -> io::Result<Value> {
        write_frame(&mut self.stream, &format!("{{\"cmd\":\"{cmd}\",\"id\":1}}"))?;
        match self.reader.poll(&mut self.stream)? {
            Frame::Payload(payload) => json::parse(&payload)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string())),
            Frame::Eof => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection before replying",
            )),
            Frame::Pending => Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "reply timeout elapsed",
            )),
        }
    }
}
