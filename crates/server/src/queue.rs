//! Bounded work queue with deadline-ordered service and load shedding.
//!
//! The queue is the server's only buffer between accept threads and
//! solver workers, and it is *bounded*: when full, pushing sheds the
//! entry with the **earliest deadline** — incoming or already queued —
//! and hands it back to the caller to answer with a terminal
//! `Rejected { retry_after }`. Under overload the earliest deadline is
//! the request most likely to time out anyway, so shedding it converts
//! a doomed slow `TimedOut` into an immediate, honest rejection while
//! the queue keeps the work that still has headroom.
//!
//! Service order is earliest-deadline-first too, so urgent work that
//! *was* admitted jumps ahead of lazy deadlines.
//!
//! Deadlines are explicit `Instant`s supplied by the caller, keeping the
//! queue itself clock-free and deterministic under test.

use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Result of a push.
#[derive(Debug, PartialEq, Eq)]
pub enum Push<T> {
    /// The item was queued (nothing was shed).
    Accepted,
    /// The queue was full: this item (the incoming one or a previously
    /// queued one, whichever has the earliest deadline) was shed and
    /// must be answered with a terminal rejection.
    Shed(T),
    /// The queue is closed; the item is handed back.
    Closed(T),
}

/// Result of a pop.
#[derive(Debug, PartialEq, Eq)]
pub enum Pop<T> {
    /// The earliest-deadline item.
    Item(T),
    /// Nothing arrived within the wait.
    Empty,
    /// The queue is closed and drained.
    Closed,
}

#[derive(Debug)]
struct Entry<T> {
    deadline: Instant,
    /// Arrival order, to break deadline ties FIFO.
    seq: u64,
    item: T,
}

#[derive(Debug)]
struct State<T> {
    entries: Vec<Entry<T>>,
    closed: bool,
    seq: u64,
}

/// A bounded, deadline-ordered, sheddable MPMC queue.
#[derive(Debug)]
pub struct WorkQueue<T> {
    state: Mutex<State<T>>,
    available: Condvar,
    capacity: usize,
}

impl<T> WorkQueue<T> {
    /// Creates a queue holding at most `capacity` items.
    pub fn new(capacity: usize) -> Self {
        WorkQueue {
            state: Mutex::new(State {
                entries: Vec::new(),
                closed: false,
                seq: 0,
            }),
            available: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    fn locked(&self) -> std::sync::MutexGuard<'_, State<T>> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Current queue depth.
    pub fn depth(&self) -> usize {
        self.locked().entries.len()
    }

    /// Queues `item` under `deadline`, shedding on overflow.
    pub fn push(&self, item: T, deadline: Instant) -> Push<T> {
        let mut state = self.locked();
        if state.closed {
            return Push::Closed(item);
        }
        state.seq += 1;
        let entry = Entry {
            deadline,
            seq: state.seq,
            item,
        };
        if state.entries.len() < self.capacity {
            state.entries.push(entry);
            drop(state);
            self.available.notify_one();
            return Push::Accepted;
        }
        // Full: find the earliest deadline among queued entries; if the
        // incoming one is even earlier (ties shed the incoming, which
        // is the younger claim on the slot), shed it instead.
        let victim_idx = state
            .entries
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| (e.deadline, e.seq))
            .map(|(i, _)| i)
            .expect("full queue is non-empty");
        if entry.deadline <= state.entries[victim_idx].deadline {
            return Push::Shed(entry.item);
        }
        let shed = state.entries.swap_remove(victim_idx);
        state.entries.push(entry);
        drop(state);
        self.available.notify_one();
        Push::Shed(shed.item)
    }

    /// Pops the earliest-deadline item, waiting up to `wait`.
    pub fn pop_timeout(&self, wait: Duration) -> Pop<T> {
        let mut state = self.locked();
        let deadline = Instant::now() + wait;
        loop {
            if let Some(idx) = state
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| (e.deadline, e.seq))
                .map(|(i, _)| i)
            {
                return Pop::Item(state.entries.swap_remove(idx).item);
            }
            if state.closed {
                return Pop::Closed;
            }
            let now = Instant::now();
            if now >= deadline {
                return Pop::Empty;
            }
            let (next, timeout) = self
                .available
                .wait_timeout(state, deadline - now)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            state = next;
            if timeout.timed_out() && state.entries.is_empty() {
                return if state.closed {
                    Pop::Closed
                } else {
                    Pop::Empty
                };
            }
        }
    }

    /// Closes the queue and drains everything still waiting, so the
    /// caller can answer each with a terminal rejection. Subsequent
    /// pushes return [`Push::Closed`]; blocked pops wake with
    /// [`Pop::Closed`].
    pub fn close(&self) -> Vec<T> {
        let mut state = self.locked();
        state.closed = true;
        let drained = std::mem::take(&mut state.entries)
            .into_iter()
            .map(|e| e.item)
            .collect();
        drop(state);
        self.available.notify_all();
        drained
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_deadline_order_with_fifo_ties() {
        let q = WorkQueue::new(8);
        let t0 = Instant::now();
        q.push("late", t0 + Duration::from_secs(3));
        q.push("early", t0 + Duration::from_secs(1));
        q.push("mid-a", t0 + Duration::from_secs(2));
        q.push("mid-b", t0 + Duration::from_secs(2));
        let mut order = Vec::new();
        while let Pop::Item(item) = q.pop_timeout(Duration::ZERO) {
            order.push(item);
        }
        assert_eq!(order, vec!["early", "mid-a", "mid-b", "late"]);
    }

    #[test]
    fn overflow_sheds_the_earliest_deadline() {
        let q = WorkQueue::new(2);
        let t0 = Instant::now();
        assert_eq!(q.push("a", t0 + Duration::from_secs(1)), Push::Accepted);
        assert_eq!(q.push("b", t0 + Duration::from_secs(2)), Push::Accepted);
        // Incoming with the latest deadline evicts the queued "a".
        assert_eq!(q.push("c", t0 + Duration::from_secs(3)), Push::Shed("a"));
        assert_eq!(q.depth(), 2);
        // Incoming with the earliest deadline is itself shed.
        assert_eq!(q.push("d", t0 + Duration::from_millis(1)), Push::Shed("d"));
        let mut kept = Vec::new();
        while let Pop::Item(item) = q.pop_timeout(Duration::ZERO) {
            kept.push(item);
        }
        assert_eq!(kept, vec!["b", "c"]);
    }

    #[test]
    fn close_drains_and_wakes() {
        let q = WorkQueue::new(4);
        let t0 = Instant::now();
        q.push(1, t0);
        q.push(2, t0);
        assert_eq!(q.close(), vec![1, 2]);
        assert_eq!(q.push(3, t0), Push::Closed(3));
        assert_eq!(q.pop_timeout(Duration::ZERO), Pop::Closed);
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn pop_blocks_until_a_push_arrives() {
        let q = WorkQueue::new(4);
        std::thread::scope(|scope| {
            let popper = scope.spawn(|| q.pop_timeout(Duration::from_secs(5)));
            std::thread::sleep(Duration::from_millis(20));
            q.push(7, Instant::now());
            assert_eq!(popper.join().unwrap(), Pop::Item(7));
        });
    }

    #[test]
    fn empty_pop_times_out() {
        let q: WorkQueue<i32> = WorkQueue::new(1);
        assert_eq!(q.pop_timeout(Duration::from_millis(5)), Pop::Empty);
    }
}
