//! The allocation service: accept loop, worker pool, and the
//! request-lifecycle state machine.
//!
//! # The one rule
//!
//! **Every request gets exactly one terminal response.** Every path out
//! of the pipeline — malformed payload, admission denial, queue shed,
//! queue-expired deadline, solver success, proven infeasibility, budget
//! exhaustion, worker panic, even server shutdown with work still
//! queued — ends in a [`Response`] with a terminal [`Status`]. The
//! chaos suite's core assertion is that this holds under fault
//! injection.
//!
//! # Pipeline
//!
//! ```text
//! frame → parse → cache lookup ──hit──────────────────────→ Solved
//!                    │ miss
//!                 admission (token bucket) ──deny──────────→ Rejected{retry_after}
//!                    │ grant (clamp steps/deadline to tenant quota)
//!                 saturated? ──yes── greedy only ──────────→ Solved | BestEffort
//!                    │ no
//!                 bounded EDF queue ──shed────────────────→ Rejected{retry_after}
//!                    │ pop (worker)
//!                 deadline already passed? ──yes──────────→ TimedOut
//!                    │ no
//!                 escalation ladder under Budget ─────────→ Solved | Infeasible
//!                    │ panic / budget out                    | BestEffort | TimedOut
//!                    └─ reply-then-die: the worker answers
//!                       terminally *before* its panic
//!                       propagates, and the supervisor
//!                       respawns it
//! ```
//!
//! Fault tolerance is structural, not exceptional: workers run under a
//! supervisor that respawns them after a panic, client disconnects flip
//! the request's shared cancel flag so the solver stops burning budget
//! on an answer nobody will read, and shutdown drains the queue into
//! rejections rather than silence.

use crate::admission::{Admission, AdmissionController, TenantConfig};
use crate::cache::SolutionCache;
use crate::json::{self, Value};
use crate::protocol::{
    parse_payload, request_id_of, write_frame, Command, CommandKind, Frame, FrameReader, Payload,
    Response, Status,
};
use crate::queue::{Pop, Push, WorkQueue};
use std::collections::BTreeMap;
use std::io::{self, Write};
use std::net::{TcpListener, TcpStream};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};
use tela_model::{Budget, CanonicalForm, Problem, SolveOutcome};
use tela_trace::{write_jsonl, MetricValue, Tracer};
use telamalloc::{EscalationLadder, TelaConfig};

#[cfg(feature = "fault-inject")]
use tela_model::ServerFaultPlan;

/// How the service behaves under load.
#[derive(Debug)]
pub struct ServerConfig {
    /// Solver worker threads.
    pub workers: usize,
    /// Maximum concurrent client connections. Each connection costs a
    /// thread plus up to [`crate::protocol::MAX_FRAME_LEN`] of buffer,
    /// so the cap is the flood guard that per-request admission control
    /// (which runs after the thread exists) cannot be; connections over
    /// the cap get a terminal `Rejected{retry_after}` and are closed.
    pub max_connections: usize,
    /// Work-queue capacity; beyond it, pushes shed.
    pub queue_capacity: usize,
    /// Queue depth at which *new* admitted work degrades to the greedy
    /// heuristic instead of queuing for the full ladder.
    pub degrade_watermark: usize,
    /// Solution-cache capacity (canonical forms).
    pub cache_capacity: usize,
    /// Default per-tenant limits (overridable per tenant).
    pub admission: TenantConfig,
    /// Solver configuration for the escalation ladder; its tracer also
    /// carries the server's own metrics.
    pub tela: TelaConfig,
    /// Scripted server-level faults (chaos testing only).
    #[cfg(feature = "fault-inject")]
    pub fault_plan: Option<ServerFaultPlan>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            max_connections: 128,
            queue_capacity: 64,
            degrade_watermark: 48,
            cache_capacity: 256,
            admission: TenantConfig::default(),
            tela: TelaConfig::default(),
            #[cfg(feature = "fault-inject")]
            fault_plan: None,
        }
    }
}

/// Monotonic counters describing everything the server has done.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Terminal responses issued, total and by status.
    pub responses: AtomicU64,
    /// `Solved` responses.
    pub solved: AtomicU64,
    /// `Infeasible` responses.
    pub infeasible: AtomicU64,
    /// `BestEffort` responses.
    pub best_effort: AtomicU64,
    /// `Rejected` responses (admission, shed, malformed, shutdown).
    pub rejected: AtomicU64,
    /// `TimedOut` responses.
    pub timed_out: AtomicU64,
    /// Responses served from the solution cache.
    pub cache_hits: AtomicU64,
    /// Jobs evicted by queue overflow.
    pub shed: AtomicU64,
    /// Admitted requests degraded to greedy-only under saturation.
    pub degraded: AtomicU64,
    /// Worker threads respawned after a panic.
    pub worker_respawns: AtomicU64,
    /// Full escalation-ladder solves actually run.
    pub solve_calls: AtomicU64,
    /// Requests whose client vanished before the terminal reply.
    pub disconnects: AtomicU64,
    /// Connections refused at accept because `max_connections` was
    /// reached (each also counts one `Rejected` response).
    pub conn_refused: AtomicU64,
}

impl ServerStats {
    fn record(&self, response: &Response) {
        self.responses.fetch_add(1, Ordering::Relaxed);
        let by_status = match response.status {
            Status::Solved => &self.solved,
            Status::Infeasible => &self.infeasible,
            Status::BestEffort => &self.best_effort,
            Status::Rejected => &self.rejected,
            Status::TimedOut => &self.timed_out,
        };
        by_status.fetch_add(1, Ordering::Relaxed);
        if response.cache_hit {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Sum of the per-status counters (must equal `responses`: the
    /// zero-non-terminal invariant in countable form).
    pub fn terminal_total(&self) -> u64 {
        self.solved.load(Ordering::Relaxed)
            + self.infeasible.load(Ordering::Relaxed)
            + self.best_effort.load(Ordering::Relaxed)
            + self.rejected.load(Ordering::Relaxed)
            + self.timed_out.load(Ordering::Relaxed)
    }
}

/// One admitted unit of work, owned by the queue until a worker or the
/// shutdown drain answers it.
#[derive(Debug)]
struct Job {
    id: u64,
    /// Global admission ordinal (fault plans key on it).
    #[cfg_attr(not(feature = "fault-inject"), allow(dead_code))]
    ordinal: u64,
    problem: Problem,
    form: CanonicalForm,
    max_steps: u64,
    deadline: Instant,
    /// Flipped when the requesting client disconnects.
    cancel: Arc<AtomicBool>,
    /// Present when the request opted into tracing: a fresh per-request
    /// tracer the solve runs under, whose span events ride back in the
    /// terminal response. Isolation is structural — the tracer is
    /// created for this request and shared with nobody, so tenants can
    /// never see each other's spans.
    tracer: Option<Tracer>,
    reply: mpsc::Sender<Response>,
}

/// The allocation service. Construct once, then [`Server::serve`].
#[derive(Debug)]
pub struct Server {
    config: ServerConfig,
    admission: AdmissionController,
    cache: SolutionCache,
    queue: WorkQueue<Job>,
    ladder: EscalationLadder,
    stats: ServerStats,
    ordinal: AtomicU64,
    /// Live connection-thread count, bounded by `max_connections`.
    connections: AtomicUsize,
}

/// Poll interval for shutdown/disconnect observation.
const POLL: Duration = Duration::from_millis(20);

impl Server {
    /// Builds a server from `config`; every tenant gets
    /// `config.admission` as its limits.
    pub fn new(config: ServerConfig) -> Self {
        let admission = AdmissionController::new(config.admission.clone());
        Server::with_admission(admission, config)
    }

    /// Builds a server with an explicit admission controller (for
    /// per-tenant overrides beyond the config's default).
    pub fn with_admission(admission: AdmissionController, mut config: ServerConfig) -> Self {
        config.workers = config.workers.max(1);
        config.max_connections = config.max_connections.max(1);
        Server {
            cache: SolutionCache::new(config.cache_capacity),
            queue: WorkQueue::new(config.queue_capacity),
            ladder: EscalationLadder::new(config.tela.clone()),
            stats: ServerStats::default(),
            ordinal: AtomicU64::new(0),
            connections: AtomicUsize::new(0),
            admission,
            config,
        }
    }

    /// Live counters.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// The solution cache (for tests and bench assertions).
    pub fn cache(&self) -> &SolutionCache {
        &self.cache
    }

    /// Runs the accept loop on `listener` until `shutdown` flips, then
    /// drains the queue into terminal rejections and joins every
    /// connection and worker thread.
    pub fn serve(&self, listener: TcpListener, shutdown: &AtomicBool) -> io::Result<()> {
        listener.set_nonblocking(true)?;
        std::thread::scope(|scope| {
            for index in 0..self.config.workers {
                scope.spawn(move || self.supervise_worker(index));
            }
            while !shutdown.load(Ordering::Acquire) {
                match listener.accept() {
                    Ok((mut stream, _peer)) => {
                        // Bound concurrency *at accept*: admission
                        // control runs per-request, after a connection
                        // thread (and its frame buffer) already exists,
                        // so a connection flood has to be refused here.
                        if self.connections.fetch_add(1, Ordering::AcqRel)
                            >= self.config.max_connections
                        {
                            self.connections.fetch_sub(1, Ordering::AcqRel);
                            self.stats.conn_refused.fetch_add(1, Ordering::Relaxed);
                            self.tracer().count("server.conn_refused", 1);
                            // Short write timeout: the refusal must not
                            // let a slow client stall the accept loop.
                            let _ = stream.set_write_timeout(Some(Duration::from_millis(100)));
                            self.reply(
                                &mut stream,
                                Response::rejected(
                                    0,
                                    self.retry_hint_ms(),
                                    "server at connection capacity",
                                ),
                            );
                            continue;
                        }
                        scope.spawn(move || {
                            self.handle_connection(stream, shutdown);
                            self.connections.fetch_sub(1, Ordering::AcqRel);
                        });
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        // Accept failures (fd exhaustion, transient
                        // network errors) must not kill the service.
                        self.tracer().count("server.accept_errors", 1);
                        std::thread::sleep(Duration::from_millis(10));
                    }
                }
            }
            // Drain: everything still queued gets an honest rejection
            // instead of silence. Workers observe the closed queue and
            // exit once their in-flight job (if any) is answered.
            let drained = self.queue.close();
            let count = drained.len();
            for job in drained {
                let _ = job
                    .reply
                    .send(Response::rejected(job.id, 1_000, "server shutting down"));
            }
            if count > 0 {
                self.tracer()
                    .add_gauge("server.queue_depth", -(count as i64));
            }
        });
        Ok(())
    }

    fn tracer(&self) -> &tela_trace::Tracer {
        &self.config.tela.tracer
    }

    // ---- worker side -----------------------------------------------

    /// Runs `worker_loop` until clean exit, respawning it (in place, on
    /// this same supervisor thread) every time it panics. Panic isolation
    /// is the contract that lets `process_job` adopt reply-then-die.
    fn supervise_worker(&self, index: usize) {
        loop {
            match catch_unwind(AssertUnwindSafe(|| self.worker_loop(index))) {
                Ok(()) => return,
                Err(_) => {
                    self.stats.worker_respawns.fetch_add(1, Ordering::Relaxed);
                    self.tracer().count("server.worker_respawns", 1);
                }
            }
        }
    }

    fn worker_loop(&self, _index: usize) {
        loop {
            match self.queue.pop_timeout(POLL) {
                Pop::Closed => return,
                Pop::Empty => continue,
                Pop::Item(job) => {
                    self.tracer().add_gauge("server.queue_depth", -1);
                    self.process_job(job);
                }
            }
        }
    }

    /// Solves one job and sends its terminal response. On a panic —
    /// scripted or organic — the terminal response is sent *first*, then
    /// the panic resumes so the supervisor replaces this worker: the
    /// client never pays for the server's crash with silence.
    fn process_job(&self, job: Job) {
        let now = Instant::now();
        if now >= job.deadline {
            // Spent its whole deadline waiting in the queue.
            self.send(
                &job.reply,
                attach_trace(
                    job.tracer.as_ref(),
                    Response::terminal(job.id, Status::TimedOut, "deadline expired in queue"),
                ),
            );
            return;
        }
        #[cfg(feature = "fault-inject")]
        if let Some(plan) = &self.config.fault_plan {
            if plan.worker_panics_on(job.ordinal) {
                self.send(
                    &job.reply,
                    attach_trace(
                        job.tracer.as_ref(),
                        Response::terminal(
                            job.id,
                            Status::BestEffort,
                            "worker fault while solving; degraded answer",
                        ),
                    ),
                );
                panic!("fault-inject: worker panic on request {}", job.ordinal);
            }
        }
        let budget = self.budget_for(&job);
        self.stats.solve_calls.fetch_add(1, Ordering::Relaxed);
        self.tracer().count("server.solve_calls", 1);
        // A traced request solves on its own ladder wired to its own
        // tracer; everyone else shares the server's ladder.
        let traced_ladder;
        let ladder = match &job.tracer {
            Some(tracer) => {
                traced_ladder = EscalationLadder::new(TelaConfig {
                    tracer: tracer.clone(),
                    ..self.config.tela.clone()
                });
                &traced_ladder
            }
            None => &self.ladder,
        };
        let result = catch_unwind(AssertUnwindSafe(|| ladder.solve(&job.problem, &budget)));
        let response = match result {
            Ok(ladder) => {
                let steps = ladder.stats.steps;
                match ladder.outcome {
                    SolveOutcome::Solved(solution) => {
                        self.cache.insert(&job.form, &solution);
                        Response {
                            id: job.id,
                            status: Status::Solved,
                            addresses: Some(solution.addresses().to_vec()),
                            retry_after_ms: None,
                            detail: String::new(),
                            cache_hit: false,
                            steps,
                            trace_jsonl: None,
                        }
                    }
                    SolveOutcome::Infeasible => Response {
                        steps,
                        ..Response::terminal(job.id, Status::Infeasible, "proven infeasible")
                    },
                    SolveOutcome::BestEffort(be) => {
                        let (status, detail) = if Instant::now() >= job.deadline {
                            (Status::TimedOut, "deadline expired mid-solve".to_string())
                        } else if job.cancel.load(Ordering::Acquire) {
                            (Status::BestEffort, "cancelled by client".to_string())
                        } else {
                            (
                                Status::BestEffort,
                                format!(
                                    "budget exhausted at stage {:?}; {} of {} buffers placed",
                                    be.stage,
                                    be.partial.len(),
                                    job.problem.len()
                                ),
                            )
                        };
                        Response {
                            steps,
                            ..Response::terminal(job.id, status, detail)
                        }
                    }
                    // The ladder contract says these never surface, but
                    // a terminal answer beats trusting a contract.
                    SolveOutcome::GaveUp | SolveOutcome::BudgetExceeded => Response {
                        steps,
                        ..Response::terminal(job.id, Status::BestEffort, "solver gave up")
                    },
                }
            }
            Err(payload) => {
                self.send(
                    &job.reply,
                    attach_trace(
                        job.tracer.as_ref(),
                        Response::terminal(
                            job.id,
                            Status::BestEffort,
                            "solver panicked; degraded answer",
                        ),
                    ),
                );
                resume_unwind(payload);
            }
        };
        self.send(&job.reply, attach_trace(job.tracer.as_ref(), response));
    }

    fn budget_for(&self, job: &Job) -> Budget {
        let budget = Budget::unlimited()
            .with_max_steps(job.max_steps)
            .with_deadline(job.deadline)
            .with_cancel(job.cancel.clone());
        #[cfg(feature = "fault-inject")]
        if let Some(plan) = &self.config.fault_plan {
            if let Some(solver_plan) = plan.solver_plan_for(job.ordinal) {
                return budget.with_fault_injector(Arc::new(solver_plan.injector()));
            }
        }
        budget
    }

    // ---- connection side -------------------------------------------

    fn handle_connection(&self, mut stream: TcpStream, shutdown: &AtomicBool) {
        let _ = stream.set_read_timeout(Some(POLL));
        let _ = stream.set_nodelay(true);
        let mut reader = FrameReader::new();
        loop {
            if shutdown.load(Ordering::Acquire) {
                return;
            }
            match reader.poll(&mut stream) {
                Ok(Frame::Payload(payload)) => self.serve_request(&mut stream, &payload),
                Ok(Frame::Eof) => return,
                Ok(Frame::Pending) => {}
                Err(_) => {
                    // Oversized or non-UTF-8 frame: the stream is no
                    // longer parseable, so answer terminally and drop it.
                    self.reply(
                        &mut stream,
                        Response::terminal(0, Status::Rejected, "unparseable frame"),
                    );
                    return;
                }
            }
        }
    }

    /// Runs one request through the pipeline and writes its terminal
    /// response (requests on one connection are served in order).
    ///
    /// Introspection commands (`{"cmd": ...}`) are dispatched before the
    /// pipeline and answered inline; everything else gets a `server.request`
    /// span whose every event carries the request id.
    fn serve_request(&self, stream: &mut TcpStream, payload: &str) {
        let request = match parse_payload(payload) {
            Ok(Payload::Command(command)) => return self.serve_command(stream, &command),
            Ok(Payload::Solve(request)) => request,
            Err(e) => {
                let id = request_id_of(payload);
                let tracer = self.tracer().with_field("request", id);
                let span = tracer.begin("server", "request", vec![]);
                self.reply(
                    stream,
                    Response::terminal(id, Status::Rejected, format!("malformed request: {e}")),
                );
                self.end_request(&tracer, span, "rejected");
                return;
            }
        };
        let tracer = self.tracer().with_field("request", request.id);
        let span = tracer.begin("server", "request", vec![]);
        // Opt-in per-request tracing: a fresh wall-clock tracer whose
        // span events (and only this request's) ride back in the
        // terminal response.
        let request_tracer = request
            .trace
            .then(|| Tracer::wall().with_field("request", request.id));
        let problem = match tela_model::parse_problem(&request.problem) {
            Ok(problem) => problem,
            Err(e) => {
                self.reply(
                    stream,
                    Response::terminal(
                        request.id,
                        Status::Rejected,
                        format!("malformed problem: {e}"),
                    ),
                );
                self.end_request(&tracer, span, "rejected");
                return;
            }
        };

        // Cache hits are served before admission: answering from memory
        // costs nearly nothing, so even a throttled tenant gets them.
        let form = CanonicalForm::of(&problem);
        if let Some(solution) = self.cache.lookup(&form) {
            if let Some(rt) = &request_tracer {
                rt.instant("server", "cache_hit", vec![]);
            }
            self.reply(
                stream,
                attach_trace(
                    request_tracer.as_ref(),
                    Response {
                        id: request.id,
                        status: Status::Solved,
                        addresses: Some(solution.addresses().to_vec()),
                        retry_after_ms: None,
                        detail: String::new(),
                        cache_hit: true,
                        steps: 0,
                        trace_jsonl: None,
                    },
                ),
            );
            self.end_request(&tracer, span, "cache_hit");
            return;
        }

        let now = Instant::now();
        if let Admission::Denied { retry_after } = self.admission.try_admit_at(&request.tenant, now)
        {
            self.reply(
                stream,
                Response::rejected(
                    request.id,
                    (retry_after.as_millis() as u64).max(1),
                    format!("tenant '{}' over admission rate", request.tenant),
                ),
            );
            self.end_request(&tracer, span, "rejected");
            return;
        }
        let max_steps = self
            .admission
            .clamp_steps(&request.tenant, request.max_steps);
        let deadline = now
            + self.admission.clamp_deadline(
                &request.tenant,
                request.deadline_ms.map(Duration::from_millis),
            );
        let ordinal = self.ordinal.fetch_add(1, Ordering::Relaxed);

        // Graceful degradation: when the queue is saturated, admitted
        // work gets the greedy heuristic inline instead of a spot in
        // line it would mostly spend timing out.
        if self.queue.depth() >= self.config.degrade_watermark {
            self.stats.degraded.fetch_add(1, Ordering::Relaxed);
            self.tracer().count("server.degraded", 1);
            let response =
                self.solve_degraded(request.id, &problem, &form, request_tracer.as_ref());
            self.reply(stream, attach_trace(request_tracer.as_ref(), response));
            self.end_request(&tracer, span, "degraded");
            return;
        }

        let cancel = Arc::new(AtomicBool::new(false));
        let (reply_tx, reply_rx) = mpsc::channel();
        let job = Job {
            id: request.id,
            ordinal,
            problem,
            form,
            max_steps,
            deadline,
            cancel: Arc::clone(&cancel),
            tracer: request_tracer,
            reply: reply_tx,
        };
        match self.queue.push(job, deadline) {
            Push::Accepted => {
                self.tracer().add_gauge("server.queue_depth", 1);
            }
            Push::Shed(shed) => {
                self.stats.shed.fetch_add(1, Ordering::Relaxed);
                self.tracer().count("server.shed", 1);
                let _ = shed.reply.send(Response::rejected(
                    shed.id,
                    self.retry_hint_ms(),
                    "queue full; earliest-deadline request shed",
                ));
            }
            Push::Closed(job) => {
                let _ = job
                    .reply
                    .send(Response::rejected(job.id, 1_000, "server shutting down"));
            }
        }
        // `job.reply` is the only sender left; a terminal response is
        // guaranteed by the worker, the shed path, or the shutdown
        // drain, so this loop always ends.
        let mut probe = [0u8; 1];
        let response = loop {
            match reply_rx.recv_timeout(POLL) {
                Ok(response) => break response,
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    // Liveness probe: a zero-byte peek means the peer
                    // sent FIN. TCP cannot distinguish a full close
                    // from a write-side shutdown, so half-close is
                    // *defined* as abandonment by this protocol: a
                    // client must keep its write side open until the
                    // terminal response arrives, or its in-flight solve
                    // is cancelled and answered best-effort.
                    if let Ok(0) = stream.peek(&mut probe) {
                        if !cancel.swap(true, Ordering::Release) {
                            self.stats.disconnects.fetch_add(1, Ordering::Relaxed);
                            self.tracer().count("server.disconnects", 1);
                        }
                    }
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    // Every sender died without answering — a bug, but
                    // the client still gets a terminal response.
                    break Response::terminal(
                        request.id,
                        Status::BestEffort,
                        "internal: reply channel dropped",
                    );
                }
            }
        };
        let tag = response.status.tag();
        self.reply(stream, response);
        self.end_request(&tracer, span, tag);
    }

    /// The saturated-path answer: one greedy pass, no queue, no ladder.
    /// A traced request's greedy pass records into its own tracer.
    fn solve_degraded(
        &self,
        id: u64,
        problem: &Problem,
        form: &CanonicalForm,
        request_tracer: Option<&Tracer>,
    ) -> Response {
        let greedy =
            tela_heuristics::greedy::solve_traced(problem, request_tracer.unwrap_or(self.tracer()));
        match greedy.solution {
            Some(solution) => {
                self.cache.insert(form, &solution);
                Response {
                    id,
                    status: Status::Solved,
                    addresses: Some(solution.addresses().to_vec()),
                    retry_after_ms: None,
                    detail: "degraded: greedy-only under load".to_string(),
                    cache_hit: false,
                    steps: 0,
                    trace_jsonl: None,
                }
            }
            None => Response::terminal(
                id,
                Status::BestEffort,
                format!(
                    "degraded under load: greedy needs {} of {} capacity",
                    greedy.peak,
                    problem.capacity()
                ),
            ),
        }
    }

    /// Backpressure hint after a shed: roughly one queue-drain's worth
    /// of time per queued entry, floored at 50ms.
    fn retry_hint_ms(&self) -> u64 {
        (self.queue.depth() as u64 * 20).max(50)
    }

    /// Writes a terminal response and records it. Write errors are
    /// swallowed: a vanished client doesn't un-terminate the request.
    fn reply(&self, stream: &mut TcpStream, response: Response) {
        self.send_to_stream(stream, &response);
    }

    fn send_to_stream(&self, stream: &mut TcpStream, response: &Response) {
        self.stats.record(response);
        self.mirror_response(response);
        let payload = crate::protocol::render_response(response);
        let _ = write_frame(stream, &payload);
        let _ = stream.flush();
    }

    /// Mirrors the response into the metrics registry so the `stats`
    /// command and the JSONL dump agree with [`ServerStats`]'s atomics
    /// (`server.responses` equals `terminal_total()` by construction:
    /// both are bumped on exactly the same send).
    fn mirror_response(&self, response: &Response) {
        let tracer = self.tracer();
        if !tracer.enabled() {
            return;
        }
        tracer.count("server.responses", 1);
        let by_status = match response.status {
            Status::Solved => "server.responses.solved",
            Status::Infeasible => "server.responses.infeasible",
            Status::BestEffort => "server.responses.best_effort",
            Status::Rejected => "server.responses.rejected",
            Status::TimedOut => "server.responses.timed_out",
        };
        tracer.count(by_status, 1);
        if response.cache_hit {
            tracer.count("server.cache_hits", 1);
        }
    }

    /// Sends a terminal response through a job's reply channel (the
    /// owning connection thread writes it to the wire and records it).
    fn send(&self, reply: &mpsc::Sender<Response>, response: Response) {
        let _ = reply.send(response);
    }

    fn end_request(&self, tracer: &Tracer, span: tela_trace::SpanId, outcome: &str) {
        if tracer.enabled() {
            tracer.end(
                span,
                "server",
                "request",
                vec![("outcome".into(), outcome.into())],
            );
        }
    }

    // ---- introspection ---------------------------------------------

    /// Answers a `stats`/`trace` command with one JSON snapshot frame.
    /// Command replies are not terminal [`Response`]s: they bypass
    /// [`ServerStats::record`] so introspection never perturbs the
    /// one-terminal-response accounting it reports on.
    fn serve_command(&self, stream: &mut TcpStream, command: &Command) {
        self.tracer().count("server.introspections", 1);
        let mut map = BTreeMap::new();
        map.insert("id".to_string(), Value::U64(command.id));
        match command.kind {
            CommandKind::Stats => {
                map.insert("stats".to_string(), self.stats_snapshot());
            }
            CommandKind::Trace => {
                map.insert("trace".to_string(), self.trace_snapshot());
            }
        }
        let _ = write_frame(stream, &json::render(&Value::Object(map)));
        let _ = stream.flush();
    }

    /// The `stats` command body: counters/gauges/histogram quantiles
    /// from the metrics registry, queue depth, cache hit rate, and
    /// per-tenant admission stats.
    fn stats_snapshot(&self) -> Value {
        let mut map = BTreeMap::new();
        let load = |c: &AtomicU64| c.load(Ordering::Relaxed);

        let mut responses = BTreeMap::new();
        for (key, counter) in [
            ("total", &self.stats.responses),
            ("solved", &self.stats.solved),
            ("infeasible", &self.stats.infeasible),
            ("best_effort", &self.stats.best_effort),
            ("rejected", &self.stats.rejected),
            ("timed_out", &self.stats.timed_out),
        ] {
            responses.insert(key.to_string(), Value::U64(load(counter)));
        }
        map.insert("responses".to_string(), Value::Object(responses));

        let hits = self.cache.hits();
        let misses = self.cache.misses();
        let mut cache = BTreeMap::new();
        cache.insert("entries".to_string(), Value::U64(self.cache.len() as u64));
        cache.insert("hits".to_string(), Value::U64(hits));
        cache.insert("misses".to_string(), Value::U64(misses));
        cache.insert(
            "hit_rate_pct".to_string(),
            Value::U64(hits * 100 / (hits + misses).max(1)),
        );
        map.insert("cache".to_string(), Value::Object(cache));

        map.insert(
            "queue_depth".to_string(),
            Value::U64(self.queue.depth() as u64),
        );
        map.insert(
            "connections".to_string(),
            Value::U64(self.connections.load(Ordering::Relaxed) as u64),
        );
        for (key, counter) in [
            ("shed", &self.stats.shed),
            ("degraded", &self.stats.degraded),
            ("worker_respawns", &self.stats.worker_respawns),
            ("conn_refused", &self.stats.conn_refused),
            ("disconnects", &self.stats.disconnects),
            ("solve_calls", &self.stats.solve_calls),
        ] {
            map.insert(key.to_string(), Value::U64(load(counter)));
        }

        let mut tenants = BTreeMap::new();
        for (name, stats) in self.admission.tenant_stats() {
            let mut tenant = BTreeMap::new();
            tenant.insert("admitted".to_string(), Value::U64(stats.admitted));
            tenant.insert("denied".to_string(), Value::U64(stats.denied));
            tenants.insert(name, Value::Object(tenant));
        }
        map.insert("tenants".to_string(), Value::Object(tenants));

        map.insert("metrics".to_string(), self.metrics_snapshot());
        Value::Object(map)
    }

    /// The metrics registry as JSON: counters and gauges as numbers
    /// (gauges clamp at zero — the wire format has no negatives),
    /// histograms as `{count, sum, min, max, p50, p90, p99}` objects.
    /// Empty when the server runs without a tracer.
    fn metrics_snapshot(&self) -> Value {
        let mut map = BTreeMap::new();
        let Some(trace) = self.tracer().snapshot() else {
            return Value::Object(map);
        };
        for entry in trace.metrics {
            let value = match entry.value {
                MetricValue::Counter(v) => Value::U64(v),
                MetricValue::Gauge(v) => Value::U64(v.max(0) as u64),
                MetricValue::Histogram(h) => {
                    let mut hist = BTreeMap::new();
                    hist.insert("count".to_string(), Value::U64(h.count));
                    hist.insert("sum".to_string(), Value::U64(h.sum));
                    hist.insert(
                        "min".to_string(),
                        Value::U64(if h.count == 0 { 0 } else { h.min }),
                    );
                    hist.insert("max".to_string(), Value::U64(h.max));
                    for (tag, q) in [("p50", 0.5), ("p90", 0.9), ("p99", 0.99)] {
                        hist.insert(tag.to_string(), Value::U64(h.quantile(q).unwrap_or(0)));
                    }
                    Value::Object(hist)
                }
            };
            map.insert(entry.name, value);
        }
        Value::Object(map)
    }

    /// The `trace` command body: an aggregate span rollup of the
    /// server's shared trace — span keys, counts, totals, self times.
    /// Aggregates only: per-request span fields never leave the server
    /// through this surface, so one tenant cannot read another's
    /// request parameters. Reports `enabled: false` when the server
    /// runs without a tracer.
    fn trace_snapshot(&self) -> Value {
        let mut map = BTreeMap::new();
        let Some(trace) = self.tracer().snapshot() else {
            map.insert("enabled".to_string(), Value::Bool(false));
            return Value::Object(map);
        };
        map.insert("enabled".to_string(), Value::Bool(true));
        map.insert(
            "clock".to_string(),
            Value::Str(
                match trace.clock {
                    tela_trace::ClockMode::Wall => "wall",
                    tela_trace::ClockMode::Logical => "logical",
                }
                .to_string(),
            ),
        );
        let profile = tela_prof::rollup(&tela_prof::build_tree(&trace));
        map.insert("root_total".to_string(), Value::U64(profile.root_total));
        map.insert(
            "spans".to_string(),
            Value::Array(
                profile
                    .entries
                    .iter()
                    .map(|entry| {
                        let mut span = BTreeMap::new();
                        span.insert("span".to_string(), Value::Str(entry.key.clone()));
                        span.insert("count".to_string(), Value::U64(entry.count));
                        span.insert("total".to_string(), Value::U64(entry.total));
                        span.insert("self".to_string(), Value::U64(entry.self_time));
                        span.insert("max".to_string(), Value::U64(entry.max));
                        Value::Object(span)
                    })
                    .collect(),
            ),
        );
        Value::Object(map)
    }
}

/// Serializes a per-request tracer's events into the response's
/// `trace_jsonl` field (a no-op for untraced requests).
fn attach_trace(tracer: Option<&Tracer>, mut response: Response) -> Response {
    if let Some(trace) = tracer.and_then(Tracer::snapshot) {
        response.trace_jsonl = Some(write_jsonl(&trace));
    }
    response
}
