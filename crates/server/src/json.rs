//! A minimal JSON reader/writer for the wire protocol.
//!
//! The build environment has no registry access, so the server speaks
//! JSON through this hand-rolled subset instead of serde: objects,
//! arrays, strings (with `\" \\ \/ \n \r \t \uXXXX` escapes), unsigned
//! integers, booleans, and null. That covers the whole protocol — no
//! floats, no nested escapes beyond the JSON spec — while staying
//! strict enough that malformed frames turn into a typed
//! [`JsonError`] the server can answer with a terminal rejection.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value (protocol subset: integers only, no floats).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (the protocol never sends negatives).
    U64(u64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; `BTreeMap` keeps rendering deterministic.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// The integer value, if this is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// The string value, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// Looks up `key`, if this is an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }
}

/// Maximum container nesting depth.
///
/// The parser recurses per `[`/`{`, so without a bound a frame of a few
/// tens of KB of `[` (far under the frame-size cap) would overflow the
/// connection thread's stack — and a stack overflow aborts the whole
/// process, which no `catch_unwind` can contain. The protocol nests
/// three or four levels deep; 64 is bottomless by comparison.
pub const MAX_DEPTH: usize = 64;

/// Why a payload failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub reason: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.at, self.reason)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Value, JsonError> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(JsonError {
            at: pos,
            reason: "trailing content after document",
        });
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(b) = bytes.get(*pos) {
        if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        } else {
            break;
        }
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8, reason: &'static str) -> Result<(), JsonError> {
    if bytes.get(*pos) == Some(&byte) {
        *pos += 1;
        Ok(())
    } else {
        Err(JsonError { at: *pos, reason })
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Value, JsonError> {
    skip_ws(bytes, pos);
    if depth > MAX_DEPTH {
        return Err(JsonError {
            at: *pos,
            reason: "nesting too deep",
        });
    }
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos, depth),
        Some(b'[') => parse_array(bytes, pos, depth),
        Some(b'"') => parse_string(bytes, pos).map(Value::Str),
        Some(b'0'..=b'9') => parse_number(bytes, pos),
        Some(b't') => parse_keyword(bytes, pos, b"true", Value::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, b"false", Value::Bool(false)),
        Some(b'n') => parse_keyword(bytes, pos, b"null", Value::Null),
        _ => Err(JsonError {
            at: *pos,
            reason: "expected a value",
        }),
    }
}

fn parse_keyword(
    bytes: &[u8],
    pos: &mut usize,
    word: &[u8],
    value: Value,
) -> Result<Value, JsonError> {
    if bytes[*pos..].starts_with(word) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(JsonError {
            at: *pos,
            reason: "unrecognised keyword",
        })
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, JsonError> {
    let start = *pos;
    let mut value: u64 = 0;
    while let Some(&b @ b'0'..=b'9') = bytes.get(*pos) {
        value = value
            .checked_mul(10)
            .and_then(|v| v.checked_add(u64::from(b - b'0')))
            .ok_or(JsonError {
                at: start,
                reason: "integer overflows u64",
            })?;
        *pos += 1;
    }
    if matches!(bytes.get(*pos), Some(b'.' | b'e' | b'E' | b'-' | b'+')) {
        return Err(JsonError {
            at: *pos,
            reason: "only unsigned integers are supported",
        });
    }
    if bytes[start] == b'0' && *pos - start > 1 {
        return Err(JsonError {
            at: start,
            reason: "leading zeros are not valid JSON",
        });
    }
    Ok(Value::U64(value))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(bytes, pos, b'"', "expected a string")?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => {
                return Err(JsonError {
                    at: *pos,
                    reason: "unterminated string",
                })
            }
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let escape = bytes.get(*pos).copied().ok_or(JsonError {
                    at: *pos,
                    reason: "unterminated escape",
                })?;
                *pos += 1;
                match escape {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = bytes.get(*pos..*pos + 4).ok_or(JsonError {
                            at: *pos,
                            reason: "truncated \\u escape",
                        })?;
                        // `from_str_radix` alone also accepts a leading
                        // '+'; JSON requires exactly four hex digits.
                        if !hex.iter().all(u8::is_ascii_hexdigit) {
                            return Err(JsonError {
                                at: *pos,
                                reason: "invalid \\u escape",
                            });
                        }
                        let code = std::str::from_utf8(hex)
                            .ok()
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or(JsonError {
                                at: *pos,
                                reason: "invalid \\u escape",
                            })?;
                        // Surrogates are rejected rather than paired:
                        // the protocol is ASCII in practice.
                        let ch = char::from_u32(code).ok_or(JsonError {
                            at: *pos,
                            reason: "\\u escape is not a scalar value",
                        })?;
                        out.push(ch);
                        *pos += 4;
                    }
                    _ => {
                        return Err(JsonError {
                            at: *pos - 1,
                            reason: "unknown escape",
                        })
                    }
                }
            }
            Some(_) => {
                // Consume one UTF-8 scalar, however many bytes long.
                let rest = &bytes[*pos..];
                let s = std::str::from_utf8(rest).map_err(|_| JsonError {
                    at: *pos,
                    reason: "invalid UTF-8",
                })?;
                let ch = s.chars().next().ok_or(JsonError {
                    at: *pos,
                    reason: "unterminated string",
                })?;
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Value, JsonError> {
    expect(bytes, pos, b'[', "expected an array")?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos, depth + 1)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            _ => {
                return Err(JsonError {
                    at: *pos,
                    reason: "expected ',' or ']'",
                })
            }
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Value, JsonError> {
    expect(bytes, pos, b'{', "expected an object")?;
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Object(map));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':', "expected ':' after key")?;
        let value = parse_value(bytes, pos, depth + 1)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Object(map));
            }
            _ => {
                return Err(JsonError {
                    at: *pos,
                    reason: "expected ',' or '}'",
                })
            }
        }
    }
}

/// Renders `value` as compact JSON.
pub fn render(value: &Value) -> String {
    let mut out = String::new();
    write_value(value, &mut out);
    out
}

fn write_value(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(v) => out.push_str(&v.to_string()),
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Object(map) => {
            out.push('{');
            for (i, (key, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(key, out);
                out.push(':');
                write_value(item, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_the_protocol_shapes() {
        let text = r#"{"id":7,"tenant":"a\nb","steps":[1,2,3],"hit":true,"none":null}"#;
        let value = parse(text).unwrap();
        assert_eq!(value.get("id").and_then(Value::as_u64), Some(7));
        assert_eq!(value.get("tenant").and_then(Value::as_str), Some("a\nb"));
        assert_eq!(value.get("hit").and_then(Value::as_bool), Some(true));
        assert_eq!(value.get("none"), Some(&Value::Null));
        assert_eq!(parse(&render(&value)).unwrap(), value);
    }

    #[test]
    fn unicode_escapes_decode() {
        let value = parse(r#""Aé""#).unwrap();
        assert_eq!(value.as_str(), Some("Aé"));
    }

    #[test]
    fn control_characters_render_escaped() {
        let rendered = render(&Value::Str("a\u{1}b".into()));
        assert_eq!(rendered, "\"a\\u0001b\"");
        assert_eq!(parse(&rendered).unwrap().as_str(), Some("a\u{1}b"));
    }

    #[test]
    fn malformed_documents_report_offsets() {
        for (text, reason) in [
            ("{", "expected a string"),
            ("[1,]", "expected a value"),
            ("12x", "trailing content after document"),
            ("1.5", "only unsigned integers are supported"),
            ("\"abc", "unterminated string"),
            ("99999999999999999999999", "integer overflows u64"),
        ] {
            let err = parse(text).unwrap_err();
            assert_eq!(err.reason, reason, "{text}");
        }
    }

    #[test]
    fn nested_structures_parse() {
        let value = parse(r#"[{"a":[{"b":0}]},[]]"#).unwrap();
        let outer = value.as_array().unwrap();
        assert_eq!(outer.len(), 2);
        assert!(outer[0].get("a").is_some());
    }

    #[test]
    fn deep_nesting_errors_instead_of_overflowing_the_stack() {
        // Well past MAX_DEPTH but nowhere near enough bytes to matter:
        // without the depth limit this many '[' would blow the stack
        // and abort the process.
        let bomb = "[".repeat(100_000);
        let err = parse(&bomb).unwrap_err();
        assert_eq!(err.reason, "nesting too deep");
        // Mixed nesting is caught too, and at the limit parsing works.
        assert_eq!(
            parse(&"[{\"k\":".repeat(20_000)).unwrap_err().reason,
            "nesting too deep"
        );
        let ok = format!("{}0{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(parse(&ok).is_ok());
        let too_deep = format!(
            "{}0{}",
            "[".repeat(MAX_DEPTH + 1),
            "]".repeat(MAX_DEPTH + 1)
        );
        assert_eq!(parse(&too_deep).unwrap_err().reason, "nesting too deep");
    }

    #[test]
    fn non_json_lookalikes_are_rejected() {
        // from_str_radix would happily take the '+'.
        assert_eq!(
            parse(r#""\u+04A""#).unwrap_err().reason,
            "invalid \\u escape"
        );
        assert_eq!(
            parse(r#""\u00 1""#).unwrap_err().reason,
            "invalid \\u escape"
        );
        // Leading zeros are not JSON numbers; a bare zero is.
        assert_eq!(
            parse("007").unwrap_err().reason,
            "leading zeros are not valid JSON"
        );
        assert_eq!(parse("0").unwrap(), Value::U64(0));
        assert_eq!(parse("10").unwrap(), Value::U64(10));
    }
}
