//! Wire protocol: length-prefixed JSON frames over TCP.
//!
//! Every frame is a big-endian `u32` byte length followed by exactly
//! that many bytes of UTF-8 JSON. Requests embed the allocation problem
//! in the workspace's trace text format ([`tela_model::parse_problem`])
//! as a JSON string, so the wire schema never has to track the model's
//! builder API.
//!
//! The cardinal protocol rule mirrors the server's: **every request that
//! parses far enough to carry an `id` receives exactly one terminal
//! [`Response`]** — `solved`, `infeasible`, `best_effort`, `rejected`,
//! or `timed_out`. There is no "try again later" non-answer; rejection
//! with a retry hint *is* the backpressure signal.

use crate::json::{self, JsonError, Value};
use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use tela_model::Address;

/// Upper bound on a frame payload (1 MiB) — far above any real problem
/// (the canonical suite's biggest request is a few KB), and small enough
/// that `max_connections` half-read frames bound worst-case buffering at
/// a few hundred MB rather than gigabytes.
pub const MAX_FRAME_LEN: u32 = 1 << 20;

/// A client's allocation request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Client-chosen correlation id, echoed in the response.
    pub id: u64,
    /// Tenant name for admission control and quotas.
    pub tenant: String,
    /// The problem, in trace text format (`capacity N` / `buffer ...`).
    pub problem: String,
    /// Optional step-budget cap; clamped to the tenant's quota.
    pub max_steps: Option<u64>,
    /// Optional deadline in milliseconds from receipt; clamped to the
    /// tenant's cap.
    pub deadline_ms: Option<u64>,
    /// Opt-in per-request tracing: the solve runs under a fresh tracer
    /// and the terminal response carries that request's span events (and
    /// only that request's — tenants never see each other's spans) in
    /// `trace_jsonl`.
    pub trace: bool,
}

/// A live-introspection command (`{"cmd": ..., "id": ...}` payloads).
///
/// Commands share the request framing but are *not* allocation
/// requests: they are answered immediately on the connection thread
/// with a JSON snapshot frame, never enter the solve pipeline, and are
/// excluded from the terminal-response accounting ([`Status`] counters
/// only describe allocation outcomes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Command {
    /// Client-chosen correlation id, echoed in the snapshot.
    pub id: u64,
    /// What to introspect.
    pub kind: CommandKind,
}

/// The introspection surfaces a [`Command`] can ask for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommandKind {
    /// Metrics snapshot: counters, gauges, histogram quantiles, queue
    /// depth, cache hit rate, per-tenant admission stats.
    Stats,
    /// Aggregate span rollup of the server's shared trace (names,
    /// counts, totals only — no per-request fields).
    Trace,
}

/// Either kind of inbound payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Payload {
    /// An allocation request for the solve pipeline.
    Solve(Request),
    /// An introspection command.
    Command(Command),
}

/// Parses an inbound payload, dispatching on the presence of `"cmd"`.
pub fn parse_payload(payload: &str) -> Result<Payload, ProtocolError> {
    let value = json::parse(payload).map_err(ProtocolError::Json)?;
    let Some(cmd) = value.get("cmd") else {
        return parse_request(payload).map(Payload::Solve);
    };
    let id = value.get("id").and_then(Value::as_u64).unwrap_or(0);
    let kind = match cmd.as_str() {
        Some("stats") => CommandKind::Stats,
        Some("trace") => CommandKind::Trace,
        _ => return Err(ProtocolError::Shape("unknown 'cmd'")),
    };
    Ok(Payload::Command(Command { id, kind }))
}

/// Terminal status of one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// A valid full placement was found (addresses included).
    Solved,
    /// The solver proved no placement exists.
    Infeasible,
    /// The server degraded: partial placement or no answer within
    /// budget, with whatever diagnostics it had.
    BestEffort,
    /// Admission control or load shedding refused the work;
    /// `retry_after_ms` hints when to come back.
    Rejected,
    /// The deadline expired before the solve could finish (or start).
    TimedOut,
}

impl Status {
    /// Stable wire tag.
    pub fn tag(&self) -> &'static str {
        match self {
            Status::Solved => "solved",
            Status::Infeasible => "infeasible",
            Status::BestEffort => "best_effort",
            Status::Rejected => "rejected",
            Status::TimedOut => "timed_out",
        }
    }

    fn from_tag(tag: &str) -> Option<Status> {
        Some(match tag {
            "solved" => Status::Solved,
            "infeasible" => Status::Infeasible,
            "best_effort" => Status::BestEffort,
            "rejected" => Status::Rejected,
            "timed_out" => Status::TimedOut,
            _ => return None,
        })
    }
}

/// The server's terminal answer to one request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Echo of the request id (0 when the request was too malformed to
    /// carry one).
    pub id: u64,
    /// Terminal status.
    pub status: Status,
    /// Buffer addresses, in the problem's buffer order (solved only).
    pub addresses: Option<Vec<Address>>,
    /// Backpressure hint for rejected requests.
    pub retry_after_ms: Option<u64>,
    /// Human-readable detail (rejection reason, degradation cause).
    pub detail: String,
    /// Whether the answer came from the solution cache.
    pub cache_hit: bool,
    /// Search steps spent on this request.
    pub steps: u64,
    /// This request's span events in trace JSONL, present only when the
    /// request opted in with `"trace": true`. Rides inside the terminal
    /// response — no extra frames, so the one-terminal-response
    /// invariant is untouched.
    pub trace_jsonl: Option<String>,
}

impl Response {
    /// A rejection with a retry hint.
    pub fn rejected(id: u64, retry_after_ms: u64, detail: impl Into<String>) -> Self {
        Response {
            id,
            status: Status::Rejected,
            addresses: None,
            retry_after_ms: Some(retry_after_ms),
            detail: detail.into(),
            cache_hit: false,
            steps: 0,
            trace_jsonl: None,
        }
    }

    /// A bare terminal response with `status` and `detail`.
    pub fn terminal(id: u64, status: Status, detail: impl Into<String>) -> Self {
        Response {
            id,
            status,
            addresses: None,
            retry_after_ms: None,
            detail: detail.into(),
            cache_hit: false,
            steps: 0,
            trace_jsonl: None,
        }
    }
}

/// Why a frame or payload could not become a [`Request`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// The payload was not valid JSON.
    Json(JsonError),
    /// The JSON parsed but a required field was missing or mistyped.
    Shape(&'static str),
    /// The frame length prefix exceeded [`MAX_FRAME_LEN`].
    Oversized(u32),
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::Json(e) => write!(f, "{e}"),
            ProtocolError::Shape(what) => write!(f, "malformed request: {what}"),
            ProtocolError::Oversized(len) => {
                write!(f, "frame of {len} bytes exceeds {MAX_FRAME_LEN}")
            }
        }
    }
}

impl std::error::Error for ProtocolError {}

/// Parses a request payload. On shape errors the caller can still
/// extract a best-effort id via [`request_id_of`] to address the
/// rejection.
pub fn parse_request(payload: &str) -> Result<Request, ProtocolError> {
    let value = json::parse(payload).map_err(ProtocolError::Json)?;
    let id = value
        .get("id")
        .and_then(Value::as_u64)
        .ok_or(ProtocolError::Shape("missing numeric 'id'"))?;
    let tenant = value
        .get("tenant")
        .and_then(Value::as_str)
        .ok_or(ProtocolError::Shape("missing string 'tenant'"))?
        .to_string();
    let problem = value
        .get("problem")
        .and_then(Value::as_str)
        .ok_or(ProtocolError::Shape("missing string 'problem'"))?
        .to_string();
    let optional_u64 = |key: &str| -> Result<Option<u64>, ProtocolError> {
        match value.get(key) {
            None | Some(Value::Null) => Ok(None),
            Some(v) => v
                .as_u64()
                .map(Some)
                .ok_or(ProtocolError::Shape("optional field must be an integer")),
        }
    };
    Ok(Request {
        id,
        tenant,
        problem,
        max_steps: optional_u64("max_steps")?,
        deadline_ms: optional_u64("deadline_ms")?,
        trace: value.get("trace").and_then(Value::as_bool).unwrap_or(false),
    })
}

/// Best-effort id extraction from a payload that failed shape checks,
/// so even malformed requests get an addressed terminal response.
pub fn request_id_of(payload: &str) -> u64 {
    json::parse(payload)
        .ok()
        .and_then(|v| v.get("id").and_then(Value::as_u64))
        .unwrap_or(0)
}

/// Renders a request payload (used by the client and the bench driver).
pub fn render_request(request: &Request) -> String {
    let mut map = BTreeMap::new();
    map.insert("id".to_string(), Value::U64(request.id));
    map.insert("tenant".to_string(), Value::Str(request.tenant.clone()));
    map.insert("problem".to_string(), Value::Str(request.problem.clone()));
    if let Some(steps) = request.max_steps {
        map.insert("max_steps".to_string(), Value::U64(steps));
    }
    if let Some(ms) = request.deadline_ms {
        map.insert("deadline_ms".to_string(), Value::U64(ms));
    }
    if request.trace {
        map.insert("trace".to_string(), Value::Bool(true));
    }
    json::render(&Value::Object(map))
}

/// Renders a response payload.
pub fn render_response(response: &Response) -> String {
    let mut map = BTreeMap::new();
    map.insert("id".to_string(), Value::U64(response.id));
    map.insert(
        "status".to_string(),
        Value::Str(response.status.tag().to_string()),
    );
    if let Some(addresses) = &response.addresses {
        map.insert(
            "addresses".to_string(),
            Value::Array(addresses.iter().map(|a| Value::U64(*a)).collect()),
        );
    }
    if let Some(ms) = response.retry_after_ms {
        map.insert("retry_after_ms".to_string(), Value::U64(ms));
    }
    map.insert("detail".to_string(), Value::Str(response.detail.clone()));
    map.insert("cache_hit".to_string(), Value::Bool(response.cache_hit));
    map.insert("steps".to_string(), Value::U64(response.steps));
    if let Some(trace) = &response.trace_jsonl {
        map.insert("trace_jsonl".to_string(), Value::Str(trace.clone()));
    }
    json::render(&Value::Object(map))
}

/// Parses a response payload (client side).
pub fn parse_response(payload: &str) -> Result<Response, ProtocolError> {
    let value = json::parse(payload).map_err(ProtocolError::Json)?;
    let id = value
        .get("id")
        .and_then(Value::as_u64)
        .ok_or(ProtocolError::Shape("missing numeric 'id'"))?;
    let status = value
        .get("status")
        .and_then(Value::as_str)
        .and_then(Status::from_tag)
        .ok_or(ProtocolError::Shape("missing or unknown 'status'"))?;
    let addresses = match value.get("addresses") {
        None | Some(Value::Null) => None,
        Some(v) => Some(
            v.as_array()
                .ok_or(ProtocolError::Shape("'addresses' must be an array"))?
                .iter()
                .map(|a| {
                    a.as_u64()
                        .ok_or(ProtocolError::Shape("addresses must be integers"))
                })
                .collect::<Result<Vec<_>, _>>()?,
        ),
    };
    Ok(Response {
        id,
        status,
        addresses,
        retry_after_ms: value.get("retry_after_ms").and_then(Value::as_u64),
        detail: value
            .get("detail")
            .and_then(Value::as_str)
            .unwrap_or_default()
            .to_string(),
        cache_hit: value
            .get("cache_hit")
            .and_then(Value::as_bool)
            .unwrap_or(false),
        steps: value.get("steps").and_then(Value::as_u64).unwrap_or(0),
        trace_jsonl: value
            .get("trace_jsonl")
            .and_then(Value::as_str)
            .map(str::to_string),
    })
}

/// Writes one frame: 4-byte big-endian length, then the payload.
pub fn write_frame(stream: &mut impl Write, payload: &str) -> io::Result<()> {
    let bytes = payload.as_bytes();
    let len = u32::try_from(bytes.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "payload too large"))?;
    stream.write_all(&len.to_be_bytes())?;
    stream.write_all(bytes)?;
    stream.flush()
}

/// Outcome of one [`FrameReader::poll`].
#[derive(Debug, PartialEq, Eq)]
pub enum Frame {
    /// A complete payload arrived.
    Payload(String),
    /// The peer closed the connection cleanly.
    Eof,
    /// No complete frame yet (timeout or partial read); poll again.
    Pending,
}

/// Incremental frame reader tolerating short reads and read timeouts.
///
/// The server reads with a short socket timeout so it can observe
/// shutdown and disconnects between polls; `WouldBlock`/`TimedOut`
/// surface as [`Frame::Pending`], and partially received frames are
/// carried across polls.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
}

impl FrameReader {
    /// Creates an empty reader.
    pub fn new() -> Self {
        FrameReader::default()
    }

    /// Reads from `stream` until a full frame, EOF, or a would-block.
    ///
    /// # Errors
    ///
    /// Propagates real I/O errors, an oversized length prefix, or a
    /// payload that is not UTF-8.
    pub fn poll(&mut self, stream: &mut impl Read) -> io::Result<Frame> {
        let mut chunk = [0u8; 4096];
        loop {
            if let Some(frame) = self.take_frame()? {
                return Ok(Frame::Payload(frame));
            }
            match stream.read(&mut chunk) {
                Ok(0) => return Ok(Frame::Eof),
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    return Ok(Frame::Pending)
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }

    fn take_frame(&mut self) -> io::Result<Option<String>> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_be_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]);
        if len > MAX_FRAME_LEN {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                ProtocolError::Oversized(len).to_string(),
            ));
        }
        let total = 4 + len as usize;
        if self.buf.len() < total {
            return Ok(None);
        }
        let payload = self.buf[4..total].to_vec();
        self.buf.drain(..total);
        String::from_utf8(payload)
            .map(Some)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame is not UTF-8"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let request = Request {
            id: 42,
            tenant: "prod".into(),
            problem: "capacity 10\nbuffer 0 4 6\n".into(),
            max_steps: Some(1000),
            deadline_ms: None,
            trace: false,
        };
        assert_eq!(parse_request(&render_request(&request)).unwrap(), request);
        let traced = Request {
            trace: true,
            ..request
        };
        assert_eq!(parse_request(&render_request(&traced)).unwrap(), traced);
    }

    #[test]
    fn payloads_dispatch_on_cmd() {
        assert_eq!(
            parse_payload(r#"{"cmd":"stats","id":7}"#).unwrap(),
            Payload::Command(Command {
                id: 7,
                kind: CommandKind::Stats
            })
        );
        assert_eq!(
            parse_payload(r#"{"cmd":"trace"}"#).unwrap(),
            Payload::Command(Command {
                id: 0,
                kind: CommandKind::Trace
            })
        );
        assert!(matches!(
            parse_payload(r#"{"cmd":"reboot","id":1}"#),
            Err(ProtocolError::Shape(_))
        ));
        // No "cmd" key → an ordinary solve request.
        let solve = r#"{"id":1,"tenant":"t","problem":"capacity 4\n"}"#;
        assert!(matches!(
            parse_payload(solve).unwrap(),
            Payload::Solve(r) if r.id == 1 && !r.trace
        ));
    }

    #[test]
    fn responses_round_trip() {
        let response = Response {
            id: 9,
            status: Status::Solved,
            addresses: Some(vec![0, 6, 0]),
            retry_after_ms: None,
            detail: String::new(),
            cache_hit: true,
            steps: 17,
            trace_jsonl: Some("{\"trace\":\"tela\"}\n".to_string()),
        };
        assert_eq!(
            parse_response(&render_response(&response)).unwrap(),
            response
        );
        let rejected = Response::rejected(3, 250, "tenant over quota");
        assert_eq!(
            parse_response(&render_response(&rejected)).unwrap(),
            rejected
        );
    }

    #[test]
    fn malformed_requests_still_yield_an_id() {
        assert_eq!(request_id_of(r#"{"id":5,"tenant":17}"#), 5);
        assert_eq!(request_id_of("not json"), 0);
        assert!(matches!(
            parse_request(r#"{"id":5,"tenant":17}"#),
            Err(ProtocolError::Shape(_))
        ));
    }

    #[test]
    fn frame_reader_handles_split_and_batched_frames() {
        let mut wire = Vec::new();
        write_frame(&mut wire, "first").unwrap();
        write_frame(&mut wire, "second").unwrap();
        // Feed the bytes one at a time through a reader that times out
        // when its script is exhausted.
        let mut reader = FrameReader::new();
        let mut got = Vec::new();
        for byte in wire {
            let mut cursor = std::io::Cursor::new(vec![byte]);
            loop {
                match reader.poll(&mut cursor).unwrap() {
                    Frame::Payload(p) => got.push(p),
                    Frame::Eof => break,
                    Frame::Pending => unreachable!("cursor never blocks"),
                }
            }
        }
        assert_eq!(got, vec!["first".to_string(), "second".to_string()]);
    }

    #[test]
    fn oversized_frames_error_instead_of_allocating() {
        let mut reader = FrameReader::new();
        let mut cursor = std::io::Cursor::new((MAX_FRAME_LEN + 1).to_be_bytes().to_vec());
        // First poll ingests the prefix and hits EOF without a frame...
        let err = loop {
            match reader.poll(&mut cursor) {
                Ok(Frame::Eof) => {
                    // ...the length check happens before waiting for the
                    // (never-arriving) payload on the next poll.
                    break reader.poll(&mut cursor).unwrap_err();
                }
                Ok(_) => continue,
                Err(e) => break e,
            }
        };
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
