//! Solution cache keyed by canonical problem fingerprints.
//!
//! Production compilers re-submit structurally identical allocation
//! problems constantly — recompiles, autotuning sweeps, multi-replica
//! deploys — differing only in buffer naming/order or a uniform shift of
//! the schedule. [`CanonicalForm`] erases exactly those differences, so
//! one solved instance serves the whole equivalence class: a hit is
//! *translated* back through the requesting problem's buffer order
//! rather than replayed verbatim.
//!
//! Lookups verify the stored canonical form against the requester's
//! (`matches`), not just the 128-bit fingerprint, so even a hash
//! collision can never hand a tenant a solution to someone else's
//! problem. Eviction is least-recently-used at a fixed entry capacity.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use tela_model::{Address, CanonicalForm, Solution};

#[derive(Debug)]
struct CacheEntry {
    form: CanonicalForm,
    /// Addresses in canonical slot order (rename-independent).
    slots: Vec<Address>,
    /// Logical LRU stamp.
    last_used: u64,
}

#[derive(Debug, Default)]
struct CacheState {
    entries: HashMap<u128, CacheEntry>,
    tick: u64,
}

/// A bounded, thread-safe, rename-invariant solution cache.
#[derive(Debug)]
pub struct SolutionCache {
    state: Mutex<CacheState>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl SolutionCache {
    /// Creates a cache holding at most `capacity` solved forms.
    pub fn new(capacity: usize) -> Self {
        SolutionCache {
            state: Mutex::new(CacheState::default()),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn locked(&self) -> std::sync::MutexGuard<'_, CacheState> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Looks up a solution for `form`, translated into its buffer
    /// order. Counts a hit or miss either way.
    pub fn lookup(&self, form: &CanonicalForm) -> Option<Solution> {
        let key = form.fingerprint().as_u128();
        let mut state = self.locked();
        state.tick += 1;
        let tick = state.tick;
        let translated = state.entries.get_mut(&key).and_then(|entry| {
            // Collision guard: the full canonical forms must agree.
            if !entry.form.matches(form) {
                return None;
            }
            entry.last_used = tick;
            form.translate(&entry.slots)
        });
        drop(state);
        match &translated {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        translated
    }

    /// Stores `solution` (addressed in `form`'s buffer order) under the
    /// form's fingerprint, evicting the least-recently-used entry when
    /// full.
    pub fn insert(&self, form: &CanonicalForm, solution: &Solution) {
        let key = form.fingerprint().as_u128();
        let slots = form.slot_addresses(solution);
        let mut state = self.locked();
        state.tick += 1;
        let tick = state.tick;
        if !state.entries.contains_key(&key) && state.entries.len() >= self.capacity {
            if let Some(victim) = state
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
            {
                state.entries.remove(&victim);
            }
        }
        state.entries.insert(
            key,
            CacheEntry {
                form: form.clone(),
                slots,
                last_used: tick,
            },
        );
    }

    /// Number of cached forms.
    pub fn len(&self) -> usize {
        self.locked().entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total lookup hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Total lookup misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tela_model::{Buffer, Problem};

    fn problem(buffers: &[(u32, u32, u64)], capacity: u64) -> Problem {
        Problem::new(
            buffers
                .iter()
                .map(|&(s, e, z)| Buffer::new(s, e, z))
                .collect(),
            capacity,
        )
        .unwrap()
    }

    #[test]
    fn hit_after_insert_translates_across_renaming() {
        let cache = SolutionCache::new(8);
        let p = problem(&[(0, 4, 6), (2, 6, 4), (0, 2, 4)], 10);
        let solution = Solution::new(vec![0, 6, 6]);
        assert!(solution.validate(&p).is_ok());
        let form = CanonicalForm::of(&p);
        assert!(cache.lookup(&form).is_none());
        cache.insert(&form, &solution);
        // Same problem, buffers renamed and schedule shifted by 5.
        let renamed = problem(&[(5, 7, 4), (5, 9, 6), (7, 11, 4)], 10);
        let hit = cache
            .lookup(&CanonicalForm::of(&renamed))
            .expect("renamed instance must hit");
        assert!(hit.validate(&renamed).is_ok());
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn different_problems_miss() {
        let cache = SolutionCache::new(8);
        let p = problem(&[(0, 4, 6)], 10);
        cache.insert(&CanonicalForm::of(&p), &Solution::new(vec![0]));
        let other = problem(&[(0, 4, 7)], 10);
        assert!(cache.lookup(&CanonicalForm::of(&other)).is_none());
    }

    #[test]
    fn lru_eviction_keeps_recent_entries() {
        let cache = SolutionCache::new(2);
        let a = problem(&[(0, 1, 1)], 4);
        let b = problem(&[(0, 1, 2)], 4);
        let c = problem(&[(0, 1, 3)], 4);
        cache.insert(&CanonicalForm::of(&a), &Solution::new(vec![0]));
        cache.insert(&CanonicalForm::of(&b), &Solution::new(vec![0]));
        // Touch `a` so `b` is the LRU victim.
        assert!(cache.lookup(&CanonicalForm::of(&a)).is_some());
        cache.insert(&CanonicalForm::of(&c), &Solution::new(vec![0]));
        assert_eq!(cache.len(), 2);
        assert!(cache.lookup(&CanonicalForm::of(&a)).is_some());
        assert!(cache.lookup(&CanonicalForm::of(&b)).is_none());
        assert!(cache.lookup(&CanonicalForm::of(&c)).is_some());
    }

    #[test]
    fn reinserting_an_existing_key_does_not_evict() {
        let cache = SolutionCache::new(2);
        let a = problem(&[(0, 1, 1)], 4);
        let b = problem(&[(0, 1, 2)], 4);
        cache.insert(&CanonicalForm::of(&a), &Solution::new(vec![0]));
        cache.insert(&CanonicalForm::of(&b), &Solution::new(vec![0]));
        cache.insert(&CanonicalForm::of(&a), &Solution::new(vec![1]));
        assert_eq!(cache.len(), 2);
        assert!(cache.lookup(&CanonicalForm::of(&b)).is_some());
    }
}
