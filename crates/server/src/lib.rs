//! tela-server: allocation as a fault-tolerant, multi-tenant service.
//!
//! TelaMalloc's production setting (paper §2) is a compiler service:
//! many compilation jobs, from many users, each needing an on-chip
//! memory placement *now*, on shared solver capacity. This crate wraps
//! the workspace's escalation ladder in that shape — a long-running TCP
//! service speaking length-prefixed JSON frames, with:
//!
//! - **admission control**: per-tenant token buckets and step/deadline
//!   quotas ([`TenantConfig`]), so one noisy tenant cannot starve the
//!   rest;
//! - **backpressure**: a bounded earliest-deadline-first work queue
//!   that sheds on overflow with `Rejected { retry_after_ms }` instead
//!   of queuing unboundedly;
//! - **graceful degradation**: at queue saturation, new work is
//!   answered inline by the greedy heuristic (`BestEffort`/`Solved`)
//!   rather than waiting for ladder capacity that is not coming, and
//!   solution-cache hits are served unconditionally;
//! - **fault tolerance**: panic-isolated workers that answer
//!   terminally *before* dying and are respawned by a supervisor,
//!   client-disconnect cancellation wired into the solver's
//!   [`Budget`](tela_model::Budget) cancel flag, and a shutdown path
//!   that drains the queue into honest rejections;
//! - **a solution cache** keyed by canonical problem fingerprints
//!   ([`tela_model::CanonicalForm`]) that serves structurally identical
//!   problems — renamed buffers, shifted schedules — without entering
//!   the solve path at all.
//!
//! The invariant every layer upholds: **every request receives exactly
//! one terminal response** (`solved`, `infeasible`, `best_effort`,
//! `rejected`, or `timed_out`). See `DESIGN.md` §10.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod admission;
pub mod cache;
pub mod client;
pub mod json;
pub mod protocol;
pub mod queue;
mod server;

pub use admission::{Admission, AdmissionController, TenantConfig, TenantStats};
pub use cache::SolutionCache;
pub use client::Client;
pub use protocol::{Command, CommandKind, Payload, Request, Response, Status};
pub use queue::{Pop, Push, WorkQueue};
pub use server::{Server, ServerConfig, ServerStats};
