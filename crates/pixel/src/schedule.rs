//! Operator scheduling: choosing the logical time step of every op.
//!
//! The allocation problem's time axis is this schedule (paper §3: "Start
//! and End do not refer to wall clock time but to logical time used
//! during compilation"). Two strategies are provided:
//!
//! - [`ScheduleStrategy::Program`] — ops run in graph (program) order.
//! - [`ScheduleStrategy::MemoryAware`] — greedy list scheduling that
//!   always runs the ready op minimizing the resulting live-tensor
//!   bytes, the kind of peak-reducing reordering earlier compiler passes
//!   apply before allocation.

use crate::ir::{Graph, OpId};
use tela_model::TimeStep;

/// Scheduling strategies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScheduleStrategy {
    /// Graph order (ids are already topological).
    #[default]
    Program,
    /// Greedy live-bytes-minimizing list schedule.
    MemoryAware,
}

/// A complete schedule: one time step per op.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    order: Vec<OpId>,
    time_of: Vec<TimeStep>,
}

impl Schedule {
    /// Ops in execution order.
    pub fn order(&self) -> &[OpId] {
        &self.order
    }

    /// The time step at which `op` executes.
    pub fn time_of(&self, op: OpId) -> TimeStep {
        self.time_of[op.index()]
    }

    /// Total number of time steps.
    pub fn horizon(&self) -> TimeStep {
        self.order.len() as TimeStep
    }
}

/// Schedules `graph` with the chosen strategy.
///
/// # Example
///
/// ```
/// use tela_pixel::ir::zoo;
/// use tela_pixel::schedule::{schedule, ScheduleStrategy};
///
/// let g = zoo::unet_like(32, 2);
/// let s = schedule(&g, ScheduleStrategy::MemoryAware, 2);
/// assert_eq!(s.order().len(), g.len());
/// ```
pub fn schedule(graph: &Graph, strategy: ScheduleStrategy, bytes_per_element: u64) -> Schedule {
    let order = match strategy {
        ScheduleStrategy::Program => (0..graph.len()).map(crate::ir::OpId).collect(),
        ScheduleStrategy::MemoryAware => memory_aware_order(graph, bytes_per_element),
    };
    let mut time_of = vec![0; graph.len()];
    for (t, op) in order.iter().enumerate() {
        time_of[op.index()] = t as TimeStep;
    }
    Schedule { order, time_of }
}

/// Greedy list scheduling: repeatedly run the ready op that minimizes
/// the total bytes of tensors live afterwards (ties by op id for
/// determinism).
fn memory_aware_order(graph: &Graph, bytes_per_element: u64) -> Vec<OpId> {
    let n = graph.len();
    let consumers = graph.consumers();
    let mut remaining_uses: Vec<usize> = consumers.iter().map(Vec::len).collect();
    let mut unscheduled_inputs: Vec<usize> = graph.ops().iter().map(|op| op.inputs.len()).collect();
    let mut ready: Vec<OpId> = (0..n)
        .filter(|&i| unscheduled_inputs[i] == 0)
        .map(crate::ir::OpId)
        .collect();
    let mut live_bytes: u64 = 0;
    let mut scheduled = vec![false; n];
    let mut order = Vec::with_capacity(n);

    while let Some(pos) = pick_best(
        graph,
        &ready,
        &remaining_uses,
        live_bytes,
        bytes_per_element,
    ) {
        let op = ready.swap_remove(pos);
        scheduled[op.index()] = true;
        order.push(op);
        // Output tensor becomes live (if anyone consumes it).
        if remaining_uses[op.index()] > 0 {
            live_bytes += graph.shape(op).bytes(bytes_per_element);
        }
        // Inputs may die.
        for &src in &graph.ops()[op.index()].inputs {
            remaining_uses[src.index()] -= 1;
            if remaining_uses[src.index()] == 0 {
                live_bytes -= graph.shape(src).bytes(bytes_per_element);
            }
        }
        for &next in &consumers[op.index()] {
            unscheduled_inputs[next.index()] -= 1;
            if unscheduled_inputs[next.index()] == 0 {
                ready.push(next);
            }
        }
    }
    assert_eq!(order.len(), n, "graph must be acyclic and fully reachable");
    order
}

/// Index into `ready` of the op minimizing post-execution live bytes.
fn pick_best(
    graph: &Graph,
    ready: &[OpId],
    remaining_uses: &[usize],
    live_bytes: u64,
    bytes_per_element: u64,
) -> Option<usize> {
    ready
        .iter()
        .enumerate()
        .min_by_key(|&(_, &op)| {
            let mut after = live_bytes;
            if remaining_uses[op.index()] > 0 {
                after += graph.shape(op).bytes(bytes_per_element);
            }
            for &src in &graph.ops()[op.index()].inputs {
                if remaining_uses[src.index()] == 1 {
                    after -= graph.shape(src).bytes(bytes_per_element);
                }
            }
            (after, op.index())
        })
        .map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::zoo;

    #[test]
    fn program_order_is_identity() {
        let g = zoo::mobilenet_like(32, 3);
        let s = schedule(&g, ScheduleStrategy::Program, 1);
        for (t, op) in s.order().iter().enumerate() {
            assert_eq!(op.index(), t);
            assert_eq!(s.time_of(*op) as usize, t);
        }
    }

    #[test]
    fn memory_aware_respects_dependencies() {
        let g = zoo::unet_like(32, 3);
        let s = schedule(&g, ScheduleStrategy::MemoryAware, 2);
        for op in s.order() {
            for &src in &g.ops()[op.index()].inputs {
                assert!(
                    s.time_of(src) < s.time_of(*op),
                    "op {op:?} scheduled before its input {src:?}"
                );
            }
        }
        assert_eq!(s.horizon() as usize, g.len());
    }

    #[test]
    fn memory_aware_never_increases_peak() {
        // Peak live bytes of the memory-aware schedule must be <= the
        // program order's on these graphs.
        for g in [
            zoo::mobilenet_like(64, 6),
            zoo::unet_like(64, 3),
            zoo::detector_like(64, 4),
        ] {
            let peak = |strategy| {
                let s = schedule(&g, strategy, 2);
                peak_live_bytes(&g, &s, 2)
            };
            assert!(
                peak(ScheduleStrategy::MemoryAware) <= peak(ScheduleStrategy::Program),
                "memory-aware schedule regressed the peak"
            );
        }
    }

    fn peak_live_bytes(g: &crate::ir::Graph, s: &Schedule, bpe: u64) -> u64 {
        let consumers = g.consumers();
        let mut peak = 0;
        let mut live = 0i64;
        for op in s.order() {
            let last_use = consumers[op.index()].iter().map(|c| s.time_of(*c)).max();
            if last_use.is_some() {
                live += g.shape(*op).bytes(bpe) as i64;
            }
            peak = peak.max(live);
            for &src in &g.ops()[op.index()].inputs {
                let dies_now = consumers[src.index()]
                    .iter()
                    .all(|c| s.time_of(*c) <= s.time_of(*op));
                if dies_now {
                    live -= g.shape(src).bytes(bpe) as i64;
                }
            }
        }
        peak as u64
    }

    #[test]
    fn schedules_are_deterministic() {
        let g = zoo::detector_like(64, 3);
        let a = schedule(&g, ScheduleStrategy::MemoryAware, 2);
        let b = schedule(&g, ScheduleStrategy::MemoryAware, 2);
        assert_eq!(a, b);
    }
}
