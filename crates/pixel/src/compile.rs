//! The compilation driver: schedule → lower → allocate → (spill →
//! retry)*, mirroring the on-device flow of paper §2.3.

use tela_model::{Budget, Problem, ResilienceStage, Solution, SolveOutcome, SolveStats};
use telamalloc::{EscalationLadder, LadderConfig, SpillHook, Stage, TelaConfig};

use crate::ir::Graph;
use crate::memory::{lower, Lowered, LoweringConfig};
use crate::schedule::{schedule, Schedule, ScheduleStrategy};
use crate::spill::{evict, pick_victim, SpillReport};

/// Settings "provided by the application or system" (§2.3).
#[derive(Debug, Clone, Copy)]
pub struct CompilerSettings {
    /// On-chip scratchpad capacity in bytes.
    pub scratchpad_bytes: u64,
    /// Scheduling strategy.
    pub schedule: ScheduleStrategy,
    /// Lowering knobs (element width, DRAM threshold, alignment).
    pub lowering: LoweringConfig,
    /// Maximum spill-and-retry rounds before giving up.
    pub max_spill_rounds: u32,
    /// Step budget per allocation attempt.
    pub allocation_steps: u64,
}

impl Default for CompilerSettings {
    fn default() -> Self {
        CompilerSettings {
            scratchpad_bytes: 512 * 1024,
            schedule: ScheduleStrategy::MemoryAware,
            lowering: LoweringConfig::default(),
            max_spill_rounds: 64,
            allocation_steps: 200_000,
        }
    }
}

/// A successful compilation.
#[derive(Debug, Clone)]
pub struct Compiled {
    /// The allocation problem finally packed (post-spill buffer set).
    pub problem: Problem,
    /// The packing.
    pub solution: Solution,
    /// The operator schedule.
    pub schedule: Schedule,
    /// Which allocator stage succeeded.
    pub stage: Stage,
    /// Aggregate allocation statistics across every attempt.
    pub stats: SolveStats,
    /// What had to be spilled to DRAM to fit.
    pub spills: SpillReport,
}

/// Compilation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// Even after exhausting spill rounds the buffers cannot be packed.
    Unallocatable {
        /// Spill rounds performed before giving up.
        rounds: u32,
    },
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Unallocatable { rounds } => {
                write!(f, "buffers cannot be packed after {rounds} spill rounds")
            }
        }
    }
}

impl std::error::Error for CompileError {}

/// The mini compiler.
#[derive(Debug, Clone, Default)]
pub struct Compiler {
    settings: CompilerSettings,
}

impl Compiler {
    /// Creates a compiler with the given settings.
    pub fn new(settings: CompilerSettings) -> Self {
        Compiler { settings }
    }

    /// The settings in use.
    pub fn settings(&self) -> &CompilerSettings {
        &self.settings
    }

    /// Compiles `graph`: schedules it, lowers it to buffers, and packs
    /// them into the scratchpad through the resilient escalation ladder,
    /// spilling activations to DRAM and retrying when packing fails.
    ///
    /// # Errors
    ///
    /// [`CompileError::Unallocatable`] when the buffer set cannot be
    /// packed even after `max_spill_rounds` evictions.
    pub fn compile(&self, graph: &Graph) -> Result<Compiled, CompileError> {
        let s = &self.settings;
        let sched = schedule(graph, s.schedule, s.lowering.bytes_per_element);
        let mut lowered: Lowered = lower(graph, &sched, &s.lowering);
        let mut spills = SpillReport::empty();

        // Pre-spill down to the first buffer set that can possibly fit:
        // the search stages should never be asked to disprove what
        // arithmetic (oversized buffer, contention bound) already rules
        // out. Eviction terminates — each round removes an activation.
        let initial = loop {
            if let Ok(problem) = lowered.problem(s.scratchpad_bytes) {
                if problem.max_contention() <= problem.capacity() {
                    break problem;
                }
            }
            if !spill_once(&mut lowered, &mut spills, s.lowering.dma_staging_bytes) {
                return Err(CompileError::Unallocatable {
                    rounds: spills.evicted.len() as u32,
                });
            }
        };

        let config = TelaConfig {
            ladder: LadderConfig {
                max_spill_rounds: s.max_spill_rounds,
                ..LadderConfig::default()
            },
            ..TelaConfig::default()
        };
        // The whole ladder shares one budget sized for the worst case:
        // one full-strength attempt per spill round.
        let budget = Budget::steps(
            s.allocation_steps
                .saturating_mul(u64::from(s.max_spill_rounds).saturating_add(1)),
        );
        let mut hook = LoweredSpillHook {
            lowered: &mut lowered,
            spills: &mut spills,
            capacity: s.scratchpad_bytes,
            staging_bytes: s.lowering.dma_staging_bytes,
        };
        let result = EscalationLadder::new(config).solve_with_spill(initial, &budget, &mut hook);
        match result.outcome {
            SolveOutcome::Solved(solution) => Ok(Compiled {
                solution,
                problem: result.problem,
                schedule: sched,
                stage: if result.stage == ResilienceStage::Heuristic {
                    Stage::Heuristic
                } else {
                    Stage::TelaMalloc
                },
                stats: result.stats,
                spills,
            }),
            // Infeasible and BestEffort both mean "does not fit even
            // after spilling": the compiler's contract only has one
            // failure mode.
            _ => Err(CompileError::Unallocatable {
                rounds: spills.evicted.len() as u32,
            }),
        }
    }
}

/// Evicts one activation into `spills`. Returns false when nothing
/// spillable remains.
fn spill_once(lowered: &mut Lowered, spills: &mut SpillReport, staging_bytes: u64) -> bool {
    let Some(victim) = pick_victim(lowered, staging_bytes) else {
        return false;
    };
    let (op, bytes, staging) = evict(lowered, victim, staging_bytes);
    spills.evicted.push(op);
    spills.bytes_spilled += bytes;
    spills.staging_buffers += staging;
    true
}

/// The [`SpillHook`] the compiler hands to the escalation ladder: each
/// ladder round evicts activations until the rebuilt problem clears the
/// static bounds again (matching the pre-spill loop), so every problem
/// the search sees is at least arithmetically packable.
struct LoweredSpillHook<'a> {
    lowered: &'a mut Lowered,
    spills: &'a mut SpillReport,
    capacity: u64,
    staging_bytes: u64,
}

impl SpillHook for LoweredSpillHook<'_> {
    fn spill(&mut self, _round: u32) -> Option<Problem> {
        loop {
            if !spill_once(self.lowered, self.spills, self.staging_bytes) {
                return None;
            }
            if let Ok(problem) = self.lowered.problem(self.capacity) {
                if problem.max_contention() <= problem.capacity() {
                    return Some(problem);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::zoo;

    #[test]
    fn roomy_scratchpad_compiles_without_spills() {
        let settings = CompilerSettings {
            scratchpad_bytes: 8 * 1024 * 1024,
            ..CompilerSettings::default()
        };
        let compiled = Compiler::new(settings)
            .compile(&zoo::mobilenet_like(96, 8))
            .expect("roomy compile succeeds");
        assert!(compiled.spills.is_empty());
        assert!(compiled.solution.validate(&compiled.problem).is_ok());
    }

    #[test]
    fn tight_scratchpad_forces_spills() {
        let g = zoo::unet_like(96, 3);
        // Find a scratchpad just below the no-spill requirement.
        let roomy = Compiler::new(CompilerSettings {
            scratchpad_bytes: 64 * 1024 * 1024,
            ..CompilerSettings::default()
        })
        .compile(&g)
        .expect("roomy compile succeeds");
        let tight_bytes = roomy.problem.max_contention() / 2;
        let tight = Compiler::new(CompilerSettings {
            scratchpad_bytes: tight_bytes,
            ..CompilerSettings::default()
        })
        .compile(&g)
        .expect("spilling rescues the tight compile");
        assert!(!tight.spills.is_empty());
        assert!(tight.solution.validate(&tight.problem).is_ok());
        assert!(tight.problem.capacity() <= tight_bytes);
    }

    #[test]
    fn hopeless_scratchpad_reports_unallocatable() {
        let g = zoo::mobilenet_like(64, 4);
        let err = Compiler::new(CompilerSettings {
            scratchpad_bytes: 64, // smaller than any weight slice
            max_spill_rounds: 8,
            ..CompilerSettings::default()
        })
        .compile(&g)
        .unwrap_err();
        assert!(matches!(err, CompileError::Unallocatable { .. }));
        assert!(err.to_string().contains("spill rounds"));
    }

    #[test]
    fn spilled_set_still_covers_all_weights_and_scratch() {
        // Spilling only ever evicts activations; weights/scratch remain.
        let g = zoo::detector_like(96, 4);
        let roomy = Compiler::new(CompilerSettings {
            scratchpad_bytes: 64 * 1024 * 1024,
            ..CompilerSettings::default()
        })
        .compile(&g)
        .expect("roomy");
        let tight = Compiler::new(CompilerSettings {
            scratchpad_bytes: roomy.problem.max_contention() * 6 / 10,
            ..CompilerSettings::default()
        })
        .compile(&g)
        .expect("tight with spills");
        let weights = |c: &Compiled| {
            c.problem
                .buffers()
                .iter()
                .filter(|b| b.align() == 64)
                .count()
        };
        assert_eq!(weights(&roomy), weights(&tight));
    }

    #[test]
    fn compilation_is_deterministic() {
        let g = zoo::mobilenet_like(64, 6);
        let run = || {
            Compiler::new(CompilerSettings {
                scratchpad_bytes: 768 * 1024,
                ..CompilerSettings::default()
            })
            .compile(&g)
            .expect("compiles")
        };
        let a = run();
        let b = run();
        assert_eq!(a.solution, b.solution);
        assert_eq!(a.spills, b.spills);
    }

    #[test]
    fn memory_aware_schedule_spills_no_more_than_program_order() {
        let g = zoo::unet_like(96, 3);
        let spills = |strategy| {
            let settings = CompilerSettings {
                scratchpad_bytes: 600 * 1024,
                schedule: strategy,
                ..CompilerSettings::default()
            };
            Compiler::new(settings)
                .compile(&g)
                .map(|c| c.spills.evicted.len())
                .unwrap_or(usize::MAX)
        };
        assert!(spills(ScheduleStrategy::MemoryAware) <= spills(ScheduleStrategy::Program));
    }
}
