//! The compilation driver: schedule → lower → allocate → (spill →
//! retry)*, mirroring the on-device flow of paper §2.3.

use tela_model::{Budget, Problem, Solution, SolveStats};
use telamalloc::{Allocator, Stage};

use crate::ir::Graph;
use crate::memory::{lower, Lowered, LoweringConfig};
use crate::schedule::{schedule, Schedule, ScheduleStrategy};
use crate::spill::{evict, pick_victim, SpillReport};

/// Settings "provided by the application or system" (§2.3).
#[derive(Debug, Clone, Copy)]
pub struct CompilerSettings {
    /// On-chip scratchpad capacity in bytes.
    pub scratchpad_bytes: u64,
    /// Scheduling strategy.
    pub schedule: ScheduleStrategy,
    /// Lowering knobs (element width, DRAM threshold, alignment).
    pub lowering: LoweringConfig,
    /// Maximum spill-and-retry rounds before giving up.
    pub max_spill_rounds: u32,
    /// Step budget per allocation attempt.
    pub allocation_steps: u64,
}

impl Default for CompilerSettings {
    fn default() -> Self {
        CompilerSettings {
            scratchpad_bytes: 512 * 1024,
            schedule: ScheduleStrategy::MemoryAware,
            lowering: LoweringConfig::default(),
            max_spill_rounds: 64,
            allocation_steps: 200_000,
        }
    }
}

/// A successful compilation.
#[derive(Debug, Clone)]
pub struct Compiled {
    /// The allocation problem finally packed (post-spill buffer set).
    pub problem: Problem,
    /// The packing.
    pub solution: Solution,
    /// The operator schedule.
    pub schedule: Schedule,
    /// Which allocator stage succeeded.
    pub stage: Stage,
    /// Allocation statistics of the successful attempt.
    pub stats: SolveStats,
    /// What had to be spilled to DRAM to fit.
    pub spills: SpillReport,
}

/// Compilation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// Even after exhausting spill rounds the buffers cannot be packed.
    Unallocatable {
        /// Spill rounds performed before giving up.
        rounds: u32,
    },
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Unallocatable { rounds } => {
                write!(f, "buffers cannot be packed after {rounds} spill rounds")
            }
        }
    }
}

impl std::error::Error for CompileError {}

/// The mini compiler.
#[derive(Debug, Clone, Default)]
pub struct Compiler {
    settings: CompilerSettings,
}

impl Compiler {
    /// Creates a compiler with the given settings.
    pub fn new(settings: CompilerSettings) -> Self {
        Compiler { settings }
    }

    /// The settings in use.
    pub fn settings(&self) -> &CompilerSettings {
        &self.settings
    }

    /// Compiles `graph`: schedules it, lowers it to buffers, and packs
    /// them into the scratchpad, spilling activations to DRAM and
    /// retrying when packing fails.
    ///
    /// # Errors
    ///
    /// [`CompileError::Unallocatable`] when the buffer set cannot be
    /// packed even after `max_spill_rounds` evictions.
    pub fn compile(&self, graph: &Graph) -> Result<Compiled, CompileError> {
        let s = &self.settings;
        let sched = schedule(graph, s.schedule, s.lowering.bytes_per_element);
        let mut lowered: Lowered = lower(graph, &sched, &s.lowering);
        let allocator = Allocator::default();
        let mut spills = SpillReport::empty();

        for round in 0..=s.max_spill_rounds {
            if let Ok(problem) = lowered.problem(s.scratchpad_bytes) {
                if problem.max_contention() <= problem.capacity() {
                    let result = allocator.allocate(&problem, &Budget::steps(s.allocation_steps));
                    if let Some(solution) = result.outcome.solution() {
                        return Ok(Compiled {
                            solution: solution.clone(),
                            problem,
                            schedule: sched,
                            stage: result.stage,
                            stats: result.stats,
                            spills,
                        });
                    }
                }
            }
            if round == s.max_spill_rounds {
                break;
            }
            // Packing failed (or was trivially impossible): evict one
            // activation and retry.
            let Some(victim) = pick_victim(&lowered, s.lowering.dma_staging_bytes) else {
                break;
            };
            let (op, bytes, staging) = evict(&mut lowered, victim, s.lowering.dma_staging_bytes);
            spills.evicted.push(op);
            spills.bytes_spilled += bytes;
            spills.staging_buffers += staging;
        }
        Err(CompileError::Unallocatable {
            rounds: spills.evicted.len() as u32,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::zoo;

    #[test]
    fn roomy_scratchpad_compiles_without_spills() {
        let settings = CompilerSettings {
            scratchpad_bytes: 8 * 1024 * 1024,
            ..CompilerSettings::default()
        };
        let compiled = Compiler::new(settings)
            .compile(&zoo::mobilenet_like(96, 8))
            .expect("roomy compile succeeds");
        assert!(compiled.spills.is_empty());
        assert!(compiled.solution.validate(&compiled.problem).is_ok());
    }

    #[test]
    fn tight_scratchpad_forces_spills() {
        let g = zoo::unet_like(96, 3);
        // Find a scratchpad just below the no-spill requirement.
        let roomy = Compiler::new(CompilerSettings {
            scratchpad_bytes: 64 * 1024 * 1024,
            ..CompilerSettings::default()
        })
        .compile(&g)
        .expect("roomy compile succeeds");
        let tight_bytes = roomy.problem.max_contention() / 2;
        let tight = Compiler::new(CompilerSettings {
            scratchpad_bytes: tight_bytes,
            ..CompilerSettings::default()
        })
        .compile(&g)
        .expect("spilling rescues the tight compile");
        assert!(!tight.spills.is_empty());
        assert!(tight.solution.validate(&tight.problem).is_ok());
        assert!(tight.problem.capacity() <= tight_bytes);
    }

    #[test]
    fn hopeless_scratchpad_reports_unallocatable() {
        let g = zoo::mobilenet_like(64, 4);
        let err = Compiler::new(CompilerSettings {
            scratchpad_bytes: 64, // smaller than any weight slice
            max_spill_rounds: 8,
            ..CompilerSettings::default()
        })
        .compile(&g)
        .unwrap_err();
        assert!(matches!(err, CompileError::Unallocatable { .. }));
        assert!(err.to_string().contains("spill rounds"));
    }

    #[test]
    fn spilled_set_still_covers_all_weights_and_scratch() {
        // Spilling only ever evicts activations; weights/scratch remain.
        let g = zoo::detector_like(96, 4);
        let roomy = Compiler::new(CompilerSettings {
            scratchpad_bytes: 64 * 1024 * 1024,
            ..CompilerSettings::default()
        })
        .compile(&g)
        .expect("roomy");
        let tight = Compiler::new(CompilerSettings {
            scratchpad_bytes: roomy.problem.max_contention() * 6 / 10,
            ..CompilerSettings::default()
        })
        .compile(&g)
        .expect("tight with spills");
        let weights = |c: &Compiled| {
            c.problem
                .buffers()
                .iter()
                .filter(|b| b.align() == 64)
                .count()
        };
        assert_eq!(weights(&roomy), weights(&tight));
    }

    #[test]
    fn compilation_is_deterministic() {
        let g = zoo::mobilenet_like(64, 6);
        let run = || {
            Compiler::new(CompilerSettings {
                scratchpad_bytes: 768 * 1024,
                ..CompilerSettings::default()
            })
            .compile(&g)
            .expect("compiles")
        };
        let a = run();
        let b = run();
        assert_eq!(a.solution, b.solution);
        assert_eq!(a.spills, b.spills);
    }

    #[test]
    fn memory_aware_schedule_spills_no_more_than_program_order() {
        let g = zoo::unet_like(96, 3);
        let spills = |strategy| {
            let settings = CompilerSettings {
                scratchpad_bytes: 600 * 1024,
                schedule: strategy,
                ..CompilerSettings::default()
            };
            Compiler::new(settings)
                .compile(&g)
                .map(|c| c.spills.evicted.len())
                .unwrap_or(usize::MAX)
        };
        assert!(spills(ScheduleStrategy::MemoryAware) <= spills(ScheduleStrategy::Program));
    }
}
