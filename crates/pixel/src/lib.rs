//! A miniature ML-compiler front-end modeled on the Pixel 6 flow the
//! paper describes (§2.1–§2.3): the compiler "takes the model and any
//! settings provided by the application or system, and maps it to a
//! schedule of operators with associated buffers. It then invokes the
//! memory allocator to pack a chosen subset of memory buffers into PE
//! memory."
//!
//! The crate provides each stage of that sentence:
//!
//! - [`ir`] — a small operator-graph IR with shape inference and a zoo
//!   of representative model architectures.
//! - [`schedule`] — operator scheduling (program order or memory-aware
//!   list scheduling), assigning the logical time steps the allocation
//!   problem is defined over.
//! - [`memory`] — lowering a scheduled graph to buffer live ranges:
//!   activations, weight slices, and per-op scratch, with a residency
//!   policy choosing the subset that competes for the scratchpad.
//! - [`compile`] — the driver: schedule → lower → allocate via the
//!   TelaMalloc pipeline, and, when packing fails, the production
//!   fallback the paper's introduction references: spill tensors to
//!   DRAM ("rematerialization or sharding to reduce on-chip memory
//!   pressure at the expense of extra computations") and retry.
//!
//! # Example
//!
//! ```
//! use tela_pixel::{Compiler, CompilerSettings};
//!
//! let graph = tela_pixel::ir::zoo::mobilenet_like(96, 8);
//! let compiled = Compiler::new(CompilerSettings::default()).compile(&graph)?;
//! assert!(compiled.solution.validate(&compiled.problem).is_ok());
//! # Ok::<(), tela_pixel::CompileError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod compile;
pub mod ir;
pub mod memory;
pub mod schedule;
mod spill;

pub use compile::{CompileError, Compiled, Compiler, CompilerSettings};
pub use spill::SpillReport;
