//! Operator-graph IR with shape inference.
//!
//! Deliberately small: enough operator variety to generate the buffer
//! populations real mobile models produce (convolution towers, residual
//! adds, concatenations, upsampling decoders, dense heads).

/// A feature-map shape (height × width × channels).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shape {
    /// Spatial height.
    pub h: u32,
    /// Spatial width.
    pub w: u32,
    /// Channels.
    pub c: u32,
}

impl Shape {
    /// Creates a shape.
    pub fn new(h: u32, w: u32, c: u32) -> Self {
        Shape { h, w, c }
    }

    /// Number of elements.
    pub fn elements(&self) -> u64 {
        u64::from(self.h) * u64::from(self.w) * u64::from(self.c)
    }

    /// Size in bytes at `bytes_per_element`.
    pub fn bytes(&self, bytes_per_element: u64) -> u64 {
        self.elements() * bytes_per_element
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}x{}x{}", self.h, self.w, self.c)
    }
}

/// Identifies an operator (and its output tensor) within a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OpId(pub(crate) usize);

impl OpId {
    /// Dense index of the op in its graph.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Operator kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Graph input (no predecessors).
    Input,
    /// 2D convolution: kernel size, stride, output channels.
    Conv {
        /// Square kernel size.
        kernel: u32,
        /// Spatial stride.
        stride: u32,
        /// Output channels.
        out_channels: u32,
    },
    /// Depthwise convolution: kernel size, stride (channels preserved).
    DepthwiseConv {
        /// Square kernel size.
        kernel: u32,
        /// Spatial stride.
        stride: u32,
    },
    /// Max/avg pooling: kernel == stride.
    Pool {
        /// Pooling factor.
        factor: u32,
    },
    /// Elementwise residual addition of two same-shape tensors.
    Add,
    /// Channel concatenation of two tensors with equal spatial dims.
    Concat,
    /// Nearest-neighbour upsampling by an integer factor.
    Upsample {
        /// Spatial scale factor.
        factor: u32,
    },
    /// Fully-connected layer.
    Dense {
        /// Output units.
        units: u32,
    },
    /// Graph output (keeps its input alive to the end).
    Output,
}

/// One operator: a kind plus its input operands.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Op {
    /// Operator kind.
    pub kind: OpKind,
    /// Producing ops of the inputs (all with smaller ids — the graph is
    /// acyclic by construction).
    pub inputs: Vec<OpId>,
    /// Inferred output shape.
    pub shape: Shape,
}

/// An operator dataflow graph in topological id order.
///
/// # Example
///
/// ```
/// use tela_pixel::ir::{Graph, Shape};
///
/// let mut g = Graph::new();
/// let x = g.input(Shape::new(56, 56, 3));
/// let c1 = g.conv(x, 3, 2, 16);
/// let c2 = g.conv(c1, 3, 1, 16);
/// let y = g.add(c1, c2);
/// g.output(y);
/// assert_eq!(g.shape(y), Shape::new(28, 28, 16));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Graph {
    ops: Vec<Op>,
}

impl Graph {
    /// An empty graph.
    pub fn new() -> Self {
        Graph::default()
    }

    /// All operators, in topological order.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Number of operators.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Returns true if the graph has no operators.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Output shape of `op`.
    ///
    /// # Panics
    ///
    /// Panics if `op` is out of range.
    pub fn shape(&self, op: OpId) -> Shape {
        self.ops[op.0].shape
    }

    /// Consumers of each op's output, indexed by op.
    pub fn consumers(&self) -> Vec<Vec<OpId>> {
        let mut out = vec![Vec::new(); self.ops.len()];
        for (i, op) in self.ops.iter().enumerate() {
            for &src in &op.inputs {
                out[src.0].push(OpId(i));
            }
        }
        out
    }

    fn push(&mut self, kind: OpKind, inputs: Vec<OpId>, shape: Shape) -> OpId {
        for &i in &inputs {
            assert!(i.0 < self.ops.len(), "input {i:?} does not exist yet");
        }
        assert!(shape.elements() > 0, "degenerate shape {shape}");
        self.ops.push(Op {
            kind,
            inputs,
            shape,
        });
        OpId(self.ops.len() - 1)
    }

    /// Adds a graph input of the given shape.
    pub fn input(&mut self, shape: Shape) -> OpId {
        self.push(OpKind::Input, Vec::new(), shape)
    }

    /// Adds a convolution.
    ///
    /// # Panics
    ///
    /// Panics if the stride does not divide the spatial dims.
    pub fn conv(&mut self, src: OpId, kernel: u32, stride: u32, out_channels: u32) -> OpId {
        let s = self.shape(src);
        assert!(
            stride > 0 && s.h.is_multiple_of(stride) && s.w.is_multiple_of(stride),
            "stride must divide dims"
        );
        let shape = Shape::new(s.h / stride, s.w / stride, out_channels);
        self.push(
            OpKind::Conv {
                kernel,
                stride,
                out_channels,
            },
            vec![src],
            shape,
        )
    }

    /// Adds a depthwise convolution.
    pub fn depthwise(&mut self, src: OpId, kernel: u32, stride: u32) -> OpId {
        let s = self.shape(src);
        assert!(
            stride > 0 && s.h.is_multiple_of(stride) && s.w.is_multiple_of(stride),
            "stride must divide dims"
        );
        let shape = Shape::new(s.h / stride, s.w / stride, s.c);
        self.push(OpKind::DepthwiseConv { kernel, stride }, vec![src], shape)
    }

    /// Adds a pooling op.
    pub fn pool(&mut self, src: OpId, factor: u32) -> OpId {
        let s = self.shape(src);
        assert!(
            factor > 0 && s.h.is_multiple_of(factor) && s.w.is_multiple_of(factor),
            "factor must divide dims"
        );
        let shape = Shape::new(s.h / factor, s.w / factor, s.c);
        self.push(OpKind::Pool { factor }, vec![src], shape)
    }

    /// Adds a residual addition.
    ///
    /// # Panics
    ///
    /// Panics if the operand shapes differ.
    pub fn add(&mut self, a: OpId, b: OpId) -> OpId {
        let (sa, sb) = (self.shape(a), self.shape(b));
        assert_eq!(sa, sb, "residual add needs equal shapes");
        self.push(OpKind::Add, vec![a, b], sa)
    }

    /// Adds a channel concatenation.
    ///
    /// # Panics
    ///
    /// Panics if the spatial dims differ.
    pub fn concat(&mut self, a: OpId, b: OpId) -> OpId {
        let (sa, sb) = (self.shape(a), self.shape(b));
        assert_eq!(
            (sa.h, sa.w),
            (sb.h, sb.w),
            "concat needs equal spatial dims"
        );
        self.push(
            OpKind::Concat,
            vec![a, b],
            Shape::new(sa.h, sa.w, sa.c + sb.c),
        )
    }

    /// Adds an upsampling op.
    pub fn upsample(&mut self, src: OpId, factor: u32) -> OpId {
        let s = self.shape(src);
        let shape = Shape::new(s.h * factor, s.w * factor, s.c);
        self.push(OpKind::Upsample { factor }, vec![src], shape)
    }

    /// Adds a dense (fully connected) layer.
    pub fn dense(&mut self, src: OpId, units: u32) -> OpId {
        self.push(OpKind::Dense { units }, vec![src], Shape::new(1, 1, units))
    }

    /// Marks an output.
    pub fn output(&mut self, src: OpId) -> OpId {
        let shape = self.shape(src);
        self.push(OpKind::Output, vec![src], shape)
    }

    /// Bytes of weights the op carries (0 for weightless ops).
    pub fn weight_bytes(&self, op: OpId, bytes_per_element: u64) -> u64 {
        let o = &self.ops[op.0];
        match o.kind {
            OpKind::Conv {
                kernel,
                out_channels,
                ..
            } => {
                let in_c = self.shape(o.inputs[0]).c;
                u64::from(kernel)
                    * u64::from(kernel)
                    * u64::from(in_c)
                    * u64::from(out_channels)
                    * bytes_per_element
            }
            OpKind::DepthwiseConv { kernel, .. } => {
                let in_c = self.shape(o.inputs[0]).c;
                u64::from(kernel) * u64::from(kernel) * u64::from(in_c) * bytes_per_element
            }
            OpKind::Dense { units } => {
                self.shape(o.inputs[0]).elements() * u64::from(units) * bytes_per_element
            }
            _ => 0,
        }
    }
}

/// A small zoo of representative mobile architectures.
pub mod zoo {
    use super::{Graph, OpId, Shape};

    /// MobileNet-style inverted-residual tower: `blocks` bottleneck
    /// blocks on a `res × res` input.
    pub fn mobilenet_like(res: u32, blocks: u32) -> Graph {
        let mut g = Graph::new();
        let mut x = g.input(Shape::new(res, res, 3));
        x = g.conv(x, 3, 2, 16);
        let mut channels = 16;
        for b in 0..blocks {
            let expanded = g.conv(x, 1, 1, channels * 4);
            let stride = if b % 3 == 2 && g.shape(expanded).h.is_multiple_of(2) {
                2
            } else {
                1
            };
            let dw = g.depthwise(expanded, 3, stride);
            let projected = g.conv(dw, 1, 1, channels);
            x = if stride == 1 {
                g.add(x, projected)
            } else {
                channels += 8;
                g.conv(projected, 1, 1, channels)
            };
        }
        let head = g.pool(x, g.shape(x).h);
        let logits = g.dense(head, 100);
        g.output(logits);
        g
    }

    /// U-Net-style encoder/decoder with skip concatenations.
    pub fn unet_like(res: u32, depth: u32) -> Graph {
        let mut g = Graph::new();
        let mut x = g.input(Shape::new(res, res, 3));
        x = g.conv(x, 3, 1, 16);
        let mut skips: Vec<OpId> = Vec::new();
        let mut c = 16;
        for _ in 0..depth {
            x = g.conv(x, 3, 1, c);
            skips.push(x);
            x = g.pool(x, 2);
            c *= 2;
        }
        x = g.conv(x, 3, 1, c);
        for skip in skips.into_iter().rev() {
            c /= 2;
            x = g.upsample(x, 2);
            x = g.conv(x, 1, 1, g.shape(skip).c);
            x = g.concat(x, skip);
            x = g.conv(x, 3, 1, c);
        }
        let mask = g.conv(x, 1, 1, 2);
        g.output(mask);
        g
    }

    /// SSD-style detector: backbone + heads over multiple scales.
    pub fn detector_like(res: u32, stages: u32) -> Graph {
        let mut g = Graph::new();
        let mut x = g.input(Shape::new(res, res, 3));
        x = g.conv(x, 3, 2, 24);
        let mut scales = Vec::new();
        let mut c = 24;
        for _ in 0..stages {
            x = g.conv(x, 3, 1, c);
            x = g.depthwise(x, 3, 1);
            if g.shape(x).h.is_multiple_of(2) && g.shape(x).h > 2 {
                x = g.pool(x, 2);
            }
            c += 16;
            x = g.conv(x, 1, 1, c);
            scales.push(x);
        }
        for s in scales {
            let boxes = g.conv(s, 3, 1, 12);
            let scores = g.conv(s, 3, 1, 6);
            g.output(boxes);
            g.output(scores);
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_inference_through_a_block() {
        let mut g = Graph::new();
        let x = g.input(Shape::new(32, 32, 8));
        let c = g.conv(x, 3, 2, 16);
        assert_eq!(g.shape(c), Shape::new(16, 16, 16));
        let d = g.depthwise(c, 3, 1);
        assert_eq!(g.shape(d), Shape::new(16, 16, 16));
        let p = g.pool(d, 4);
        assert_eq!(g.shape(p), Shape::new(4, 4, 16));
        let u = g.upsample(p, 2);
        assert_eq!(g.shape(u), Shape::new(8, 8, 16));
        let f = g.dense(u, 10);
        assert_eq!(g.shape(f), Shape::new(1, 1, 10));
    }

    #[test]
    fn concat_sums_channels() {
        let mut g = Graph::new();
        let a = g.input(Shape::new(8, 8, 3));
        let b = g.input(Shape::new(8, 8, 5));
        let c = g.concat(a, b);
        assert_eq!(g.shape(c).c, 8);
    }

    #[test]
    #[should_panic(expected = "equal shapes")]
    fn add_rejects_mismatched_shapes() {
        let mut g = Graph::new();
        let a = g.input(Shape::new(8, 8, 3));
        let b = g.input(Shape::new(8, 8, 4));
        g.add(a, b);
    }

    #[test]
    fn weight_bytes_reflect_kernels() {
        let mut g = Graph::new();
        let x = g.input(Shape::new(8, 8, 4));
        let c = g.conv(x, 3, 1, 8);
        // 3*3*4*8 elements.
        assert_eq!(g.weight_bytes(c, 1), 288);
        assert_eq!(g.weight_bytes(x, 1), 0);
        let d = g.dense(c, 10);
        assert_eq!(g.weight_bytes(d, 1), 8 * 8 * 8 * 10);
    }

    #[test]
    fn consumers_are_inverse_of_inputs() {
        let g = zoo::mobilenet_like(32, 4);
        let consumers = g.consumers();
        for (i, op) in g.ops().iter().enumerate() {
            for &src in &op.inputs {
                assert!(consumers[src.index()].contains(&OpId(i)));
            }
        }
    }

    #[test]
    fn zoo_graphs_are_nontrivial() {
        assert!(zoo::mobilenet_like(96, 8).len() > 30);
        assert!(zoo::unet_like(64, 3).len() > 15);
        assert!(zoo::detector_like(96, 4).len() > 20);
    }

    #[test]
    fn graphs_are_topologically_ordered() {
        for g in [zoo::mobilenet_like(64, 6), zoo::unet_like(64, 3)] {
            for (i, op) in g.ops().iter().enumerate() {
                for &src in &op.inputs {
                    assert!(src.index() < i);
                }
            }
        }
    }
}
