//! The production fallback when packing fails (paper §1): "the
//! framework must apply techniques such as rematerialization or sharding
//! to reduce on-chip memory pressure at the expense of extra
//! computations."
//!
//! We implement the DRAM-spill flavour: evict the activation with the
//! largest memory-pressure relief per extra DMA transfer (size ×
//! lifetime, divided by its number of uses), replace it with short
//! staging buffers, and let the allocator retry.

use crate::ir::OpId;
use crate::memory::{BufferRole, Lowered, LoweredBuffer};
use tela_model::Buffer;

/// Record of what a spill round evicted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpillReport {
    /// Activations evicted, in eviction order.
    pub evicted: Vec<OpId>,
    /// Bytes of activations moved to DRAM.
    pub bytes_spilled: u64,
    /// Extra DMA staging buffers introduced.
    pub staging_buffers: usize,
}

impl SpillReport {
    /// Report with nothing spilled.
    pub fn empty() -> Self {
        SpillReport {
            evicted: Vec::new(),
            bytes_spilled: 0,
            staging_buffers: 0,
        }
    }

    /// Returns true if nothing was spilled.
    pub fn is_empty(&self) -> bool {
        self.evicted.is_empty()
    }
}

/// Picks the next activation to evict: the one with the largest
/// `size × lifetime` per consumer (pressure relieved per DMA transfer
/// added). Returns its index into `lowered.buffers`, or `None` when no
/// spillable activation remains.
pub(crate) fn pick_victim(lowered: &Lowered, staging_bytes: u64) -> Option<usize> {
    lowered
        .buffers
        .iter()
        .enumerate()
        .filter(|(_, lb)| {
            matches!(lb.role, BufferRole::Activation(_)) && lb.buffer.size() > staging_bytes
        })
        .max_by_key(|(i, lb)| {
            let uses = lb.buffer.lifetime().max(1) as u128;
            (lb.buffer.area() / uses.max(1), std::cmp::Reverse(*i))
        })
        .map(|(i, _)| i)
}

/// Evicts the buffer at `victim`: removes its activation and appends one
/// staging buffer per live step (production at the start, refetches at
/// each later step the tensor was used).
pub(crate) fn evict(
    lowered: &mut Lowered,
    victim: usize,
    staging_bytes: u64,
) -> (OpId, u64, usize) {
    let lb: LoweredBuffer = lowered.buffers.remove(victim);
    let BufferRole::Activation(op) = lb.role else {
        panic!("victim must be an activation");
    };
    let bytes = lb.buffer.size();
    // Staging at production plus one refetch window per subsequent live
    // step (a conservative stand-in for per-consumer DMA).
    let mut staging = 0;
    for t in [lb.buffer.start(), lb.buffer.end() - 1] {
        lowered.buffers.push(LoweredBuffer {
            buffer: Buffer::new(t, t + 1, staging_bytes.min(bytes).max(1)),
            role: BufferRole::DmaStaging(op),
        });
        staging += 1;
        if lb.buffer.lifetime() == 1 {
            break; // production and last use share the step
        }
    }
    lowered.dram_resident.push(op);
    (op, bytes, staging)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::zoo;
    use crate::memory::{lower, LoweringConfig};
    use crate::schedule::{schedule, ScheduleStrategy};

    fn lowered() -> Lowered {
        let g = zoo::unet_like(64, 3);
        let s = schedule(&g, ScheduleStrategy::Program, 1);
        lower(&g, &s, &LoweringConfig::default())
    }

    #[test]
    fn victim_is_a_large_activation() {
        let l = lowered();
        let victim = pick_victim(&l, 2048).expect("spillable activation exists");
        let lb = &l.buffers[victim];
        assert!(matches!(lb.role, BufferRole::Activation(_)));
        assert!(lb.buffer.size() > 2048);
    }

    #[test]
    fn eviction_reduces_contention() {
        let mut l = lowered();
        let before = l.problem(u64::MAX).unwrap().max_contention();
        let victim = pick_victim(&l, 2048).unwrap();
        let (_, bytes, staging) = evict(&mut l, victim, 2048);
        assert!(bytes > 2048);
        assert!(staging >= 1);
        let after = l.problem(u64::MAX).unwrap().max_contention();
        assert!(after <= before, "eviction must not raise peak contention");
    }

    #[test]
    fn eviction_terminates() {
        let mut l = lowered();
        let mut rounds = 0;
        while let Some(v) = pick_victim(&l, 2048) {
            evict(&mut l, v, 2048);
            rounds += 1;
            assert!(rounds < 10_000, "eviction must terminate");
        }
        // Everything left is small or non-activation.
        for lb in &l.buffers {
            if matches!(lb.role, BufferRole::Activation(_)) {
                assert!(lb.buffer.size() <= 2048);
            }
        }
    }

    #[test]
    fn empty_report() {
        assert!(SpillReport::empty().is_empty());
    }
}
