//! Lowering a scheduled graph to buffer live ranges.
//!
//! Each operator at time `t`:
//!
//! - produces an *activation* buffer live from `t` until its last
//!   consumer's time step (inclusive);
//! - streams a *weight slice* (convs/dense), live only for `[t, t+1)`,
//!   64-byte aligned for the vector units (paper §5.5);
//! - uses a *scratch* buffer (im2col/accumulators), live `[t, t+1)`.
//!
//! The residency policy picks the subset that competes for the on-chip
//! scratchpad ("the memory allocator packs a *chosen subset* of memory
//! buffers into PE memory", §2.3): tensors above a DRAM threshold are
//! spilled up front and represented by a small DMA staging buffer.

use tela_model::{Buffer, Problem, ProblemError, Size};

use crate::ir::{Graph, OpId, OpKind};
use crate::schedule::Schedule;

/// What a lowered buffer represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BufferRole {
    /// An operator's output feature map.
    Activation(OpId),
    /// An operator's streamed weight slice.
    Weights(OpId),
    /// An operator's scratch memory.
    Scratch(OpId),
    /// DMA staging for a DRAM-resident tensor (one per transfer window).
    DmaStaging(OpId),
}

/// One lowered buffer with its provenance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoweredBuffer {
    /// The live range / size / alignment the allocator sees.
    pub buffer: Buffer,
    /// What the buffer is.
    pub role: BufferRole,
}

/// The lowering result: an allocation problem plus provenance.
#[derive(Debug, Clone)]
pub struct Lowered {
    /// Buffers in a stable order (activation, weights, scratch per op).
    pub buffers: Vec<LoweredBuffer>,
    /// Ops whose activations were sent to DRAM by the residency policy.
    pub dram_resident: Vec<OpId>,
}

/// Lowering knobs.
#[derive(Debug, Clone, Copy)]
pub struct LoweringConfig {
    /// Bytes per tensor element (1 = int8 inference, 2 = fp16, ...).
    pub bytes_per_element: u64,
    /// Activations larger than this stay in DRAM and appear on-chip only
    /// as a staging buffer. `u64::MAX` keeps everything on chip.
    pub dram_threshold: u64,
    /// Size of each DMA staging buffer.
    pub dma_staging_bytes: u64,
    /// Alignment applied to weight slices.
    pub weight_alignment: Size,
}

impl Default for LoweringConfig {
    fn default() -> Self {
        LoweringConfig {
            bytes_per_element: 1,
            dram_threshold: u64::MAX,
            dma_staging_bytes: 2048,
            weight_alignment: 64,
        }
    }
}

/// Lowers a scheduled graph to buffers.
///
/// # Example
///
/// ```
/// use tela_pixel::ir::zoo;
/// use tela_pixel::memory::{lower, LoweringConfig};
/// use tela_pixel::schedule::{schedule, ScheduleStrategy};
///
/// let g = zoo::mobilenet_like(64, 4);
/// let s = schedule(&g, ScheduleStrategy::Program, 1);
/// let lowered = lower(&g, &s, &LoweringConfig::default());
/// assert!(lowered.buffers.len() >= g.len());
/// ```
pub fn lower(graph: &Graph, schedule: &Schedule, config: &LoweringConfig) -> Lowered {
    let consumers = graph.consumers();
    let mut buffers = Vec::new();
    let mut dram_resident = Vec::new();

    for (idx, op) in graph.ops().iter().enumerate() {
        let id = OpId(idx);
        let t = schedule.time_of(id);
        let last_use = consumers[idx].iter().map(|c| schedule.time_of(*c)).max();
        let end = match last_use {
            Some(u) => u + 1,
            None => t + 1, // outputs / dead tensors live one step
        };
        let bytes = graph.shape(id).bytes(config.bytes_per_element);

        if matches!(op.kind, OpKind::Output) {
            continue; // outputs alias their input; nothing new on chip
        }

        if bytes > config.dram_threshold {
            dram_resident.push(id);
            // One staging window at production and one per consumer.
            buffers.push(LoweredBuffer {
                buffer: Buffer::new(t, t + 1, config.dma_staging_bytes),
                role: BufferRole::DmaStaging(id),
            });
            for &c in &consumers[idx] {
                let tc = schedule.time_of(c);
                buffers.push(LoweredBuffer {
                    buffer: Buffer::new(tc, tc + 1, config.dma_staging_bytes),
                    role: BufferRole::DmaStaging(id),
                });
            }
        } else {
            buffers.push(LoweredBuffer {
                buffer: Buffer::new(t, end, bytes.max(1)),
                role: BufferRole::Activation(id),
            });
        }

        let weights = graph.weight_bytes(id, config.bytes_per_element);
        if weights > 0 {
            buffers.push(LoweredBuffer {
                buffer: Buffer::new(t, t + 1, weights).with_align(config.weight_alignment),
                role: BufferRole::Weights(id),
            });
        }
        if let Some(scratch) = scratch_bytes(graph, id, config.bytes_per_element) {
            buffers.push(LoweredBuffer {
                buffer: Buffer::new(t, t + 1, scratch),
                role: BufferRole::Scratch(id),
            });
        }
    }
    Lowered {
        buffers,
        dram_resident,
    }
}

/// Scratch requirement per op kind (im2col patch rows, accumulators).
fn scratch_bytes(graph: &Graph, id: OpId, bytes_per_element: u64) -> Option<u64> {
    let op = &graph.ops()[id.index()];
    match op.kind {
        OpKind::Conv { kernel, .. } => {
            let in_c = graph.shape(op.inputs[0]).c;
            let out = graph.shape(id);
            // One output-row im2col patch buffer.
            Some(
                u64::from(kernel)
                    * u64::from(kernel)
                    * u64::from(in_c)
                    * u64::from(out.w)
                    * bytes_per_element,
            )
        }
        OpKind::Dense { units } => Some(u64::from(units) * 4), // fp32 accumulators
        _ => None,
    }
}

impl Lowered {
    /// Packs the lowered buffers into an allocation problem at the given
    /// scratchpad capacity.
    ///
    /// # Errors
    ///
    /// Returns [`ProblemError`] if some single buffer exceeds the
    /// scratchpad.
    pub fn problem(&self, scratchpad_bytes: Size) -> Result<Problem, ProblemError> {
        Problem::new(
            self.buffers.iter().map(|b| b.buffer).collect(),
            scratchpad_bytes,
        )
    }

    /// Total bytes of the lowered buffer set (ignoring liveness).
    pub fn total_bytes(&self) -> u64 {
        self.buffers.iter().map(|b| b.buffer.size()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::zoo;
    use crate::schedule::{schedule, ScheduleStrategy};

    fn lowered(res: u32, blocks: u32) -> (Graph, Lowered) {
        let g = zoo::mobilenet_like(res, blocks);
        let s = schedule(&g, ScheduleStrategy::Program, 1);
        let l = lower(&g, &s, &LoweringConfig::default());
        (g, l)
    }

    use crate::ir::Graph;

    #[test]
    fn activations_live_until_last_consumer() {
        let mut g = Graph::new();
        let x = g.input(crate::ir::Shape::new(8, 8, 4));
        let a = g.conv(x, 3, 1, 8);
        let b = g.conv(a, 3, 1, 8);
        let c = g.add(a, b); // `a` is used again here
        g.output(c);
        let s = schedule(&g, ScheduleStrategy::Program, 1);
        let l = lower(&g, &s, &LoweringConfig::default());
        let a_buf = l
            .buffers
            .iter()
            .find(|lb| lb.role == BufferRole::Activation(a))
            .expect("activation for a");
        // `a` runs at t=1; its last consumer (`add`) runs at t=3.
        assert_eq!((a_buf.buffer.start(), a_buf.buffer.end()), (1, 4));
    }

    #[test]
    fn weights_are_aligned_and_short_lived() {
        let (_, l) = lowered(32, 4);
        let weights: Vec<_> = l
            .buffers
            .iter()
            .filter(|lb| matches!(lb.role, BufferRole::Weights(_)))
            .collect();
        assert!(!weights.is_empty());
        for w in weights {
            assert_eq!(w.buffer.align(), 64);
            assert_eq!(w.buffer.lifetime(), 1);
        }
    }

    #[test]
    fn dram_threshold_replaces_big_activations_with_staging() {
        let g = zoo::mobilenet_like(64, 4);
        let s = schedule(&g, ScheduleStrategy::Program, 1);
        let config = LoweringConfig {
            dram_threshold: 4096,
            ..LoweringConfig::default()
        };
        let l = lower(&g, &s, &config);
        assert!(!l.dram_resident.is_empty());
        for lb in &l.buffers {
            if let BufferRole::Activation(_) = lb.role {
                assert!(lb.buffer.size() <= 4096);
            }
        }
        assert!(l
            .buffers
            .iter()
            .any(|lb| matches!(lb.role, BufferRole::DmaStaging(_))));
    }

    #[test]
    fn problem_capacity_checks_apply() {
        let (_, l) = lowered(64, 6);
        assert!(l.problem(1).is_err(), "tiny scratchpad must be rejected");
        let p = l.problem(u64::MAX).unwrap();
        assert_eq!(p.len(), l.buffers.len());
    }

    #[test]
    fn output_ops_add_no_buffers() {
        let mut g = Graph::new();
        let x = g.input(crate::ir::Shape::new(4, 4, 2));
        let c = g.conv(x, 1, 1, 2);
        g.output(c);
        let s = schedule(&g, ScheduleStrategy::Program, 1);
        let l = lower(&g, &s, &LoweringConfig::default());
        assert!(l
            .buffers
            .iter()
            .all(|lb| !matches!(lb.role, BufferRole::Activation(id) if g.ops()[id.index()].kind == crate::ir::OpKind::Output)));
    }

    #[test]
    fn lowering_is_deterministic() {
        let (_, a) = lowered(48, 5);
        let (_, b) = lowered(48, 5);
        assert_eq!(a.buffers, b.buffers);
    }
}
