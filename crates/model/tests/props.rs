//! Property tests over the model crate's core invariants.

use proptest::prelude::*;
use tela_model::{
    parse_problem, problem_to_text, split_independent, Buffer, PhasePartition, Problem,
};

fn buffer_strategy() -> impl Strategy<Value = Buffer> {
    (
        0u32..40,
        1u32..12,
        1u64..100,
        prop_oneof![Just(1u64), Just(8), Just(32)],
    )
        .prop_map(|(start, len, size, align)| {
            Buffer::new(start, start + len, size).with_align(align)
        })
}

fn problem_strategy() -> impl Strategy<Value = Problem> {
    (
        prop::collection::vec(buffer_strategy(), 0..40),
        100u64..1000,
    )
        .prop_map(|(buffers, capacity)| {
            Problem::new(buffers, capacity).expect("sizes below capacity")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(400))]

    #[test]
    fn trace_round_trip_is_identity(problem in problem_strategy()) {
        let text = problem_to_text(&problem);
        prop_assert_eq!(parse_problem(&text).expect("parses"), problem);
    }

    #[test]
    fn contention_equals_direct_sum(problem in problem_strategy()) {
        let profile = problem.contention();
        for t in 0..problem.horizon() {
            let direct: u64 = problem
                .buffers()
                .iter()
                .filter(|b| b.live_at(t))
                .map(|b| b.size())
                .sum();
            prop_assert_eq!(profile.at(t), direct, "slot {}", t);
        }
    }

    #[test]
    fn overlapping_pairs_match_quadratic_reference(problem in problem_strategy()) {
        let mut sweep: Vec<(usize, usize)> = problem
            .overlapping_pairs()
            .map(|(a, b)| (a.index(), b.index()))
            .collect();
        sweep.sort_unstable();
        let mut reference = Vec::new();
        for i in 0..problem.len() {
            for j in (i + 1)..problem.len() {
                if problem.buffers()[i].overlaps_in_time(&problem.buffers()[j]) {
                    reference.push((i, j));
                }
            }
        }
        prop_assert_eq!(sweep, reference);
    }

    #[test]
    fn phases_partition_all_blocks(problem in problem_strategy()) {
        let partition = PhasePartition::compute(&problem);
        let mut seen = vec![false; problem.len()];
        for phase in partition.phases() {
            for &id in &phase.blocks {
                prop_assert!(!seen[id.index()], "block assigned twice");
                seen[id.index()] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn split_groups_are_time_disjoint_and_complete(problem in problem_strategy()) {
        let groups = split_independent(&problem);
        let mut seen = vec![false; problem.len()];
        for group in &groups {
            for &id in group {
                prop_assert!(!seen[id.index()]);
                seen[id.index()] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
        // No buffer in one group overlaps a buffer in a later group.
        for i in 0..groups.len() {
            for j in (i + 1)..groups.len() {
                for &a in &groups[i] {
                    for &b in &groups[j] {
                        prop_assert!(
                            !problem.buffer(a).overlaps_in_time(problem.buffer(b)),
                            "{a} and {b} overlap across groups"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn capacity_rescaling_preserves_buffers(problem in problem_strategy()) {
        let doubled = problem.with_capacity(problem.capacity() * 2).expect("larger fits");
        prop_assert_eq!(doubled.buffers(), problem.buffers());
        prop_assert_eq!(doubled.capacity(), problem.capacity() * 2);
    }
}
