//! Property tests for cache-fingerprint canonicalization: renaming
//! buffers and uniformly shifting lifetimes must never change a
//! fingerprint (no spurious cache misses), while size/alignment/interval
//! and capacity perturbations always must (no false cache hits).

use proptest::prelude::*;
use tela_model::{fingerprint, Buffer, CanonicalForm, Problem, Solution};

fn buffer_strategy() -> impl Strategy<Value = Buffer> {
    (
        0u32..12,
        1u32..6,
        1u64..8,
        prop_oneof![Just(1u64), Just(2), Just(4), Just(8)],
    )
        .prop_map(|(start, len, size, align)| {
            Buffer::new(start, start + len, size).with_align(align)
        })
}

fn problem_strategy() -> impl Strategy<Value = Problem> {
    (prop::collection::vec(buffer_strategy(), 1..12), 8u64..64).prop_map(|(buffers, capacity)| {
        Problem::new(buffers, capacity).expect("sizes below capacity")
    })
}

/// Applies a deterministic permutation (derived from `seed`) and a
/// uniform `shift` to every buffer.
fn rename_and_shift(problem: &Problem, seed: u64, shift: u32) -> Problem {
    let mut buffers: Vec<Buffer> = problem
        .buffers()
        .iter()
        .map(|b| Buffer::new(b.start() + shift, b.end() + shift, b.size()).with_align(b.align()))
        .collect();
    // Fisher–Yates with a splitmix64 stream: a real permutation, seeded.
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    for i in (1..buffers.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        buffers.swap(i, j);
    }
    Problem::new(buffers, problem.capacity()).expect("renaming/shift preserves validity")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn renaming_and_uniform_shift_preserve_fingerprints(
        problem in problem_strategy(),
        seed in 0u64..u64::MAX,
        shift in 0u32..100,
    ) {
        let transformed = rename_and_shift(&problem, seed, shift);
        prop_assert_eq!(fingerprint(&problem), fingerprint(&transformed));
        prop_assert!(CanonicalForm::of(&problem).matches(&CanonicalForm::of(&transformed)));
    }

    #[test]
    fn size_perturbation_changes_the_fingerprint(
        problem in problem_strategy(),
        victim in 0usize..4096,
    ) {
        let idx = victim % problem.len();
        let buffers: Vec<Buffer> = problem
            .buffers()
            .iter()
            .enumerate()
            .map(|(i, b)| {
                let size = if i == idx { b.size() + 1 } else { b.size() };
                Buffer::new(b.start(), b.end(), size).with_align(b.align())
            })
            .collect();
        // Growing one buffer may exceed capacity; grow capacity in step
        // only when needed, which itself changes the form.
        let capacity = problem.capacity().max(buffers[idx].size());
        let perturbed = Problem::new(buffers, capacity).expect("still valid");
        prop_assert_ne!(fingerprint(&problem), fingerprint(&perturbed));
        prop_assert!(!CanonicalForm::of(&problem).matches(&CanonicalForm::of(&perturbed)));
    }

    #[test]
    fn alignment_perturbation_changes_the_fingerprint(
        problem in problem_strategy(),
        victim in 0usize..4096,
    ) {
        let idx = victim % problem.len();
        let buffers: Vec<Buffer> = problem
            .buffers()
            .iter()
            .enumerate()
            .map(|(i, b)| {
                let align = if i == idx { b.align() * 16 } else { b.align() };
                Buffer::new(b.start(), b.end(), b.size()).with_align(align)
            })
            .collect();
        let perturbed = Problem::new(buffers, problem.capacity()).expect("still valid");
        prop_assert_ne!(fingerprint(&problem), fingerprint(&perturbed));
    }

    #[test]
    fn interval_perturbation_changes_the_fingerprint(
        problem in problem_strategy(),
        victim in 0usize..4096,
    ) {
        let idx = victim % problem.len();
        let buffers: Vec<Buffer> = problem
            .buffers()
            .iter()
            .enumerate()
            .map(|(i, b)| {
                let end = if i == idx { b.end() + 1 } else { b.end() };
                Buffer::new(b.start(), end, b.size()).with_align(b.align())
            })
            .collect();
        let perturbed = Problem::new(buffers, problem.capacity()).expect("still valid");
        prop_assert_ne!(fingerprint(&problem), fingerprint(&perturbed));
    }

    #[test]
    fn capacity_perturbation_changes_the_fingerprint(problem in problem_strategy()) {
        let perturbed = problem.with_capacity(problem.capacity() + 1).expect("larger is valid");
        prop_assert_ne!(fingerprint(&problem), fingerprint(&perturbed));
    }

    #[test]
    fn translated_cached_solutions_validate_on_the_renamed_problem(
        problem in problem_strategy(),
        seed in 0u64..u64::MAX,
        shift in 0u32..50,
    ) {
        // "Solve" by stacking every buffer disjointly — always valid if
        // it fits; skip instances where it does not.
        let mut addr = 0u64;
        let mut addresses = Vec::with_capacity(problem.len());
        for b in problem.buffers() {
            let aligned = addr.div_ceil(b.align()) * b.align();
            addresses.push(aligned);
            addr = aligned + b.size();
        }
        prop_assume!(addr <= problem.capacity());
        let solution = Solution::new(addresses);
        prop_assert!(solution.validate(&problem).is_ok());

        let renamed = rename_and_shift(&problem, seed, shift);
        let slots = CanonicalForm::of(&problem).slot_addresses(&solution);
        let replayed = CanonicalForm::of(&renamed)
            .translate(&slots)
            .expect("matching forms have matching slot counts");
        prop_assert!(replayed.validate(&renamed).is_ok());
    }
}
