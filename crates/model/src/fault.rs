//! Deterministic fault injection for chaos-testing the solve pipeline.
//!
//! Available only under the `fault-inject` cargo feature. A seeded
//! [`FaultPlan`] names *which* fault fires and *when* (in solver steps);
//! a [`FaultInjector`] executes the plan as the attached [`Budget`]
//! polls [`Budget::exhausted`]. All faults are deterministic: panics
//! fire at an exact step, stalls advance a virtual clock instead of
//! sleeping, and cancellations flip a private flag the budget observes
//! exactly like a lost portfolio race.
//!
//! [`Budget`]: crate::Budget
//! [`Budget::exhausted`]: crate::Budget::exhausted

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

/// A deterministic script of faults to inject into one solve.
///
/// Each field is independent; `None` disables that fault. Step
/// thresholds compare against the step counter the solver passes to
/// [`crate::Budget::exhausted`], so the same plan fires at the same
/// point on every run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Panic (with a recognizable message) once the step counter
    /// reaches this value.
    pub panic_at_step: Option<u64>,
    /// From this step on, report the virtual clock as being this much
    /// later than it really is — a deterministic stall.
    pub stall_at_step: Option<(u64, Duration)>,
    /// Report the budget as cancelled from this step on, as if the
    /// solve had lost a portfolio race.
    pub cancel_at_step: Option<u64>,
    /// Make this spill round (1-based) fail to produce a new problem,
    /// forcing the escalation ladder to stop spilling.
    pub fail_spill_round: Option<u32>,
    /// Restrict the plan to one portfolio variant (by index); `None`
    /// applies it to every variant.
    pub victim_variant: Option<usize>,
}

impl FaultPlan {
    /// Derives a plan deterministically from `seed` (xorshift64*): the
    /// same seed always yields the same plan, and the seed space covers
    /// every fault kind, including the empty plan.
    pub fn from_seed(seed: u64) -> Self {
        let mut state = seed.wrapping_mul(2685821657736338717).wrapping_add(1);
        let mut next = move || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state = state.wrapping_mul(2685821657736338717);
            state
        };
        let mut plan = FaultPlan::default();
        let kinds = next();
        // Keep thresholds small so faults actually fire within typical
        // test budgets; one plan may combine several fault kinds.
        if kinds & 0b0001 != 0 {
            plan.panic_at_step = Some(next() % 64);
        }
        if kinds & 0b0010 != 0 {
            plan.stall_at_step = Some((next() % 64, Duration::from_secs(1 + next() % 3600)));
        }
        if kinds & 0b0100 != 0 {
            plan.cancel_at_step = Some(next() % 64);
        }
        if kinds & 0b1000 != 0 {
            plan.fail_spill_round = Some(1 + (next() % 4) as u32);
        }
        if kinds & 0b1_0000 != 0 {
            plan.victim_variant = Some((next() % 9) as usize);
        }
        plan
    }

    /// Whether this plan targets the portfolio variant at `index`.
    pub fn applies_to_variant(&self, index: usize) -> bool {
        self.victim_variant.is_none_or(|v| v == index)
    }

    /// Returns true if the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        *self == FaultPlan::default()
    }

    /// Builds a fresh injector executing this plan.
    pub fn injector(&self) -> FaultInjector {
        FaultInjector::new(self.clone())
    }
}

/// Executes a [`FaultPlan`] as the solver polls its budget.
///
/// Thread-safe: one injector may be shared by several budget clones.
/// Stall and cancellation faults latch once fired.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    /// Virtual clock skew in nanoseconds, raised by a stall fault.
    stalled_nanos: AtomicU64,
    cancelled: AtomicBool,
}

impl FaultInjector {
    /// Creates an injector for `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector {
            plan,
            stalled_nanos: AtomicU64::new(0),
            cancelled: AtomicBool::new(false),
        }
    }

    /// The plan being executed.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Advances the injector to `steps`, firing any fault whose
    /// threshold has been reached.
    ///
    /// # Panics
    ///
    /// Panics (deliberately) when the plan's `panic_at_step` threshold
    /// is reached — that is the injected fault.
    pub fn on_step(&self, steps: u64) {
        if let Some(at) = self.plan.panic_at_step {
            if steps >= at {
                panic!("fault-inject: injected panic at step {steps}");
            }
        }
        if let Some((at, stall)) = self.plan.stall_at_step {
            if steps >= at {
                let nanos = u64::try_from(stall.as_nanos()).unwrap_or(u64::MAX);
                self.stalled_nanos.store(nanos, Ordering::Release);
            }
        }
        if let Some(at) = self.plan.cancel_at_step {
            if steps >= at {
                self.cancelled.store(true, Ordering::Release);
            }
        }
    }

    /// Current virtual clock skew (zero until a stall fault fires).
    pub fn stall(&self) -> Duration {
        Duration::from_nanos(self.stalled_nanos.load(Ordering::Acquire))
    }

    /// Whether an injected cancellation has fired.
    pub fn cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Budget;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn seeded_plans_are_deterministic() {
        for seed in 0..256 {
            assert_eq!(FaultPlan::from_seed(seed), FaultPlan::from_seed(seed));
        }
        // The seed space exercises more than one plan.
        let distinct: std::collections::HashSet<_> = (0..256)
            .map(|s| format!("{:?}", FaultPlan::from_seed(s)))
            .collect();
        assert!(distinct.len() > 8, "only {} distinct plans", distinct.len());
    }

    #[test]
    fn panic_fault_fires_at_threshold() {
        let plan = FaultPlan {
            panic_at_step: Some(5),
            ..FaultPlan::default()
        };
        let budget = Budget::steps(1_000).with_fault_injector(Arc::new(plan.injector()));
        assert!(!budget.exhausted(4));
        let err = catch_unwind(AssertUnwindSafe(|| budget.exhausted(5))).unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("injected panic at step 5"), "got: {msg}");
    }

    #[test]
    fn cancel_fault_latches_and_exhausts() {
        let plan = FaultPlan {
            cancel_at_step: Some(3),
            ..FaultPlan::default()
        };
        let budget = Budget::steps(1_000).with_fault_injector(Arc::new(plan.injector()));
        assert!(!budget.exhausted(2));
        assert!(!budget.cancelled());
        assert!(budget.exhausted(3));
        assert!(budget.cancelled());
        // Latches: still cancelled at later (and earlier) polls.
        assert!(budget.exhausted(0));
    }

    #[test]
    fn stall_fault_advances_the_virtual_clock() {
        let plan = FaultPlan {
            stall_at_step: Some((2, Duration::from_secs(7200))),
            ..FaultPlan::default()
        };
        let t0 = Instant::now();
        let budget = Budget::unlimited()
            .with_deadline(t0 + Duration::from_secs(3600))
            .with_fault_injector(Arc::new(plan.injector()));
        // Before the stall fires the deadline is an hour away.
        assert!(!budget.deadline_passed_at(t0));
        assert!(!budget.exhausted(1));
        // The poll at step 2 raises a two-hour virtual stall, pushing
        // the observed clock past the deadline deterministically.
        assert!(budget.exhausted(2));
        assert!(budget.deadline_passed_at(t0));
    }

    #[test]
    fn victim_variant_scopes_the_plan() {
        let everyone = FaultPlan::default();
        assert!(everyone.applies_to_variant(0));
        assert!(everyone.applies_to_variant(7));
        let scoped = FaultPlan {
            victim_variant: Some(2),
            ..FaultPlan::default()
        };
        assert!(scoped.applies_to_variant(2));
        assert!(!scoped.applies_to_variant(0));
    }
}
