//! Deterministic fault injection for chaos-testing the solve pipeline.
//!
//! Available only under the `fault-inject` cargo feature. A seeded
//! [`FaultPlan`] names *which* fault fires and *when* (in solver steps);
//! a [`FaultInjector`] executes the plan as the attached [`Budget`]
//! polls [`Budget::exhausted`]. All faults are deterministic: panics
//! fire at an exact step, stalls advance a virtual clock instead of
//! sleeping, and cancellations flip a private flag the budget observes
//! exactly like a lost portfolio race.
//!
//! [`Budget`]: crate::Budget
//! [`Budget::exhausted`]: crate::Budget::exhausted

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

/// A deterministic script of faults to inject into one solve.
///
/// Each field is independent; `None` disables that fault. Step
/// thresholds compare against the step counter the solver passes to
/// [`crate::Budget::exhausted`], so the same plan fires at the same
/// point on every run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Panic (with a recognizable message) once the step counter
    /// reaches this value.
    pub panic_at_step: Option<u64>,
    /// From this step on, report the virtual clock as being this much
    /// later than it really is — a deterministic stall.
    pub stall_at_step: Option<(u64, Duration)>,
    /// Sleep the polling thread for this long, once, when the step
    /// counter reaches the threshold — a *real* wall-clock stall, unlike
    /// [`FaultPlan::stall_at_step`]'s virtual one. Never produced by
    /// [`FaultPlan::from_seed`] (chaos stays wall-clock-free); it exists
    /// so profiling tests can slow one real span and assert that
    /// `prof diff` attributes the regression to it.
    pub sleep_at_step: Option<(u64, Duration)>,
    /// Report the budget as cancelled from this step on, as if the
    /// solve had lost a portfolio race.
    pub cancel_at_step: Option<u64>,
    /// Make this spill round (1-based) fail to produce a new problem,
    /// forcing the escalation ladder to stop spilling.
    pub fail_spill_round: Option<u32>,
    /// Restrict the plan to one portfolio variant (by index); `None`
    /// applies it to every variant.
    pub victim_variant: Option<usize>,
}

impl FaultPlan {
    /// Derives a plan deterministically from `seed` (xorshift64*): the
    /// same seed always yields the same plan, and the seed space covers
    /// every fault kind, including the empty plan.
    pub fn from_seed(seed: u64) -> Self {
        let mut state = seed.wrapping_mul(2685821657736338717).wrapping_add(1);
        let mut next = move || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state = state.wrapping_mul(2685821657736338717);
            state
        };
        let mut plan = FaultPlan::default();
        let kinds = next();
        // Keep thresholds small so faults actually fire within typical
        // test budgets; one plan may combine several fault kinds.
        if kinds & 0b0001 != 0 {
            plan.panic_at_step = Some(next() % 64);
        }
        if kinds & 0b0010 != 0 {
            plan.stall_at_step = Some((next() % 64, Duration::from_secs(1 + next() % 3600)));
        }
        if kinds & 0b0100 != 0 {
            plan.cancel_at_step = Some(next() % 64);
        }
        if kinds & 0b1000 != 0 {
            plan.fail_spill_round = Some(1 + (next() % 4) as u32);
        }
        if kinds & 0b1_0000 != 0 {
            plan.victim_variant = Some((next() % 9) as usize);
        }
        plan
    }

    /// Whether this plan targets the portfolio variant at `index`.
    pub fn applies_to_variant(&self, index: usize) -> bool {
        self.victim_variant.is_none_or(|v| v == index)
    }

    /// Returns true if the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        *self == FaultPlan::default()
    }

    /// Builds a fresh injector executing this plan.
    pub fn injector(&self) -> FaultInjector {
        FaultInjector::new(self.clone())
    }
}

/// Executes a [`FaultPlan`] as the solver polls its budget.
///
/// Thread-safe: one injector may be shared by several budget clones.
/// Stall and cancellation faults latch once fired.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    /// Virtual clock skew in nanoseconds, raised by a stall fault.
    stalled_nanos: AtomicU64,
    cancelled: AtomicBool,
    /// Latch for the one-shot real sleep fault.
    slept: AtomicBool,
}

impl FaultInjector {
    /// Creates an injector for `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector {
            plan,
            stalled_nanos: AtomicU64::new(0),
            cancelled: AtomicBool::new(false),
            slept: AtomicBool::new(false),
        }
    }

    /// The plan being executed.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Advances the injector to `steps`, firing any fault whose
    /// threshold has been reached.
    ///
    /// # Panics
    ///
    /// Panics (deliberately) when the plan's `panic_at_step` threshold
    /// is reached — that is the injected fault.
    pub fn on_step(&self, steps: u64) {
        if let Some(at) = self.plan.panic_at_step {
            if steps >= at {
                panic!("fault-inject: injected panic at step {steps}");
            }
        }
        if let Some((at, stall)) = self.plan.stall_at_step {
            if steps >= at {
                let nanos = u64::try_from(stall.as_nanos()).unwrap_or(u64::MAX);
                self.stalled_nanos.store(nanos, Ordering::Release);
            }
        }
        if let Some((at, sleep)) = self.plan.sleep_at_step {
            if steps >= at && !self.slept.swap(true, Ordering::AcqRel) {
                std::thread::sleep(sleep);
            }
        }
        if let Some(at) = self.plan.cancel_at_step {
            if steps >= at {
                self.cancelled.store(true, Ordering::Release);
            }
        }
    }

    /// Current virtual clock skew (zero until a stall fault fires).
    pub fn stall(&self) -> Duration {
        Duration::from_nanos(self.stalled_nanos.load(Ordering::Acquire))
    }

    /// Whether an injected cancellation has fired.
    pub fn cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Acquire)
    }
}

/// A deterministic script of *server-shaped* faults for chaos-testing a
/// long-running allocation service.
///
/// Where [`FaultPlan`] scripts faults inside one solve (in solver
/// steps), a `ServerFaultPlan` scripts faults around the request
/// lifecycle of a multi-tenant server, keyed by the server's global
/// request ordinal (0-based, in admission order):
///
/// - **worker faults** are executed by the server itself via
///   [`ServerFaultPlan::worker_panics_on`] — the worker thread handling
///   the named request panics mid-request and must be respawned;
/// - **client faults** (`stall`, `disconnect`) script the *test
///   harness's* client behaviour: the chaos suite reads them to decide
///   which request to abandon mid-flight or stall before reading the
///   reply, exercising the server's cancel-on-disconnect and
///   slow-reader paths;
/// - **burst** scripts a queue-full surge: starting at the named
///   request, the harness fires `size` extra concurrent requests to
///   force load shedding;
/// - `solver` is an ordinary per-solve [`FaultPlan`] the server threads
///   into the victim request's budget.
///
/// One seed therefore describes a complete scenario — who panics, who
/// hangs up, when the thundering herd arrives — reproducibly.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServerFaultPlan {
    /// Panic inside the worker while it handles this request ordinal.
    pub worker_panic_request: Option<u64>,
    /// The harness client owning this request ordinal disconnects
    /// without reading its reply.
    pub client_disconnect_request: Option<u64>,
    /// The harness client owning this request ordinal stalls for the
    /// given duration before reading its reply.
    pub client_stall_request: Option<(u64, Duration)>,
    /// From this request ordinal, the harness fires `1`-th extra
    /// concurrent requests at once (queue-full burst).
    pub burst: Option<(u64, u32)>,
    /// Solver-level faults injected into the budget of the request
    /// named by `worker_panic_request` — or of every request when no
    /// panic victim is set.
    pub solver: FaultPlan,
}

impl ServerFaultPlan {
    /// Derives a plan deterministically from `seed`; the seed space
    /// covers every fault kind (including combinations and the empty
    /// plan), with small ordinals so faults fire within short soaks.
    pub fn from_seed(seed: u64) -> Self {
        let mut state = seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(0x2545_F491_4F6C_DD1D);
        let mut next = move || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state = state.wrapping_mul(2685821657736338717);
            state
        };
        let kinds = next();
        let mut plan = ServerFaultPlan::default();
        if kinds & 0b0001 != 0 {
            plan.worker_panic_request = Some(next() % 24);
        }
        if kinds & 0b0010 != 0 {
            plan.client_disconnect_request = Some(next() % 24);
        }
        if kinds & 0b0100 != 0 {
            plan.client_stall_request = Some((next() % 24, Duration::from_millis(next() % 200)));
        }
        if kinds & 0b1000 != 0 {
            plan.burst = Some((next() % 24, 4 + (next() % 12) as u32));
        }
        if kinds & 0b1_0000 != 0 {
            plan.solver = FaultPlan {
                // Solver-internal panics are the portfolio's own chaos
                // surface; at the server level keep stall/cancel, which
                // exercise deadline and cancellation handling.
                panic_at_step: None,
                ..FaultPlan::from_seed(next())
            };
        }
        plan
    }

    /// Whether the worker handling request `ordinal` should panic (the
    /// server calls this once per request, before solving).
    pub fn worker_panics_on(&self, ordinal: u64) -> bool {
        self.worker_panic_request == Some(ordinal)
    }

    /// The solver-level fault plan for request `ordinal`, if any.
    pub fn solver_plan_for(&self, ordinal: u64) -> Option<&FaultPlan> {
        if self.solver.is_empty() {
            return None;
        }
        match self.worker_panic_request {
            Some(victim) if victim != ordinal => None,
            _ => Some(&self.solver),
        }
    }

    /// Returns true if the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        *self == ServerFaultPlan::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Budget;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn seeded_plans_are_deterministic() {
        for seed in 0..256 {
            assert_eq!(FaultPlan::from_seed(seed), FaultPlan::from_seed(seed));
        }
        // The seed space exercises more than one plan.
        let distinct: std::collections::HashSet<_> = (0..256)
            .map(|s| format!("{:?}", FaultPlan::from_seed(s)))
            .collect();
        assert!(distinct.len() > 8, "only {} distinct plans", distinct.len());
    }

    #[test]
    fn panic_fault_fires_at_threshold() {
        let plan = FaultPlan {
            panic_at_step: Some(5),
            ..FaultPlan::default()
        };
        let budget = Budget::steps(1_000).with_fault_injector(Arc::new(plan.injector()));
        assert!(!budget.exhausted(4));
        let err = catch_unwind(AssertUnwindSafe(|| budget.exhausted(5))).unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("injected panic at step 5"), "got: {msg}");
    }

    #[test]
    fn cancel_fault_latches_and_exhausts() {
        let plan = FaultPlan {
            cancel_at_step: Some(3),
            ..FaultPlan::default()
        };
        let budget = Budget::steps(1_000).with_fault_injector(Arc::new(plan.injector()));
        assert!(!budget.exhausted(2));
        assert!(!budget.cancelled());
        assert!(budget.exhausted(3));
        assert!(budget.cancelled());
        // Latches: still cancelled at later (and earlier) polls.
        assert!(budget.exhausted(0));
    }

    #[test]
    fn stall_fault_advances_the_virtual_clock() {
        let plan = FaultPlan {
            stall_at_step: Some((2, Duration::from_secs(7200))),
            ..FaultPlan::default()
        };
        let t0 = Instant::now();
        let budget = Budget::unlimited()
            .with_deadline(t0 + Duration::from_secs(3600))
            .with_fault_injector(Arc::new(plan.injector()));
        // Before the stall fires the deadline is an hour away.
        assert!(!budget.deadline_passed_at(t0));
        assert!(!budget.exhausted(1));
        // The poll at step 2 raises a two-hour virtual stall, pushing
        // the observed clock past the deadline deterministically.
        assert!(budget.exhausted(2));
        assert!(budget.deadline_passed_at(t0));
    }

    #[test]
    fn sleep_fault_fires_once_and_really_sleeps() {
        let plan = FaultPlan {
            sleep_at_step: Some((2, Duration::from_millis(30))),
            ..FaultPlan::default()
        };
        let budget = Budget::steps(1_000).with_fault_injector(Arc::new(plan.injector()));
        let t0 = Instant::now();
        assert!(!budget.exhausted(1));
        assert!(t0.elapsed() < Duration::from_millis(25), "slept too early");
        assert!(!budget.exhausted(2));
        assert!(t0.elapsed() >= Duration::from_millis(30), "did not sleep");
        // One-shot: later polls do not sleep again.
        let t1 = Instant::now();
        assert!(!budget.exhausted(3));
        assert!(t1.elapsed() < Duration::from_millis(25), "slept twice");
        // Seeded plans never produce a real sleep.
        for seed in 0..512 {
            assert_eq!(FaultPlan::from_seed(seed).sleep_at_step, None);
        }
    }

    #[test]
    fn victim_variant_scopes_the_plan() {
        let everyone = FaultPlan::default();
        assert!(everyone.applies_to_variant(0));
        assert!(everyone.applies_to_variant(7));
        let scoped = FaultPlan {
            victim_variant: Some(2),
            ..FaultPlan::default()
        };
        assert!(scoped.applies_to_variant(2));
        assert!(!scoped.applies_to_variant(0));
    }

    #[test]
    fn server_plans_are_deterministic_and_cover_every_fault_kind() {
        let mut saw_panic = false;
        let mut saw_disconnect = false;
        let mut saw_stall = false;
        let mut saw_burst = false;
        let mut saw_solver = false;
        let mut saw_empty = false;
        for seed in 0..256 {
            let plan = ServerFaultPlan::from_seed(seed);
            assert_eq!(plan, ServerFaultPlan::from_seed(seed), "seed {seed}");
            saw_panic |= plan.worker_panic_request.is_some();
            saw_disconnect |= plan.client_disconnect_request.is_some();
            saw_stall |= plan.client_stall_request.is_some();
            saw_burst |= plan.burst.is_some();
            saw_solver |= !plan.solver.is_empty();
            saw_empty |= plan.is_empty();
        }
        assert!(saw_panic && saw_disconnect && saw_stall && saw_burst && saw_solver && saw_empty);
    }

    #[test]
    fn worker_panic_fires_on_exactly_one_request_ordinal() {
        let plan = ServerFaultPlan {
            worker_panic_request: Some(3),
            ..ServerFaultPlan::default()
        };
        assert!(!plan.worker_panics_on(2));
        assert!(plan.worker_panics_on(3));
        // The respawned worker must not be re-killed on later requests.
        assert!(!plan.worker_panics_on(4));
        assert!(!ServerFaultPlan::default().worker_panics_on(0));
    }

    #[test]
    fn solver_plan_targets_the_panic_victim_or_everyone() {
        let solver = FaultPlan {
            cancel_at_step: Some(5),
            ..FaultPlan::default()
        };
        let targeted = ServerFaultPlan {
            worker_panic_request: Some(2),
            solver: solver.clone(),
            ..ServerFaultPlan::default()
        };
        assert!(targeted.solver_plan_for(1).is_none());
        assert_eq!(targeted.solver_plan_for(2), Some(&solver));
        let broadcast = ServerFaultPlan {
            solver: solver.clone(),
            ..ServerFaultPlan::default()
        };
        assert_eq!(broadcast.solver_plan_for(0), Some(&solver));
        assert_eq!(broadcast.solver_plan_for(9), Some(&solver));
        assert!(ServerFaultPlan::default().solver_plan_for(0).is_none());
    }

    #[test]
    fn seeded_server_solver_plans_never_script_solver_panics() {
        // Worker panics are scripted separately; the solver sub-plan is
        // restricted to stall/cancel-shaped faults.
        for seed in 0..512 {
            let plan = ServerFaultPlan::from_seed(seed);
            assert_eq!(plan.solver.panic_at_step, None, "seed {seed}");
        }
    }
}
