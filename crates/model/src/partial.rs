//! Partial solutions and best-effort diagnostics for degraded solves.
//!
//! When every stage of the resilience ladder exhausts its budget, the
//! solver returns the *maximal placed prefix* it reached instead of
//! nothing (paper §1: production allocators must degrade gracefully).
//! A [`PartialSolution`] carries that prefix; [`BestEffort`] wraps it
//! together with structured diagnostics — the stage reached, the steps
//! spent, and the first conflict clique the search ran into.

use serde::{Deserialize, Serialize};

use crate::problem::ProblemError;
use crate::solution::ValidationError;
use crate::{Address, BufferId, Problem, Solution};

/// The stage of the resilience ladder a solve reached before stopping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ResilienceStage {
    /// The greedy heuristic alone (stage 0 of the ladder).
    Heuristic,
    /// The full portfolio race (stage 1).
    Portfolio,
    /// A spill-and-retry round (stage 2+); `round` counts from 1.
    SpillRetry {
        /// Which spill round (1-based) the ladder was in.
        round: u32,
    },
}

impl std::fmt::Display for ResilienceStage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResilienceStage::Heuristic => write!(f, "heuristic"),
            ResilienceStage::Portfolio => write!(f, "portfolio"),
            ResilienceStage::SpillRetry { round } => write!(f, "spill-retry round {round}"),
        }
    }
}

/// An assignment of addresses to a *subset* of a problem's buffers: the
/// maximal placed prefix a search committed before running out of
/// budget.
///
/// Unlike [`Solution`], which must cover every buffer, a partial
/// solution names the buffers it places. [`PartialSolution::validate`]
/// re-checks the placed subset against the original problem's capacity,
/// alignment, and pairwise non-overlap constraints by building a
/// sub-problem of only the placed buffers.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartialSolution {
    placements: Vec<(BufferId, Address)>,
}

/// Reasons a [`PartialSolution`] fails validation against a [`Problem`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartialError {
    /// A placement names a buffer the problem does not have.
    UnknownBuffer(BufferId),
    /// The same buffer is placed twice.
    DuplicateBuffer(BufferId),
    /// The placed subset does not form a valid sub-problem (cannot
    /// happen for a well-formed source problem; reported rather than
    /// panicking).
    SubProblem(ProblemError),
    /// The placed subset violates capacity, alignment, or non-overlap.
    /// Buffer ids refer to the *original* problem.
    Invalid(ValidationError),
}

impl std::fmt::Display for PartialError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PartialError::UnknownBuffer(id) => {
                write!(f, "partial solution places unknown buffer {id}")
            }
            PartialError::DuplicateBuffer(id) => {
                write!(f, "partial solution places buffer {id} twice")
            }
            PartialError::SubProblem(e) => write!(f, "placed subset is not a valid problem: {e}"),
            PartialError::Invalid(e) => write!(f, "placed subset is invalid: {e}"),
        }
    }
}

impl std::error::Error for PartialError {}

impl PartialSolution {
    /// Wraps a list of `(buffer, address)` placements.
    pub fn new(placements: Vec<(BufferId, Address)>) -> Self {
        PartialSolution { placements }
    }

    /// A partial solution that places nothing.
    pub fn empty() -> Self {
        PartialSolution::default()
    }

    /// The placements, in the order they were committed.
    pub fn placements(&self) -> &[(BufferId, Address)] {
        &self.placements
    }

    /// Number of placed buffers.
    pub fn len(&self) -> usize {
        self.placements.len()
    }

    /// Returns true if nothing is placed.
    pub fn is_empty(&self) -> bool {
        self.placements.is_empty()
    }

    /// The address assigned to `id`, if it is placed.
    pub fn address_of(&self, id: BufferId) -> Option<Address> {
        self.placements
            .iter()
            .find(|(b, _)| *b == id)
            .map(|&(_, a)| a)
    }

    /// Validates the placed subset against `problem`: every placed id
    /// must exist and be placed once, and the placements must satisfy
    /// capacity, alignment, and pairwise non-overlap among themselves.
    /// On success returns the peak address in use by the placed subset.
    ///
    /// # Errors
    ///
    /// Returns the first [`PartialError`] found; validation errors
    /// reference buffer ids of the original problem.
    pub fn validate(&self, problem: &Problem) -> Result<Address, PartialError> {
        let mut seen = vec![false; problem.len()];
        for &(id, _) in &self.placements {
            if id.index() >= problem.len() {
                return Err(PartialError::UnknownBuffer(id));
            }
            if seen[id.index()] {
                return Err(PartialError::DuplicateBuffer(id));
            }
            seen[id.index()] = true;
        }
        // Build the sub-problem of only the placed buffers. Dense index
        // `i` in the sub-problem corresponds to `self.placements[i].0`
        // in the original; errors are remapped back before returning.
        let buffers = self
            .placements
            .iter()
            .map(|&(id, _)| *problem.buffer(id))
            .collect();
        let sub = Problem::new(buffers, problem.capacity()).map_err(PartialError::SubProblem)?;
        let addresses = self.placements.iter().map(|&(_, a)| a).collect();
        Solution::new(addresses)
            .validate(&sub)
            .map_err(|e| PartialError::Invalid(self.remap(e)))
    }

    /// Maps a validation error's dense sub-problem ids back to the
    /// original problem's buffer ids.
    fn remap(&self, error: ValidationError) -> ValidationError {
        let orig = |id: BufferId| self.placements[id.index()].0;
        match error {
            ValidationError::WrongLength { .. } => error,
            ValidationError::ExceedsCapacity {
                buffer,
                top,
                capacity,
            } => ValidationError::ExceedsCapacity {
                buffer: orig(buffer),
                top,
                capacity,
            },
            ValidationError::Misaligned {
                buffer,
                address,
                align,
            } => ValidationError::Misaligned {
                buffer: orig(buffer),
                address,
                align,
            },
            ValidationError::Overlap { first, second } => ValidationError::Overlap {
                first: orig(first),
                second: orig(second),
            },
        }
    }
}

impl FromIterator<(BufferId, Address)> for PartialSolution {
    fn from_iter<T: IntoIterator<Item = (BufferId, Address)>>(iter: T) -> Self {
        PartialSolution::new(iter.into_iter().collect())
    }
}

/// Diagnostics returned when every stage of the resilience ladder
/// exhausted its budget: the best validated partial placement plus
/// where and how the search stopped.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BestEffort {
    /// The maximal placed prefix, already validated by the producer.
    pub partial: PartialSolution,
    /// The deepest ladder stage that ran.
    pub stage: ResilienceStage,
    /// Total search steps spent across all stages.
    pub steps: u64,
    /// The buffers involved in the first placement conflict the search
    /// hit (the conflict clique); empty if no conflict was recorded.
    pub first_conflict: Vec<BufferId>,
    /// How many spill rounds ran before giving up.
    pub spill_rounds: u32,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Buffer;

    fn problem() -> Problem {
        Problem::builder(10)
            .buffer(Buffer::new(0, 4, 6))
            .buffer(Buffer::new(2, 6, 4))
            .buffer(Buffer::new(0, 2, 4))
            .build()
            .unwrap()
    }

    #[test]
    fn empty_partial_validates() {
        let p = problem();
        assert_eq!(PartialSolution::empty().validate(&p), Ok(0));
    }

    #[test]
    fn valid_prefix_reports_peak() {
        let p = problem();
        let partial = PartialSolution::new(vec![(BufferId::new(0), 0), (BufferId::new(1), 6)]);
        assert_eq!(partial.validate(&p), Ok(10));
        assert_eq!(partial.address_of(BufferId::new(1)), Some(6));
        assert_eq!(partial.address_of(BufferId::new(2)), None);
    }

    #[test]
    fn unknown_and_duplicate_buffers_rejected() {
        let p = problem();
        let unknown = PartialSolution::new(vec![(BufferId::new(9), 0)]);
        assert_eq!(
            unknown.validate(&p),
            Err(PartialError::UnknownBuffer(BufferId::new(9)))
        );
        let dup = PartialSolution::new(vec![(BufferId::new(1), 0), (BufferId::new(1), 4)]);
        assert_eq!(
            dup.validate(&p),
            Err(PartialError::DuplicateBuffer(BufferId::new(1)))
        );
    }

    #[test]
    fn overlapping_prefix_rejected_with_original_ids() {
        let p = problem();
        // Buffers 0 and 1 overlap in time [2, 4); placing both at 0
        // overlaps in space too.
        let partial = PartialSolution::new(vec![(BufferId::new(1), 0), (BufferId::new(0), 0)]);
        match partial.validate(&p) {
            Err(PartialError::Invalid(ValidationError::Overlap { first, second })) => {
                let mut pair = [first.index(), second.index()];
                pair.sort_unstable();
                assert_eq!(pair, [0, 1], "ids must refer to the original problem");
            }
            other => panic!("expected overlap, got {other:?}"),
        }
    }

    #[test]
    fn capacity_violation_names_original_buffer() {
        let p = problem();
        let partial = PartialSolution::new(vec![(BufferId::new(2), 8)]);
        match partial.validate(&p) {
            Err(PartialError::Invalid(ValidationError::ExceedsCapacity { buffer, .. })) => {
                assert_eq!(buffer, BufferId::new(2));
            }
            other => panic!("expected capacity violation, got {other:?}"),
        }
    }

    #[test]
    fn stage_displays() {
        assert_eq!(ResilienceStage::Heuristic.to_string(), "heuristic");
        assert_eq!(ResilienceStage::Portfolio.to_string(), "portfolio");
        assert_eq!(
            ResilienceStage::SpillRetry { round: 3 }.to_string(),
            "spill-retry round 3"
        );
    }
}
