use serde::{Deserialize, Serialize};

use crate::buffer::BufferError;
use crate::contention::ContentionProfile;
use crate::{Buffer, BufferId, Size, TimeStep};

/// An instance of the on-chip memory allocation problem (paper §3).
///
/// A problem pairs a set of [`Buffer`]s (with fixed live ranges) with a
/// memory `capacity`. Allocators produce a [`Solution`](crate::Solution)
/// assigning a base address to every buffer.
///
/// # Example
///
/// ```
/// use tela_model::{Buffer, Problem};
///
/// let problem = Problem::builder(1024)
///     .buffer(Buffer::new(0, 10, 512))
///     .buffer(Buffer::new(5, 15, 512))
///     .build()?;
/// assert_eq!(problem.len(), 2);
/// assert_eq!(problem.overlapping_pairs().count(), 1);
/// # Ok::<(), tela_model::ProblemError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Problem {
    buffers: Vec<Buffer>,
    capacity: Size,
}

/// Error produced when constructing an invalid [`Problem`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProblemError {
    /// A buffer is larger than the total memory capacity, so no solution
    /// can exist. Carries the offending buffer.
    BufferExceedsCapacity {
        /// The buffer that cannot fit on its own.
        buffer: BufferId,
        /// The buffer's size.
        size: Size,
        /// The problem's capacity.
        capacity: Size,
    },
    /// The problem has a zero memory capacity but at least one buffer.
    ZeroCapacity,
    /// A buffer fails basic well-formedness (empty live range, zero
    /// size, or zero alignment). Constructed `Buffer`s cannot trip this,
    /// but deserialized ones bypass the constructors.
    InvalidBuffer {
        /// The malformed buffer.
        buffer: BufferId,
        /// What is wrong with it.
        error: BufferError,
    },
    /// The buffer's `size + align - 1` overflows `u64`: rounding a
    /// feasible base address up to the alignment and adding the size —
    /// the core move of every placement sweep — could wrap for such a
    /// buffer, so the combination is rejected at construction.
    AlignOverflow {
        /// The buffer whose size/alignment combination is unrepresentable.
        buffer: BufferId,
    },
    /// The cumulative size of all buffers overflows `u64`. Contention
    /// and packing arithmetic sum sizes; rejecting the overflow here
    /// keeps those sums exact everywhere downstream.
    ExtentOverflow,
}

impl std::fmt::Display for ProblemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProblemError::BufferExceedsCapacity {
                buffer,
                size,
                capacity,
            } => write!(
                f,
                "buffer {buffer} of size {size} exceeds memory capacity {capacity}"
            ),
            ProblemError::ZeroCapacity => write!(f, "memory capacity is zero"),
            ProblemError::InvalidBuffer { buffer, error } => {
                write!(f, "buffer {buffer} is malformed: {error}")
            }
            ProblemError::AlignOverflow { buffer } => write!(
                f,
                "aligning buffer {buffer} within the capacity overflows u64"
            ),
            ProblemError::ExtentOverflow => {
                write!(f, "cumulative buffer size overflows u64")
            }
        }
    }
}

impl std::error::Error for ProblemError {}

impl Problem {
    /// Starts building a problem with the given memory capacity.
    pub fn builder(capacity: Size) -> ProblemBuilder {
        ProblemBuilder {
            buffers: Vec::new(),
            capacity,
        }
    }

    /// Builds a problem directly from a buffer list and capacity.
    ///
    /// # Errors
    ///
    /// Returns [`ProblemError`] if any single buffer cannot fit in
    /// memory, if the capacity is zero while buffers exist, if a buffer
    /// is malformed (empty live range, zero size, zero alignment —
    /// possible via deserialization, which bypasses the `Buffer`
    /// constructors), or if alignment or cumulative-size arithmetic
    /// would overflow `u64`.
    pub fn new(buffers: Vec<Buffer>, capacity: Size) -> Result<Self, ProblemError> {
        if capacity == 0 && !buffers.is_empty() {
            return Err(ProblemError::ZeroCapacity);
        }
        let mut total: Size = 0;
        for (i, b) in buffers.iter().enumerate() {
            let id = BufferId::new(i);
            b.check()
                .map_err(|error| ProblemError::InvalidBuffer { buffer: id, error })?;
            if b.size() > capacity {
                return Err(ProblemError::BufferExceedsCapacity {
                    buffer: id,
                    size: b.size(),
                    capacity,
                });
            }
            // Placement sweeps round a candidate base up to the
            // alignment and add the size; `size + align - 1` must be
            // representable or that arithmetic can wrap mid-search.
            if b.size().checked_add(b.align() - 1).is_none() {
                return Err(ProblemError::AlignOverflow { buffer: id });
            }
            total = total
                .checked_add(b.size())
                .ok_or(ProblemError::ExtentOverflow)?;
        }
        Ok(Problem { buffers, capacity })
    }

    /// Returns a copy of this problem with a different memory capacity.
    ///
    /// Used by the evaluation harness to sweep memory limits (the paper
    /// benchmarks at 1.10× the minimum required memory, §7).
    ///
    /// # Errors
    ///
    /// Returns [`ProblemError`] if a buffer no longer fits.
    pub fn with_capacity(&self, capacity: Size) -> Result<Self, ProblemError> {
        Problem::new(self.buffers.clone(), capacity)
    }

    /// The memory limit `M`.
    pub fn capacity(&self) -> Size {
        self.capacity
    }

    /// Number of buffers.
    pub fn len(&self) -> usize {
        self.buffers.len()
    }

    /// Returns true if the problem has no buffers.
    pub fn is_empty(&self) -> bool {
        self.buffers.is_empty()
    }

    /// The buffers of this problem, indexed by [`BufferId`].
    pub fn buffers(&self) -> &[Buffer] {
        &self.buffers
    }

    /// Returns the buffer with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this problem.
    pub fn buffer(&self, id: BufferId) -> &Buffer {
        &self.buffers[id.index()]
    }

    /// Iterates over `(id, buffer)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (BufferId, &Buffer)> {
        self.buffers
            .iter()
            .enumerate()
            .map(|(i, b)| (BufferId::new(i), b))
    }

    /// One past the largest `end` time of any buffer (0 if empty).
    pub fn horizon(&self) -> TimeStep {
        self.buffers.iter().map(Buffer::end).max().unwrap_or(0)
    }

    /// Enumerates all pairs `(i, j)` with `i < j` whose live ranges
    /// intersect — the `OverlappingBuffers` set of the ILP/CP encodings
    /// (paper §3.2, §5.1).
    ///
    /// The enumeration sweeps buffers in start-time order so the cost is
    /// `O(n log n + k)` for `k` overlapping pairs rather than `O(n²)`.
    pub fn overlapping_pairs(&self) -> OverlappingPairs<'_> {
        let mut order: Vec<u32> = (0..self.buffers.len() as u32).collect();
        order.sort_by_key(|&i| self.buffers[i as usize].start());
        OverlappingPairs {
            problem: self,
            order,
            active: Vec::new(),
            next: 0,
            emit: Vec::new(),
        }
    }

    /// Returns the per-time-step contention profile: the sum of sizes of all
    /// buffers live at each step (paper §3.1 defines a slot's *contention*).
    pub fn contention(&self) -> ContentionProfile {
        ContentionProfile::of(self)
    }

    /// The maximum contention over all time steps: a lower bound on the
    /// memory any allocator needs.
    pub fn max_contention(&self) -> Size {
        self.contention().max()
    }

    /// The contention of a single buffer: the maximum contention of any
    /// time slot for which the buffer is live (paper §3.1).
    pub fn buffer_contention(&self, id: BufferId) -> Size {
        let profile = self.contention();
        let b = self.buffer(id);
        (b.start()..b.end())
            .map(|t| profile.at(t))
            .max()
            .unwrap_or(0)
    }
}

/// Iterator over time-overlapping buffer pairs; see
/// [`Problem::overlapping_pairs`].
#[derive(Debug)]
pub struct OverlappingPairs<'a> {
    problem: &'a Problem,
    order: Vec<u32>,
    active: Vec<u32>,
    next: usize,
    emit: Vec<(BufferId, BufferId)>,
}

impl Iterator for OverlappingPairs<'_> {
    type Item = (BufferId, BufferId);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some(pair) = self.emit.pop() {
                return Some(pair);
            }
            if self.next >= self.order.len() {
                return None;
            }
            let idx = self.order[self.next];
            self.next += 1;
            let b = &self.problem.buffers[idx as usize];
            self.active
                .retain(|&a| self.problem.buffers[a as usize].end() > b.start());
            for &a in &self.active {
                let (lo, hi) = if a < idx { (a, idx) } else { (idx, a) };
                self.emit
                    .push((BufferId::new(lo as usize), BufferId::new(hi as usize)));
            }
            self.active.push(idx);
        }
    }
}

/// Incremental builder for [`Problem`]; see [`Problem::builder`].
#[derive(Debug, Clone)]
pub struct ProblemBuilder {
    buffers: Vec<Buffer>,
    capacity: Size,
}

impl ProblemBuilder {
    /// Adds one buffer.
    pub fn buffer(mut self, buffer: Buffer) -> Self {
        self.buffers.push(buffer);
        self
    }

    /// Adds many buffers.
    pub fn buffers<I: IntoIterator<Item = Buffer>>(mut self, buffers: I) -> Self {
        self.buffers.extend(buffers);
        self
    }

    /// Finalizes the problem.
    ///
    /// # Errors
    ///
    /// Returns [`ProblemError`] under the same conditions as
    /// [`Problem::new`].
    pub fn build(self) -> Result<Problem, ProblemError> {
        Problem::new(self.buffers, self.capacity)
    }
}

impl FromIterator<Buffer> for ProblemBuilder {
    /// Collects buffers into a builder with a placeholder capacity of
    /// `u64::MAX`; call [`Problem::with_capacity`] afterwards to set a real
    /// limit.
    fn from_iter<T: IntoIterator<Item = Buffer>>(iter: T) -> Self {
        ProblemBuilder {
            buffers: iter.into_iter().collect(),
            capacity: u64::MAX,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pairs_of(problem: &Problem) -> Vec<(usize, usize)> {
        let mut v: Vec<(usize, usize)> = problem
            .overlapping_pairs()
            .map(|(a, b)| (a.index(), b.index()))
            .collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn empty_problem() {
        let p = Problem::builder(10).build().unwrap();
        assert!(p.is_empty());
        assert_eq!(p.horizon(), 0);
        assert_eq!(p.max_contention(), 0);
        assert_eq!(pairs_of(&p), vec![]);
    }

    #[test]
    fn oversized_buffer_rejected() {
        let err = Problem::builder(10)
            .buffer(Buffer::new(0, 1, 11))
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            ProblemError::BufferExceedsCapacity {
                size: 11,
                capacity: 10,
                ..
            }
        ));
        assert!(err.to_string().contains("exceeds"));
    }

    #[test]
    fn zero_capacity_rejected() {
        let err = Problem::builder(0)
            .buffer(Buffer::new(0, 1, 1))
            .build()
            .unwrap_err();
        assert_eq!(err, ProblemError::ZeroCapacity);
    }

    #[test]
    fn zero_capacity_empty_problem_allowed() {
        assert!(Problem::builder(0).build().is_ok());
    }

    #[test]
    fn align_overflow_rejected() {
        // size + align - 1 wraps: placement arithmetic could overflow
        // mid-sweep, so construction refuses the combination.
        let err = Problem::builder(u64::MAX)
            .buffer(Buffer::new(0, 1, u64::MAX).with_align(2))
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            ProblemError::AlignOverflow {
                buffer: BufferId::new(0)
            }
        );
        assert!(err.to_string().contains("overflows"));
        // The same size without the alignment is representable.
        assert!(Problem::builder(u64::MAX)
            .buffer(Buffer::new(0, 1, u64::MAX))
            .build()
            .is_ok());
    }

    #[test]
    fn extent_overflow_rejected() {
        // Each buffer fits on its own, but the cumulative size wraps.
        let err = Problem::builder(u64::MAX)
            .buffer(Buffer::new(0, 1, u64::MAX))
            .buffer(Buffer::new(2, 3, 1))
            .build()
            .unwrap_err();
        assert_eq!(err, ProblemError::ExtentOverflow);
        assert!(err.to_string().contains("cumulative"));
    }

    #[test]
    fn overlapping_pairs_chain() {
        // a overlaps b, b overlaps c, a does not overlap c.
        let p = Problem::builder(100)
            .buffer(Buffer::new(0, 4, 1))
            .buffer(Buffer::new(3, 7, 1))
            .buffer(Buffer::new(6, 9, 1))
            .build()
            .unwrap();
        assert_eq!(pairs_of(&p), vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn overlapping_pairs_all_overlap() {
        let p = Problem::builder(100)
            .buffers((0..4).map(|_| Buffer::new(0, 5, 1)))
            .build()
            .unwrap();
        assert_eq!(pairs_of(&p).len(), 6);
    }

    #[test]
    fn overlapping_pairs_none_overlap() {
        let p = Problem::builder(100)
            .buffers((0..5).map(|i| Buffer::new(i * 2, i * 2 + 2, 1)))
            .build()
            .unwrap();
        assert_eq!(pairs_of(&p), vec![]);
    }

    #[test]
    fn overlapping_pairs_matches_quadratic_reference() {
        // Cross-check the sweep against the obvious O(n^2) enumeration.
        let spans = [
            (0u32, 5u32),
            (1, 3),
            (2, 9),
            (4, 6),
            (8, 12),
            (11, 13),
            (0, 13),
        ];
        let p = Problem::builder(100)
            .buffers(spans.iter().map(|&(s, e)| Buffer::new(s, e, 1)))
            .build()
            .unwrap();
        let mut expected = Vec::new();
        for i in 0..spans.len() {
            for j in (i + 1)..spans.len() {
                if p.buffers()[i].overlaps_in_time(&p.buffers()[j]) {
                    expected.push((i, j));
                }
            }
        }
        expected.sort_unstable();
        assert_eq!(pairs_of(&p), expected);
    }

    #[test]
    fn buffer_contention_is_max_over_live_slots() {
        let p = Problem::builder(100)
            .buffer(Buffer::new(0, 6, 10)) // live through both bumps
            .buffer(Buffer::new(0, 2, 20))
            .buffer(Buffer::new(4, 6, 50))
            .build()
            .unwrap();
        assert_eq!(p.buffer_contention(BufferId::new(0)), 60);
        assert_eq!(p.buffer_contention(BufferId::new(1)), 30);
        assert_eq!(p.buffer_contention(BufferId::new(2)), 60);
    }

    #[test]
    fn with_capacity_rescales() {
        let p = Problem::builder(100)
            .buffer(Buffer::new(0, 1, 50))
            .build()
            .unwrap();
        let q = p.with_capacity(55).unwrap();
        assert_eq!(q.capacity(), 55);
        assert!(p.with_capacity(49).is_err());
    }

    #[test]
    fn horizon_is_exclusive_end() {
        let p = Problem::builder(10)
            .buffer(Buffer::new(3, 7, 1))
            .build()
            .unwrap();
        assert_eq!(p.horizon(), 7);
    }
}
