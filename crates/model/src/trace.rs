//! A self-contained, line-oriented text format for allocator input traces.
//!
//! The paper's evaluation collects on-device allocator inputs as traces and
//! replays them on workstations (§7). This module provides the equivalent:
//! a human-readable serialization of [`Problem`]s that the workload
//! generators emit and the bench harness replays.
//!
//! Format:
//!
//! ```text
//! # optional comments
//! capacity 1024
//! buffer 0 4 128
//! buffer 2 6 64 32   # start end size [align]
//! ```

use crate::{Buffer, Problem, ProblemError};

/// Errors produced when parsing a problem trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// A line could not be parsed. Carries the 1-based line number and a
    /// description.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// Explanation of the parse failure.
        reason: String,
    },
    /// The trace is missing its `capacity` header.
    MissingCapacity,
    /// The parsed buffers do not form a valid problem.
    Invalid(ProblemError),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Malformed { line, reason } => {
                write!(f, "trace line {line} is malformed: {reason}")
            }
            TraceError::MissingCapacity => write!(f, "trace has no capacity header"),
            TraceError::Invalid(e) => write!(f, "trace describes an invalid problem: {e}"),
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Invalid(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ProblemError> for TraceError {
    fn from(e: ProblemError) -> Self {
        TraceError::Invalid(e)
    }
}

/// Serializes a problem to the trace text format.
///
/// # Example
///
/// ```
/// use tela_model::{parse_problem, problem_to_text, Buffer, Problem};
///
/// let p = Problem::builder(64).buffer(Buffer::new(0, 2, 16)).build()?;
/// let text = problem_to_text(&p);
/// assert_eq!(parse_problem(&text)?, p);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn problem_to_text(problem: &Problem) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "capacity {}", problem.capacity());
    for buffer in problem.buffers() {
        if buffer.align() > 1 {
            let _ = writeln!(
                out,
                "buffer {} {} {} {}",
                buffer.start(),
                buffer.end(),
                buffer.size(),
                buffer.align()
            );
        } else {
            let _ = writeln!(
                out,
                "buffer {} {} {}",
                buffer.start(),
                buffer.end(),
                buffer.size()
            );
        }
    }
    out
}

/// Parses a problem from the trace text format.
///
/// Blank lines and `#` comments (full-line or trailing) are ignored.
///
/// # Errors
///
/// Returns [`TraceError`] on malformed lines, a missing capacity header,
/// or an invalid resulting problem.
pub fn parse_problem(text: &str) -> Result<Problem, TraceError> {
    let mut capacity = None;
    let mut buffers = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        let content = raw.split('#').next().unwrap_or("").trim();
        if content.is_empty() {
            continue;
        }
        let mut parts = content.split_whitespace();
        let keyword = parts.next().expect("non-empty line has a token");
        match keyword {
            "capacity" => {
                let value = parse_field(parts.next(), line, "capacity value")?;
                if parts.next().is_some() {
                    return Err(malformed(line, "trailing tokens after capacity"));
                }
                capacity = Some(value);
            }
            "buffer" => {
                let start = parse_field(parts.next(), line, "start")?;
                let end = parse_field(parts.next(), line, "end")?;
                let size = parse_field(parts.next(), line, "size")?;
                let align: u64 = match parts.next() {
                    Some(tok) => tok
                        .parse()
                        .map_err(|_| malformed(line, format!("bad align {tok:?}")))?,
                    None => 1,
                };
                if parts.next().is_some() {
                    return Err(malformed(line, "trailing tokens after buffer"));
                }
                let start =
                    u32::try_from(start).map_err(|_| malformed(line, "start out of range"))?;
                let end = u32::try_from(end).map_err(|_| malformed(line, "end out of range"))?;
                if end <= start {
                    return Err(malformed(line, "buffer end must exceed start"));
                }
                if size == 0 {
                    return Err(malformed(line, "buffer size must be positive"));
                }
                if align == 0 {
                    return Err(malformed(line, "buffer align must be positive"));
                }
                buffers.push(Buffer::new(start, end, size).with_align(align));
            }
            other => return Err(malformed(line, format!("unknown keyword {other:?}"))),
        }
    }
    let capacity = capacity.ok_or(TraceError::MissingCapacity)?;
    Ok(Problem::new(buffers, capacity)?)
}

fn parse_field(tok: Option<&str>, line: usize, what: &str) -> Result<u64, TraceError> {
    let tok = tok.ok_or_else(|| malformed(line, format!("missing {what}")))?;
    tok.parse()
        .map_err(|_| malformed(line, format!("bad {what} {tok:?}")))
}

fn malformed(line: usize, reason: impl Into<String>) -> TraceError {
    TraceError::Malformed {
        line,
        reason: reason.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_preserves_problem() {
        let p = Problem::builder(4096)
            .buffer(Buffer::new(0, 4, 128))
            .buffer(Buffer::new(2, 6, 64).with_align(32))
            .buffer(Buffer::new(5, 9, 256).with_align(8))
            .build()
            .unwrap();
        let text = problem_to_text(&p);
        assert_eq!(parse_problem(&text).unwrap(), p);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "\n# header comment\ncapacity 100 # trailing\n\nbuffer 0 2 10 # b0\n";
        let p = parse_problem(text).unwrap();
        assert_eq!(p.capacity(), 100);
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn missing_capacity_rejected() {
        assert_eq!(
            parse_problem("buffer 0 1 1\n").unwrap_err(),
            TraceError::MissingCapacity
        );
    }

    #[test]
    fn unknown_keyword_rejected() {
        let err = parse_problem("capacity 10\nblock 0 1 1\n").unwrap_err();
        assert!(matches!(err, TraceError::Malformed { line: 2, .. }));
    }

    #[test]
    fn malformed_numbers_rejected() {
        let err = parse_problem("capacity ten\n").unwrap_err();
        assert!(matches!(err, TraceError::Malformed { line: 1, .. }));
        let err = parse_problem("capacity 10\nbuffer 0 x 1\n").unwrap_err();
        assert!(matches!(err, TraceError::Malformed { line: 2, .. }));
    }

    #[test]
    fn degenerate_buffers_rejected() {
        assert!(parse_problem("capacity 10\nbuffer 5 5 1\n").is_err());
        assert!(parse_problem("capacity 10\nbuffer 0 1 0\n").is_err());
        assert!(parse_problem("capacity 10\nbuffer 0 1 1 0\n").is_err());
    }

    #[test]
    fn oversized_buffer_is_invalid_problem() {
        let err = parse_problem("capacity 10\nbuffer 0 1 11\n").unwrap_err();
        assert!(matches!(err, TraceError::Invalid(_)));
        assert!(err.to_string().contains("invalid problem"));
    }

    #[test]
    fn trailing_tokens_rejected() {
        assert!(parse_problem("capacity 10 20\n").is_err());
        assert!(parse_problem("capacity 10\nbuffer 0 1 1 1 9\n").is_err());
    }
}
