use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[cfg(feature = "fault-inject")]
use crate::fault::FaultInjector;
use crate::partial::BestEffort;
use crate::Solution;

/// A step and/or wall-clock budget for a solver invocation, optionally
/// carrying a cooperative cancellation flag.
///
/// Every allocator entry point in the workspace takes a `Budget` so that
/// experiments can bound work either by deterministic step counts (as the
/// paper's Figure 14 sweep does with its 500,000-step cap) or by wall-clock
/// deadlines (as the on-device setting requires). A portfolio race
/// additionally threads one shared [`AtomicBool`] through every worker's
/// budget via [`Budget::with_cancel`]: the first worker to finish flips
/// the flag and every other worker observes an exhausted budget at its
/// next step.
///
/// # Example
///
/// ```
/// use tela_model::Budget;
/// use std::time::Duration;
///
/// let budget = Budget::unlimited()
///     .with_max_steps(500_000)
///     .with_timeout(Duration::from_secs(30));
/// assert!(!budget.step_limit_reached(499_999));
/// assert!(budget.step_limit_reached(500_000));
/// ```
#[derive(Debug, Clone)]
pub struct Budget {
    deadline: Option<Instant>,
    max_steps: Option<u64>,
    cancel: Option<Arc<AtomicBool>>,
    #[cfg(feature = "fault-inject")]
    faults: Option<Arc<FaultInjector>>,
}

impl Budget {
    /// A budget with no limits.
    pub fn unlimited() -> Self {
        Budget {
            deadline: None,
            max_steps: None,
            cancel: None,
            #[cfg(feature = "fault-inject")]
            faults: None,
        }
    }

    /// A budget bounded only by a step count.
    pub fn steps(max_steps: u64) -> Self {
        Budget::unlimited().with_max_steps(max_steps)
    }

    /// A budget bounded only by a wall-clock timeout starting now.
    pub fn timeout(timeout: Duration) -> Self {
        Budget::unlimited().with_timeout(timeout)
    }

    /// Adds (or replaces) a step cap.
    #[must_use]
    pub fn with_max_steps(mut self, max_steps: u64) -> Self {
        self.max_steps = Some(max_steps);
        self
    }

    /// Adds (or replaces) a wall-clock timeout measured from now.
    #[must_use]
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.deadline = Instant::now().checked_add(timeout);
        self
    }

    /// Sets (or replaces) the absolute wall-clock deadline.
    ///
    /// [`Budget::with_timeout`] is this with `now + timeout`; tests use
    /// the absolute form together with
    /// [`deadline_passed_at`](Budget::deadline_passed_at) as a
    /// deterministic fake clock.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Attaches a shared cancellation flag: once any holder stores `true`
    /// the budget reports itself exhausted. Solvers never set the flag;
    /// they only poll it (see [`Budget::cancelled`]).
    #[must_use]
    pub fn with_cancel(mut self, cancel: Arc<AtomicBool>) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// Attaches a deterministic fault injector: every
    /// [`Budget::exhausted`] poll also advances the injector, which may
    /// panic, raise a virtual stall, or flip an injected cancellation at
    /// the step its [`crate::FaultPlan`] names. Test-only plumbing,
    /// available under the `fault-inject` feature.
    #[cfg(feature = "fault-inject")]
    #[must_use]
    pub fn with_fault_injector(mut self, faults: Arc<FaultInjector>) -> Self {
        self.faults = Some(faults);
        self
    }

    /// The absolute wall-clock deadline, if one is set.
    ///
    /// Consumers that slice a budget into stages (the escalation
    /// ladder, the allocation server) read this to derive per-stage
    /// deadlines from the *remaining* time rather than static
    /// fractions of the original grant.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Returns true if `steps` meets or exceeds the step cap.
    pub fn step_limit_reached(&self, steps: u64) -> bool {
        self.max_steps.is_some_and(|cap| steps >= cap)
    }

    /// Returns true if the wall-clock deadline has passed.
    pub fn deadline_passed(&self) -> bool {
        // Without a deadline the answer is always false regardless of the
        // clock (and of any injected stall), so skip the `Instant::now`
        // read — `exhausted` sits on the solver's per-step hot path.
        if self.deadline.is_none() {
            return false;
        }
        self.deadline_passed_at(Instant::now())
    }

    /// Returns true if the deadline is at or before `now` (the
    /// deterministic form of [`Budget::deadline_passed`]).
    pub fn deadline_passed_at(&self, now: Instant) -> bool {
        // An injected stall shifts the observed clock forward without
        // sleeping, so stall faults are deterministic.
        match now.checked_add(self.injected_stall()) {
            Some(shifted) => self.deadline.is_some_and(|d| shifted >= d),
            None => self.deadline.is_some(),
        }
    }

    /// Returns true if the shared cancellation flag has been raised.
    ///
    /// `Acquire` ordering: a worker observing the flag also observes the
    /// winner's published result.
    pub fn cancelled(&self) -> bool {
        self.cancel
            .as_ref()
            .is_some_and(|c| c.load(Ordering::Acquire))
            || self.injected_cancel()
    }

    /// Returns true if any limit is exhausted or the budget was cancelled.
    pub fn exhausted(&self, steps: u64) -> bool {
        #[cfg(feature = "fault-inject")]
        if let Some(faults) = &self.faults {
            faults.on_step(steps);
        }
        self.step_limit_reached(steps) || self.cancelled() || self.deadline_passed()
    }

    /// The configured step cap, if any.
    pub fn max_steps(&self) -> Option<u64> {
        self.max_steps
    }

    /// Virtual clock skew raised by a stall fault (zero without the
    /// `fault-inject` feature or when no stall fired).
    fn injected_stall(&self) -> Duration {
        #[cfg(feature = "fault-inject")]
        if let Some(faults) = &self.faults {
            return faults.stall();
        }
        Duration::ZERO
    }

    /// True when an injected (as opposed to real, shared-flag)
    /// cancellation fired.
    fn injected_cancel(&self) -> bool {
        #[cfg(feature = "fault-inject")]
        if let Some(faults) = &self.faults {
            return faults.cancelled();
        }
        false
    }
}

impl Default for Budget {
    fn default() -> Self {
        Budget::unlimited()
    }
}

/// Identity of the portfolio variant that settled a race, in the
/// `Copy`-friendly form carried on [`SolveStats`] (the display name
/// travels separately, on `telamalloc`'s richer result types).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RaceWinner {
    /// Index into the race's variant list.
    pub variant: u32,
    /// Ordinal of the worker thread that ran the winning variant
    /// (0 for a sequential race or the pre-race sprint).
    pub thread: u32,
}

/// Statistics reported by a solver run.
///
/// *Steps* count decisions (block placements plus backtrack-driven
/// re-placements), matching the paper's step metric in Figure 14. Minor
/// backtracks undo one decision; major backtracks jump further up the
/// search tree (paper §5.4).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolveStats {
    /// Total decisions taken (placements, including retried ones).
    pub steps: u64,
    /// One-step backtracks (next candidate at the same decision point).
    pub minor_backtracks: u64,
    /// Multi-step, conflict-guided backtracks.
    pub major_backtracks: u64,
    /// CP-solver propagation count — the adaptive portfolio's progress
    /// signal alongside depth and backtracks (zero for solvers that do
    /// not propagate).
    pub propagations: u64,
    /// Wall-clock time spent, if measured.
    pub elapsed: Duration,
    /// True when the run stopped because its budget's shared cancellation
    /// flag was raised (it lost a portfolio race), as opposed to running
    /// out of steps or time on its own.
    pub cancelled: bool,
    /// Number of worker panics that were caught and contained during the
    /// run (portfolio variants or ladder stages that died). The panic
    /// payloads themselves are surfaced as `portfolio.variant_panicked`
    /// trace events.
    pub panics: u64,
    /// The portfolio variant that settled the race producing these
    /// stats, if one did. Survives [`SolveStats::absorb`], so the
    /// resilience ladder and the `Allocator` frontend report it too.
    pub winner: Option<RaceWinner>,
}

impl SolveStats {
    /// Total number of backtracks of either kind.
    pub fn total_backtracks(&self) -> u64 {
        self.minor_backtracks + self.major_backtracks
    }

    /// Accumulates another run's statistics into this one (used when a
    /// problem is split into independent sub-problems).
    pub fn absorb(&mut self, other: &SolveStats) {
        self.steps += other.steps;
        self.minor_backtracks += other.minor_backtracks;
        self.major_backtracks += other.major_backtracks;
        self.propagations += other.propagations;
        self.elapsed += other.elapsed;
        self.cancelled |= other.cancelled;
        self.panics += other.panics;
        self.winner = self.winner.or(other.winner);
    }
}

/// The result of running an allocator on a problem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveOutcome {
    /// A valid solution was found.
    Solved(Solution),
    /// The solver proved no solution exists.
    Infeasible,
    /// An incomplete method (a greedy heuristic, or TelaMalloc's pruned
    /// search) exhausted its options without finding a solution. Unlike
    /// [`SolveOutcome::Infeasible`] this is *not* a proof: a complete
    /// solver might still succeed, which is exactly why the paper's
    /// production stack falls back from the heuristic to TelaMalloc.
    GaveUp,
    /// The step or time budget ran out before an answer was established.
    BudgetExceeded,
    /// Every stage of the resilience ladder exhausted its budget; the
    /// carried [`BestEffort`] holds the maximal *validated partial*
    /// placement reached plus structured diagnostics (stage reached,
    /// steps spent, first conflict clique). Callers should treat this
    /// like [`SolveOutcome::BudgetExceeded`] but may use the partial
    /// placement to decide what to spill or rematerialize.
    BestEffort(Box<BestEffort>),
}

impl SolveOutcome {
    /// The solution, if one was found.
    pub fn solution(&self) -> Option<&Solution> {
        match self {
            SolveOutcome::Solved(s) => Some(s),
            _ => None,
        }
    }

    /// The best-effort diagnostics, if the solve degraded.
    pub fn best_effort(&self) -> Option<&BestEffort> {
        match self {
            SolveOutcome::BestEffort(b) => Some(b),
            _ => None,
        }
    }

    /// Consumes the outcome, yielding the solution if one was found.
    pub fn into_solution(self) -> Option<Solution> {
        match self {
            SolveOutcome::Solved(s) => Some(s),
            _ => None,
        }
    }

    /// Returns true if a solution was found.
    pub fn is_solved(&self) -> bool {
        matches!(self, SolveOutcome::Solved(_))
    }

    /// A stable snake_case tag naming the outcome variant, used by trace
    /// events and bench reports.
    pub fn label(&self) -> &'static str {
        match self {
            SolveOutcome::Solved(_) => "solved",
            SolveOutcome::Infeasible => "infeasible",
            SolveOutcome::GaveUp => "gave_up",
            SolveOutcome::BudgetExceeded => "budget_exceeded",
            SolveOutcome::BestEffort(_) => "best_effort",
        }
    }

    /// Converts to a `Result`, mapping non-solutions to [`SolveError`].
    ///
    /// # Errors
    ///
    /// [`SolveError::Infeasible`] or [`SolveError::BudgetExceeded`]
    /// depending on the outcome.
    pub fn into_result(self) -> Result<Solution, SolveError> {
        match self {
            SolveOutcome::Solved(s) => Ok(s),
            SolveOutcome::Infeasible => Err(SolveError::Infeasible),
            SolveOutcome::GaveUp => Err(SolveError::GaveUp),
            SolveOutcome::BudgetExceeded => Err(SolveError::BudgetExceeded),
            SolveOutcome::BestEffort(_) => Err(SolveError::BestEffort),
        }
    }
}

/// Error form of a failed solve, for `?`-style call sites.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveError {
    /// The solver proved no solution exists.
    Infeasible,
    /// An incomplete method exhausted its options without an answer.
    GaveUp,
    /// The step or time budget ran out.
    BudgetExceeded,
    /// The resilience ladder degraded to a best-effort partial solution.
    BestEffort,
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveError::Infeasible => write!(f, "problem is infeasible"),
            SolveError::GaveUp => write!(f, "allocator gave up without an answer"),
            SolveError::BudgetExceeded => write!(f, "solver budget exceeded"),
            SolveError::BestEffort => {
                write!(f, "solver degraded to a best-effort partial solution")
            }
        }
    }
}

impl std::error::Error for SolveError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_exhausts_steps() {
        let b = Budget::unlimited();
        assert!(!b.exhausted(u64::MAX));
    }

    #[test]
    fn step_cap_is_inclusive_at_cap() {
        let b = Budget::steps(10);
        assert!(!b.step_limit_reached(9));
        assert!(b.step_limit_reached(10));
        assert!(b.step_limit_reached(11));
    }

    #[test]
    fn elapsed_deadline_detected() {
        // Deterministic fake clock: pin the deadline to an explicit
        // instant and probe around it, instead of sleeping past a real
        // one.
        let t0 = Instant::now();
        let b = Budget::unlimited().with_deadline(t0 + Duration::from_millis(5));
        assert!(!b.deadline_passed_at(t0));
        assert!(!b.deadline_passed_at(t0 + Duration::from_millis(4)));
        assert!(b.deadline_passed_at(t0 + Duration::from_millis(5)));
        assert!(b.deadline_passed_at(t0 + Duration::from_secs(1)));
    }

    #[test]
    fn future_deadline_not_passed() {
        let b = Budget::timeout(Duration::from_secs(3600));
        assert!(!b.deadline_passed());
        assert!(!b.exhausted(0));
    }

    #[test]
    fn cancellation_flag_exhausts_budget() {
        let flag = Arc::new(AtomicBool::new(false));
        let b = Budget::steps(1_000).with_cancel(Arc::clone(&flag));
        assert!(!b.cancelled());
        assert!(!b.exhausted(0));
        flag.store(true, Ordering::Release);
        assert!(b.cancelled());
        assert!(b.exhausted(0));
        // Step caps still apply independently of the flag.
        assert!(b.step_limit_reached(1_000));
    }

    #[test]
    fn cancellation_flag_is_shared_across_clones() {
        let flag = Arc::new(AtomicBool::new(false));
        let a = Budget::unlimited().with_cancel(Arc::clone(&flag));
        let b = a.clone();
        flag.store(true, Ordering::Release);
        assert!(a.cancelled() && b.cancelled());
    }

    #[test]
    fn stats_absorb_accumulates() {
        let mut a = SolveStats {
            steps: 5,
            minor_backtracks: 1,
            major_backtracks: 2,
            ..Default::default()
        };
        let b = SolveStats {
            steps: 7,
            minor_backtracks: 3,
            major_backtracks: 0,
            ..Default::default()
        };
        a.absorb(&b);
        assert_eq!(a.steps, 12);
        assert_eq!(a.total_backtracks(), 6);
    }

    #[test]
    fn stats_absorb_keeps_first_winner() {
        let mut a = SolveStats::default();
        assert_eq!(a.winner, None);
        let first = SolveStats {
            winner: Some(RaceWinner {
                variant: 3,
                thread: 1,
            }),
            ..Default::default()
        };
        let second = SolveStats {
            winner: Some(RaceWinner {
                variant: 7,
                thread: 0,
            }),
            ..Default::default()
        };
        a.absorb(&first);
        a.absorb(&second);
        assert_eq!(a.winner.unwrap().variant, 3);
        assert_eq!(a.winner.unwrap().thread, 1);
    }

    #[test]
    fn outcome_accessors() {
        let solved = SolveOutcome::Solved(Solution::new(vec![1, 2]));
        assert!(solved.is_solved());
        assert_eq!(solved.solution().unwrap().addresses(), &[1, 2]);
        assert!(solved.clone().into_result().is_ok());

        assert_eq!(
            SolveOutcome::Infeasible.into_result(),
            Err(SolveError::Infeasible)
        );
        assert_eq!(SolveOutcome::GaveUp.into_result(), Err(SolveError::GaveUp));
        assert!(!SolveOutcome::GaveUp.is_solved());
        assert_eq!(
            SolveOutcome::BudgetExceeded.into_result(),
            Err(SolveError::BudgetExceeded)
        );
        assert!(SolveOutcome::Infeasible.solution().is_none());
    }

    #[test]
    fn best_effort_outcome_reports_diagnostics() {
        use crate::{PartialSolution, ResilienceStage};
        let outcome = SolveOutcome::BestEffort(Box::new(BestEffort {
            partial: PartialSolution::empty(),
            stage: ResilienceStage::Portfolio,
            steps: 42,
            first_conflict: vec![],
            spill_rounds: 0,
        }));
        assert!(!outcome.is_solved());
        assert!(outcome.solution().is_none());
        assert_eq!(outcome.best_effort().unwrap().steps, 42);
        assert_eq!(outcome.into_result(), Err(SolveError::BestEffort));
        assert!(SolveOutcome::Infeasible.best_effort().is_none());
    }

    #[test]
    fn solve_error_displays() {
        assert_eq!(SolveError::Infeasible.to_string(), "problem is infeasible");
        assert_eq!(
            SolveError::BudgetExceeded.to_string(),
            "solver budget exceeded"
        );
    }
}
