//! Workload and packing analysis (paper §8.1 "Workload Analysis").
//!
//! The paper characterizes instances by their contention structure —
//! phases, troughs, how close the limit sits to the lower bound — and
//! packings by how much memory they waste. These summaries drive the
//! experiment harness's reporting and are useful to anyone triaging why
//! an instance is hard.

use serde::{Deserialize, Serialize};

use crate::{Address, BufferId, Problem, Size, Solution, TimeStep};

/// Structural summary of one allocation problem.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstanceStats {
    /// Number of buffers.
    pub buffers: usize,
    /// One past the last live time step.
    pub horizon: u32,
    /// Number of time-overlapping pairs (the CP/ILP constraint count is
    /// proportional to this).
    pub overlapping_pairs: usize,
    /// Mean number of other buffers each buffer overlaps.
    pub mean_degree: f64,
    /// Maximum contention (the structural lower bound on memory).
    pub max_contention: Size,
    /// Memory capacity.
    pub capacity: Size,
    /// `capacity / max_contention` — how much slack the allocator has
    /// (the paper evaluates at 1.10).
    pub slack_ratio: f64,
    /// Mean contention over the live portion of the schedule, as a
    /// fraction of the peak (1.0 = a flat plateau; low values =
    /// pronounced phases).
    pub contention_flatness: f64,
    /// Fraction of buffers with an alignment constraint (> 1).
    pub aligned_fraction: f64,
    /// Largest single buffer as a fraction of capacity.
    pub dominant_buffer_fraction: f64,
}

impl InstanceStats {
    /// Number of entries in [`InstanceStats::feature_vector`].
    pub const FEATURE_COUNT: usize = 10;

    /// Names of the feature-vector entries, index-aligned with
    /// [`InstanceStats::feature_vector`]. Model tooling (the portfolio
    /// ranker's training binary, feature-importance reports) uses these
    /// as the canonical column names.
    pub const FEATURE_NAMES: [&'static str; Self::FEATURE_COUNT] = [
        "buffers",
        "horizon",
        "overlapping_pairs",
        "mean_degree",
        "max_contention",
        "capacity",
        "slack_ratio",
        "contention_flatness",
        "aligned_fraction",
        "dominant_buffer_fraction",
    ];

    /// The summary as a fixed-arity `f64` vector, for learned models
    /// that rank instances (the adaptive portfolio's variant ranker).
    /// Deterministic: every entry is a pure function of the problem.
    pub fn feature_vector(&self) -> [f64; Self::FEATURE_COUNT] {
        [
            self.buffers as f64,
            f64::from(self.horizon),
            self.overlapping_pairs as f64,
            self.mean_degree,
            self.max_contention as f64,
            self.capacity as f64,
            self.slack_ratio,
            self.contention_flatness,
            self.aligned_fraction,
            self.dominant_buffer_fraction,
        ]
    }

    /// Computes the summary for `problem`.
    pub fn of(problem: &Problem) -> Self {
        let pairs = problem.overlapping_pairs().count();
        let n = problem.len();
        let contention = problem.contention();
        let peak = contention.max().max(1);
        let live: Vec<Size> = contention
            .as_slice()
            .iter()
            .copied()
            .filter(|&c| c > 0)
            .collect();
        let mean_contention = if live.is_empty() {
            0.0
        } else {
            live.iter().sum::<Size>() as f64 / live.len() as f64
        };
        let aligned = problem.buffers().iter().filter(|b| b.align() > 1).count();
        let dominant = problem
            .buffers()
            .iter()
            .map(|b| b.size())
            .max()
            .unwrap_or(0);
        InstanceStats {
            buffers: n,
            horizon: problem.horizon(),
            overlapping_pairs: pairs,
            mean_degree: if n == 0 {
                0.0
            } else {
                2.0 * pairs as f64 / n as f64
            },
            max_contention: contention.max(),
            capacity: problem.capacity(),
            slack_ratio: problem.capacity() as f64 / peak as f64,
            contention_flatness: mean_contention / peak as f64,
            aligned_fraction: if n == 0 {
                0.0
            } else {
                aligned as f64 / n as f64
            },
            dominant_buffer_fraction: dominant as f64 / problem.capacity().max(1) as f64,
        }
    }
}

impl std::fmt::Display for InstanceStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} buffers over {} steps, {} pairs (deg {:.1}), contention {}/{} \
             (slack {:.2}x, flatness {:.2}), {:.0}% aligned",
            self.buffers,
            self.horizon,
            self.overlapping_pairs,
            self.mean_degree,
            self.max_contention,
            self.capacity,
            self.slack_ratio,
            self.contention_flatness,
            self.aligned_fraction * 100.0,
        )
    }
}

/// A maximal set of simultaneously live buffers; see
/// [`maximal_live_sets`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LiveSet {
    /// A time step at which every member is live.
    pub time: TimeStep,
    /// Members, sorted by id.
    pub members: Vec<BufferId>,
}

/// Enumerates the maximal live sets of a problem: the sets of buffers
/// that are all live at some common time step and to which no further
/// buffer can be added.
///
/// Because the interference graph of fixed live ranges is an interval
/// graph, these are exactly its maximal cliques, and there are at most
/// `n` of them — every maximal clique is the live set at the latest
/// start time among its members. The sweep visits distinct start times
/// in order and emits the active set whenever some member dies before
/// the next start event (or at the final event), which filters out
/// dominated (non-maximal) sets.
///
/// Runs in `O(n log n)` time plus the total size of the emitted sets
/// (worst case `O(n²)` when many long-lived buffers coexist).
pub fn maximal_live_sets(problem: &Problem) -> Vec<LiveSet> {
    let buffers = problem.buffers();
    let mut order: Vec<usize> = (0..buffers.len()).collect();
    order.sort_by_key(|&i| buffers[i].start());

    let mut sets = Vec::new();
    let mut active: Vec<usize> = Vec::new();
    let mut next = 0;
    while next < order.len() {
        let t = buffers[order[next]].start();
        active.retain(|&a| buffers[a].end() > t);
        while next < order.len() && buffers[order[next]].start() == t {
            active.push(order[next]);
            next += 1;
        }
        let maximal = match order.get(next) {
            // A later start grows this set unless a member dies first.
            Some(&j) => active
                .iter()
                .any(|&a| buffers[a].end() <= buffers[j].start()),
            None => true,
        };
        if maximal {
            let mut members: Vec<BufferId> = active.iter().map(|&a| BufferId::new(a)).collect();
            members.sort_unstable();
            sets.push(LiveSet { time: t, members });
        }
    }
    sets
}

/// Quality summary of one packing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PackingStats {
    /// Highest address in use at any time.
    pub peak: Address,
    /// `peak / max_contention`: 1.0 means a perfect (waste-free) packing
    /// at the structural bound.
    pub peak_over_contention: f64,
    /// Mean over live time steps of `used bytes / live-profile height` —
    /// how much of the address range below the local skyline is actually
    /// occupied (1.0 = no holes).
    pub mean_utilization: f64,
}

impl PackingStats {
    /// Computes the summary for a solution of `problem`.
    ///
    /// # Panics
    ///
    /// Panics if `solution` has the wrong arity for `problem`.
    pub fn of(problem: &Problem, solution: &Solution) -> Self {
        assert_eq!(solution.len(), problem.len(), "solution arity mismatch");
        let unbounded = problem.with_capacity(u64::MAX).expect("raising capacity");
        let profile = solution.live_profile(&unbounded);
        let contention = problem.contention();
        let peak = profile.iter().max().copied().unwrap_or(0);
        let mut utilization_sum = 0.0;
        let mut live_steps = 0usize;
        for (t, &top) in profile.iter().enumerate() {
            if top > 0 {
                utilization_sum += contention.at(t as u32) as f64 / top as f64;
                live_steps += 1;
            }
        }
        PackingStats {
            peak,
            peak_over_contention: peak as f64 / contention.max().max(1) as f64,
            mean_utilization: if live_steps == 0 {
                1.0
            } else {
                utilization_sum / live_steps as f64
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{examples, Buffer};

    #[test]
    fn instance_stats_of_figure1() {
        let p = examples::figure1();
        let s = InstanceStats::of(&p);
        assert_eq!(s.buffers, 10);
        assert_eq!(s.capacity, 4);
        assert_eq!(s.max_contention, 4);
        assert!((s.slack_ratio - 1.0).abs() < 1e-9);
        assert!(s.overlapping_pairs > 0);
        assert!(s.contention_flatness > 0.5);
        assert_eq!(s.aligned_fraction, 0.0);
        assert!(s.to_string().contains("10 buffers"));
    }

    #[test]
    fn instance_stats_of_empty_problem() {
        let p = Problem::builder(10).build().unwrap();
        let s = InstanceStats::of(&p);
        assert_eq!(s.buffers, 0);
        assert_eq!(s.mean_degree, 0.0);
        assert_eq!(s.contention_flatness, 0.0);
    }

    #[test]
    fn feature_vector_is_name_aligned_and_deterministic() {
        let p = examples::figure1();
        let s = InstanceStats::of(&p);
        let v = s.feature_vector();
        assert_eq!(v.len(), InstanceStats::FEATURE_COUNT);
        assert_eq!(InstanceStats::FEATURE_NAMES.len(), v.len());
        // Index-aligned with the named fields.
        assert_eq!(v[0], s.buffers as f64);
        assert_eq!(v[4], s.max_contention as f64);
        assert_eq!(v[6], s.slack_ratio);
        // Pure function of the problem: recomputation is bit-identical.
        assert_eq!(v, InstanceStats::of(&p).feature_vector());
    }

    #[test]
    fn aligned_fraction_counts_constrained_buffers() {
        let p = examples::aligned();
        let s = InstanceStats::of(&p);
        assert!(s.aligned_fraction > 0.5);
    }

    #[test]
    fn perfect_packing_scores_one() {
        // Two stacked buffers with identical ranges: no waste.
        let p = Problem::builder(10)
            .buffer(Buffer::new(0, 4, 6))
            .buffer(Buffer::new(0, 4, 4))
            .build()
            .unwrap();
        let s = Solution::new(vec![0, 6]);
        let stats = PackingStats::of(&p, &s);
        assert_eq!(stats.peak, 10);
        assert!((stats.peak_over_contention - 1.0).abs() < 1e-9);
        assert!((stats.mean_utilization - 1.0).abs() < 1e-9);
    }

    #[test]
    fn holey_packing_scores_below_one() {
        // A gap between the two buffers wastes address space.
        let p = Problem::builder(20)
            .buffer(Buffer::new(0, 4, 6))
            .buffer(Buffer::new(0, 4, 4))
            .build()
            .unwrap();
        let s = Solution::new(vec![0, 10]);
        let stats = PackingStats::of(&p, &s);
        assert_eq!(stats.peak, 14);
        assert!(stats.mean_utilization < 1.0);
        assert!(stats.peak_over_contention > 1.0);
    }

    #[test]
    fn maximal_live_sets_are_the_maximal_cliques() {
        // Intervals: a=[0,5) b=[1,3) c=[2,9) d=[4,6). Maximal cliques:
        // {a,b,c} (at t=2), {a,c,d} (at t=4), {c} alone after d dies...
        // {c,d} ends at 6 leaving {c}, but {c} ⊂ {a,c,d} so it is not
        // maximal.
        let p = Problem::builder(100)
            .buffer(Buffer::new(0, 5, 1))
            .buffer(Buffer::new(1, 3, 1))
            .buffer(Buffer::new(2, 9, 1))
            .buffer(Buffer::new(4, 6, 1))
            .build()
            .unwrap();
        let sets = maximal_live_sets(&p);
        let members: Vec<Vec<usize>> = sets
            .iter()
            .map(|s| s.members.iter().map(|b| b.index()).collect())
            .collect();
        assert_eq!(members, vec![vec![0, 1, 2], vec![0, 2, 3]]);
        for set in &sets {
            for id in &set.members {
                assert!(p.buffer(*id).live_at(set.time));
            }
        }
    }

    #[test]
    fn maximal_live_sets_of_disjoint_buffers_are_singletons() {
        let p = Problem::builder(100)
            .buffers((0..4).map(|i| Buffer::new(i * 3, i * 3 + 2, 1)))
            .build()
            .unwrap();
        let sets = maximal_live_sets(&p);
        assert_eq!(sets.len(), 4);
        assert!(sets.iter().all(|s| s.members.len() == 1));
    }

    #[test]
    fn maximal_live_sets_empty_problem() {
        let p = Problem::builder(10).build().unwrap();
        assert!(maximal_live_sets(&p).is_empty());
    }

    #[test]
    fn dominant_buffer_fraction_reflects_giant() {
        let p = Problem::builder(100)
            .buffer(Buffer::new(0, 2, 80))
            .buffer(Buffer::new(4, 6, 5))
            .build()
            .unwrap();
        let s = InstanceStats::of(&p);
        assert!((s.dominant_buffer_fraction - 0.8).abs() < 1e-9);
    }
}
