//! Problem and solution model for the TelaMalloc reproduction.
//!
//! This crate defines the vocabulary shared by every allocator in the
//! workspace: [`Buffer`]s with fixed live ranges, [`Problem`]s pairing a
//! buffer set with a memory capacity, [`Solution`]s mapping buffers to
//! addresses, and the analysis passes that the TelaMalloc search builds on
//! (contention profiles, phase partitioning, independent sub-problem
//! splitting).
//!
//! The memory allocation problem (paper §3): given buffers
//! `B ∈ ℕ³ (start, end, size)` and a memory limit `M`, produce a mapping
//! `B ↦ address` such that no two buffers with overlapping live ranges
//! overlap in space and no buffer extends past `M`.
//!
//! # Example
//!
//! ```
//! use tela_model::{Problem, Buffer};
//!
//! let problem = Problem::builder(100)
//!     .buffer(Buffer::new(0, 4, 60))
//!     .buffer(Buffer::new(2, 6, 40))
//!     .build()
//!     .expect("valid problem");
//! assert_eq!(problem.max_contention(), 100);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod analysis;
mod budget;
mod buffer;
mod contention;
pub mod examples;
#[cfg(feature = "fault-inject")]
pub mod fault;
mod fingerprint;
mod partial;
mod problem;
mod solution;
mod split;
mod trace;

pub use analysis::{maximal_live_sets, InstanceStats, LiveSet, PackingStats};
pub use budget::{Budget, RaceWinner, SolveError, SolveOutcome, SolveStats};
pub use buffer::{Buffer, BufferError, BufferId};
pub use contention::{ContentionProfile, Phase, PhasePartition};
#[cfg(feature = "fault-inject")]
pub use fault::{FaultInjector, FaultPlan, ServerFaultPlan};
pub use fingerprint::{fingerprint, CanonicalBuffer, CanonicalForm, Fingerprint};
pub use partial::{BestEffort, PartialError, PartialSolution, ResilienceStage};
pub use problem::{Problem, ProblemBuilder, ProblemError};
pub use solution::{Solution, ValidationError};
pub use split::split_independent;
pub use trace::{parse_problem, problem_to_text, TraceError};

/// Logical time step within a compiled program's schedule.
///
/// Start/end times are *logical* (compile-time) positions, not wall-clock
/// times (paper §3).
pub type TimeStep = u32;

/// A byte address (or other discrete allocation-unit address) in the managed
/// on-chip memory.
pub type Address = u64;

/// A buffer size in bytes (or other discrete allocation units).
pub type Size = u64;
