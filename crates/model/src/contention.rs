use serde::{Deserialize, Serialize};

use crate::{BufferId, Problem, Size, TimeStep};

/// Per-time-step live-memory demand of a [`Problem`].
///
/// The *contention* of a time slot is the sum of the sizes of all buffers
/// live at that slot (paper §3.1). The maximum over all slots is a lower
/// bound on the memory any allocator needs.
///
/// # Example
///
/// ```
/// use tela_model::{Buffer, Problem};
///
/// let p = Problem::builder(100)
///     .buffer(Buffer::new(0, 3, 10))
///     .buffer(Buffer::new(1, 2, 5))
///     .build()?;
/// let c = p.contention();
/// assert_eq!(c.at(0), 10);
/// assert_eq!(c.at(1), 15);
/// assert_eq!(c.max(), 15);
/// # Ok::<(), tela_model::ProblemError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ContentionProfile {
    per_step: Vec<Size>,
}

impl ContentionProfile {
    /// Computes the contention profile of a problem in `O(n + horizon)`
    /// via a difference array.
    pub fn of(problem: &Problem) -> Self {
        let horizon = problem.horizon() as usize;
        let mut delta = vec![0i128; horizon + 1];
        for buffer in problem.buffers() {
            delta[buffer.start() as usize] += i128::from(buffer.size());
            delta[buffer.end() as usize] -= i128::from(buffer.size());
        }
        let mut per_step = Vec::with_capacity(horizon);
        let mut acc = 0i128;
        for d in delta.iter().take(horizon) {
            acc += d;
            // `Problem::new` rejects cumulative sizes past u64::MAX
            // (ProblemError::ExtentOverflow), so the running sum always
            // fits a Size; saturate rather than panic if a hand-built
            // Problem ever violates that.
            debug_assert!((0..=i128::from(Size::MAX)).contains(&acc));
            per_step.push(Size::try_from(acc.max(0)).unwrap_or(Size::MAX));
        }
        ContentionProfile { per_step }
    }

    /// Contention at time step `t` (0 for steps past the horizon).
    pub fn at(&self, t: TimeStep) -> Size {
        self.per_step.get(t as usize).copied().unwrap_or(0)
    }

    /// Maximum contention over all time steps.
    pub fn max(&self) -> Size {
        self.per_step.iter().copied().max().unwrap_or(0)
    }

    /// Number of time steps covered (the problem horizon).
    pub fn len(&self) -> usize {
        self.per_step.len()
    }

    /// Returns true if the profile covers no time steps.
    pub fn is_empty(&self) -> bool {
        self.per_step.is_empty()
    }

    /// The raw per-step contention values.
    pub fn as_slice(&self) -> &[Size] {
        &self.per_step
    }
}

/// A contiguous high-contention time range with its associated blocks
/// (paper §5.3, Figure 9).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Phase {
    /// Threshold (percent of total memory) at which this phase was found.
    pub threshold_percent: u32,
    /// First time step of the high-contention range.
    pub start: TimeStep,
    /// One past the last time step of the high-contention range.
    pub end: TimeStep,
    /// Buffers assigned to this phase, in id order.
    pub blocks: Vec<BufferId>,
}

/// Assignment of every buffer to a contention phase (paper §5.3).
///
/// Phases are ordered by decreasing contention threshold (ties broken by
/// start time); TelaMalloc places blocks phase by phase, preferring blocks
/// in the same phase as the previously placed block.
///
/// The Figure 9 algorithm sweeps thresholds from 100% down to 20% of total
/// memory, carving out contiguous time ranges whose contention meets the
/// threshold and assigning any still-unassigned overlapping blocks to the
/// range. Blocks whose contention never reaches 20% land in a trailing
/// catch-all phase.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhasePartition {
    phases: Vec<Phase>,
    phase_of: Vec<u32>,
}

/// Threshold schedule from Figure 9 of the paper.
const THRESHOLD_PERCENTS: [u32; 9] = [100, 90, 80, 70, 60, 50, 40, 30, 20];

impl PhasePartition {
    /// Runs the Figure 9 phase-identification algorithm on `problem`.
    pub fn compute(problem: &Problem) -> Self {
        let contention = problem.contention();
        let horizon = problem.horizon();
        let mut phases: Vec<Phase> = Vec::new();
        let mut phase_of: Vec<Option<u32>> = vec![None; problem.len()];
        let mut assigned = 0usize;

        for percent in THRESHOLD_PERCENTS {
            if assigned == problem.len() {
                break;
            }
            let threshold = threshold_for(problem.capacity(), percent);
            let mut range_start: Option<TimeStep> = None;
            // Iterate one step past the horizon (contention 0) so that a
            // trailing high-contention range is closed.
            for t in 0..=horizon {
                let high = t < horizon && contention.at(t) >= threshold;
                match (high, range_start) {
                    (true, None) => range_start = Some(t),
                    (false, Some(start)) => {
                        range_start = None;
                        let mut blocks = Vec::new();
                        for (id, buffer) in problem.iter() {
                            if phase_of[id.index()].is_none()
                                && buffer.start() < t
                                && buffer.end() > start
                            {
                                phase_of[id.index()] = Some(phases.len() as u32);
                                blocks.push(id);
                                assigned += 1;
                            }
                        }
                        // A range with no fresh blocks still exists in time
                        // but adds nothing to the search; skip it.
                        if !blocks.is_empty() {
                            phases.push(Phase {
                                threshold_percent: percent,
                                start,
                                end: t,
                                blocks,
                            });
                        }
                    }
                    _ => {}
                }
            }
        }

        if assigned < problem.len() {
            let mut blocks = Vec::new();
            for (id, _) in problem.iter() {
                if phase_of[id.index()].is_none() {
                    phase_of[id.index()] = Some(phases.len() as u32);
                    blocks.push(id);
                }
            }
            phases.push(Phase {
                threshold_percent: 0,
                start: 0,
                end: horizon,
                blocks,
            });
        }

        let phase_of = phase_of
            .into_iter()
            .map(|p| p.expect("all blocks assigned"))
            .collect();
        PhasePartition { phases, phase_of }
    }

    /// The phases, in decreasing order of the contention threshold at which
    /// they were discovered.
    pub fn phases(&self) -> &[Phase] {
        &self.phases
    }

    /// Index (into [`PhasePartition::phases`]) of the phase containing
    /// `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for the partitioned problem.
    pub fn phase_of(&self, id: BufferId) -> usize {
        self.phase_of[id.index()] as usize
    }

    /// Number of phases.
    pub fn len(&self) -> usize {
        self.phases.len()
    }

    /// Returns true if there are no phases (empty problem).
    pub fn is_empty(&self) -> bool {
        self.phases.is_empty()
    }
}

fn threshold_for(capacity: Size, percent: u32) -> Size {
    // percent * capacity / 100 without overflow.
    (u128::from(capacity) * u128::from(percent) / 100) as Size
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Buffer;

    #[test]
    fn profile_of_empty_problem() {
        let p = Problem::builder(10).build().unwrap();
        let c = p.contention();
        assert!(c.is_empty());
        assert_eq!(c.max(), 0);
        assert_eq!(c.at(3), 0);
    }

    #[test]
    fn profile_sums_live_sizes() {
        let p = Problem::builder(100)
            .buffer(Buffer::new(0, 4, 10))
            .buffer(Buffer::new(2, 6, 20))
            .buffer(Buffer::new(3, 4, 5))
            .build()
            .unwrap();
        let c = p.contention();
        assert_eq!(c.as_slice(), &[10, 10, 30, 35, 20, 20]);
        assert_eq!(c.max(), 35);
        assert_eq!(c.len(), 6);
    }

    #[test]
    fn profile_at_past_horizon_is_zero() {
        let p = Problem::builder(10)
            .buffer(Buffer::new(0, 2, 3))
            .build()
            .unwrap();
        assert_eq!(p.contention().at(99), 0);
    }

    /// Two separate contention humps at 100% capacity plus a low valley.
    fn two_hump_problem() -> Problem {
        Problem::builder(100)
            .buffer(Buffer::new(0, 4, 60)) // hump 1
            .buffer(Buffer::new(0, 4, 40)) // hump 1
            .buffer(Buffer::new(4, 6, 10)) // valley
            .buffer(Buffer::new(6, 9, 50)) // hump 2
            .buffer(Buffer::new(6, 9, 50)) // hump 2
            .build()
            .unwrap()
    }

    #[test]
    fn phases_found_in_decreasing_contention_order() {
        let p = two_hump_problem();
        let partition = PhasePartition::compute(&p);
        // Both humps hit 100% and are found at the 100% threshold; the
        // valley block lands in a lower-threshold phase.
        assert_eq!(partition.len(), 3);
        assert_eq!(partition.phases()[0].threshold_percent, 100);
        assert_eq!(partition.phases()[1].threshold_percent, 100);
        assert_eq!(
            partition.phases()[0].blocks,
            vec![BufferId::new(0), BufferId::new(1)]
        );
        assert_eq!(
            partition.phases()[1].blocks,
            vec![BufferId::new(3), BufferId::new(4)]
        );
        assert_eq!(partition.phases()[2].blocks, vec![BufferId::new(2)]);
        assert!(partition.phases()[2].threshold_percent < 100);
    }

    #[test]
    fn every_block_gets_exactly_one_phase() {
        let p = two_hump_problem();
        let partition = PhasePartition::compute(&p);
        let mut seen = vec![false; p.len()];
        for phase in partition.phases() {
            for &id in &phase.blocks {
                assert!(!seen[id.index()], "block {id} assigned twice");
                seen[id.index()] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
        for (id, _) in p.iter() {
            let ph = partition.phase_of(id);
            assert!(partition.phases()[ph].blocks.contains(&id));
        }
    }

    #[test]
    fn low_contention_blocks_fall_into_catch_all() {
        let p = Problem::builder(1000)
            .buffer(Buffer::new(0, 5, 10))
            .build()
            .unwrap();
        let partition = PhasePartition::compute(&p);
        assert_eq!(partition.len(), 1);
        assert_eq!(partition.phases()[0].threshold_percent, 0);
    }

    #[test]
    fn trailing_high_contention_range_is_closed() {
        // Contention stays at 100% up to the horizon.
        let p = Problem::builder(10)
            .buffer(Buffer::new(0, 5, 10))
            .build()
            .unwrap();
        let partition = PhasePartition::compute(&p);
        assert_eq!(partition.len(), 1);
        assert_eq!(partition.phases()[0].threshold_percent, 100);
        assert_eq!(partition.phases()[0].start, 0);
        assert_eq!(partition.phases()[0].end, 5);
    }

    #[test]
    fn empty_problem_has_no_phases() {
        let p = Problem::builder(10).build().unwrap();
        assert!(PhasePartition::compute(&p).is_empty());
    }

    #[test]
    fn blocks_spanning_two_ranges_assigned_once_to_first() {
        // A long block overlaps both 100%-contention ranges; it must be
        // assigned to the first (earliest) one only.
        let p = Problem::builder(100)
            .buffer(Buffer::new(0, 10, 20)) // spans everything
            .buffer(Buffer::new(0, 3, 80))
            .buffer(Buffer::new(7, 10, 80))
            .build()
            .unwrap();
        let partition = PhasePartition::compute(&p);
        assert_eq!(partition.phase_of(BufferId::new(0)), 0);
        assert_eq!(partition.phase_of(BufferId::new(1)), 0);
        assert_eq!(partition.phase_of(BufferId::new(2)), 1);
    }
}
