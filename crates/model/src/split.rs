use crate::{BufferId, Problem};

/// Splits a problem into independent sub-problems at time steps that no
/// buffer's live range crosses (paper §5.3).
///
/// If no buffer is live both before and after some time step `t`, the
/// buffers ending at or before `t` and those starting at or after `t` can
/// be allocated independently: they never share a time slot, so their
/// placements cannot conflict.
///
/// Returns, for each sub-problem, the ids of its buffers (in id order).
/// The sub-problems are ordered by time. An empty problem yields no
/// sub-problems.
///
/// # Example
///
/// ```
/// use tela_model::{split_independent, Buffer, Problem};
///
/// let p = Problem::builder(10)
///     .buffer(Buffer::new(0, 2, 4))
///     .buffer(Buffer::new(1, 3, 4))
///     .buffer(Buffer::new(5, 8, 4)) // disjoint from the first two
///     .build()?;
/// let groups = split_independent(&p);
/// assert_eq!(groups.len(), 2);
/// assert_eq!(groups[0].len(), 2);
/// assert_eq!(groups[1].len(), 1);
/// # Ok::<(), tela_model::ProblemError>(())
/// ```
pub fn split_independent(problem: &Problem) -> Vec<Vec<BufferId>> {
    if problem.is_empty() {
        return Vec::new();
    }
    // Sort buffers by start time; a new group begins whenever the next
    // buffer starts at or after the latest end seen so far.
    let mut order: Vec<BufferId> = problem.iter().map(|(id, _)| id).collect();
    order.sort_by_key(|&id| problem.buffer(id).start());

    let mut groups: Vec<Vec<BufferId>> = Vec::new();
    let mut current: Vec<BufferId> = Vec::new();
    let mut current_end = 0;
    for id in order {
        let b = problem.buffer(id);
        if !current.is_empty() && b.start() >= current_end {
            current.sort_unstable();
            groups.push(std::mem::take(&mut current));
        }
        current_end = current_end.max(b.end());
        current.push(id);
    }
    current.sort_unstable();
    groups.push(current);
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Buffer;

    #[test]
    fn empty_problem_yields_no_groups() {
        let p = Problem::builder(10).build().unwrap();
        assert!(split_independent(&p).is_empty());
    }

    #[test]
    fn fully_overlapping_problem_is_one_group() {
        let p = Problem::builder(10)
            .buffers((0..4).map(|_| Buffer::new(0, 5, 1)))
            .build()
            .unwrap();
        assert_eq!(split_independent(&p).len(), 1);
    }

    #[test]
    fn disjoint_buffers_split_per_buffer() {
        let p = Problem::builder(10)
            .buffers((0..3).map(|i| Buffer::new(i * 10, i * 10 + 5, 1)))
            .build()
            .unwrap();
        let groups = split_independent(&p);
        assert_eq!(groups.len(), 3);
        for (i, g) in groups.iter().enumerate() {
            assert_eq!(g, &vec![BufferId::new(i)]);
        }
    }

    #[test]
    fn spanning_buffer_merges_groups() {
        // Without the long buffer the two clusters split; with it they
        // form a single group.
        let p = Problem::builder(10)
            .buffer(Buffer::new(0, 2, 1))
            .buffer(Buffer::new(5, 7, 1))
            .buffer(Buffer::new(0, 7, 1))
            .build()
            .unwrap();
        assert_eq!(split_independent(&p).len(), 1);
    }

    #[test]
    fn touching_ranges_split() {
        // [0,3) and [3,6) share no time slot, so they are independent.
        let p = Problem::builder(10)
            .buffer(Buffer::new(0, 3, 1))
            .buffer(Buffer::new(3, 6, 1))
            .build()
            .unwrap();
        assert_eq!(split_independent(&p).len(), 2);
    }

    #[test]
    fn groups_partition_all_buffers() {
        let p = Problem::builder(100)
            .buffer(Buffer::new(4, 9, 1))
            .buffer(Buffer::new(0, 3, 1))
            .buffer(Buffer::new(2, 4, 1))
            .buffer(Buffer::new(9, 12, 1))
            .buffer(Buffer::new(11, 13, 1))
            .build()
            .unwrap();
        let groups = split_independent(&p);
        let mut all: Vec<usize> = groups.iter().flatten().map(|id| id.index()).collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3, 4]);
        // [0,3)+[2,4) then [4,9) then [9,12)+[11,13)
        assert_eq!(groups.len(), 3);
    }
}
