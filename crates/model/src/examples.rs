//! Small hand-crafted problem instances used throughout tests, docs, and
//! examples.

use crate::{Buffer, Problem};

/// A ten-buffer instance modeled after the paper's running example
/// (Figure 1): buffers with fixed live ranges sharing a four-unit memory,
/// where the placement of one mid-sized buffer decides whether the rest of
/// the problem stays solvable.
///
/// Properties (checked by tests across the workspace):
///
/// - Maximum contention equals the capacity (the memory limit is tight).
/// - The instance is feasible, but naive placements of the long buffer
///   spanning the middle of the schedule make it infeasible, forcing
///   backtracking in search-based allocators.
///
/// # Example
///
/// ```
/// let p = tela_model::examples::figure1();
/// assert_eq!(p.len(), 10);
/// assert_eq!(p.max_contention(), p.capacity());
/// ```
pub fn figure1() -> Problem {
    Problem::builder(4)
        .buffer(Buffer::new(0, 3, 2)) // 0: early tall block
        .buffer(Buffer::new(2, 7, 2)) // 1: tall block bridging early/middle
        .buffer(Buffer::new(3, 9, 1)) // 2: the critical long thin block ("blue")
        .buffer(Buffer::new(4, 6, 1)) // 3: filler under the bridge
        .buffer(Buffer::new(7, 10, 1)) // 4: must fit around block 2
        .buffer(Buffer::new(7, 10, 1)) // 5: must fit around block 2
        .buffer(Buffer::new(9, 12, 2)) // 6: late tall block
        .buffer(Buffer::new(0, 2, 2)) // 7: early tall block
        .buffer(Buffer::new(10, 12, 1)) // 8: late filler
        .buffer(Buffer::new(12, 14, 3)) // 9: isolated final phase
        .build()
        .expect("figure1 instance is well-formed")
}

/// A three-buffer instance that any allocator solves instantly; useful for
/// smoke tests.
///
/// # Example
///
/// ```
/// let p = tela_model::examples::tiny();
/// assert_eq!(p.len(), 3);
/// ```
pub fn tiny() -> Problem {
    Problem::builder(16)
        .buffer(Buffer::new(0, 4, 8))
        .buffer(Buffer::new(2, 6, 8))
        .buffer(Buffer::new(4, 8, 8))
        .build()
        .expect("tiny instance is well-formed")
}

/// An instance that is infeasible because contention exceeds the memory
/// limit: three fully-overlapping buffers of size 3 in a memory of 8.
///
/// # Example
///
/// ```
/// let p = tela_model::examples::infeasible();
/// assert!(p.max_contention() > p.capacity());
/// ```
pub fn infeasible() -> Problem {
    Problem::builder(8)
        .buffers((0..3).map(|_| Buffer::new(0, 4, 3)))
        .build()
        .expect("individually the buffers fit")
}

/// An instance with alignment constraints (paper §5.5): buffers requiring
/// 32-unit alignment interleaved with unaligned ones.
///
/// # Example
///
/// ```
/// let p = tela_model::examples::aligned();
/// assert!(p.buffers().iter().any(|b| b.align() == 32));
/// ```
pub fn aligned() -> Problem {
    Problem::builder(160)
        .buffer(Buffer::new(0, 6, 64).with_align(32))
        .buffer(Buffer::new(0, 4, 24))
        .buffer(Buffer::new(2, 8, 32).with_align(32))
        .buffer(Buffer::new(4, 8, 40))
        .buffer(Buffer::new(6, 10, 64).with_align(32))
        .build()
        .expect("aligned instance is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Solution;

    #[test]
    fn figure1_is_tight() {
        let p = figure1();
        assert_eq!(p.capacity(), 4);
        assert_eq!(p.max_contention(), 4);
    }

    #[test]
    fn figure1_has_a_known_solution() {
        // Hand-derived packing; validates that the instance is feasible.
        let p = figure1();
        let s = Solution::new(vec![0, 2, 1, 0, 2, 3, 0, 2, 2, 0]);
        assert!(s.validate(&p).is_ok(), "{:?}", s.validate(&p));
    }

    #[test]
    fn figure1_naive_blue_placement_fails() {
        // Placing the critical block (id 2) at address 0 and the late tall
        // block (id 6) at address 2 leaves ids 4 and 5 only row 1 clear of
        // both, so they collide with each other.
        let p = figure1();
        let s = Solution::new(vec![0, 2, 0, 1, 1, 1, 2, 2, 2, 0]);
        assert!(s.validate(&p).is_err());
    }

    #[test]
    fn tiny_chain_is_easy() {
        let p = tiny();
        let s = Solution::new(vec![0, 8, 0]);
        assert_eq!(s.validate(&p), Ok(16));
    }

    #[test]
    fn infeasible_contention_exceeds_capacity() {
        let p = infeasible();
        assert_eq!(p.max_contention(), 9);
        assert_eq!(p.capacity(), 8);
    }

    #[test]
    fn aligned_instance_solvable_with_aligned_addresses() {
        let p = aligned();
        let s = Solution::new(vec![0, 64, 96, 88, 64]);
        // b0 [0,64) t0-5; b1 [64,88) t0-3; b2 [96,128) t2-7;
        // b3 [88,128)? overlaps b2 -> adjust in validation test below.
        // This particular assignment is checked for alignment violations
        // rather than asserted valid.
        let result = s.validate(&p);
        if let Err(e) = &result {
            // Any error must not be a misalignment: all multiples of 32.
            assert!(
                !matches!(e, crate::ValidationError::Misaligned { .. }),
                "{e}"
            );
        }
    }

    #[test]
    fn aligned_instance_has_valid_packing() {
        let p = aligned();
        // b0 t[0,6) [0,64); b1 t[0,4) [64,88); b2 t[2,8) [96,128);
        // b3 t[4,8) [0,40)?? overlaps b0 t4-5. Use [128,160)... capacity 160.
        // b3 [64,104)? overlaps b2 at 96. b3 t[4,8) size 40: free rows over
        // t4-7 avoiding b0[0,64) (t<6), b2[96,128), b4[?]. Place b4 t[6,10)
        // [0,64) (b0 gone at t6), then b3 at [128,160)? wait capacity 160,
        // size 40 -> [120,160) overlaps b2. Use b3 @ 64: [64,104) overlaps
        // b2 [96,128) at t4-7. Try b2 @ 128 instead.
        let s = Solution::new(vec![0, 64, 128, 64, 0]);
        // b4 t[6,10) @0 vs b0 t[0,6) @0: no time overlap. b3 t[4,8) @[64,104)
        // vs b1 t[0,4): no overlap; vs b2 @[128,160): disjoint space. OK.
        assert!(s.validate(&p).is_ok(), "{:?}", s.validate(&p));
    }
}
