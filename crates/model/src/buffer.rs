use serde::{Deserialize, Serialize};

use crate::{Address, Size, TimeStep};

/// Identifies a buffer within a [`Problem`](crate::Problem) by its index.
///
/// Buffer ids are dense: a problem with `n` buffers uses ids `0..n`.
///
/// # Example
///
/// ```
/// use tela_model::BufferId;
///
/// let id = BufferId::new(3);
/// assert_eq!(id.index(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BufferId(u32);

impl BufferId {
    /// Creates a buffer id from a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in `u32`. Ids are only minted for
    /// buffers of an in-memory `Problem`, whose length is bounded far
    /// below `u32::MAX` in practice; this is a constructor precondition,
    /// not a solve-path hazard.
    pub fn new(index: usize) -> Self {
        BufferId(u32::try_from(index).expect("buffer index fits in u32"))
    }

    /// Returns the dense index of this buffer within its problem.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for BufferId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b{}", self.0)
    }
}

impl From<usize> for BufferId {
    fn from(index: usize) -> Self {
        BufferId::new(index)
    }
}

/// Why a buffer description is malformed; see [`Buffer::try_new`] and
/// [`Problem::new`](crate::Problem::new).
///
/// [`Buffer::new`] panics on these conditions; the fallible
/// constructors return them instead, and [`Problem::new`] re-checks
/// every buffer so that instances arriving through deserialization (which
/// bypasses the constructors) are still rejected before any solver sees
/// them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BufferError {
    /// `end <= start`: the half-open live range `[start, end)` is empty.
    EmptyLiveRange {
        /// The start of the rejected range.
        start: TimeStep,
        /// The (exclusive) end of the rejected range.
        end: TimeStep,
    },
    /// The buffer's size is zero.
    ZeroSize,
    /// The buffer's alignment is zero (1 means unconstrained).
    ZeroAlign,
}

impl std::fmt::Display for BufferError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BufferError::EmptyLiveRange { start, end } => {
                write!(f, "buffer live range must be non-empty: [{start}, {end})")
            }
            BufferError::ZeroSize => write!(f, "buffer size must be positive"),
            BufferError::ZeroAlign => write!(f, "alignment must be positive"),
        }
    }
}

impl std::error::Error for BufferError {}

/// A memory buffer with a fixed live range and size.
///
/// The live range is half-open: the buffer is live for all time steps `t`
/// with `start <= t < end`. Two buffers overlap in time iff their half-open
/// ranges intersect. The allocator must choose an [`Address`] for each
/// buffer; the buffer then occupies addresses `[address, address + size)`.
///
/// `align` constrains the chosen address to a multiple of `align`
/// (paper §5.5); `align == 1` means unconstrained.
///
/// # Example
///
/// ```
/// use tela_model::Buffer;
///
/// let a = Buffer::new(0, 4, 128);
/// let b = Buffer::new(3, 8, 64).with_align(32);
/// assert!(a.overlaps_in_time(&b));
/// assert_eq!(b.align(), 32);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Buffer {
    start: TimeStep,
    end: TimeStep,
    size: Size,
    align: Size,
}

impl Buffer {
    /// Creates a buffer live over the half-open range `[start, end)` with
    /// the given size and no alignment constraint.
    ///
    /// # Panics
    ///
    /// Panics if `end <= start` or `size == 0`; degenerate buffers are
    /// rejected eagerly so every downstream invariant can rely on non-empty
    /// live ranges and positive sizes.
    pub fn new(start: TimeStep, end: TimeStep, size: Size) -> Self {
        match Buffer::try_new(start, end, size) {
            Ok(b) => b,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible form of [`Buffer::new`].
    ///
    /// # Errors
    ///
    /// [`BufferError::EmptyLiveRange`] if `end <= start`,
    /// [`BufferError::ZeroSize`] if `size == 0`.
    pub fn try_new(start: TimeStep, end: TimeStep, size: Size) -> Result<Self, BufferError> {
        if end <= start {
            return Err(BufferError::EmptyLiveRange { start, end });
        }
        if size == 0 {
            return Err(BufferError::ZeroSize);
        }
        Ok(Buffer {
            start,
            end,
            size,
            align: 1,
        })
    }

    /// Returns a copy of this buffer with the given alignment requirement.
    ///
    /// # Panics
    ///
    /// Panics if `align == 0`.
    #[must_use]
    pub fn with_align(self, align: Size) -> Self {
        match self.try_with_align(align) {
            Ok(b) => b,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible form of [`Buffer::with_align`].
    ///
    /// # Errors
    ///
    /// [`BufferError::ZeroAlign`] if `align == 0`.
    pub fn try_with_align(mut self, align: Size) -> Result<Self, BufferError> {
        if align == 0 {
            return Err(BufferError::ZeroAlign);
        }
        self.align = align;
        Ok(self)
    }

    /// Re-checks the constructor invariants.
    ///
    /// The constructors already enforce these, but a `Buffer` can also
    /// arrive through deserialization, which writes the fields directly;
    /// [`Problem::new`](crate::Problem::new) calls this on every buffer so
    /// degenerate instances are rejected at the boundary instead of
    /// panicking deep inside a solver.
    ///
    /// # Errors
    ///
    /// The same [`BufferError`]s as [`Buffer::try_new`] and
    /// [`Buffer::try_with_align`].
    pub fn check(&self) -> Result<(), BufferError> {
        if self.end <= self.start {
            return Err(BufferError::EmptyLiveRange {
                start: self.start,
                end: self.end,
            });
        }
        if self.size == 0 {
            return Err(BufferError::ZeroSize);
        }
        if self.align == 0 {
            return Err(BufferError::ZeroAlign);
        }
        Ok(())
    }

    /// First time step at which the buffer is live.
    pub fn start(&self) -> TimeStep {
        self.start
    }

    /// First time step at which the buffer is no longer live (exclusive).
    pub fn end(&self) -> TimeStep {
        self.end
    }

    /// Size of the buffer in allocation units.
    pub fn size(&self) -> Size {
        self.size
    }

    /// Required address alignment (1 = unconstrained).
    pub fn align(&self) -> Size {
        self.align
    }

    /// Number of time steps for which the buffer is live
    /// (`end - start`; the paper calls this the buffer's *lifetime*).
    pub fn lifetime(&self) -> TimeStep {
        self.end - self.start
    }

    /// The buffer's *area*: `size × lifetime`, one of the block-selection
    /// metrics used by TelaMalloc's heuristics (paper §5.1).
    pub fn area(&self) -> u128 {
        u128::from(self.size) * u128::from(self.lifetime())
    }

    /// Returns true if this buffer is live at time step `t`.
    pub fn live_at(&self, t: TimeStep) -> bool {
        self.start <= t && t < self.end
    }

    /// Returns true if the two buffers' live ranges intersect.
    pub fn overlaps_in_time(&self, other: &Buffer) -> bool {
        self.start < other.end && other.start < self.end
    }

    /// Rounds `addr` up to the next address satisfying this buffer's
    /// alignment constraint. Returns `None` on overflow.
    pub fn align_up(&self, addr: Address) -> Option<Address> {
        if self.align <= 1 {
            return Some(addr);
        }
        let rem = addr % self.align;
        if rem == 0 {
            Some(addr)
        } else {
            addr.checked_add(self.align - rem)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn live_range_is_half_open() {
        let b = Buffer::new(2, 5, 10);
        assert!(!b.live_at(1));
        assert!(b.live_at(2));
        assert!(b.live_at(4));
        assert!(!b.live_at(5));
    }

    #[test]
    fn adjacent_buffers_do_not_overlap() {
        let a = Buffer::new(0, 3, 1);
        let b = Buffer::new(3, 6, 1);
        assert!(!a.overlaps_in_time(&b));
        assert!(!b.overlaps_in_time(&a));
    }

    #[test]
    fn overlapping_buffers_detected_symmetrically() {
        let a = Buffer::new(0, 4, 1);
        let b = Buffer::new(3, 6, 1);
        assert!(a.overlaps_in_time(&b));
        assert!(b.overlaps_in_time(&a));
    }

    #[test]
    fn nested_live_ranges_overlap() {
        let outer = Buffer::new(0, 10, 1);
        let inner = Buffer::new(4, 5, 1);
        assert!(outer.overlaps_in_time(&inner));
        assert!(inner.overlaps_in_time(&outer));
    }

    #[test]
    fn lifetime_and_area() {
        let b = Buffer::new(3, 8, 20);
        assert_eq!(b.lifetime(), 5);
        assert_eq!(b.area(), 100);
    }

    #[test]
    fn align_up_rounds_to_multiple() {
        let b = Buffer::new(0, 1, 8).with_align(32);
        assert_eq!(b.align_up(0), Some(0));
        assert_eq!(b.align_up(1), Some(32));
        assert_eq!(b.align_up(32), Some(32));
        assert_eq!(b.align_up(33), Some(64));
    }

    #[test]
    fn align_up_detects_overflow() {
        let b = Buffer::new(0, 1, 8).with_align(64);
        assert_eq!(b.align_up(u64::MAX - 1), None);
    }

    #[test]
    fn unaligned_buffers_pass_through() {
        let b = Buffer::new(0, 1, 8);
        assert_eq!(b.align_up(17), Some(17));
    }

    #[test]
    #[should_panic(expected = "live range")]
    fn empty_live_range_rejected() {
        let _ = Buffer::new(5, 5, 1);
    }

    #[test]
    #[should_panic(expected = "size")]
    fn zero_size_rejected() {
        let _ = Buffer::new(0, 1, 0);
    }

    #[test]
    fn try_new_reports_typed_errors() {
        assert_eq!(
            Buffer::try_new(5, 5, 1),
            Err(BufferError::EmptyLiveRange { start: 5, end: 5 })
        );
        assert_eq!(
            Buffer::try_new(7, 3, 1),
            Err(BufferError::EmptyLiveRange { start: 7, end: 3 })
        );
        assert_eq!(Buffer::try_new(0, 1, 0), Err(BufferError::ZeroSize));
        assert!(Buffer::try_new(0, 1, 1).is_ok());
    }

    #[test]
    fn try_with_align_rejects_zero() {
        let b = Buffer::new(0, 1, 8);
        assert_eq!(b.try_with_align(0), Err(BufferError::ZeroAlign));
        assert_eq!(b.try_with_align(16).unwrap().align(), 16);
    }

    #[test]
    fn check_validates_constructed_buffers() {
        assert!(Buffer::new(0, 4, 16).with_align(8).check().is_ok());
    }

    #[test]
    fn malformed_buffers_rejected_at_problem_construction() {
        // Deserialization writes fields directly, bypassing the
        // constructors; simulate that here (same-module field access)
        // and check that `Problem::new` still rejects the result.
        use crate::{Problem, ProblemError};
        for (raw, error) in [
            (
                Buffer {
                    start: 5,
                    end: 5,
                    size: 1,
                    align: 1,
                },
                BufferError::EmptyLiveRange { start: 5, end: 5 },
            ),
            (
                Buffer {
                    start: 0,
                    end: 1,
                    size: 0,
                    align: 1,
                },
                BufferError::ZeroSize,
            ),
            (
                Buffer {
                    start: 0,
                    end: 1,
                    size: 1,
                    align: 0,
                },
                BufferError::ZeroAlign,
            ),
        ] {
            let err = Problem::new(vec![raw], 100).unwrap_err();
            assert_eq!(
                err,
                ProblemError::InvalidBuffer {
                    buffer: crate::BufferId::new(0),
                    error,
                }
            );
        }
    }

    #[test]
    fn buffer_error_displays() {
        assert!(BufferError::EmptyLiveRange { start: 2, end: 2 }
            .to_string()
            .contains("live range"));
        assert!(BufferError::ZeroSize.to_string().contains("size"));
        assert!(BufferError::ZeroAlign.to_string().contains("alignment"));
    }

    #[test]
    fn buffer_id_round_trip() {
        let id = BufferId::new(42);
        assert_eq!(id.index(), 42);
        assert_eq!(id.to_string(), "b42");
        assert_eq!(BufferId::from(42usize), id);
    }
}
