use serde::{Deserialize, Serialize};

use crate::{Address, Size, TimeStep};

/// Identifies a buffer within a [`Problem`](crate::Problem) by its index.
///
/// Buffer ids are dense: a problem with `n` buffers uses ids `0..n`.
///
/// # Example
///
/// ```
/// use tela_model::BufferId;
///
/// let id = BufferId::new(3);
/// assert_eq!(id.index(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BufferId(u32);

impl BufferId {
    /// Creates a buffer id from a dense index.
    pub fn new(index: usize) -> Self {
        BufferId(u32::try_from(index).expect("buffer index fits in u32"))
    }

    /// Returns the dense index of this buffer within its problem.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for BufferId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b{}", self.0)
    }
}

impl From<usize> for BufferId {
    fn from(index: usize) -> Self {
        BufferId::new(index)
    }
}

/// A memory buffer with a fixed live range and size.
///
/// The live range is half-open: the buffer is live for all time steps `t`
/// with `start <= t < end`. Two buffers overlap in time iff their half-open
/// ranges intersect. The allocator must choose an [`Address`] for each
/// buffer; the buffer then occupies addresses `[address, address + size)`.
///
/// `align` constrains the chosen address to a multiple of `align`
/// (paper §5.5); `align == 1` means unconstrained.
///
/// # Example
///
/// ```
/// use tela_model::Buffer;
///
/// let a = Buffer::new(0, 4, 128);
/// let b = Buffer::new(3, 8, 64).with_align(32);
/// assert!(a.overlaps_in_time(&b));
/// assert_eq!(b.align(), 32);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Buffer {
    start: TimeStep,
    end: TimeStep,
    size: Size,
    align: Size,
}

impl Buffer {
    /// Creates a buffer live over the half-open range `[start, end)` with
    /// the given size and no alignment constraint.
    ///
    /// # Panics
    ///
    /// Panics if `end <= start` or `size == 0`; degenerate buffers are
    /// rejected eagerly so every downstream invariant can rely on non-empty
    /// live ranges and positive sizes.
    pub fn new(start: TimeStep, end: TimeStep, size: Size) -> Self {
        assert!(
            end > start,
            "buffer live range must be non-empty: [{start}, {end})"
        );
        assert!(size > 0, "buffer size must be positive");
        Buffer {
            start,
            end,
            size,
            align: 1,
        }
    }

    /// Returns a copy of this buffer with the given alignment requirement.
    ///
    /// # Panics
    ///
    /// Panics if `align == 0`.
    #[must_use]
    pub fn with_align(mut self, align: Size) -> Self {
        assert!(align > 0, "alignment must be positive");
        self.align = align;
        self
    }

    /// First time step at which the buffer is live.
    pub fn start(&self) -> TimeStep {
        self.start
    }

    /// First time step at which the buffer is no longer live (exclusive).
    pub fn end(&self) -> TimeStep {
        self.end
    }

    /// Size of the buffer in allocation units.
    pub fn size(&self) -> Size {
        self.size
    }

    /// Required address alignment (1 = unconstrained).
    pub fn align(&self) -> Size {
        self.align
    }

    /// Number of time steps for which the buffer is live
    /// (`end - start`; the paper calls this the buffer's *lifetime*).
    pub fn lifetime(&self) -> TimeStep {
        self.end - self.start
    }

    /// The buffer's *area*: `size × lifetime`, one of the block-selection
    /// metrics used by TelaMalloc's heuristics (paper §5.1).
    pub fn area(&self) -> u128 {
        u128::from(self.size) * u128::from(self.lifetime())
    }

    /// Returns true if this buffer is live at time step `t`.
    pub fn live_at(&self, t: TimeStep) -> bool {
        self.start <= t && t < self.end
    }

    /// Returns true if the two buffers' live ranges intersect.
    pub fn overlaps_in_time(&self, other: &Buffer) -> bool {
        self.start < other.end && other.start < self.end
    }

    /// Rounds `addr` up to the next address satisfying this buffer's
    /// alignment constraint. Returns `None` on overflow.
    pub fn align_up(&self, addr: Address) -> Option<Address> {
        if self.align <= 1 {
            return Some(addr);
        }
        let rem = addr % self.align;
        if rem == 0 {
            Some(addr)
        } else {
            addr.checked_add(self.align - rem)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn live_range_is_half_open() {
        let b = Buffer::new(2, 5, 10);
        assert!(!b.live_at(1));
        assert!(b.live_at(2));
        assert!(b.live_at(4));
        assert!(!b.live_at(5));
    }

    #[test]
    fn adjacent_buffers_do_not_overlap() {
        let a = Buffer::new(0, 3, 1);
        let b = Buffer::new(3, 6, 1);
        assert!(!a.overlaps_in_time(&b));
        assert!(!b.overlaps_in_time(&a));
    }

    #[test]
    fn overlapping_buffers_detected_symmetrically() {
        let a = Buffer::new(0, 4, 1);
        let b = Buffer::new(3, 6, 1);
        assert!(a.overlaps_in_time(&b));
        assert!(b.overlaps_in_time(&a));
    }

    #[test]
    fn nested_live_ranges_overlap() {
        let outer = Buffer::new(0, 10, 1);
        let inner = Buffer::new(4, 5, 1);
        assert!(outer.overlaps_in_time(&inner));
        assert!(inner.overlaps_in_time(&outer));
    }

    #[test]
    fn lifetime_and_area() {
        let b = Buffer::new(3, 8, 20);
        assert_eq!(b.lifetime(), 5);
        assert_eq!(b.area(), 100);
    }

    #[test]
    fn align_up_rounds_to_multiple() {
        let b = Buffer::new(0, 1, 8).with_align(32);
        assert_eq!(b.align_up(0), Some(0));
        assert_eq!(b.align_up(1), Some(32));
        assert_eq!(b.align_up(32), Some(32));
        assert_eq!(b.align_up(33), Some(64));
    }

    #[test]
    fn align_up_detects_overflow() {
        let b = Buffer::new(0, 1, 8).with_align(64);
        assert_eq!(b.align_up(u64::MAX - 1), None);
    }

    #[test]
    fn unaligned_buffers_pass_through() {
        let b = Buffer::new(0, 1, 8);
        assert_eq!(b.align_up(17), Some(17));
    }

    #[test]
    #[should_panic(expected = "live range")]
    fn empty_live_range_rejected() {
        let _ = Buffer::new(5, 5, 1);
    }

    #[test]
    #[should_panic(expected = "size")]
    fn zero_size_rejected() {
        let _ = Buffer::new(0, 1, 0);
    }

    #[test]
    fn buffer_id_round_trip() {
        let id = BufferId::new(42);
        assert_eq!(id.index(), 42);
        assert_eq!(id.to_string(), "b42");
        assert_eq!(BufferId::from(42usize), id);
    }
}
