//! Canonical problem fingerprints for solution caching.
//!
//! A long-running allocation service (the ROADMAP's
//! allocation-as-a-service tier) sees the same model compiled over and
//! over: the buffer set is identical up to *buffer renaming* (the
//! compiler enumerates values in a different order) and a *uniform
//! time shift* (the schedule starts at a different logical step). Both
//! transformations leave the allocation problem unchanged — the overlap
//! structure, sizes, alignments, and capacity are what the solvers see
//! — so a cache keyed by a renaming/shift-invariant fingerprint turns
//! repeat compilations into O(1) lookups (cf. the memory-mapping
//! service of arXiv:2305.07440, which amortizes solve cost the same
//! way).
//!
//! [`CanonicalForm`] is the invariant itself: the buffer multiset,
//! shifted so the earliest start is zero and sorted into a canonical
//! order. [`Fingerprint`] is a 128-bit hash of that form for cheap
//! indexing; cache consumers compare the full [`CanonicalForm`] on hash
//! hits, so a collision can never produce a false cache hit. Because
//! identical canonical forms describe the same problem up to a buffer
//! permutation, a cached solution is replayed by
//! [`CanonicalForm::translate`]: addresses attach to canonical *slots*,
//! and each problem maps its own buffers onto those slots.

use crate::{Address, Problem, Size, Solution, TimeStep};

/// A 128-bit renaming/time-shift-invariant hash of a [`Problem`].
///
/// Equal problems-up-to-renaming-and-shift always produce equal
/// fingerprints; the converse holds only up to hash collisions, which
/// is why caches must confirm with [`CanonicalForm::matches`] before
/// serving a hit.
///
/// # Example
///
/// ```
/// use tela_model::{fingerprint, Buffer, Problem};
///
/// let a = Problem::builder(64)
///     .buffer(Buffer::new(0, 4, 16))
///     .buffer(Buffer::new(2, 6, 32))
///     .build()?;
/// // Same problem, buffers renamed (reordered) and shifted by +10.
/// let b = Problem::builder(64)
///     .buffer(Buffer::new(12, 16, 32))
///     .buffer(Buffer::new(10, 14, 16))
///     .build()?;
/// assert_eq!(fingerprint(&a), fingerprint(&b));
/// # Ok::<(), tela_model::ProblemError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(u128);

impl Fingerprint {
    /// The raw 128-bit value.
    pub fn as_u128(self) -> u128 {
        self.0
    }
}

impl std::fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// One buffer in canonical coordinates: live range shifted so the
/// problem's earliest start is zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CanonicalBuffer {
    /// Shifted start time.
    pub start: TimeStep,
    /// Shifted (exclusive) end time.
    pub end: TimeStep,
    /// Buffer size, unchanged.
    pub size: Size,
    /// Alignment, unchanged.
    pub align: Size,
}

/// The canonical form of a problem: capacity plus the shifted, sorted
/// buffer multiset, remembering which original buffer landed in each
/// canonical slot.
///
/// Two problems have [`matches`](CanonicalForm::matches)-equal forms
/// iff they differ only by buffer renaming and a uniform time shift.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CanonicalForm {
    capacity: Size,
    /// Canonical slots, sorted ascending.
    slots: Vec<CanonicalBuffer>,
    /// `order[slot]` = index of the original buffer occupying `slot`.
    order: Vec<u32>,
}

impl CanonicalForm {
    /// Computes the canonical form of `problem`.
    pub fn of(problem: &Problem) -> Self {
        let shift = problem
            .buffers()
            .iter()
            .map(|b| b.start())
            .min()
            .unwrap_or(0);
        let mut keyed: Vec<(CanonicalBuffer, u32)> = problem
            .buffers()
            .iter()
            .enumerate()
            .map(|(i, b)| {
                (
                    CanonicalBuffer {
                        start: b.start() - shift,
                        end: b.end() - shift,
                        size: b.size(),
                        align: b.align(),
                    },
                    i as u32,
                )
            })
            .collect();
        // Identical tuples are interchangeable, so ties may land in any
        // slot; sorting by (tuple, original index) keeps the order
        // deterministic for a given problem without affecting the
        // canonical slot sequence.
        keyed.sort_unstable();
        CanonicalForm {
            capacity: problem.capacity(),
            slots: keyed.iter().map(|(c, _)| *c).collect(),
            order: keyed.iter().map(|(_, i)| *i).collect(),
        }
    }

    /// The memory capacity the form was taken at.
    pub fn capacity(&self) -> Size {
        self.capacity
    }

    /// Number of buffers.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True for the empty problem.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// True when `other` describes the same problem up to renaming and
    /// uniform time shift. This is the collision-proof check caches run
    /// after a fingerprint match.
    pub fn matches(&self, other: &CanonicalForm) -> bool {
        self.capacity == other.capacity && self.slots == other.slots
    }

    /// The 128-bit hash of this form (two independently-seeded 64-bit
    /// FNV-1a passes over the canonical byte stream).
    pub fn fingerprint(&self) -> Fingerprint {
        let mut lo = Fnv::new(0xcbf2_9ce4_8422_2325);
        let mut hi = Fnv::new(0x6c62_272e_07bb_0142);
        for h in [&mut lo, &mut hi] {
            h.write_u64(self.capacity);
            h.write_u64(self.slots.len() as u64);
            for s in &self.slots {
                h.write_u64(u64::from(s.start));
                h.write_u64(u64::from(s.end));
                h.write_u64(s.size);
                h.write_u64(s.align);
            }
        }
        Fingerprint((u128::from(hi.finish()) << 64) | u128::from(lo.finish()))
    }

    /// Extracts a solution's addresses in canonical slot order, the
    /// form a cache should store: `slot_addresses()[k]` is the address
    /// of the buffer occupying canonical slot `k`.
    pub fn slot_addresses(&self, solution: &Solution) -> Vec<Address> {
        self.order
            .iter()
            .map(|&i| solution.addresses()[i as usize])
            .collect()
    }

    /// Replays addresses stored in canonical slot order (from
    /// [`slot_addresses`](CanonicalForm::slot_addresses) on a matching
    /// form) onto *this* problem's buffer numbering, yielding a
    /// [`Solution`] for it. Returns `None` when the slot count differs.
    ///
    /// Identical canonical tuples are interchangeable, so any slot
    /// assignment among ties is valid; callers should still
    /// [`validate`](Solution::validate) the result as a cheap
    /// end-to-end guard.
    pub fn translate(&self, slot_addresses: &[Address]) -> Option<Solution> {
        if slot_addresses.len() != self.order.len() {
            return None;
        }
        let mut addresses = vec![0; self.order.len()];
        for (slot, &original) in self.order.iter().enumerate() {
            addresses[original as usize] = slot_addresses[slot];
        }
        Some(Solution::new(addresses))
    }
}

/// The fingerprint of `problem`: shorthand for
/// `CanonicalForm::of(problem).fingerprint()`.
pub fn fingerprint(problem: &Problem) -> Fingerprint {
    CanonicalForm::of(problem).fingerprint()
}

/// 64-bit FNV-1a with a caller-chosen offset basis.
struct Fnv(u64);

impl Fnv {
    fn new(basis: u64) -> Self {
        Fnv(basis)
    }

    fn write_u64(&mut self, value: u64) {
        for byte in value.to_le_bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Buffer;

    fn problem(buffers: &[(u32, u32, u64, u64)], capacity: u64) -> Problem {
        Problem::new(
            buffers
                .iter()
                .map(|&(s, e, sz, a)| Buffer::new(s, e, sz).with_align(a))
                .collect(),
            capacity,
        )
        .expect("test problems are valid")
    }

    #[test]
    fn renaming_and_shift_preserve_fingerprint() {
        let a = problem(&[(0, 4, 16, 1), (2, 6, 32, 8), (5, 9, 16, 1)], 64);
        let b = problem(&[(12, 16, 16, 1), (7, 11, 16, 1), (9, 13, 32, 8)], 64);
        assert_eq!(fingerprint(&a), fingerprint(&b));
        assert!(CanonicalForm::of(&a).matches(&CanonicalForm::of(&b)));
    }

    #[test]
    fn size_alignment_interval_and_capacity_changes_are_detected() {
        let base = problem(&[(0, 4, 16, 1), (2, 6, 32, 8)], 64);
        let f = fingerprint(&base);
        for perturbed in [
            problem(&[(0, 4, 17, 1), (2, 6, 32, 8)], 64), // size
            problem(&[(0, 4, 16, 2), (2, 6, 32, 8)], 64), // align
            problem(&[(0, 5, 16, 1), (2, 6, 32, 8)], 64), // interval end
            problem(&[(1, 4, 16, 1), (2, 6, 32, 8)], 64), // non-uniform shift
            problem(&[(0, 4, 16, 1), (2, 6, 32, 8)], 65), // capacity
        ] {
            assert_ne!(fingerprint(&perturbed), f, "{perturbed:?}");
            assert!(!CanonicalForm::of(&perturbed).matches(&CanonicalForm::of(&base)));
        }
    }

    #[test]
    fn duplicate_buffers_hash_as_a_multiset() {
        // One copy vs two copies of the same tuple must differ.
        let one = problem(&[(0, 4, 16, 1)], 64);
        let two = problem(&[(0, 4, 16, 1), (0, 4, 16, 1)], 64);
        assert_ne!(fingerprint(&one), fingerprint(&two));
    }

    #[test]
    fn translate_replays_a_solution_across_renaming() {
        let a = problem(&[(0, 4, 16, 1), (0, 4, 32, 1)], 64);
        // Renamed (swapped) and shifted by 3.
        let b = problem(&[(3, 7, 32, 1), (3, 7, 16, 1)], 64);
        let ca = CanonicalForm::of(&a);
        let cb = CanonicalForm::of(&b);
        assert!(ca.matches(&cb));

        // Solve `a` trivially by stacking, store in slot order.
        let sol_a = Solution::new(vec![0, 16]);
        assert!(sol_a.validate(&a).is_ok());
        let slots = ca.slot_addresses(&sol_a);

        // Replay onto `b`'s numbering and validate against `b`.
        let sol_b = cb.translate(&slots).expect("same slot count");
        assert!(sol_b.validate(&b).is_ok());
        // The 32-byte buffer is b0 in `b`, so it gets address 16.
        assert_eq!(sol_b.addresses(), &[16, 0]);
    }

    #[test]
    fn translate_rejects_mismatched_slot_count() {
        let a = problem(&[(0, 4, 16, 1)], 64);
        assert!(CanonicalForm::of(&a).translate(&[0, 16]).is_none());
    }

    #[test]
    fn empty_problem_has_a_form() {
        let p = Problem::new(Vec::new(), 64).unwrap();
        let c = CanonicalForm::of(&p);
        assert!(c.is_empty());
        assert_eq!(c.len(), 0);
        assert_eq!(c.translate(&[]).unwrap().len(), 0);
    }

    #[test]
    fn fingerprint_displays_as_hex() {
        let p = problem(&[(0, 4, 16, 1)], 64);
        let text = fingerprint(&p).to_string();
        assert_eq!(text.len(), 32);
        assert!(text.chars().all(|c| c.is_ascii_hexdigit()));
    }
}
