use serde::{Deserialize, Serialize};

use crate::{Address, BufferId, Problem, Size};

/// A complete assignment of base addresses to every buffer of a
/// [`Problem`].
///
/// # Example
///
/// ```
/// use tela_model::{Buffer, Problem, Solution};
///
/// let problem = Problem::builder(10)
///     .buffer(Buffer::new(0, 4, 6))
///     .buffer(Buffer::new(2, 6, 4))
///     .build()?;
/// let solution = Solution::new(vec![0, 6]);
/// assert_eq!(solution.validate(&problem)?, 10); // peak usage
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Solution {
    addresses: Vec<Address>,
}

/// Reasons a [`Solution`] fails validation against a [`Problem`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// The solution has a different number of addresses than the problem
    /// has buffers.
    WrongLength {
        /// Addresses in the solution.
        got: usize,
        /// Buffers in the problem.
        expected: usize,
    },
    /// A buffer extends past the memory capacity.
    ExceedsCapacity {
        /// The offending buffer.
        buffer: BufferId,
        /// Its highest used address plus one.
        top: Address,
        /// The memory capacity.
        capacity: Size,
    },
    /// A buffer's address violates its alignment constraint.
    Misaligned {
        /// The offending buffer.
        buffer: BufferId,
        /// The assigned address.
        address: Address,
        /// The required alignment.
        align: Size,
    },
    /// Two buffers overlap in both time and space.
    Overlap {
        /// First buffer of the overlapping pair.
        first: BufferId,
        /// Second buffer of the overlapping pair.
        second: BufferId,
    },
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidationError::WrongLength { got, expected } => {
                write!(
                    f,
                    "solution has {got} addresses but problem has {expected} buffers"
                )
            }
            ValidationError::ExceedsCapacity {
                buffer,
                top,
                capacity,
            } => {
                write!(f, "buffer {buffer} ends at {top}, past capacity {capacity}")
            }
            ValidationError::Misaligned {
                buffer,
                address,
                align,
            } => {
                write!(
                    f,
                    "buffer {buffer} at address {address} violates alignment {align}"
                )
            }
            ValidationError::Overlap { first, second } => {
                write!(f, "buffers {first} and {second} overlap in time and space")
            }
        }
    }
}

impl std::error::Error for ValidationError {}

impl Solution {
    /// Wraps a vector of addresses, indexed by [`BufferId`].
    pub fn new(addresses: Vec<Address>) -> Self {
        Solution { addresses }
    }

    /// The address assigned to `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn address(&self, id: BufferId) -> Address {
        self.addresses[id.index()]
    }

    /// All addresses, indexed by buffer id.
    pub fn addresses(&self) -> &[Address] {
        &self.addresses
    }

    /// Number of assigned buffers.
    pub fn len(&self) -> usize {
        self.addresses.len()
    }

    /// Returns true if the solution assigns no buffers.
    pub fn is_empty(&self) -> bool {
        self.addresses.is_empty()
    }

    /// Checks the solution against the problem's constraints: length,
    /// capacity, alignment, and pairwise non-overlap. On success returns
    /// the peak address in use (the packing height).
    ///
    /// # Errors
    ///
    /// Returns the first [`ValidationError`] found.
    pub fn validate(&self, problem: &Problem) -> Result<Address, ValidationError> {
        if self.addresses.len() != problem.len() {
            return Err(ValidationError::WrongLength {
                got: self.addresses.len(),
                expected: problem.len(),
            });
        }
        let mut peak = 0;
        for (id, buffer) in problem.iter() {
            let addr = self.addresses[id.index()];
            let top = addr
                .checked_add(buffer.size())
                .ok_or(ValidationError::ExceedsCapacity {
                    buffer: id,
                    top: Address::MAX,
                    capacity: problem.capacity(),
                })?;
            if top > problem.capacity() {
                return Err(ValidationError::ExceedsCapacity {
                    buffer: id,
                    top,
                    capacity: problem.capacity(),
                });
            }
            if buffer.align() > 1 && !addr.is_multiple_of(buffer.align()) {
                return Err(ValidationError::Misaligned {
                    buffer: id,
                    address: addr,
                    align: buffer.align(),
                });
            }
            peak = peak.max(top);
        }
        for (a, b) in problem.overlapping_pairs() {
            let (abuf, bbuf) = (problem.buffer(a), problem.buffer(b));
            let (apos, bpos) = (self.address(a), self.address(b));
            if apos < bpos + bbuf.size() && bpos < apos + abuf.size() {
                return Err(ValidationError::Overlap {
                    first: a,
                    second: b,
                });
            }
        }
        Ok(peak)
    }

    /// The live-memory profile of this solution: for each time step, the
    /// highest address in use plus one (0 if nothing is live). This is the
    /// quantity plotted in the paper's Figure 3.
    pub fn live_profile(&self, problem: &Problem) -> Vec<Address> {
        let horizon = problem.horizon() as usize;
        let mut profile = vec![0; horizon];
        for (id, buffer) in problem.iter() {
            let top = self.address(id) + buffer.size();
            for slot in &mut profile[buffer.start() as usize..buffer.end() as usize] {
                *slot = (*slot).max(top);
            }
        }
        profile
    }
}

impl FromIterator<Address> for Solution {
    fn from_iter<T: IntoIterator<Item = Address>>(iter: T) -> Self {
        Solution::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Buffer;

    fn two_buffer_problem() -> Problem {
        Problem::builder(10)
            .buffer(Buffer::new(0, 4, 6))
            .buffer(Buffer::new(2, 6, 4))
            .build()
            .unwrap()
    }

    #[test]
    fn valid_solution_returns_peak() {
        let p = two_buffer_problem();
        assert_eq!(Solution::new(vec![0, 6]).validate(&p), Ok(10));
        assert_eq!(Solution::new(vec![4, 0]).validate(&p), Ok(10));
    }

    #[test]
    fn wrong_length_rejected() {
        let p = two_buffer_problem();
        let err = Solution::new(vec![0]).validate(&p).unwrap_err();
        assert_eq!(
            err,
            ValidationError::WrongLength {
                got: 1,
                expected: 2
            }
        );
    }

    #[test]
    fn capacity_violation_rejected() {
        let p = two_buffer_problem();
        let err = Solution::new(vec![0, 7]).validate(&p).unwrap_err();
        assert!(matches!(
            err,
            ValidationError::ExceedsCapacity { top: 11, .. }
        ));
    }

    #[test]
    fn spatial_overlap_rejected() {
        let p = two_buffer_problem();
        let err = Solution::new(vec![0, 5]).validate(&p).unwrap_err();
        assert!(matches!(err, ValidationError::Overlap { .. }));
    }

    #[test]
    fn time_disjoint_buffers_may_share_space() {
        let p = Problem::builder(10)
            .buffer(Buffer::new(0, 2, 8))
            .buffer(Buffer::new(2, 4, 8))
            .build()
            .unwrap();
        assert_eq!(Solution::new(vec![0, 0]).validate(&p), Ok(8));
    }

    #[test]
    fn misaligned_address_rejected() {
        let p = Problem::builder(100)
            .buffer(Buffer::new(0, 1, 8).with_align(32))
            .build()
            .unwrap();
        let err = Solution::new(vec![16]).validate(&p).unwrap_err();
        assert!(matches!(err, ValidationError::Misaligned { align: 32, .. }));
        assert_eq!(Solution::new(vec![64]).validate(&p), Ok(72));
    }

    #[test]
    fn overflowing_address_rejected() {
        let p = Problem::builder(u64::MAX)
            .buffer(Buffer::new(0, 1, 2))
            .build()
            .unwrap();
        let err = Solution::new(vec![u64::MAX - 1]).validate(&p).unwrap_err();
        assert!(matches!(err, ValidationError::ExceedsCapacity { .. }));
    }

    #[test]
    fn live_profile_tracks_highest_live_address() {
        let p = two_buffer_problem();
        let s = Solution::new(vec![0, 6]);
        assert_eq!(s.live_profile(&p), vec![6, 6, 10, 10, 10, 10]);
    }

    #[test]
    fn live_profile_empty_slots_are_zero() {
        let p = Problem::builder(10)
            .buffer(Buffer::new(2, 3, 5))
            .build()
            .unwrap();
        let s = Solution::new(vec![1]);
        assert_eq!(s.live_profile(&p), vec![0, 0, 6]);
    }
}
