//! The learned backtracking policy (paper §6.5).
//!
//! On every major backtrack the policy batches the features of all
//! candidate targets through the gradient-boosted model, weights the
//! scores by depth (to discourage very far backtracks, which risk making
//! the problem unsolvable), and jumps to the highest-scoring target —
//! unless no score clears the confidence threshold, in which case it
//! falls back to staying put and trying all unplaced buffers.

use telamalloc::{BacktrackChoice, BacktrackContext, BacktrackPolicy};

use crate::gbt::Gbt;

/// A [`BacktrackPolicy`] driven by a trained [`Gbt`] score model.
#[derive(Debug, Clone)]
pub struct LearnedPolicy {
    model: Gbt,
    /// Minimum (depth-weighted) score required to act on the model's
    /// choice; below it, fall back to the default strategy (§6.5).
    threshold: f64,
}

impl LearnedPolicy {
    /// Default confidence threshold: valid targets are labelled in
    /// `[5, 10]`, so anything below ~4 is treated as noise.
    pub const DEFAULT_THRESHOLD: f64 = 4.0;

    /// Wraps a trained model with the default threshold.
    pub fn new(model: Gbt) -> Self {
        LearnedPolicy {
            model,
            threshold: Self::DEFAULT_THRESHOLD,
        }
    }

    /// Overrides the confidence threshold.
    #[must_use]
    pub fn with_threshold(mut self, threshold: f64) -> Self {
        self.threshold = threshold;
        self
    }

    /// The wrapped model.
    pub fn model(&self) -> &Gbt {
        &self.model
    }

    /// Depth weighting: shallower targets (far backtracks) are damped,
    /// since an overly aggressive backtrack "has the potential to cause
    /// a lot more damage than not backtracking far enough" (§6.5).
    fn depth_weight(level: usize, current: usize) -> f64 {
        if current == 0 {
            return 1.0;
        }
        0.6 + 0.4 * (level as f64 + 1.0) / current as f64
    }
}

impl BacktrackPolicy for LearnedPolicy {
    fn choose(&mut self, ctx: &BacktrackContext<'_>) -> BacktrackChoice {
        let rows: Vec<Vec<f64>> = ctx
            .targets
            .iter()
            .map(|t| t.features.to_array().to_vec())
            .collect();
        let scores = self.model.predict_batch(&rows);
        let best = ctx
            .targets
            .iter()
            .zip(&scores)
            .map(|(t, &s)| (t.level, s * Self::depth_weight(t.level, ctx.current_level)))
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("scores are finite"));
        match best {
            Some((level, score)) if score >= self.threshold => BacktrackChoice::Target(level),
            _ => BacktrackChoice::StayAndTryAll,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gbt::GbtParams;
    use tela_model::{examples, BufferId};
    use telamalloc::{BacktrackTarget, TargetFeatures};

    fn features(level: usize) -> TargetFeatures {
        TargetFeatures {
            size: 0.5,
            lifetime: 0.5,
            contention: 0.5,
            decision_level: level as f64,
            culprit_appearances: 1.0,
            backtracks_to_here: 0.0,
            subtree_backtracks: 0.0,
            same_region: 1.0,
            total_backtracks: 1.0,
        }
    }

    fn target(level: usize) -> BacktrackTarget {
        BacktrackTarget {
            level,
            block: BufferId::new(0),
            from_conflict: true,
            features: features(level),
        }
    }

    /// A model that scores targets by their decision level (feature 3).
    fn level_loving_model() -> Gbt {
        let rows: Vec<Vec<f64>> = (0..60)
            .map(|i| {
                let mut f = features(i % 20).to_array().to_vec();
                f[3] = (i % 20) as f64;
                f
            })
            .collect();
        let targets: Vec<f64> = rows.iter().map(|r| r[3]).collect();
        Gbt::fit(
            &rows,
            &targets,
            &GbtParams {
                n_trees: 30,
                ..GbtParams::default()
            },
        )
    }

    #[test]
    fn picks_highest_scoring_target() {
        let mut policy = LearnedPolicy::new(level_loving_model()).with_threshold(0.5);
        let p = examples::figure1();
        let targets = vec![target(2), target(9), target(5)];
        let ctx = BacktrackContext {
            problem: &p,
            targets: &targets,
            path: &[],
            current_level: 12,
            total_backtracks: 3,
        };
        assert_eq!(policy.choose(&ctx), BacktrackChoice::Target(9));
    }

    #[test]
    fn falls_back_below_threshold() {
        let mut policy = LearnedPolicy::new(level_loving_model()).with_threshold(1_000.0);
        let p = examples::figure1();
        let targets = vec![target(2)];
        let ctx = BacktrackContext {
            problem: &p,
            targets: &targets,
            path: &[],
            current_level: 12,
            total_backtracks: 3,
        };
        assert_eq!(policy.choose(&ctx), BacktrackChoice::StayAndTryAll);
    }

    #[test]
    fn empty_target_list_falls_back() {
        let mut policy = LearnedPolicy::new(level_loving_model());
        let p = examples::figure1();
        let ctx = BacktrackContext {
            problem: &p,
            targets: &[],
            path: &[],
            current_level: 12,
            total_backtracks: 3,
        };
        assert_eq!(policy.choose(&ctx), BacktrackChoice::StayAndTryAll);
    }

    #[test]
    fn depth_weight_prefers_nearby_targets() {
        let near = LearnedPolicy::depth_weight(10, 12);
        let far = LearnedPolicy::depth_weight(1, 12);
        assert!(near > far);
        assert_eq!(LearnedPolicy::depth_weight(5, 0), 1.0);
    }
}
