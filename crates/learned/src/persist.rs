//! Model persistence.
//!
//! The paper's deployment freezes the trained model and bakes it into
//! the shipped allocator (§6.1: "a single, static backtracking model
//! that ... does not change"). This module serializes a [`Gbt`] to a
//! line-oriented text format so a trained model can be embedded with
//! `include_str!` or stored beside a compiler toolchain.
//!
//! Format (line-oriented, whitespace-separated):
//!
//! ```text
//! gbt v1 <base> <learning_rate> <n_trees>
//! tree <n_nodes>
//! leaf <value>
//! split <feature> <threshold> <left> <right>
//! ...
//! ```

use crate::gbt::Gbt;

/// Errors from [`load_model`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelParseError {
    /// 1-based line where parsing failed.
    pub line: usize,
    /// Description of the failure.
    pub reason: String,
}

impl std::fmt::Display for ModelParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "model line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for ModelParseError {}

/// Serializes a trained model to the text format.
///
/// # Example
///
/// ```
/// use tela_learned::{Gbt, GbtParams};
/// use tela_learned::persist::{load_model, save_model};
///
/// let rows: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64]).collect();
/// let targets: Vec<f64> = rows.iter().map(|r| r[0] * 2.0).collect();
/// let model = Gbt::fit(&rows, &targets, &GbtParams { n_trees: 5, ..Default::default() });
/// let text = save_model(&model);
/// let restored = load_model(&text)?;
/// assert_eq!(model.predict(&[21.0]), restored.predict(&[21.0]));
/// # Ok::<(), tela_learned::persist::ModelParseError>(())
/// ```
pub fn save_model(model: &Gbt) -> String {
    model.to_text()
}

/// Restores a model from the text format.
///
/// # Errors
///
/// Returns [`ModelParseError`] on any malformed line.
pub fn load_model(text: &str) -> Result<Gbt, ModelParseError> {
    Gbt::from_text(text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gbt::GbtParams;

    fn sample_model() -> Gbt {
        let rows: Vec<Vec<f64>> = (0..100)
            .map(|i| vec![(i % 10) as f64, (i / 10) as f64])
            .collect();
        let targets: Vec<f64> = rows.iter().map(|r| r[0] * 3.0 - r[1]).collect();
        Gbt::fit(
            &rows,
            &targets,
            &GbtParams {
                n_trees: 12,
                ..GbtParams::default()
            },
        )
    }

    #[test]
    fn round_trip_preserves_predictions() {
        let model = sample_model();
        let restored = load_model(&save_model(&model)).expect("round trip");
        for i in 0..30 {
            let x = [(i % 7) as f64, (i % 5) as f64];
            assert_eq!(model.predict(&x), restored.predict(&x), "input {x:?}");
        }
        assert_eq!(model, restored);
    }

    #[test]
    fn malformed_header_rejected() {
        let err = load_model("nonsense").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.to_string().contains("line 1"));
    }

    #[test]
    fn truncated_tree_rejected() {
        let model = sample_model();
        let text = save_model(&model);
        let truncated: String = text.lines().take(3).collect::<Vec<_>>().join("\n");
        assert!(load_model(&truncated).is_err());
    }

    #[test]
    fn garbage_node_rejected() {
        let model = sample_model();
        let mut text = save_model(&model);
        text = text.replacen("leaf", "loaf", 1);
        assert!(load_model(&text).is_err());
    }

    #[test]
    fn special_float_values_survive() {
        // Thresholds/leaves are finite by construction, but the format
        // must preserve full precision.
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 / 3.0]).collect();
        let targets: Vec<f64> = rows.iter().map(|r| r[0] / 7.0).collect();
        let model = Gbt::fit(
            &rows,
            &targets,
            &GbtParams {
                n_trees: 3,
                ..Default::default()
            },
        );
        let restored = load_model(&save_model(&model)).expect("round trip");
        assert_eq!(model, restored);
    }
}
