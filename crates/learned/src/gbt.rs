//! Gradient-boosted regression trees, from scratch.
//!
//! The paper trains a forest of 100 decision trees with the Yggdrasil
//! library to regress backtrack-target scores (§6.5). This module is a
//! self-contained replacement: CART regression trees fit with
//! squared-error splits, boosted by fitting each tree to the residuals
//! of the ensemble so far.

/// One internal split or leaf of a regression tree.
#[derive(Debug, Clone, PartialEq)]
enum Node {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        /// Index of the subtree for `x[feature] <= threshold`.
        left: usize,
        /// Index of the subtree for `x[feature] > threshold`.
        right: usize,
    },
}

/// A CART regression tree fit with squared-error splits.
#[derive(Debug, Clone, PartialEq)]
pub struct RegressionTree {
    nodes: Vec<Node>,
}

impl RegressionTree {
    /// Fits a tree on `rows` (feature vectors) against `targets`.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty, row arities differ, or lengths
    /// mismatch.
    pub fn fit(
        rows: &[Vec<f64>],
        targets: &[f64],
        max_depth: usize,
        min_samples_leaf: usize,
    ) -> Self {
        assert!(!rows.is_empty(), "cannot fit a tree on no samples");
        assert_eq!(rows.len(), targets.len(), "row/target length mismatch");
        let arity = rows[0].len();
        assert!(
            rows.iter().all(|r| r.len() == arity),
            "inconsistent feature arity"
        );
        let mut tree = RegressionTree { nodes: Vec::new() };
        let indices: Vec<u32> = (0..rows.len() as u32).collect();
        tree.grow(rows, targets, indices, max_depth, min_samples_leaf.max(1));
        tree
    }

    /// Predicts the target for one feature vector.
    pub fn predict(&self, x: &[f64]) -> f64 {
        let mut node = 0usize;
        loop {
            match &self.nodes[node] {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if x[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Number of nodes (splits + leaves).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// A tree always has at least one node.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn grow(
        &mut self,
        rows: &[Vec<f64>],
        targets: &[f64],
        indices: Vec<u32>,
        depth: usize,
        min_leaf: usize,
    ) -> usize {
        let mean = indices.iter().map(|&i| targets[i as usize]).sum::<f64>() / indices.len() as f64;
        if depth == 0 || indices.len() < 2 * min_leaf {
            return self.leaf(mean);
        }
        let Some((feature, threshold)) = best_split(rows, targets, &indices, min_leaf) else {
            return self.leaf(mean);
        };
        let (left_idx, right_idx): (Vec<u32>, Vec<u32>) = indices
            .into_iter()
            .partition(|&i| rows[i as usize][feature] <= threshold);
        debug_assert!(left_idx.len() >= min_leaf && right_idx.len() >= min_leaf);
        let node = self.nodes.len();
        self.nodes.push(Node::Leaf { value: mean }); // placeholder
        let left = self.grow(rows, targets, left_idx, depth - 1, min_leaf);
        let right = self.grow(rows, targets, right_idx, depth - 1, min_leaf);
        self.nodes[node] = Node::Split {
            feature,
            threshold,
            left,
            right,
        };
        node
    }

    fn leaf(&mut self, value: f64) -> usize {
        self.nodes.push(Node::Leaf { value });
        self.nodes.len() - 1
    }
}

/// Finds the squared-error-optimal `(feature, threshold)` split, or
/// `None` if no split separates the samples with `min_leaf` on each
/// side.
fn best_split(
    rows: &[Vec<f64>],
    targets: &[f64],
    indices: &[u32],
    min_leaf: usize,
) -> Option<(usize, f64)> {
    let arity = rows[0].len();
    let total_sum: f64 = indices.iter().map(|&i| targets[i as usize]).sum();
    let n = indices.len() as f64;
    let mut best: Option<(f64, usize, f64)> = None; // (gain, feature, threshold)

    let mut order: Vec<u32> = indices.to_vec();
    #[allow(clippy::needless_range_loop)] // feature indexes every row, not one slice
    for feature in 0..arity {
        order.sort_by(|&a, &b| {
            rows[a as usize][feature]
                .partial_cmp(&rows[b as usize][feature])
                .expect("features are finite")
        });
        let mut left_sum = 0.0;
        for (k, &i) in order.iter().enumerate().take(order.len() - 1) {
            left_sum += targets[i as usize];
            let left_n = (k + 1) as f64;
            let value = rows[i as usize][feature];
            let next = rows[order[k + 1] as usize][feature];
            if value == next {
                continue; // cannot split between equal values
            }
            if k + 1 < min_leaf || order.len() - (k + 1) < min_leaf {
                continue;
            }
            let right_sum = total_sum - left_sum;
            let right_n = n - left_n;
            // Maximizing sum-of-squared-means is equivalent to minimizing
            // the split's squared error.
            let gain = left_sum * left_sum / left_n + right_sum * right_sum / right_n;
            let threshold = (value + next) / 2.0;
            if best.is_none_or(|(g, _, _)| gain > g) {
                best = Some((gain, feature, threshold));
            }
        }
    }
    // Require a real improvement over the unsplit node.
    let parent = total_sum * total_sum / n;
    best.filter(|&(gain, _, _)| gain > parent + 1e-12)
        .map(|(_, f, t)| (f, t))
}

/// A gradient-boosted ensemble of regression trees.
///
/// # Example
///
/// ```
/// use tela_learned::gbt::{Gbt, GbtParams};
///
/// // Learn y = x0 + 2*x1 on a small grid.
/// let rows: Vec<Vec<f64>> = (0..100)
///     .map(|i| vec![f64::from(i % 10), f64::from(i / 10)])
///     .collect();
/// let targets: Vec<f64> = rows.iter().map(|r| r[0] + 2.0 * r[1]).collect();
/// let model = Gbt::fit(&rows, &targets, &GbtParams::default());
/// let err = (model.predict(&[3.0, 4.0]) - 11.0).abs();
/// assert!(err < 1.0, "prediction error {err}");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Gbt {
    base: f64,
    learning_rate: f64,
    trees: Vec<RegressionTree>,
}

/// Hyperparameters for [`Gbt::fit`].
#[derive(Debug, Clone, Copy)]
pub struct GbtParams {
    /// Number of boosting rounds — the paper uses a forest of 100 trees
    /// (§7.3).
    pub n_trees: usize,
    /// Shrinkage applied to each tree's contribution.
    pub learning_rate: f64,
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum samples per leaf.
    pub min_samples_leaf: usize,
}

impl Default for GbtParams {
    fn default() -> Self {
        GbtParams {
            n_trees: 100,
            learning_rate: 0.1,
            max_depth: 4,
            min_samples_leaf: 4,
        }
    }
}

impl Gbt {
    /// Fits the ensemble on `rows` against `targets` with least-squares
    /// boosting: every tree regresses the residual of the ensemble so
    /// far.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or lengths mismatch.
    pub fn fit(rows: &[Vec<f64>], targets: &[f64], params: &GbtParams) -> Self {
        assert!(!rows.is_empty(), "cannot fit on no samples");
        assert_eq!(rows.len(), targets.len());
        let base = targets.iter().sum::<f64>() / targets.len() as f64;
        let mut residuals: Vec<f64> = targets.iter().map(|t| t - base).collect();
        let mut trees = Vec::with_capacity(params.n_trees);
        for _ in 0..params.n_trees {
            let tree =
                RegressionTree::fit(rows, &residuals, params.max_depth, params.min_samples_leaf);
            for (r, row) in residuals.iter_mut().zip(rows) {
                *r -= params.learning_rate * tree.predict(row);
            }
            trees.push(tree);
        }
        Gbt {
            base,
            learning_rate: params.learning_rate,
            trees,
        }
    }

    /// Predicts the target for one feature vector.
    pub fn predict(&self, x: &[f64]) -> f64 {
        self.base + self.learning_rate * self.trees.iter().map(|t| t.predict(x)).sum::<f64>()
    }

    /// Predicts a batch of feature vectors — the deployment path feeds
    /// all backtrack candidates as one batch (§6.5).
    pub fn predict_batch(&self, rows: &[Vec<f64>]) -> Vec<f64> {
        rows.iter().map(|r| self.predict(r)).collect()
    }

    /// Number of trees in the ensemble.
    pub fn num_trees(&self) -> usize {
        self.trees.len()
    }

    /// Serializes to the line-oriented text format (see
    /// [`crate::persist`]).
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "gbt v1 {:?} {:?} {}",
            self.base,
            self.learning_rate,
            self.trees.len()
        );
        for tree in &self.trees {
            let _ = writeln!(out, "tree {}", tree.nodes.len());
            for node in &tree.nodes {
                match node {
                    Node::Leaf { value } => {
                        let _ = writeln!(out, "leaf {value:?}");
                    }
                    Node::Split {
                        feature,
                        threshold,
                        left,
                        right,
                    } => {
                        let _ = writeln!(out, "split {feature} {threshold:?} {left} {right}");
                    }
                }
            }
        }
        out
    }

    /// Parses the text format produced by [`Gbt::to_text`].
    ///
    /// # Errors
    ///
    /// Returns [`crate::persist::ModelParseError`] on malformed input.
    pub fn from_text(text: &str) -> Result<Self, crate::persist::ModelParseError> {
        use crate::persist::ModelParseError;
        let err = |line: usize, reason: &str| ModelParseError {
            line,
            reason: reason.to_string(),
        };
        let mut lines = text.lines().enumerate();
        let (lno, header) = lines.next().ok_or_else(|| err(1, "empty model"))?;
        let mut h = header.split_whitespace();
        if h.next() != Some("gbt") || h.next() != Some("v1") {
            return Err(err(lno + 1, "expected `gbt v1` header"));
        }
        let base: f64 = h
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| err(lno + 1, "bad base"))?;
        let learning_rate: f64 = h
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| err(lno + 1, "bad learning rate"))?;
        let n_trees: usize = h
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| err(lno + 1, "bad tree count"))?;
        let mut trees = Vec::with_capacity(n_trees);
        for _ in 0..n_trees {
            let (lno, tline) = lines.next().ok_or_else(|| err(0, "missing tree header"))?;
            let mut t = tline.split_whitespace();
            if t.next() != Some("tree") {
                return Err(err(lno + 1, "expected `tree N`"));
            }
            let n_nodes: usize = t
                .next()
                .and_then(|x| x.parse().ok())
                .ok_or_else(|| err(lno + 1, "bad node count"))?;
            let mut nodes = Vec::with_capacity(n_nodes);
            for _ in 0..n_nodes {
                let (lno, nline) = lines.next().ok_or_else(|| err(0, "truncated tree"))?;
                let mut parts = nline.split_whitespace();
                match parts.next() {
                    Some("leaf") => {
                        let value: f64 = parts
                            .next()
                            .and_then(|x| x.parse().ok())
                            .ok_or_else(|| err(lno + 1, "bad leaf value"))?;
                        nodes.push(Node::Leaf { value });
                    }
                    Some("split") => {
                        let feature: usize = parts
                            .next()
                            .and_then(|x| x.parse().ok())
                            .ok_or_else(|| err(lno + 1, "bad split feature"))?;
                        let threshold: f64 = parts
                            .next()
                            .and_then(|x| x.parse().ok())
                            .ok_or_else(|| err(lno + 1, "bad split threshold"))?;
                        let left: usize = parts
                            .next()
                            .and_then(|x| x.parse().ok())
                            .ok_or_else(|| err(lno + 1, "bad left index"))?;
                        let right: usize = parts
                            .next()
                            .and_then(|x| x.parse().ok())
                            .ok_or_else(|| err(lno + 1, "bad right index"))?;
                        if left >= n_nodes || right >= n_nodes {
                            return Err(err(lno + 1, "child index out of range"));
                        }
                        nodes.push(Node::Split {
                            feature,
                            threshold,
                            left,
                            right,
                        });
                    }
                    _ => return Err(err(lno + 1, "expected `leaf` or `split`")),
                }
            }
            trees.push(RegressionTree { nodes });
        }
        Ok(Gbt {
            base,
            learning_rate,
            trees,
        })
    }

    /// Root-mean-squared error over a labelled set.
    pub fn rmse(&self, rows: &[Vec<f64>], targets: &[f64]) -> f64 {
        let sse: f64 = rows
            .iter()
            .zip(targets)
            .map(|(r, t)| {
                let e = self.predict(r) - t;
                e * e
            })
            .sum();
        (sse / rows.len() as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| vec![(i % 10) as f64, (i / 10) as f64])
            .collect()
    }

    #[test]
    fn tree_fits_constant_data() {
        let rows = grid(20);
        let targets = vec![7.0; 20];
        let tree = RegressionTree::fit(&rows, &targets, 4, 1);
        assert_eq!(tree.predict(&[5.0, 1.0]), 7.0);
        assert_eq!(tree.len(), 1, "constant data needs a single leaf");
    }

    #[test]
    fn tree_learns_a_step_function() {
        let rows: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64]).collect();
        let targets: Vec<f64> = (0..40).map(|i| if i < 20 { 1.0 } else { 5.0 }).collect();
        let tree = RegressionTree::fit(&rows, &targets, 3, 1);
        assert_eq!(tree.predict(&[3.0]), 1.0);
        assert_eq!(tree.predict(&[33.0]), 5.0);
    }

    #[test]
    fn tree_respects_min_samples_leaf() {
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let targets: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let tree = RegressionTree::fit(&rows, &targets, 10, 5);
        // Only one split (5|5) is possible.
        assert!(tree.len() <= 3);
    }

    #[test]
    fn tree_handles_duplicate_feature_values() {
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![(i % 2) as f64]).collect();
        let targets: Vec<f64> = (0..10).map(|i| (i % 2) as f64 * 10.0).collect();
        let tree = RegressionTree::fit(&rows, &targets, 4, 1);
        assert_eq!(tree.predict(&[0.0]), 0.0);
        assert_eq!(tree.predict(&[1.0]), 10.0);
    }

    #[test]
    fn gbt_reduces_training_rmse_with_more_trees() {
        let rows = grid(100);
        let targets: Vec<f64> = rows
            .iter()
            .map(|r| (r[0] - 3.0).abs() + 0.5 * r[1])
            .collect();
        let small = Gbt::fit(
            &rows,
            &targets,
            &GbtParams {
                n_trees: 2,
                ..GbtParams::default()
            },
        );
        let large = Gbt::fit(
            &rows,
            &targets,
            &GbtParams {
                n_trees: 60,
                ..GbtParams::default()
            },
        );
        assert!(large.rmse(&rows, &targets) < small.rmse(&rows, &targets));
    }

    #[test]
    fn gbt_learns_nonlinear_interaction() {
        // y = x0 * x1 needs interaction splits.
        let rows = grid(100);
        let targets: Vec<f64> = rows.iter().map(|r| r[0] * r[1]).collect();
        let model = Gbt::fit(&rows, &targets, &GbtParams::default());
        assert!(model.rmse(&rows, &targets) < 2.0);
    }

    #[test]
    fn predict_batch_matches_predict() {
        let rows = grid(50);
        let targets: Vec<f64> = rows.iter().map(|r| r[0] + r[1]).collect();
        let model = Gbt::fit(&rows, &targets, &GbtParams::default());
        let batch = model.predict_batch(&rows);
        for (row, b) in rows.iter().zip(&batch) {
            assert_eq!(model.predict(row), *b);
        }
    }

    #[test]
    fn default_params_match_paper_forest_size() {
        assert_eq!(GbtParams::default().n_trees, 100);
    }

    #[test]
    #[should_panic(expected = "no samples")]
    fn fitting_empty_set_panics() {
        let _ = Gbt::fit(&[], &[], &GbtParams::default());
    }
}
