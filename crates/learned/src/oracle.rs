//! Imitation-learning labels (paper §6.3, Figure 10).
//!
//! The *minimum backtrack target* is derived from the deepest point on
//! the current search path that is still solvable: the paper encodes the
//! problem as an ILP with the already-placed positions fixed and asks
//! the solver whether a solution exists. We use the complete CP search
//! ([`tela_cp::search::solve_with_fixed`]) as that oracle — both are
//! exact feasibility deciders, and the label only depends on the answer.
//!
//! The *best backtrack target* is computed after the search terminates:
//! the deepest path prefix that is consistent with the solution
//! eventually returned.

use tela_cp::search::solve_with_fixed;
use tela_model::{Budget, Problem};
use telamalloc::{BacktrackTarget, PlacedDecision};

/// Finds the deepest `k` such that fixing `path[..k]` leaves the problem
/// solvable. Solvability is monotone in the prefix length, so a binary
/// search suffices (the optimization the paper notes in §6.3).
///
/// Budget-limited probes that run out are treated as unsolvable, making
/// the result conservative (never too deep).
///
/// # Example
///
/// ```
/// use tela_learned::oracle::deepest_solvable_prefix;
/// use tela_model::{examples, Budget, BufferId};
/// use telamalloc::PlacedDecision;
///
/// let p = examples::figure1();
/// // The known-good packing stays solvable at full depth.
/// let addrs = [0u64, 2, 1, 0, 2, 3, 0, 2, 2, 0];
/// let path: Vec<_> = addrs
///     .iter()
///     .enumerate()
///     .map(|(i, &a)| PlacedDecision { block: BufferId::new(i), address: a })
///     .collect();
/// assert_eq!(deepest_solvable_prefix(&p, &path, &Budget::steps(100_000)), path.len());
/// ```
pub fn deepest_solvable_prefix(
    problem: &Problem,
    path: &[PlacedDecision],
    budget: &Budget,
) -> usize {
    let feasible = |k: usize| -> bool {
        let fixed: Vec<_> = path[..k].iter().map(|d| (d.block, d.address)).collect();
        solve_with_fixed(problem, &fixed, budget).0.is_solved()
    };
    // Invariant: feasible(lo) is true, feasible(hi + 1) is false-or-end.
    if feasible(path.len()) {
        return path.len();
    }
    let (mut lo, mut hi) = (0usize, path.len() - 1);
    while lo < hi {
        let mid = lo + (hi - lo).div_ceil(2);
        if feasible(mid) {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    lo
}

/// The deepest path prefix consistent with the final solution: every
/// placement in `path[..m]` appears in `final_path` at the same address.
pub fn best_prefix(path: &[PlacedDecision], final_path: &[PlacedDecision]) -> usize {
    let mut address_of = std::collections::HashMap::new();
    for d in final_path {
        address_of.insert(d.block, d.address);
    }
    path.iter()
        .position(|d| address_of.get(&d.block) != Some(&d.address))
        .unwrap_or(path.len())
}

/// The paper's §6.4 label: `0` outside `[best, minimum]`, else a linear
/// ramp from 10 at the best target down toward 5 at the minimum target.
pub fn score(level: usize, best: usize, minimum: usize) -> f64 {
    let (best, minimum) = (best.min(minimum), minimum.max(best));
    if level < best || level > minimum {
        0.0
    } else {
        10.0 - 5.0 * (level - best) as f64 / (minimum - best + 1) as f64
    }
}

/// The minimum backtrack target: the deepest offered target at or above
/// (i.e. with level `<=`) the deepest solvable prefix.
pub fn minimum_target(targets: &[BacktrackTarget], deepest_solvable: usize) -> Option<usize> {
    targets
        .iter()
        .map(|t| t.level)
        .filter(|&l| l <= deepest_solvable)
        .max()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tela_model::{Buffer, BufferId};

    fn d(i: usize, a: u64) -> PlacedDecision {
        PlacedDecision {
            block: BufferId::new(i),
            address: a,
        }
    }

    #[test]
    fn bad_placement_limits_prefix() {
        // Two overlapping size-8 blocks in capacity 16: placing block 0
        // at 4 dooms the rest, so the solvable prefix is 0.
        let p = Problem::builder(16)
            .buffer(Buffer::new(0, 2, 8))
            .buffer(Buffer::new(0, 2, 8))
            .build()
            .unwrap();
        let path = vec![d(0, 4)];
        assert_eq!(
            deepest_solvable_prefix(&p, &path, &Budget::steps(10_000)),
            0
        );
        let good = vec![d(0, 0)];
        assert_eq!(
            deepest_solvable_prefix(&p, &good, &Budget::steps(10_000)),
            1
        );
    }

    #[test]
    fn middle_of_path_identified() {
        // Three mutually-overlapping unit blocks in capacity 3: the
        // first two placements are fine, the third collides.
        let p = Problem::builder(3)
            .buffers((0..3).map(|_| Buffer::new(0, 2, 1)))
            .build()
            .unwrap();
        let path = vec![d(0, 0), d(1, 1), d(2, 1)];
        assert_eq!(
            deepest_solvable_prefix(&p, &path, &Budget::steps(10_000)),
            2
        );
    }

    #[test]
    fn empty_path_is_trivially_solvable() {
        let p = Problem::builder(4)
            .buffer(Buffer::new(0, 1, 2))
            .build()
            .unwrap();
        assert_eq!(deepest_solvable_prefix(&p, &[], &Budget::steps(10_000)), 0);
    }

    #[test]
    fn best_prefix_stops_at_first_divergence() {
        let final_path = vec![d(0, 0), d(1, 8), d(2, 4)];
        assert_eq!(best_prefix(&[d(0, 0), d(1, 8)], &final_path), 2);
        assert_eq!(best_prefix(&[d(0, 0), d(1, 4), d(2, 4)], &final_path), 1);
        assert_eq!(best_prefix(&[d(3, 0)], &final_path), 0);
        assert_eq!(best_prefix(&[], &final_path), 0);
    }

    #[test]
    fn score_formula_matches_paper() {
        // best = 2, minimum = 6: score(2) = 10, ramps down, 0 outside.
        assert_eq!(score(2, 2, 6), 10.0);
        assert_eq!(score(6, 2, 6), 10.0 - 5.0 * 4.0 / 5.0);
        assert_eq!(score(1, 2, 6), 0.0);
        assert_eq!(score(7, 2, 6), 0.0);
        // All valid points score well above zero.
        for x in 2..=6 {
            assert!(score(x, 2, 6) >= 5.0);
        }
    }

    #[test]
    fn score_handles_degenerate_range() {
        assert_eq!(score(3, 3, 3), 10.0);
        assert_eq!(score(4, 3, 3), 0.0);
    }

    #[test]
    fn minimum_target_picks_deepest_safe_level() {
        let mk = |level| BacktrackTarget {
            level,
            block: BufferId::new(0),
            from_conflict: true,
            features: telamalloc::TargetFeatures {
                size: 0.0,
                lifetime: 0.0,
                contention: 0.0,
                decision_level: 0.0,
                culprit_appearances: 0.0,
                backtracks_to_here: 0.0,
                subtree_backtracks: 0.0,
                same_region: 0.0,
                total_backtracks: 0.0,
            },
        };
        let targets = vec![mk(1), mk(4), mk(9)];
        assert_eq!(minimum_target(&targets, 6), Some(4));
        assert_eq!(minimum_target(&targets, 0), None);
        assert_eq!(minimum_target(&targets, 100), Some(9));
    }
}
