//! Suite self-play: training data for the portfolio ranker.
//!
//! The backtrack model (§6) learns from an oracle; the variant ranker
//! learns from the portfolio itself. Every portfolio variant is run
//! solo on every training instance and labelled with a *utility* — a
//! monotone transform of "did it solve, and how cheaply" — and a GBT
//! per variant regresses that utility from the instance's
//! [`InstanceStats::feature_vector`]. At solve time the adaptive
//! scheduler ranks variants by predicted utility and seeds the race
//! with the top-k (telamalloc's `AdaptiveConfig`).

use tela_model::{Budget, InstanceStats, Problem};
use telamalloc::{solve, PortfolioVariant};

use crate::gbt::{Gbt, GbtParams};
use crate::ranker::PortfolioRanker;

/// One labelled observation: a variant's performance on one instance.
#[derive(Debug, Clone)]
pub struct VariantSample {
    /// The variant's display name (the ranker's lookup key).
    pub variant: String,
    /// The instance's [`InstanceStats::feature_vector`].
    pub features: Vec<f64>,
    /// The observed [`utility`] of this run.
    pub utility: f64,
}

/// The training label of one solo run: `1 / (1 + ln(1 + steps))` when
/// the variant reached a decisive outcome (solved or proved
/// infeasibility), `0` otherwise.
///
/// Decisiveness dominates — any win outranks any loss — and among wins
/// the log transform compresses the heavy-tailed step distribution so
/// a 10×-cheaper solve looks meaningfully (not astronomically) better.
pub fn utility(decisive: bool, steps: u64) -> f64 {
    if decisive {
        1.0 / (1.0 + (1.0 + steps as f64).ln())
    } else {
        0.0
    }
}

/// Runs every variant solo on every instance and labels the runs.
///
/// Runs are sequential and deterministic: same instances, same
/// variants, same budget ⇒ the same dataset, so the committed model is
/// reproducible by rerunning `train_ranker`.
pub fn self_play(
    instances: &[(String, Problem)],
    variants: &[PortfolioVariant],
    budget: &Budget,
) -> Vec<VariantSample> {
    let mut samples = Vec::with_capacity(instances.len() * variants.len());
    for (_, problem) in instances {
        let features = InstanceStats::of(problem).feature_vector().to_vec();
        for variant in variants {
            let mut config = variant.config.clone();
            config.threads = 1;
            config.variants = Vec::new();
            let result = solve(problem, budget, &config);
            let decisive = matches!(
                result.outcome,
                tela_model::SolveOutcome::Solved(_) | tela_model::SolveOutcome::Infeasible
            );
            samples.push(VariantSample {
                variant: variant.name.clone(),
                features: features.clone(),
                utility: utility(decisive, result.stats.steps),
            });
        }
    }
    samples
}

/// Fits one GBT per variant over its samples and packs them into a
/// [`PortfolioRanker`].
///
/// Variants with no samples are skipped (the ranker scores them at the
/// neutral midpoint at solve time). Samples are grouped by variant
/// name in first-seen order, so the model file is deterministic.
pub fn train_ranker(samples: &[VariantSample], params: &GbtParams) -> PortfolioRanker {
    let mut order: Vec<&str> = Vec::new();
    for s in samples {
        if !order.contains(&s.variant.as_str()) {
            order.push(&s.variant);
        }
    }
    let mut models = Vec::with_capacity(order.len());
    for name in order {
        let rows: Vec<Vec<f64>> = samples
            .iter()
            .filter(|s| s.variant == name)
            .map(|s| s.features.clone())
            .collect();
        let targets: Vec<f64> = samples
            .iter()
            .filter(|s| s.variant == name)
            .map(|s| s.utility)
            .collect();
        if rows.is_empty() {
            continue;
        }
        models.push((name.to_string(), Gbt::fit(&rows, &targets, params)));
    }
    PortfolioRanker::new(models)
}

/// Compact hyperparameters for the ranker's per-variant models: the
/// feature space is 10-dimensional and training sets are tens of
/// instances, so shallow few-tree ensembles generalize better than the
/// paper's 100-tree backtrack forest — and keep the committed text
/// model small.
pub fn ranker_params() -> GbtParams {
    GbtParams {
        n_trees: 16,
        learning_rate: 0.2,
        max_depth: 3,
        min_samples_leaf: 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tela_model::examples;
    use telamalloc::{default_variants, TelaConfig};

    #[test]
    fn utility_orders_outcomes_sensibly() {
        // Any decisive run beats any indecisive one.
        assert!(utility(true, 1_000_000) > utility(false, 1));
        // Cheaper decisive runs score higher.
        assert!(utility(true, 10) > utility(true, 10_000));
        // Bounded in (0, 1].
        assert_eq!(utility(true, 0), 1.0);
        assert!(utility(true, u64::MAX / 2) > 0.0);
    }

    #[test]
    fn self_play_labels_every_variant_on_every_instance() {
        let instances = vec![
            ("tiny".to_string(), examples::tiny()),
            ("fig1".to_string(), examples::figure1()),
        ];
        let variants = default_variants(&TelaConfig::default());
        let samples = self_play(&instances, &variants, &Budget::steps(50_000));
        assert_eq!(samples.len(), instances.len() * variants.len());
        // Deterministic: a second pass produces identical labels.
        let again = self_play(&instances, &variants, &Budget::steps(50_000));
        for (a, b) in samples.iter().zip(&again) {
            assert_eq!(a.variant, b.variant);
            assert_eq!(a.utility, b.utility);
            assert_eq!(a.features, b.features);
        }
        // The trivially-solvable instances should be decisive for the
        // base variant at least.
        assert!(samples.iter().any(|s| s.utility > 0.0));
    }

    #[test]
    fn trained_ranker_round_trips_and_scores() {
        let instances = vec![
            ("tiny".to_string(), examples::tiny()),
            ("fig1".to_string(), examples::figure1()),
            ("aligned".to_string(), examples::aligned()),
        ];
        let variants = default_variants(&TelaConfig::default());
        let samples = self_play(&instances, &variants, &Budget::steps(50_000));
        let ranker = train_ranker(&samples, &ranker_params());
        assert_eq!(ranker.len(), variants.len());
        let restored =
            PortfolioRanker::from_text(&ranker.to_text()).expect("trained model round trips");
        let features = InstanceStats::of(&examples::figure1()).feature_vector();
        for v in &variants {
            assert_eq!(
                ranker.predict(&v.name, &features),
                restored.predict(&v.name, &features)
            );
        }
    }
}
