//! Trains the portfolio variant ranker from suite self-play and writes
//! the committed text model.
//!
//! ```text
//! cargo run --release -p tela-learned --bin train_ranker -- \
//!     [--inputs 4] [--certified 14] [--steps 200000] \
//!     [--out crates/learned/models/portfolio_ranker.txt]
//! ```
//!
//! The training set mirrors the `bench trend` suite (sweep + certified
//! configurations) so the model is trained on the same population the
//! regression gate measures. Collection is deterministic; rerunning
//! this binary reproduces the committed model byte for byte.

use tela_learned::ranker::save_ranker;
use tela_learned::selfplay::{ranker_params, self_play, train_ranker};
use tela_model::Budget;
use tela_workloads::sweep::{certified_configs, sweep_configs};
use telamalloc::{default_variants, TelaConfig};

fn arg_usize(flag: &str, default: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn arg_string(flag: &str, default: &str) -> String {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| default.to_string())
}

fn main() {
    let inputs = arg_usize("--inputs", 4);
    let certified = arg_usize("--certified", 14);
    let steps = arg_usize("--steps", 200_000) as u64;
    let out = arg_string("--out", "crates/learned/models/portfolio_ranker.txt");

    let mut configs = sweep_configs(inputs);
    configs.extend(certified_configs(certified));
    let instances: Vec<(String, tela_model::Problem)> =
        configs.into_iter().map(|c| (c.name, c.problem)).collect();
    let variants = default_variants(&TelaConfig::default());
    println!(
        "# train_ranker: {} instances x {} variants, {steps} steps each",
        instances.len(),
        variants.len()
    );

    let samples = self_play(&instances, &variants, &Budget::steps(steps));
    let decisive = samples.iter().filter(|s| s.utility > 0.0).count();
    println!(
        "# collected {} samples ({decisive} decisive)",
        samples.len()
    );
    for v in &variants {
        let wins = samples
            .iter()
            .filter(|s| s.variant == v.name && s.utility > 0.0)
            .count();
        println!("#   {:<28} {wins}/{} decisive", v.name, instances.len());
    }

    let ranker = train_ranker(&samples, &ranker_params());
    save_ranker(&ranker, std::path::Path::new(&out)).expect("write model file");
    println!(
        "# wrote {} ({} variant models, {} features)",
        out,
        ranker.len(),
        tela_model::InstanceStats::FEATURE_COUNT
    );
}
