//! Learned backtracking for TelaMalloc (paper §6).
//!
//! A gradient-boosted-tree model, trained by imitation learning against
//! an exact-solver oracle, predicts where a major backtrack should land.
//! The model only runs on major backtracks — rare for well-behaved
//! inputs, frequent exactly when the search is stuck — so its cost is
//! paid where its payoff is largest (§6.1).
//!
//! Pipeline (Figure 11):
//!
//! 1. [`collect`] — run TelaMalloc in a special mode that records every
//!    major backtrack and randomizes its choice between the regular
//!    strategy and the oracle (50/50), producing labelled samples via
//!    the §6.3/§6.4 best/minimum-target scoring.
//! 2. [`gbt`] — fit a 100-tree gradient-boosted regression forest to the
//!    scores (the Yggdrasil replacement, built from scratch).
//! 3. [`policy::LearnedPolicy`] — plug the frozen model into the search
//!    as a [`telamalloc::BacktrackPolicy`]; it batches all candidate
//!    targets per backtrack and falls back to the default strategy when
//!    no score clears the confidence threshold (§6.5).
//! 4. [`importance`] — permutation feature importance for the Figure 17
//!    analysis.
//!
//! # Example
//!
//! ```
//! use tela_learned::{train_policy, TrainOptions};
//! use tela_model::{examples, Budget};
//!
//! // Train on a (tiny) problem set and get a deployable policy.
//! let problems = vec![("fig1".to_string(), examples::figure1())];
//! let policy = train_policy(&problems, &TrainOptions::default());
//! // A policy always comes back, even if no backtracks were harvested.
//! let _ = policy;
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod collect;
pub mod gate;
pub mod gbt;
pub mod importance;
pub mod oracle;
pub mod persist;
pub mod policy;
pub mod ranker;
pub mod selfplay;

pub use collect::{collect_dataset, collect_samples, CollectConfig, Sample};
pub use gate::GatedPolicy;
pub use gbt::{Gbt, GbtParams};
pub use importance::permutation_importance;
pub use policy::LearnedPolicy;
pub use ranker::PortfolioRanker;
pub use selfplay::{self_play, train_ranker, VariantSample};

use tela_model::{Budget, Problem};
use telamalloc::TelaConfig;

/// End-to-end training options for [`train_policy`].
#[derive(Debug, Clone)]
pub struct TrainOptions {
    /// Memory slack percents at which each problem is replayed (§6.5
    /// varies the maximum memory for extra variation).
    pub slack_percents: Vec<u32>,
    /// Search budget per collection run.
    pub search_budget: Budget,
    /// Collection configuration (oracle budget, mixing probability).
    pub collect: CollectConfig,
    /// TelaMalloc configuration used during collection.
    pub tela: TelaConfig,
    /// Model hyperparameters.
    pub gbt: GbtParams,
    /// RNG seed for the whole pipeline.
    pub seed: u64,
}

impl Default for TrainOptions {
    fn default() -> Self {
        TrainOptions {
            slack_percents: vec![0, 2, 5, 10],
            search_budget: Budget::steps(100_000),
            collect: CollectConfig::default(),
            tela: TelaConfig::default(),
            gbt: GbtParams::default(),
            seed: 0x7E1A,
        }
    }
}

/// Collects a dataset over `problems` and trains a deployable
/// [`LearnedPolicy`] (Figure 11, end to end).
///
/// If collection harvests no samples (no search ever major-backtracked),
/// a trivial constant model is fit so the returned policy always falls
/// back to the default strategy — matching the production requirement
/// that the allocator behaves consistently regardless of training luck.
pub fn train_policy(problems: &[(String, Problem)], options: &TrainOptions) -> LearnedPolicy {
    let samples = collect_dataset(
        problems,
        &options.slack_percents,
        &options.search_budget,
        &options.tela,
        &options.collect,
        options.seed,
    );
    train_policy_from_samples(&samples, &options.gbt)
}

/// Trains a policy from pre-collected samples.
pub fn train_policy_from_samples(samples: &[Sample], params: &GbtParams) -> LearnedPolicy {
    if samples.is_empty() {
        // Constant zero model: every score is below the confidence
        // threshold, so the policy always falls back.
        let rows = vec![vec![0.0; telamalloc::TargetFeatures::LEN]];
        let targets = vec![0.0];
        let model = Gbt::fit(
            &rows,
            &targets,
            &GbtParams {
                n_trees: 1,
                ..*params
            },
        );
        return LearnedPolicy::new(model);
    }
    let rows: Vec<Vec<f64>> = samples.iter().map(|s| s.features.to_vec()).collect();
    let targets: Vec<f64> = samples.iter().map(|s| s.score).collect();
    LearnedPolicy::new(Gbt::fit(&rows, &targets, params))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tela_model::examples;

    #[test]
    fn empty_training_yields_fallback_policy() {
        let policy = train_policy_from_samples(&[], &GbtParams::default());
        assert_eq!(policy.model().num_trees(), 1);
    }

    #[test]
    fn training_on_easy_problems_still_returns_policy() {
        let problems = vec![("tiny".to_string(), examples::tiny())];
        let options = TrainOptions {
            slack_percents: vec![10],
            search_budget: Budget::steps(10_000),
            ..TrainOptions::default()
        };
        let policy = train_policy(&problems, &options);
        assert!(policy.model().num_trees() >= 1);
    }
}
