//! Permutation feature importance (paper §7.3, Figure 17).
//!
//! The paper ranks input features "by mean increase in error (RMSE)".
//! Permutation importance measures exactly that: shuffle one feature
//! column across the evaluation set and report how much the model's
//! RMSE rises.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::gbt::Gbt;

/// RMSE increase per feature when that feature's column is permuted.
///
/// Returns one entry per feature, index-aligned with the feature
/// vectors. Deterministic in `seed`.
///
/// # Panics
///
/// Panics if `rows` is empty or lengths mismatch.
pub fn permutation_importance(
    model: &Gbt,
    rows: &[Vec<f64>],
    targets: &[f64],
    seed: u64,
) -> Vec<f64> {
    assert!(!rows.is_empty(), "need evaluation rows");
    assert_eq!(rows.len(), targets.len());
    let arity = rows[0].len();
    let baseline = model.rmse(rows, targets);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..arity)
        .map(|feature| {
            let mut permuted_column: Vec<f64> = rows.iter().map(|r| r[feature]).collect();
            permuted_column.shuffle(&mut rng);
            let shuffled: Vec<Vec<f64>> = rows
                .iter()
                .zip(&permuted_column)
                .map(|(r, &v)| {
                    let mut r = r.clone();
                    r[feature] = v;
                    r
                })
                .collect();
            (model.rmse(&shuffled, targets) - baseline).max(0.0)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gbt::GbtParams;

    #[test]
    fn informative_feature_dominates() {
        // y depends only on feature 0; feature 1 is noise.
        let rows: Vec<Vec<f64>> = (0..200)
            .map(|i| vec![(i % 20) as f64, ((i * 7) % 13) as f64])
            .collect();
        let targets: Vec<f64> = rows.iter().map(|r| 3.0 * r[0]).collect();
        let model = Gbt::fit(&rows, &targets, &GbtParams::default());
        let imp = permutation_importance(&model, &rows, &targets, 0);
        assert!(imp[0] > 1.0, "importances {imp:?}");
        assert!(imp[0] > 10.0 * imp[1].max(0.01), "importances {imp:?}");
    }

    #[test]
    fn importance_is_deterministic() {
        let rows: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64, (i % 5) as f64]).collect();
        let targets: Vec<f64> = rows.iter().map(|r| r[0] + r[1]).collect();
        let model = Gbt::fit(&rows, &targets, &GbtParams::default());
        assert_eq!(
            permutation_importance(&model, &rows, &targets, 9),
            permutation_importance(&model, &rows, &targets, 9)
        );
    }

    #[test]
    fn importances_are_non_negative() {
        let rows: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64]).collect();
        let targets: Vec<f64> = rows.iter().map(|r| r[0]).collect();
        let model = Gbt::fit(&rows, &targets, &GbtParams::default());
        for v in permutation_importance(&model, &rows, &targets, 1) {
            assert!(v >= 0.0);
        }
    }
}
