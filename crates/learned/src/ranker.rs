//! Learned portfolio-variant ranking.
//!
//! The adaptive portfolio (telamalloc's `AdaptiveConfig`) seeds its
//! race with the variants a learned model predicts will settle the
//! instance fastest. This module holds the deployable side of that
//! model: one [`Gbt`] per portfolio variant, each regressing a *utility*
//! (see [`crate::selfplay::utility`]) from the instance's
//! [`InstanceStats::feature_vector`](tela_model::InstanceStats).
//!
//! Like the backtrack model (§6.1), the ranker is frozen at build time:
//! [`PortfolioRanker::embedded`] parses the text model committed at
//! `crates/learned/models/portfolio_ranker.txt`, which
//! `cargo run --release -p tela-learned --bin train_ranker` regenerates
//! from suite self-play.
//!
//! Format (wrapping the [`crate::persist`] GBT format):
//!
//! ```text
//! portfolio-ranker v1 <n_variants> <n_features>
//! variant <name> <gbt_line_count>
//! gbt v1 ...
//! ...
//! ```

use std::sync::Arc;

use tela_model::InstanceStats;
use telamalloc::{PortfolioVariant, VariantRanker};

use crate::gbt::Gbt;
use crate::persist::ModelParseError;

/// The committed production ranker model, embedded at compile time.
const EMBEDDED_MODEL: &str = include_str!("../models/portfolio_ranker.txt");

/// A per-variant utility model implementing telamalloc's
/// [`VariantRanker`].
///
/// Variants are matched *by name*: a variant whose name the model has
/// never seen scores the neutral midpoint of the known scores, so novel
/// variants are neither favored nor starved.
#[derive(Debug, Clone)]
pub struct PortfolioRanker {
    /// `(variant name, utility model)`, in training order.
    models: Vec<(String, Gbt)>,
}

impl PortfolioRanker {
    /// Builds a ranker from per-variant models.
    pub fn new(models: Vec<(String, Gbt)>) -> Self {
        PortfolioRanker { models }
    }

    /// The committed production model
    /// (`crates/learned/models/portfolio_ranker.txt`).
    ///
    /// # Panics
    ///
    /// Panics if the committed model file is malformed — a build-time
    /// artifact error, caught by this crate's tests.
    pub fn embedded() -> Self {
        Self::from_text(EMBEDDED_MODEL).expect("committed ranker model parses")
    }

    /// Number of per-variant models.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// True when the ranker holds no models (every score is neutral).
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }

    /// The variant names the ranker was trained on.
    pub fn variant_names(&self) -> impl Iterator<Item = &str> {
        self.models.iter().map(|(name, _)| name.as_str())
    }

    /// The predicted utility of `variant_name` on an instance with
    /// `features`, if the ranker knows the variant.
    pub fn predict(&self, variant_name: &str, features: &[f64]) -> Option<f64> {
        self.models
            .iter()
            .find(|(name, _)| name == variant_name)
            .map(|(_, model)| model.predict(features))
    }

    /// Wraps the ranker for [`telamalloc::AdaptiveConfig::ranker`].
    pub fn into_shared(self) -> Arc<dyn VariantRanker> {
        Arc::new(self)
    }

    /// Serializes to the wrapped text format.
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "portfolio-ranker v1 {} {}",
            self.models.len(),
            InstanceStats::FEATURE_COUNT
        );
        for (name, model) in &self.models {
            let body = model.to_text();
            let _ = writeln!(out, "variant {name} {}", body.lines().count());
            out.push_str(&body);
        }
        out
    }

    /// Parses the wrapped text format.
    ///
    /// # Errors
    ///
    /// Returns [`ModelParseError`] on malformed input, including a
    /// feature-count mismatch against the current
    /// [`InstanceStats::FEATURE_COUNT`] (a model trained against an
    /// older feature vector must be retrained, not silently misread).
    pub fn from_text(text: &str) -> Result<Self, ModelParseError> {
        let err = |line: usize, reason: &str| ModelParseError {
            line,
            reason: reason.to_string(),
        };
        let lines: Vec<&str> = text.lines().collect();
        let header = lines.first().ok_or_else(|| err(1, "empty ranker model"))?;
        let mut h = header.split_whitespace();
        if h.next() != Some("portfolio-ranker") || h.next() != Some("v1") {
            return Err(err(1, "expected `portfolio-ranker v1` header"));
        }
        let n_variants: usize = h
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| err(1, "bad variant count"))?;
        let n_features: usize = h
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| err(1, "bad feature count"))?;
        if n_features != InstanceStats::FEATURE_COUNT {
            return Err(err(
                1,
                &format!(
                    "model has {n_features} features but this build expects {}; retrain",
                    InstanceStats::FEATURE_COUNT
                ),
            ));
        }
        let mut models = Vec::with_capacity(n_variants);
        let mut at = 1usize; // next unread line index
        for _ in 0..n_variants {
            let vline = lines
                .get(at)
                .ok_or_else(|| err(at + 1, "missing `variant` header"))?;
            let mut v = vline.split_whitespace();
            if v.next() != Some("variant") {
                return Err(err(at + 1, "expected `variant <name> <lines>`"));
            }
            let name = v
                .next()
                .ok_or_else(|| err(at + 1, "missing variant name"))?
                .to_string();
            let body_lines: usize = v
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| err(at + 1, "bad variant line count"))?;
            let start = at + 1;
            let end = start + body_lines;
            if end > lines.len() {
                return Err(err(at + 1, "variant body exceeds file length"));
            }
            let body = lines[start..end].join("\n");
            let model = Gbt::from_text(&body).map_err(|e| ModelParseError {
                line: start + e.line,
                reason: format!("variant `{name}`: {}", e.reason),
            })?;
            models.push((name, model));
            at = end;
        }
        Ok(PortfolioRanker { models })
    }
}

impl VariantRanker for PortfolioRanker {
    fn scores(&self, features: &[f64], variants: &[PortfolioVariant]) -> Vec<f64> {
        let known: Vec<Option<f64>> = variants
            .iter()
            .map(|v| self.predict(&v.name, features))
            .collect();
        // Unknown variants get the midpoint of the known range: neutral
        // rather than best or worst, so a renamed or novel variant still
        // competes through the bandit's exploration bonus.
        let (lo, hi) = known
            .iter()
            .flatten()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &s| {
                (lo.min(s), hi.max(s))
            });
        let neutral = if lo.is_finite() { (lo + hi) / 2.0 } else { 0.0 };
        known.into_iter().map(|s| s.unwrap_or(neutral)).collect()
    }
}

/// Saves a ranker to disk in the wrapped text format.
///
/// # Errors
///
/// Returns any I/O error from writing `path`.
pub fn save_ranker(ranker: &PortfolioRanker, path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, ranker.to_text())
}

/// Loads a ranker from disk.
///
/// # Errors
///
/// Returns the I/O or parse failure as a boxed error.
pub fn load_ranker(path: &std::path::Path) -> Result<PortfolioRanker, Box<dyn std::error::Error>> {
    Ok(PortfolioRanker::from_text(&std::fs::read_to_string(path)?)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gbt::GbtParams;
    use telamalloc::TelaConfig;

    fn toy_model(slope: f64) -> Gbt {
        let rows: Vec<Vec<f64>> = (0..40)
            .map(|i| {
                let mut r = vec![0.0; InstanceStats::FEATURE_COUNT];
                r[0] = f64::from(i);
                r
            })
            .collect();
        let targets: Vec<f64> = rows.iter().map(|r| r[0] * slope).collect();
        Gbt::fit(
            &rows,
            &targets,
            &GbtParams {
                n_trees: 4,
                ..GbtParams::default()
            },
        )
    }

    #[test]
    fn round_trip_preserves_predictions() {
        let ranker = PortfolioRanker::new(vec![
            ("telamalloc".to_string(), toy_model(1.0)),
            ("max-size/fixed-step".to_string(), toy_model(-0.5)),
        ]);
        let restored = PortfolioRanker::from_text(&ranker.to_text()).expect("round trip");
        assert_eq!(restored.len(), 2);
        let mut x = vec![0.0; InstanceStats::FEATURE_COUNT];
        x[0] = 17.0;
        for name in ["telamalloc", "max-size/fixed-step"] {
            assert_eq!(ranker.predict(name, &x), restored.predict(name, &x));
        }
    }

    #[test]
    fn unknown_variants_score_the_neutral_midpoint() {
        let ranker = PortfolioRanker::new(vec![
            ("a".to_string(), toy_model(1.0)),
            ("b".to_string(), toy_model(3.0)),
        ]);
        let variants: Vec<PortfolioVariant> = ["a", "b", "mystery"]
            .iter()
            .map(|n| PortfolioVariant {
                name: n.to_string(),
                config: TelaConfig::default(),
            })
            .collect();
        let mut x = vec![0.0; InstanceStats::FEATURE_COUNT];
        x[0] = 10.0;
        let scores = ranker.scores(&x, &variants);
        assert_eq!(scores.len(), 3);
        let midpoint = (scores[0].min(scores[1]) + scores[0].max(scores[1])) / 2.0;
        assert!((scores[2] - midpoint).abs() < 1e-9);
    }

    #[test]
    fn feature_count_mismatch_is_rejected() {
        let ranker = PortfolioRanker::new(vec![("a".to_string(), toy_model(1.0))]);
        let text = ranker.to_text().replacen(
            &format!("v1 1 {}", InstanceStats::FEATURE_COUNT),
            "v1 1 3",
            1,
        );
        let e = PortfolioRanker::from_text(&text).unwrap_err();
        assert!(e.reason.contains("retrain"), "{e}");
    }

    #[test]
    fn malformed_header_rejected() {
        assert!(PortfolioRanker::from_text("nonsense").is_err());
        assert!(PortfolioRanker::from_text("").is_err());
    }

    #[test]
    fn truncated_body_rejected() {
        let ranker = PortfolioRanker::new(vec![("a".to_string(), toy_model(1.0))]);
        let text = ranker.to_text();
        let truncated: String = text.lines().take(3).collect::<Vec<_>>().join("\n");
        assert!(PortfolioRanker::from_text(&truncated).is_err());
    }

    #[test]
    fn embedded_model_parses_and_covers_default_variants() {
        let ranker = PortfolioRanker::embedded();
        assert!(!ranker.is_empty(), "committed model must hold models");
        let variants = telamalloc::default_variants(&TelaConfig::default());
        for v in &variants {
            assert!(
                ranker.variant_names().any(|n| n == v.name),
                "committed model is missing variant `{}` — rerun train_ranker",
                v.name
            );
        }
    }
}
