//! Training-data collection for imitation learning (paper §6.5,
//! Figure 11).
//!
//! A special search mode records every major backtrack. To diversify
//! the visited states, each backtrack follows either the regular
//! conflict-guided strategy or the oracle's minimum target, with 50%
//! probability. After the (sub-)problem is solved, the recorded events
//! are labelled: the *minimum* target from the exact-feasibility oracle
//! and the *best* target from the intersection with the final solution
//! (§6.3), combined through the §6.4 score formula.

use std::cell::RefCell;
use std::rc::Rc;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use tela_model::{Budget, Problem};
use telamalloc::{
    BacktrackChoice, BacktrackContext, BacktrackPolicy, ConflictGuidedPolicy, PlacedDecision,
    SearchObserver, TargetFeatures, TelaConfig,
};

use crate::oracle;

/// One labelled training example: the §6.4 feature vector of a candidate
/// backtrack target and its score.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Feature vector (see [`TargetFeatures::to_array`]).
    pub features: [f64; TargetFeatures::LEN],
    /// Score label in `[0, 10]`.
    pub score: f64,
}

/// Configuration for a collection run.
#[derive(Debug, Clone, Copy)]
pub struct CollectConfig {
    /// Step cap for each oracle feasibility probe.
    pub oracle_steps: u64,
    /// Wall-clock cap for each oracle feasibility probe. A fresh budget
    /// is built per probe (a stored `Budget` would carry one absolute
    /// deadline across the whole collection).
    pub oracle_timeout: Option<std::time::Duration>,
    /// Probability of following the oracle instead of the regular
    /// strategy at each major backtrack (the paper uses 0.5).
    pub oracle_probability: f64,
    /// At most this many backtrack events are recorded (and labelled)
    /// per run; labelling costs one oracle query per event.
    pub max_events_per_run: usize,
    /// Floor the oracle's deepest-solvable answer with the final
    /// solution's consistent prefix (which is certified solvable). Keeps
    /// labels sane when oracle probes run out of budget.
    pub floor_with_best: bool,
    /// During collection, ignore oracle answers that certify nothing
    /// (depth 0) instead of jumping to the root.
    pub skip_uncertified_oracle: bool,
}

impl Default for CollectConfig {
    fn default() -> Self {
        CollectConfig {
            oracle_steps: 30_000,
            oracle_timeout: Some(std::time::Duration::from_millis(200)),
            oracle_probability: 0.5,
            max_events_per_run: 150,
            floor_with_best: false,
            skip_uncertified_oracle: true,
        }
    }
}

impl CollectConfig {
    /// A fresh per-probe budget.
    fn oracle_budget(&self) -> Budget {
        let b = Budget::steps(self.oracle_steps);
        match self.oracle_timeout {
            Some(t) => b.with_timeout(t),
            None => b,
        }
    }
}

#[derive(Debug)]
struct Event {
    path: Vec<PlacedDecision>,
    targets: Vec<(usize, [f64; TargetFeatures::LEN])>,
}

#[derive(Debug)]
struct CollectState {
    config: CollectConfig,
    rng: StdRng,
    /// The (sub-)problem the pending events belong to.
    problem: Option<Problem>,
    pending: Vec<Event>,
    samples: Vec<Sample>,
}

impl CollectState {
    fn finalize(&mut self, final_path: &[PlacedDecision]) {
        let Some(problem) = self.problem.take() else {
            self.pending.clear();
            return;
        };
        for event in self.pending.drain(..) {
            let best = oracle::best_prefix(&event.path, final_path);
            let mut deepest = oracle::deepest_solvable_prefix(
                &problem,
                &event.path,
                &self.config.oracle_budget(),
            );
            if self.config.floor_with_best {
                // The prefix consistent with the final solution is itself
                // a certified solvable depth, so it floors the oracle's
                // answer (whose budget-limited probes are conservative).
                deepest = deepest.max(best);
            }
            let minimum = event
                .targets
                .iter()
                .map(|&(level, _)| level)
                .filter(|&l| l <= deepest)
                .max()
                .unwrap_or(deepest);
            for (level, features) in event.targets {
                self.samples.push(Sample {
                    features,
                    score: oracle::score(level, best, minimum),
                });
            }
        }
    }
}

struct CollectorPolicy {
    state: Rc<RefCell<CollectState>>,
    regular: ConflictGuidedPolicy,
}

impl BacktrackPolicy for CollectorPolicy {
    fn choose(&mut self, ctx: &BacktrackContext<'_>) -> BacktrackChoice {
        let mut state = self.state.borrow_mut();
        if state.problem.as_ref() != Some(ctx.problem) {
            // A new (sub-)problem started; orphaned events have no final
            // solution to label against.
            state.pending.clear();
            state.problem = Some(ctx.problem.clone());
        }
        if state.pending.len() < state.config.max_events_per_run {
            state.pending.push(Event {
                path: ctx.path.to_vec(),
                targets: ctx
                    .targets
                    .iter()
                    .map(|t| (t.level, t.features.to_array()))
                    .collect(),
            });
        }
        let use_oracle = state.rng.random_range(0.0..1.0) < state.config.oracle_probability;
        if use_oracle {
            let deepest = oracle::deepest_solvable_prefix(
                ctx.problem,
                ctx.path,
                &state.config.oracle_budget(),
            );
            // A zero answer usually means the budget-limited probes could
            // not certify anything (the whole instance is hard); treat it
            // as "unknown" and keep the regular strategy rather than
            // jumping to the root.
            if deepest > 0 || !state.config.skip_uncertified_oracle {
                if let Some(level) = oracle::minimum_target(ctx.targets, deepest) {
                    return BacktrackChoice::Target(level);
                }
            }
        }
        self.regular.choose(ctx)
    }
}

struct CollectorObserver {
    state: Rc<RefCell<CollectState>>,
}

impl SearchObserver for CollectorObserver {
    fn on_solved(&mut self, path: &[PlacedDecision]) {
        self.state.borrow_mut().finalize(path);
    }
}

/// Runs one data-collection search over `problem` and returns the
/// labelled samples. Deterministic in `seed`.
///
/// Problems that produce no major backtracks (or are not solved) yield
/// no samples — exactly the common case the paper notes: most inputs
/// never need the ML path.
///
/// # Example
///
/// ```
/// use tela_learned::collect::{collect_samples, CollectConfig};
/// use tela_model::{examples, Budget};
/// use telamalloc::TelaConfig;
///
/// let samples = collect_samples(
///     &examples::figure1(),
///     &Budget::steps(100_000),
///     &TelaConfig::default(),
///     &CollectConfig::default(),
///     7,
/// );
/// // figure1 may or may not backtrack under the default config; either
/// // way every sample is well-formed.
/// for s in &samples {
///     assert!((0.0..=10.0).contains(&s.score));
/// }
/// ```
pub fn collect_samples(
    problem: &Problem,
    budget: &Budget,
    tela: &TelaConfig,
    config: &CollectConfig,
    seed: u64,
) -> Vec<Sample> {
    let state = Rc::new(RefCell::new(CollectState {
        config: *config,
        rng: StdRng::seed_from_u64(seed),
        problem: None,
        pending: Vec::new(),
        samples: Vec::new(),
    }));
    let mut policy = CollectorPolicy {
        state: Rc::clone(&state),
        regular: ConflictGuidedPolicy,
    };
    let mut observer = CollectorObserver {
        state: Rc::clone(&state),
    };
    let _ = telamalloc::solve_with(problem, budget, tela, &mut policy, &mut observer);
    drop(policy);
    drop(observer);
    Rc::try_unwrap(state)
        .expect("policy and observer dropped")
        .into_inner()
        .samples
}

/// Collects samples over many problems, varying the memory capacity the
/// way the paper does for extra variation (§6.5): each problem is run at
/// every given slack percent over its contention bound.
pub fn collect_dataset(
    problems: &[(String, Problem)],
    slack_percents: &[u32],
    budget: &Budget,
    tela: &TelaConfig,
    config: &CollectConfig,
    seed: u64,
) -> Vec<Sample> {
    let mut samples = Vec::new();
    for (i, (_, problem)) in problems.iter().enumerate() {
        for (j, &slack) in slack_percents.iter().enumerate() {
            let capacity = problem
                .max_contention()
                .saturating_mul(u64::from(100 + slack))
                .div_ceil(100)
                .max(1);
            let Ok(resized) = problem.with_capacity(capacity) else {
                continue;
            };
            let run_seed = seed.wrapping_add((i as u64) << 16).wrapping_add(j as u64);
            samples.extend(collect_samples(&resized, budget, tela, config, run_seed));
        }
    }
    samples
}

#[cfg(test)]
mod tests {
    use super::*;
    use tela_model::Buffer;

    /// A tight instance that forces the default search to backtrack: a
    /// perfect packing with interlocking blocks.
    fn backtracky_problem() -> Problem {
        let mut buffers = Vec::new();
        // Interleaved long/short blocks at an exact-fit capacity.
        for i in 0..6u32 {
            buffers.push(Buffer::new(i, i + 6, 3));
            buffers.push(Buffer::new(i, i + 2, 2));
        }
        let p = Problem::new(buffers, u64::MAX).unwrap();
        let c = p.max_contention();
        p.with_capacity(c).unwrap()
    }

    #[test]
    fn samples_have_bounded_scores() {
        let p = backtracky_problem();
        let samples = collect_samples(
            &p,
            &Budget::steps(50_000),
            &TelaConfig::default(),
            &CollectConfig::default(),
            1,
        );
        for s in &samples {
            assert!((0.0..=10.0).contains(&s.score), "score {}", s.score);
            assert!(s.features.iter().all(|f| f.is_finite()));
        }
    }

    #[test]
    fn collection_is_deterministic() {
        let p = backtracky_problem();
        let run = |seed| {
            collect_samples(
                &p,
                &Budget::steps(50_000),
                &TelaConfig::default(),
                &CollectConfig::default(),
                seed,
            )
        };
        assert_eq!(run(3), run(3));
    }

    #[test]
    fn easy_problems_yield_no_samples() {
        let p = Problem::builder(100)
            .buffer(Buffer::new(0, 2, 10))
            .build()
            .unwrap();
        let samples = collect_samples(
            &p,
            &Budget::steps(10_000),
            &TelaConfig::default(),
            &CollectConfig::default(),
            0,
        );
        assert!(samples.is_empty());
    }

    #[test]
    fn dataset_varies_memory() {
        let p = backtracky_problem();
        let problems = vec![("t".to_string(), p)];
        let samples = collect_dataset(
            &problems,
            &[0, 5, 10],
            &Budget::steps(50_000),
            &TelaConfig::default(),
            &CollectConfig::default(),
            0,
        );
        // At minimum the 0%-slack run is the backtracky one; dataset
        // collection must at least not crash and keep labels bounded.
        for s in &samples {
            assert!((0.0..=10.0).contains(&s.score));
        }
    }
}
