//! A shallow decision-tree step gate (the paper's §8.3 forward-looking
//! extension).
//!
//! "We could have a single, shallow decision tree that executes at every
//! step of the search and identifies whether to run a more expensive
//! model that considers different blocks, or run a more expensive
//! heuristic. Such a decision tree may execute in tens of CPU cycles."
//!
//! [`GatedPolicy`] wraps any backtrack policy with exactly that: a
//! shallow regression tree scores each decision point from three cheap
//! features (depth fraction, unplaced fraction, log of subtree
//! backtracks); above a threshold, the engine generates the expensive
//! *full* candidate queue at that point instead of the capped strategy
//! picks. The tree is trained from the same imitation-learning samples
//! as the backtracking model: decision points that attract backtracks
//! are the ones worth widening.

use telamalloc::{BacktrackChoice, BacktrackContext, BacktrackPolicy, StepContext};

use crate::collect::Sample;
use crate::gbt::RegressionTree;

/// Number of features the gate tree consumes.
pub const GATE_FEATURES: usize = 3;

fn gate_features(ctx: &StepContext) -> [f64; GATE_FEATURES] {
    let total = ctx.total_buffers.max(1) as f64;
    [
        ctx.level as f64 / total,
        ctx.unplaced as f64 / total,
        (ctx.subtree_backtracks as f64 + 1.0).ln(),
    ]
}

/// A [`BacktrackPolicy`] wrapper adding the §8.3 step gate.
#[derive(Debug, Clone)]
pub struct GatedPolicy<P> {
    inner: P,
    tree: RegressionTree,
    threshold: f64,
    consulted: u64,
    expanded: u64,
}

impl<P: BacktrackPolicy> GatedPolicy<P> {
    /// Default firing threshold: the tree regresses the probability that
    /// a point of this shape attracts backtracks.
    pub const DEFAULT_THRESHOLD: f64 = 0.5;

    /// Trains the gate tree from imitation-learning samples: the label
    /// is whether the sampled target had already attracted backtracks
    /// (`backtracks_to_here > 0` — feature 5 of the §6.4 vector).
    ///
    /// Falls back to a never-firing constant tree when `samples` is
    /// empty.
    pub fn train(samples: &[Sample], inner: P) -> Self {
        let (rows, labels): (Vec<Vec<f64>>, Vec<f64>) = if samples.is_empty() {
            (vec![vec![0.0; GATE_FEATURES]], vec![0.0])
        } else {
            samples
                .iter()
                .map(|s| {
                    let f = &s.features;
                    // decision_level is raw; normalize against itself +
                    // unplaced proxy is unavailable in samples, so use
                    // the lifetime fraction as the second feature — the
                    // gate only needs a coarse signal.
                    let row = vec![
                        f[3] / (f[3] + 16.0), // depth, squashed
                        f[1],                 // lifetime fraction
                        (f[6] + 1.0).ln(),    // subtree backtracks
                    ];
                    let label = if f[5] > 0.0 { 1.0 } else { 0.0 };
                    (row, label)
                })
                .unzip()
        };
        let tree = RegressionTree::fit(&rows, &labels, 3, 4);
        GatedPolicy {
            inner,
            tree,
            threshold: Self::DEFAULT_THRESHOLD,
            consulted: 0,
            expanded: 0,
        }
    }

    /// Overrides the firing threshold.
    #[must_use]
    pub fn with_threshold(mut self, threshold: f64) -> Self {
        self.threshold = threshold;
        self
    }

    /// `(consulted, expanded)` counters for reporting.
    pub fn stats(&self) -> (u64, u64) {
        (self.consulted, self.expanded)
    }

    /// The wrapped policy.
    pub fn inner(&self) -> &P {
        &self.inner
    }
}

impl<P: BacktrackPolicy> BacktrackPolicy for GatedPolicy<P> {
    fn choose(&mut self, ctx: &BacktrackContext<'_>) -> BacktrackChoice {
        self.inner.choose(ctx)
    }

    fn expand_candidates(&mut self, ctx: &StepContext) -> bool {
        self.consulted += 1;
        let f = gate_features(ctx);
        // Map StepContext features onto the trained space: depth
        // squashed, unplaced fraction as the coarse second signal,
        // subtree backtracks logged.
        let row = [(ctx.level as f64) / (ctx.level as f64 + 16.0), f[1], f[2]];
        let fire = self.tree.predict(&row) >= self.threshold;
        if fire {
            self.expanded += 1;
        }
        fire
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use telamalloc::{ConflictGuidedPolicy, NullObserver, TelaConfig};

    fn sample(level: f64, backtracks_to_here: f64, subtree: f64) -> Sample {
        Sample {
            features: [
                0.3,
                0.4,
                0.5,
                level,
                1.0,
                backtracks_to_here,
                subtree,
                0.0,
                5.0,
            ],
            score: 5.0,
        }
    }

    #[test]
    fn empty_training_never_fires() {
        let mut gate = GatedPolicy::train(&[], ConflictGuidedPolicy);
        let ctx = StepContext {
            level: 10,
            unplaced: 5,
            total_buffers: 20,
            subtree_backtracks: 100,
            total_backtracks: 100,
        };
        assert!(!gate.expand_candidates(&ctx));
        assert_eq!(gate.stats(), (1, 0));
    }

    #[test]
    fn gate_learns_backtrack_prone_shapes() {
        // Deep points with large subtrees attract backtracks; shallow
        // quiet points do not.
        let mut samples = Vec::new();
        for i in 0..60 {
            samples.push(sample(30.0 + (i % 10) as f64, 3.0, 40.0));
            samples.push(sample((i % 5) as f64, 0.0, 0.0));
        }
        let mut gate = GatedPolicy::train(&samples, ConflictGuidedPolicy);
        let hot = StepContext {
            level: 35,
            unplaced: 10,
            total_buffers: 50,
            subtree_backtracks: 40,
            total_backtracks: 80,
        };
        let cold = StepContext {
            level: 2,
            unplaced: 48,
            total_buffers: 50,
            subtree_backtracks: 0,
            total_backtracks: 0,
        };
        assert!(gate.expand_candidates(&hot));
        assert!(!gate.expand_candidates(&cold));
    }

    #[test]
    fn gated_policy_runs_end_to_end() {
        let samples: Vec<Sample> = (0..40).map(|i| sample(i as f64, 1.0, 10.0)).collect();
        let mut gate = GatedPolicy::train(&samples, ConflictGuidedPolicy).with_threshold(0.9);
        let p = tela_model::examples::figure1();
        let mut obs = NullObserver;
        let r = telamalloc::solve_with(
            &p,
            &tela_model::Budget::steps(100_000),
            &TelaConfig::default(),
            &mut gate,
            &mut obs,
        );
        assert!(r.outcome.is_solved());
        assert!(gate.stats().0 > 0);
    }
}
