//! Criterion benches behind Table 1: per-step cost of the TelaMalloc
//! machinery on non-overlapping and fully-overlapping inputs.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tela_model::Budget;
use telamalloc::{solve, TelaConfig};

fn bench_micro(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);

    for n in [100u32, 1_000] {
        let problem = tela_workloads::micro::non_overlapping(n);
        group.bench_function(format!("non-overlapping-{n}"), |b| {
            b.iter(|| {
                let r = solve(
                    black_box(&problem),
                    &Budget::unlimited(),
                    &TelaConfig::default(),
                );
                assert!(r.outcome.is_solved());
            })
        });
    }
    for n in [50u32, 100, 200] {
        let problem = tela_workloads::micro::full_overlap(n);
        group.bench_function(format!("full-overlap-{n}"), |b| {
            b.iter(|| {
                let r = solve(
                    black_box(&problem),
                    &Budget::unlimited(),
                    &TelaConfig::default(),
                );
                assert!(r.outcome.is_solved());
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_micro);
criterion_main!(benches);
