//! Criterion microbenches for the zero-allocation CP core: the
//! propagate, sweep, and trail primitives the PR 7 rework flattened.
//!
//! These isolate the solver ops from the search heuristics — `micro.rs`
//! benches whole solves; here one iteration is a raw op sequence on a
//! prepared `CpSolver`, so layout regressions in the hot loops show up
//! undiluted. The `trend` binary times the same op sequences for the
//! tolerance-gated `BENCH_pr7.json` snapshot.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tela_cp::CpSolver;
use tela_model::BufferId;

fn bench_cp_core(c: &mut Criterion) {
    let mut group = c.benchmark_group("cp_core");
    group.sample_size(30);

    // Propagate: fix every buffer of a full-overlap clique at its final
    // address and roll back — each assignment re-propagates bounds
    // through all decided pairs of the clique.
    let problem = tela_workloads::micro::full_overlap(64);
    // Stacked-in-order addresses: the clique is an exact fit, so the
    // prefix sums of the sizes are the (unique up to permutation)
    // consistent placement.
    let addrs: Vec<u64> = problem
        .buffers()
        .iter()
        .scan(0u64, |acc, b| {
            let a = *acc;
            *acc += b.size();
            Some(a)
        })
        .collect();
    let mut solver = CpSolver::new(&problem).expect("exact-fit clique builds");
    group.bench_function("propagate/assign-chain-64", |b| {
        b.iter(|| {
            for (i, &a) in addrs.iter().enumerate() {
                solver
                    .assign_deferred(BufferId::new(i), black_box(a))
                    .expect("exact-fit chain is consistent");
            }
            solver.pop_to_level(0);
            solver.propagations()
        })
    });

    // Sweep: lowest-fit queries over a half-fixed clique — the bitset
    // occupancy timeline path of `min_feasible_pos`.
    let mut solver = CpSolver::new(&problem).expect("clique builds");
    for (i, &a) in addrs.iter().enumerate().take(32) {
        solver
            .assign_deferred(BufferId::new(i), a)
            .expect("first half places");
    }
    group.bench_function("sweep/min-feasible-pos-64", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for i in 32..64usize {
                acc += solver
                    .min_feasible_pos(black_box(BufferId::new(i)))
                    .expect("headroom remains");
            }
            acc
        })
    });

    // Trail: one assignment's push/undo churn, isolated by popping
    // immediately — trail entries, level marks, and stamp dedup.
    let mut solver = CpSolver::new(&problem).expect("clique builds");
    group.bench_function("trail/assign-pop-64", |b| {
        b.iter(|| {
            for (i, &a) in addrs.iter().enumerate() {
                solver
                    .assign_deferred(BufferId::new(i), black_box(a))
                    .expect("consistent");
                solver.pop_level();
            }
            solver.level()
        })
    });

    group.finish();
}

criterion_group!(benches, bench_cp_core);
criterion_main!(benches);
