//! Criterion benches behind Figure 16: gradient-boosted-forest inference
//! latency per candidate, batched as the deployed policy batches its
//! backtrack targets.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use tela_learned::{Gbt, GbtParams};

fn model() -> Gbt {
    let rows: Vec<Vec<f64>> = (0..2_000)
        .map(|i| (0..9).map(|f| ((i * (f + 3)) % 97) as f64 / 97.0).collect())
        .collect();
    let targets: Vec<f64> = rows
        .iter()
        .map(|r| 10.0 - 5.0 * r[3] + 2.0 * r[2])
        .collect();
    Gbt::fit(&rows, &targets, &GbtParams::default())
}

fn bench_gbt(c: &mut Criterion) {
    let model = model();
    let mut group = c.benchmark_group("gbt-inference");
    for batch in [1usize, 8, 32, 128] {
        let rows: Vec<Vec<f64>> = (0..batch)
            .map(|i| {
                (0..9)
                    .map(|f| ((i * 31 + f * 7) % 89) as f64 / 89.0)
                    .collect()
            })
            .collect();
        group.throughput(Throughput::Elements(batch as u64));
        group.bench_function(format!("batch-{batch}"), |b| {
            b.iter(|| black_box(model.predict_batch(black_box(&rows))))
        });
    }
    group.finish();

    let mut training = c.benchmark_group("gbt-training");
    training.sample_size(10);
    let rows: Vec<Vec<f64>> = (0..500)
        .map(|i| (0..9).map(|f| ((i * (f + 3)) % 97) as f64 / 97.0).collect())
        .collect();
    let targets: Vec<f64> = rows.iter().map(|r| r[0] + r[1]).collect();
    training.bench_function("fit-500x9", |b| {
        b.iter(|| {
            black_box(Gbt::fit(
                black_box(&rows),
                black_box(&targets),
                &GbtParams {
                    n_trees: 20,
                    ..GbtParams::default()
                },
            ))
        })
    });
    training.finish();
}

criterion_group!(benches, bench_gbt);
criterion_main!(benches);
