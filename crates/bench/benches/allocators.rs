//! Criterion benches behind Figures 12/13: allocation time of the
//! heuristic, TelaMalloc, and the solver baselines on representative
//! model workloads.
//!
//! The ILP/CP baselines are benched only on the models they solve
//! quickly; the experiment binaries (`fig12`, `fig13`) cover the full
//! set with timeouts.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tela_model::Budget;
use tela_workloads::{problem_with_slack, ModelKind};
use telamalloc::{solve, TelaConfig};

fn bench_allocators(c: &mut Criterion) {
    let mut group = c.benchmark_group("allocators");
    group.sample_size(10);

    // One easy and one hard (for the heuristic) model.
    for kind in [
        ModelKind::OpenPose,
        ModelKind::ConvNet2d,
        ModelKind::Segmentation,
    ] {
        let problem = problem_with_slack(kind.generate(0), 10);
        group.bench_function(format!("greedy/{}", kind.name()), |b| {
            b.iter(|| black_box(tela_heuristics::greedy::solve(black_box(&problem))))
        });
        group.bench_function(format!("telamalloc/{}", kind.name()), |b| {
            b.iter(|| {
                let r = solve(
                    black_box(&problem),
                    &Budget::steps(500_000),
                    &TelaConfig::default(),
                );
                assert!(r.outcome.is_solved());
            })
        });
    }

    // Solver baselines on a model they can finish (Figure 13's easy end).
    let easy = problem_with_slack(ModelKind::ConvNet2d.generate(0), 10);
    group.bench_function("ilp/ConvNet2D", |b| {
        b.iter(|| {
            let (outcome, _) = tela_ilp::solve_ilp(black_box(&easy), &Budget::steps(500_000));
            assert!(outcome.is_solved());
        })
    });
    group.bench_function("cp-only/ConvNet2D", |b| {
        b.iter(|| {
            let (outcome, _) =
                tela_cp::search::solve_cp_only(black_box(&easy), &Budget::steps(500_000));
            assert!(outcome.is_solved());
        })
    });
    group.finish();
}

criterion_group!(benches, bench_allocators);
criterion_main!(benches);
