//! Shared harness utilities for the experiment binaries.
//!
//! Every table and figure of the paper's evaluation has a binary in
//! `src/bin/` that regenerates it (see `DESIGN.md` for the index); the
//! helpers here provide the common pieces: the model problem set,
//! repeat-timing, and plain-text table/series output.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::time::{Duration, Instant};

use tela_model::{Budget, Problem, SolveOutcome};
use tela_workloads::{problem_with_slack, ModelKind};

/// The paper's evaluation slack: each model gets 110% of its minimum
/// required memory (§7; we use the contention lower bound as the
/// minimum).
pub const PAPER_SLACK_PERCENT: u32 = 10;

/// Default per-run wall-clock limit for solver-based allocators, standing
/// in for "tens of seconds or even minutes" of ILP time at benchmark
/// scale.
pub const SOLVER_TIMEOUT: Duration = Duration::from_secs(10);

/// The eleven Pixel 6 model workloads at the paper's 110% memory slack,
/// in Table 2 order.
pub fn model_problems(seed: u64) -> Vec<(ModelKind, Problem)> {
    ModelKind::PIXEL6
        .into_iter()
        .map(|kind| {
            (
                kind,
                problem_with_slack(kind.generate(seed), PAPER_SLACK_PERCENT),
            )
        })
        .collect()
}

/// A fresh solver budget: step-capped and wall-clock-capped. Budgets
/// hold absolute deadlines, so one must be built per run.
pub fn solver_budget() -> Budget {
    Budget::steps(2_000_000).with_timeout(SOLVER_TIMEOUT)
}

/// Times `f` over `runs` runs and reports the median, which the paper's
/// methodology approximates by taking the best runs of many (§7.2).
pub fn median_time<R>(runs: usize, mut f: impl FnMut() -> R) -> (Duration, R) {
    assert!(runs > 0);
    let mut times = Vec::with_capacity(runs);
    let mut last = None;
    for _ in 0..runs {
        let t0 = Instant::now();
        let r = f();
        times.push(t0.elapsed());
        last = Some(r);
    }
    times.sort_unstable();
    (times[times.len() / 2], last.expect("runs > 0"))
}

/// Nearest-rank percentile over an **ascending-sorted** slice: the
/// element at rank `len · p / 100`, clamped to the last element (so
/// `percentile(&v, 100)` is the maximum). This is the sample-based
/// counterpart of [`tela_trace::Histogram::quantile`]: exact on the
/// recorded samples, where the histogram trades ≤2× bucket error for
/// O(1) space. Panics on an empty slice.
pub fn percentile<T: Copy>(sorted: &[T], p: usize) -> T {
    assert!(!sorted.is_empty(), "percentile of an empty slice");
    sorted[(sorted.len() * p / 100).min(sorted.len() - 1)]
}

/// Short status string for an outcome.
pub fn outcome_tag(outcome: &SolveOutcome) -> &'static str {
    match outcome {
        SolveOutcome::Solved(_) => "solved",
        SolveOutcome::Infeasible => "infeasible",
        SolveOutcome::GaveUp => "gave-up",
        SolveOutcome::BudgetExceeded => "timeout",
        SolveOutcome::BestEffort(_) => "best-effort",
    }
}

/// Formats a duration in engineering style (`12.3ms`, `4.56s`).
pub fn fmt_duration(d: Duration) -> String {
    if d >= Duration::from_secs(1) {
        format!("{:.2}s", d.as_secs_f64())
    } else if d >= Duration::from_millis(1) {
        format!("{:.2}ms", d.as_secs_f64() * 1e3)
    } else {
        format!("{:.1}us", d.as_secs_f64() * 1e6)
    }
}

/// A minimal fixed-width table printer for experiment output.
#[derive(Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row arity mismatch");
        self.rows.push(row);
        self
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for (cell, w) in cells.iter().zip(widths) {
                line.push_str(&format!("{cell:<w$}  "));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// How a trend metric is gated against a committed snapshot.
///
/// Shared by the `trend` and `throughput` binaries: each emits a flat
/// `(key, value, gate)` metric list, renders it with
/// [`render_trend_json`], and gates a fresh run against the committed
/// artifact with [`compare_trend`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Gate {
    /// Lower is better; fails beyond `+tolerance%` of the snapshot.
    Band,
    /// Higher is better; fails on any drop below the snapshot. For
    /// deterministic counts (solved instances, schema invariants).
    Floor,
    /// Higher is better but noisy (rates); fails below
    /// `committed / (1 + tolerance%)` of the snapshot.
    RateBand,
}

/// Renders a flat, schema-stable JSON artifact: fixed preamble
/// (`bench`, `schema_version`, then `header` integers in order), then
/// one line per metric. Hand-rolled because the workspace is offline
/// (no serde).
pub fn render_trend_json(
    bench: &str,
    header: &[(&str, u64)],
    metrics: &[(&str, f64, Gate)],
) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!(
        "  \"bench\": \"{bench}\",\n  \"schema_version\": 1,\n"
    ));
    for (key, value) in header {
        s.push_str(&format!("  \"{key}\": {value},\n"));
    }
    for (i, (key, value, _)) in metrics.iter().enumerate() {
        let sep = if i + 1 == metrics.len() { "" } else { "," };
        if value.fract() == 0.0 {
            s.push_str(&format!("  \"{key}\": {value:.0}{sep}\n"));
        } else {
            s.push_str(&format!("  \"{key}\": {value:.3}{sep}\n"));
        }
    }
    s.push_str("}\n");
    s
}

/// Pulls `"key": <number>` out of a flat snapshot (schema-stable keys
/// are unique, so plain scanning stands in for a JSON parser).
pub fn trend_json_number(snapshot: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = snapshot.find(&needle)? + needle.len();
    let rest = snapshot[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Gates fresh `metrics` against a committed `snapshot`, returning one
/// failure message per breached gate. Metrics the snapshot does not
/// know yet (new in the current PR) are reported and skipped, so a
/// fresh artifact can gate against the previous PR's snapshot.
///
/// `slack` is an *absolute* noise floor layered under the relative
/// `tolerance`: a Band gate fails only above
/// `max(committed × (1 + tol%), committed + slack)`, a RateBand only
/// below `min(committed / (1 + tol%), committed − slack)`. Tiny
/// committed values (sub-millisecond latencies) otherwise turn the
/// relative band into a coin flip — scheduler jitter alone exceeds
/// any percentage of them. Floors stay exact: they gate counts and
/// invariants, not measurements.
pub fn compare_trend(
    metrics: &[(&str, f64, Gate)],
    snapshot: &str,
    tolerance: f64,
    slack: f64,
) -> Vec<String> {
    let mut failures = Vec::new();
    for &(key, value, gate) in metrics {
        let Some(committed) = trend_json_number(snapshot, key) else {
            println!("# gate skipped: snapshot has no \"{key}\" (new metric)");
            continue;
        };
        match gate {
            Gate::Floor => {
                if value < committed {
                    failures.push(format!("{key}: {value} fell below committed {committed}"));
                }
            }
            Gate::Band => {
                let limit = (committed * (1.0 + tolerance / 100.0)).max(committed + slack);
                if value > limit {
                    failures.push(format!(
                        "{key}: {value:.1} exceeds committed {committed:.1} by more than {tolerance}% (limit {limit:.1})"
                    ));
                }
            }
            Gate::RateBand => {
                let limit = (committed / (1.0 + tolerance / 100.0)).min(committed - slack);
                if value < limit {
                    failures.push(format!(
                        "{key}: {value:.1} fell below committed {committed:.1} by more than {tolerance}% (limit {limit:.1})"
                    ));
                }
            }
        }
    }
    failures
}

/// Parses `--flag value` style float arguments from `std::env::args`.
pub fn arg_f64(flag: &str, default: f64) -> f64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Parses `--flag value` style integer arguments from `std::env::args`.
pub fn arg_usize(flag: &str, default: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Parses `--flag value` style string arguments from `std::env::args`.
pub fn arg_string(flag: &str, default: &str) -> String {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| default.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_problem_set_is_complete() {
        let set = model_problems(0);
        assert_eq!(set.len(), 11);
        for (kind, p) in &set {
            assert!(p.len() > 100, "{}", kind.name());
        }
    }

    #[test]
    fn median_time_returns_result() {
        let (d, v) = median_time(3, || 42);
        assert_eq!(v, 42);
        assert!(d < Duration::from_secs(1));
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(["name", "value"]);
        t.row(["a", "1"]).row(["longer", "2"]);
        let s = t.render();
        assert!(s.contains("name"));
        assert!(s.lines().count() == 4);
    }

    #[test]
    fn percentile_is_nearest_rank_clamped() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 0), 1);
        assert_eq!(percentile(&v, 50), 51);
        assert_eq!(percentile(&v, 99), 100);
        assert_eq!(percentile(&v, 100), 100);
        // Small slices clamp to the last element instead of indexing out.
        let two = [Duration::from_millis(1), Duration::from_millis(9)];
        assert_eq!(percentile(&two, 99), Duration::from_millis(9));
        assert_eq!(percentile(&[7u64], 50), 7);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_rejects_empty_input() {
        percentile::<u64>(&[], 50);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_micros(500)), "500.0us");
        assert_eq!(fmt_duration(Duration::from_millis(12)), "12.00ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00s");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn row_arity_checked() {
        let mut t = TextTable::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn trend_json_round_trips_numbers() {
        let metrics: Vec<(&str, f64, Gate)> = vec![
            ("count", 14.0, Gate::Floor),
            ("wall_ms", 12.345, Gate::Band),
            ("rps", 800.5, Gate::RateBand),
        ];
        let json = render_trend_json("test", &[("threads", 4)], &metrics);
        assert!(json.contains("\"bench\": \"test\""));
        assert!(json.contains("\"schema_version\": 1"));
        assert_eq!(trend_json_number(&json, "threads"), Some(4.0));
        assert_eq!(trend_json_number(&json, "count"), Some(14.0));
        assert_eq!(trend_json_number(&json, "wall_ms"), Some(12.345));
        assert_eq!(trend_json_number(&json, "rps"), Some(800.5));
        assert_eq!(trend_json_number(&json, "missing"), None);
    }

    #[test]
    fn compare_trend_applies_each_gate_kind() {
        let snapshot = render_trend_json(
            "t",
            &[],
            &[
                ("count", 10.0, Gate::Floor),
                ("ms", 100.0, Gate::Band),
                ("rps", 100.0, Gate::RateBand),
            ],
        );
        // All within tolerance.
        let ok = compare_trend(
            &[
                ("count", 10.0, Gate::Floor),
                ("ms", 140.0, Gate::Band),
                ("rps", 80.0, Gate::RateBand),
            ],
            &snapshot,
            50.0,
            0.0,
        );
        assert!(ok.is_empty(), "{ok:?}");
        // Floor: any drop fails. Band: +tol% ceiling. RateBand: /(1+tol) floor.
        let bad = compare_trend(
            &[
                ("count", 9.0, Gate::Floor),
                ("ms", 151.0, Gate::Band),
                ("rps", 66.0, Gate::RateBand),
            ],
            &snapshot,
            50.0,
            0.0,
        );
        assert_eq!(bad.len(), 3, "{bad:?}");
        // Unknown metrics are skipped, not failed.
        let skipped = compare_trend(&[("new_metric", 1.0, Gate::Floor)], &snapshot, 50.0, 0.0);
        assert!(skipped.is_empty());
    }

    #[test]
    fn compare_trend_slack_absorbs_sub_unit_noise() {
        let snapshot = render_trend_json(
            "t",
            &[],
            &[("tiny_ms", 0.4, Gate::Band), ("count", 10.0, Gate::Floor)],
        );
        // 0.4 → 0.9 is +125%, but within the 1.0 absolute slack.
        let noisy = &[("tiny_ms", 0.9, Gate::Band), ("count", 10.0, Gate::Floor)];
        assert!(compare_trend(noisy, &snapshot, 50.0, 1.0).is_empty());
        assert_eq!(compare_trend(noisy, &snapshot, 50.0, 0.0).len(), 1);
        // Slack never loosens Floors.
        let dropped = &[("count", 9.0, Gate::Floor)];
        assert_eq!(compare_trend(dropped, &snapshot, 50.0, 1.0).len(), 1);
    }
}
