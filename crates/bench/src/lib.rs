//! Shared harness utilities for the experiment binaries.
//!
//! Every table and figure of the paper's evaluation has a binary in
//! `src/bin/` that regenerates it (see `DESIGN.md` for the index); the
//! helpers here provide the common pieces: the model problem set,
//! repeat-timing, and plain-text table/series output.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::time::{Duration, Instant};

use tela_model::{Budget, Problem, SolveOutcome};
use tela_workloads::{problem_with_slack, ModelKind};

/// The paper's evaluation slack: each model gets 110% of its minimum
/// required memory (§7; we use the contention lower bound as the
/// minimum).
pub const PAPER_SLACK_PERCENT: u32 = 10;

/// Default per-run wall-clock limit for solver-based allocators, standing
/// in for "tens of seconds or even minutes" of ILP time at benchmark
/// scale.
pub const SOLVER_TIMEOUT: Duration = Duration::from_secs(10);

/// The eleven Pixel 6 model workloads at the paper's 110% memory slack,
/// in Table 2 order.
pub fn model_problems(seed: u64) -> Vec<(ModelKind, Problem)> {
    ModelKind::PIXEL6
        .into_iter()
        .map(|kind| {
            (
                kind,
                problem_with_slack(kind.generate(seed), PAPER_SLACK_PERCENT),
            )
        })
        .collect()
}

/// A fresh solver budget: step-capped and wall-clock-capped. Budgets
/// hold absolute deadlines, so one must be built per run.
pub fn solver_budget() -> Budget {
    Budget::steps(2_000_000).with_timeout(SOLVER_TIMEOUT)
}

/// Times `f` over `runs` runs and reports the median, which the paper's
/// methodology approximates by taking the best runs of many (§7.2).
pub fn median_time<R>(runs: usize, mut f: impl FnMut() -> R) -> (Duration, R) {
    assert!(runs > 0);
    let mut times = Vec::with_capacity(runs);
    let mut last = None;
    for _ in 0..runs {
        let t0 = Instant::now();
        let r = f();
        times.push(t0.elapsed());
        last = Some(r);
    }
    times.sort_unstable();
    (times[times.len() / 2], last.expect("runs > 0"))
}

/// Short status string for an outcome.
pub fn outcome_tag(outcome: &SolveOutcome) -> &'static str {
    match outcome {
        SolveOutcome::Solved(_) => "solved",
        SolveOutcome::Infeasible => "infeasible",
        SolveOutcome::GaveUp => "gave-up",
        SolveOutcome::BudgetExceeded => "timeout",
        SolveOutcome::BestEffort(_) => "best-effort",
    }
}

/// Formats a duration in engineering style (`12.3ms`, `4.56s`).
pub fn fmt_duration(d: Duration) -> String {
    if d >= Duration::from_secs(1) {
        format!("{:.2}s", d.as_secs_f64())
    } else if d >= Duration::from_millis(1) {
        format!("{:.2}ms", d.as_secs_f64() * 1e3)
    } else {
        format!("{:.1}us", d.as_secs_f64() * 1e6)
    }
}

/// A minimal fixed-width table printer for experiment output.
#[derive(Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row arity mismatch");
        self.rows.push(row);
        self
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for (cell, w) in cells.iter().zip(widths) {
                line.push_str(&format!("{cell:<w$}  "));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Parses `--flag value` style integer arguments from `std::env::args`.
pub fn arg_usize(flag: &str, default: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Parses `--flag value` style string arguments from `std::env::args`.
pub fn arg_string(flag: &str, default: &str) -> String {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| default.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_problem_set_is_complete() {
        let set = model_problems(0);
        assert_eq!(set.len(), 11);
        for (kind, p) in &set {
            assert!(p.len() > 100, "{}", kind.name());
        }
    }

    #[test]
    fn median_time_returns_result() {
        let (d, v) = median_time(3, || 42);
        assert_eq!(v, 42);
        assert!(d < Duration::from_secs(1));
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(["name", "value"]);
        t.row(["a", "1"]).row(["longer", "2"]);
        let s = t.render();
        assert!(s.contains("name"));
        assert!(s.lines().count() == 4);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_micros(500)), "500.0us");
        assert_eq!(fmt_duration(Duration::from_millis(12)), "12.00ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00s");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn row_arity_checked() {
        let mut t = TextTable::new(["a", "b"]);
        t.row(["only-one"]);
    }
}
