//! Figure 12: allocation time of the ILP baseline relative to TelaMalloc
//! (top) and absolute allocation times (bottom) for the Pixel 6 model
//! workloads at 110% memory (paper §7.2, the "on-device" configuration).
//!
//! The paper's headline: a median ≈4.7× speedup with 1-2 orders of
//! magnitude on the models that matter most (where the ILP effectively
//! fails). ILP runs that exceed the timeout are reported at the timeout,
//! so the printed ratio is a lower bound there.

use tela_bench::{
    fmt_duration, median_time, model_problems, outcome_tag, solver_budget, TextTable,
    SOLVER_TIMEOUT,
};
use telamalloc::{solve, TelaConfig};

fn main() {
    println!("# Figure 12: allocation time, ILP baseline vs TelaMalloc");
    println!(
        "# (each at 110% of minimum memory; ILP timeout {:?})\n",
        SOLVER_TIMEOUT
    );

    let mut table = TextTable::new([
        "Benchmark",
        "TelaMalloc",
        "ILP",
        "ILP/Tela",
        "Tela outcome",
        "ILP outcome",
    ]);
    let config = TelaConfig::default();
    let mut ratios: Vec<f64> = Vec::new();
    for (kind, problem) in model_problems(0) {
        let (tela_time, tela) = median_time(3, || solve(&problem, &solver_budget(), &config));
        let (ilp_time, (ilp_outcome, _)) =
            median_time(1, || tela_ilp::solve_ilp(&problem, &solver_budget()));
        let ratio = ilp_time.as_secs_f64() / tela_time.as_secs_f64().max(1e-9);
        ratios.push(ratio);
        let ilp_tag = outcome_tag(&ilp_outcome);
        table.row([
            kind.name().to_string(),
            fmt_duration(tela_time),
            fmt_duration(ilp_time),
            format!("{}{ratio:.1}x", if ilp_tag == "timeout" { ">" } else { "" }),
            outcome_tag(&tela.outcome).to_string(),
            ilp_tag.to_string(),
        ]);
    }
    print!("{}", table.render());

    ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let median = ratios[ratios.len() / 2];
    let max = ratios.last().copied().unwrap_or(1.0);
    println!("\nmedian ILP/TelaMalloc ratio: {median:.1}x (paper: ~4.7x median)");
    println!("max ratio: {max:.0}x (paper: 1-2 orders of magnitude on key models)");
}
