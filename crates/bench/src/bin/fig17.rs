//! Figure 17: importance of the backtrack-target features, measured as
//! the mean RMSE increase when each feature is permuted (paper §7.3).
//!
//! Paper finding: lifetime and contention matter most, along with the
//! decision level and the number of backtracks so far; the region
//! feature matters least (the phase heuristic already uses it).

use tela_bench::{arg_usize, TextTable};
use tela_learned::{collect_dataset, permutation_importance, CollectConfig, Gbt, GbtParams};
use tela_model::{Budget, Problem};
use telamalloc::{TargetFeatures, TelaConfig};

fn main() {
    let train_instances = arg_usize("--instances", 10);
    println!("# Figure 17: permutation feature importance (RMSE increase)\n");

    eprintln!("collecting training data on {train_instances} certified instances...");
    let problems: Vec<(String, Problem)> = (500..500 + train_instances as u64)
        .map(|s| {
            (
                format!("cert-{s}"),
                tela_workloads::sweep::certified_solvable(s),
            )
        })
        .collect();
    let samples = collect_dataset(
        &problems,
        &[0, 1, 3],
        &Budget::steps(15_000),
        &TelaConfig::default(),
        &CollectConfig::default(),
        17,
    );
    eprintln!("collected {} samples", samples.len());
    if samples.len() < 50 {
        println!("(not enough backtracking events harvested; rerun with --instances N)");
        return;
    }

    // Train/validation split.
    let split = samples.len() * 4 / 5;
    let rows: Vec<Vec<f64>> = samples.iter().map(|s| s.features.to_vec()).collect();
    let targets: Vec<f64> = samples.iter().map(|s| s.score).collect();
    let model = Gbt::fit(&rows[..split], &targets[..split], &GbtParams::default());
    let importance = permutation_importance(&model, &rows[split..], &targets[split..], 0);

    let mut ranked: Vec<(usize, f64)> = importance.iter().copied().enumerate().collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));

    let mut table = TextTable::new(["Rank", "Feature", "RMSE increase"]);
    for (rank, (feature, rmse)) in ranked.iter().enumerate() {
        table.row([
            (rank + 1).to_string(),
            TargetFeatures::NAMES[*feature].to_string(),
            format!("{rmse:.4}"),
        ]);
    }
    print!("{}", table.render());
    println!(
        "\n# validation RMSE of the model itself: {:.4} over {} samples",
        model.rmse(&rows[split..], &targets[split..]),
        samples.len() - split
    );
}
