//! Figure 19: the memory allocation problem of OpenPose — the contention
//! profile that motivates contention-based grouping (paper §8.1).
//!
//! Shape: one dense high-contention phase at the beginning (the
//! backbone), then alternating high/low phases (the refinement stages)
//! that grouping solves mostly in isolation.

use tela_bench::{arg_usize, TextTable};
use tela_model::PhasePartition;
use tela_workloads::{problem_with_slack, ModelKind};

fn main() {
    let buckets = arg_usize("--buckets", 32);
    let problem = problem_with_slack(ModelKind::OpenPose.generate(0), 10);
    let contention = problem.contention();
    let horizon = problem.horizon() as usize;

    println!("# Figure 19: OpenPose contention profile");
    println!(
        "# buffers={} horizon={} capacity={} peak contention={}\n",
        problem.len(),
        horizon,
        problem.capacity(),
        problem.max_contention()
    );

    let mut table = TextTable::new(["t", "contention", "% of capacity", "bar"]);
    let step = horizon.div_ceil(buckets).max(1);
    for t0 in (0..horizon).step_by(step) {
        let t1 = (t0 + step).min(horizon);
        let max = (t0..t1).map(|t| contention.at(t as u32)).max().unwrap_or(0);
        let pct = max as f64 / problem.capacity() as f64 * 100.0;
        let bar = "#".repeat((pct / 2.5) as usize);
        table.row([t0.to_string(), max.to_string(), format!("{pct:.0}%"), bar]);
    }
    print!("{}", table.render());

    let partition = PhasePartition::compute(&problem);
    println!("\n# contention phases found (threshold%, time range, blocks):");
    for phase in partition.phases() {
        println!(
            "#   {:>3}%  [{:>4}, {:>4})  {} blocks",
            phase.threshold_percent,
            phase.start,
            phase.end,
            phase.blocks.len()
        );
    }
}
