//! A/B harness for imitation-label variants (development tool).
//!
//! `--portfolio N` (default 0 = off) adds a non-ML reference leg: the
//! portfolio race at `N` workers over the same backtrack-heavy tail, to
//! compare how much of the learned policy's win a strategy race buys
//! without any training.
use tela_bench::arg_usize;
use tela_learned::{collect_dataset, train_policy_from_samples, CollectConfig, GbtParams};
use tela_model::{Budget, Problem};
use telamalloc::{solve, solve_portfolio, solve_with, BacktrackPolicy, NullObserver, TelaConfig};

fn main() {
    let tela = TelaConfig::default();
    // Fixed eval tail
    let configs = tela_workloads::sweep::certified_configs(30);
    let mut tail = vec![];
    for c in &configs {
        let r = solve(&c.problem, &Budget::steps(50_000), &tela);
        if r.stats.total_backtracks() > 1000 {
            tail.push((c.clone(), r.stats.total_backtracks(), r.outcome.is_solved()));
        }
    }
    eprintln!("tail: {}", tail.len());
    let train: Vec<(String, Problem)> = (10_000..10_020u64)
        .map(|s| {
            (
                format!("t{s}"),
                tela_workloads::sweep::certified_solvable(s),
            )
        })
        .collect();
    let cc = CollectConfig {
        floor_with_best: false,
        skip_uncertified_oracle: true,
        max_events_per_run: 300,
        ..CollectConfig::default()
    };
    let samples = collect_dataset(&train, &[0, 1, 3], &Budget::steps(15_000), &tela, &cc, 42);
    eprintln!("samples: {}", samples.len());
    for (name, threshold) in [
        ("thr4", 4.0),
        ("thr5.5", 5.5),
        ("thr7", 7.0),
        ("thr8.5", 8.5),
    ] {
        let policy =
            train_policy_from_samples(&samples, &GbtParams::default()).with_threshold(threshold);
        let (mut imp, mut fixed, mut worse, mut broke) = (0, 0, 0, 0);
        for (c, b0, s0) in &tail {
            let mut p = policy.clone();
            let mut o = NullObserver;
            let ml = solve_with(
                &c.problem,
                &Budget::steps(50_000),
                &tela,
                &mut p as &mut dyn BacktrackPolicy,
                &mut o,
            );
            let b1 = ml.stats.total_backtracks();
            let s1 = ml.outcome.is_solved();
            if s1 && !s0 {
                fixed += 1;
                imp += 1
            } else if *s0 && !s1 {
                broke += 1;
                worse += 1
            } else if b1 < *b0 {
                imp += 1
            } else if b1 > *b0 {
                worse += 1
            }
        }
        println!(
            "{name:12} samples={:6} improved={imp}/{} fixed={fixed} worse={worse} broke={broke}",
            samples.len(),
            tail.len()
        );
    }
    let portfolio = arg_usize("--portfolio", 0);
    if portfolio > 0 {
        let race_config = TelaConfig {
            threads: portfolio,
            ..tela.clone()
        };
        let (mut solved, mut fixed) = (0, 0);
        for (c, _, s0) in &tail {
            let race = solve_portfolio(&c.problem, &Budget::steps(50_000), &race_config);
            if race.result.outcome.is_solved() {
                solved += 1;
                if !s0 {
                    fixed += 1;
                }
            }
        }
        println!(
            "portfolio@{portfolio:2} solved={solved}/{} fixed={fixed} (no training)",
            tail.len()
        );
    }
}
