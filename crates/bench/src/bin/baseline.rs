//! Portfolio-vs-single-variant baseline, emitting `BENCH_pr2.json`.
//!
//! Runs every default portfolio variant solo over a mixed workload,
//! then the portfolio race itself at `--threads` workers, and reports
//! solved count, total steps, and per-instance wall-time median for
//! each. The JSON artifact is the regression record for the
//! parallel-portfolio PR: the race must solve at least as many
//! instances as the best single variant, in less median wall-time.
//!
//! The default mix is tail-weighted — mostly tight certified-solvable
//! instances, plus sweep-family instances as the easy control — because
//! the portfolio targets the contention tail (§7.3): easy instances are
//! settled by the sequential base-variant sprint at single-thread
//! speed, and the race only spawns for instances the sprint cannot.
//!
//! Flags: `--inputs N` (sweep inputs, default 4 → 8 configurations),
//! `--certified N` (tight instances, default 14 → 28 configurations),
//! `--steps S` (per-run cap, default 200000), `--threads T` (portfolio
//! workers, default 4), `--repeats R` (timed runs per instance, default
//! 3), `--out PATH` (default `BENCH_pr2.json`).

use tela_bench::{arg_string, arg_usize, median_time, TextTable};
use tela_model::{Budget, SolveOutcome};
use tela_trace::{MetricEntry, MetricValue, Tracer};
use tela_workloads::sweep::{certified_configs, sweep_configs, SweepConfig};
use telamalloc::{default_variants, solve, solve_portfolio, TelaConfig};

struct Row {
    name: String,
    solved: usize,
    total: usize,
    steps: u64,
    median_wall_ms: f64,
    max_wall_ms: f64,
}

fn median_ms(walls: &mut [f64]) -> f64 {
    walls.sort_unstable_by(f64::total_cmp);
    walls[walls.len() / 2]
}

fn measure(
    name: &str,
    configs: &[SweepConfig],
    repeats: usize,
    mut run: impl FnMut(&SweepConfig) -> (SolveOutcome, u64),
) -> Row {
    let mut walls = Vec::with_capacity(configs.len());
    let mut solved = 0;
    let mut steps = 0;
    for config in configs {
        let (wall, (outcome, run_steps)) = median_time(repeats, || run(config));
        walls.push(wall.as_secs_f64() * 1e3);
        if outcome.is_solved() {
            solved += 1;
            steps += run_steps;
        }
    }
    let max_wall_ms = walls.iter().copied().fold(0.0, f64::max);
    Row {
        name: name.to_string(),
        solved,
        total: configs.len(),
        steps,
        median_wall_ms: median_ms(&mut walls),
        max_wall_ms,
    }
}

fn main() {
    let inputs = arg_usize("--inputs", 4);
    let certified = arg_usize("--certified", 14);
    let step_cap = arg_usize("--steps", 200_000) as u64;
    let threads = arg_usize("--threads", 4);
    let repeats = arg_usize("--repeats", 3).max(1);
    let out = arg_string("--out", "BENCH_pr2.json");

    let mut configs = sweep_configs(inputs);
    configs.extend(certified_configs(certified));

    println!(
        "# portfolio baseline: {} configurations, step cap {step_cap}, portfolio @{threads} threads",
        configs.len()
    );

    let mut rows: Vec<Row> = Vec::new();
    for variant in default_variants(&TelaConfig::default()) {
        rows.push(measure(&variant.name, &configs, repeats, |c| {
            let r = solve(&c.problem, &Budget::steps(step_cap), &variant.config);
            (r.outcome, r.stats.steps)
        }));
    }
    let race_config = TelaConfig {
        threads,
        ..TelaConfig::default()
    };
    let portfolio_name = format!("portfolio@{threads}");
    rows.push(measure(&portfolio_name, &configs, repeats, |c| {
        let race = solve_portfolio(&c.problem, &Budget::steps(step_cap), &race_config);
        (race.result.outcome, race.result.stats.steps)
    }));

    let mut table = TextTable::new([
        "Variant",
        "Solved",
        "Steps (solved)",
        "Median wall",
        "Max wall",
    ]);
    for row in &rows {
        table.row([
            row.name.clone(),
            format!("{}/{}", row.solved, row.total),
            row.steps.to_string(),
            format!("{:.2}ms", row.median_wall_ms),
            format!("{:.2}ms", row.max_wall_ms),
        ]);
    }
    print!("{}", table.render());

    let best_single = rows[..rows.len() - 1]
        .iter()
        .max_by(|a, b| {
            (a.solved, -a.median_wall_ms)
                .partial_cmp(&(b.solved, -b.median_wall_ms))
                .expect("wall times are finite")
        })
        .expect("at least one single variant");
    let portfolio = rows.last().expect("portfolio row");
    println!(
        "\n# best single variant: {} ({}/{} solved, median {:.2}ms)",
        best_single.name, best_single.solved, best_single.total, best_single.median_wall_ms
    );
    println!(
        "# portfolio@{threads}: {}/{} solved, median {:.2}ms",
        portfolio.solved, portfolio.total, portfolio.median_wall_ms
    );

    // One traced (untimed) portfolio pass over the workload: the
    // aggregated tela-trace metric series — backtracks by kind, conflict
    // cliques, propagations, variant lifecycle counts — land in the
    // artifact's "metrics" section. The timed runs above stay untraced so
    // tracing overhead never contaminates the wall-time columns.
    let tracer = Tracer::logical();
    let traced_config = TelaConfig {
        threads,
        tracer: tracer.clone(),
        ..TelaConfig::default()
    };
    for c in &configs {
        let _ = solve_portfolio(&c.problem, &Budget::steps(step_cap), &traced_config);
    }
    let metrics = tracer.snapshot().map(|t| t.metrics).unwrap_or_default();

    let json = render_json(&rows, &metrics, step_cap, threads, configs.len());
    std::fs::write(&out, json).expect("write benchmark artifact");
    println!("# wrote {out}");
}

/// Hand-rolled JSON (the workspace is offline; no serde).
fn render_json(
    rows: &[Row],
    metrics: &[MetricEntry],
    step_cap: u64,
    threads: usize,
    configs: usize,
) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!(
        "  \"bench\": \"baseline\",\n  \"configurations\": {configs},\n  \"step_cap\": {step_cap},\n  \"portfolio_threads\": {threads},\n  \"variants\": [\n"
    ));
    for (i, row) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"solved\": {}, \"total\": {}, \"steps\": {}, \"median_wall_ms\": {:.3}, \"max_wall_ms\": {:.3}}}{}\n",
            row.name,
            row.solved,
            row.total,
            row.steps,
            row.median_wall_ms,
            row.max_wall_ms,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    s.push_str("  ],\n  \"metrics\": {\n");
    for (i, entry) in metrics.iter().enumerate() {
        let value = match &entry.value {
            MetricValue::Counter(v) => v.to_string(),
            MetricValue::Gauge(v) => v.to_string(),
            MetricValue::Histogram(h) => format!(
                "{{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}}}",
                h.count,
                h.sum,
                if h.count == 0 { 0 } else { h.min },
                h.max
            ),
        };
        s.push_str(&format!(
            "    \"{}\": {value}{}\n",
            entry.name,
            if i + 1 == metrics.len() { "" } else { "," }
        ));
    }
    s.push_str("  }\n}\n");
    s
}
