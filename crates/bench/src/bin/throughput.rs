//! `bench throughput`: end-to-end service throughput and latency for
//! `tela-server`, behind the same Floor/Band trend gates as
//! `BENCH_pr8.json` (artifact: `BENCH_pr9.json`).
//!
//! For each concurrency level N ∈ {1, 4, 16} the harness boots a fresh
//! in-process server on a loopback socket and drives it with N client
//! threads over real TCP, twice:
//!
//! - **cold** — every request is a structurally distinct problem, so
//!   each one walks the full pipeline (admission → queue → escalation
//!   ladder). Reported: solves/sec plus p50/p99/max request latency.
//! - **warm** — one problem is primed, then every request is a renamed/
//!   shifted variant of it: all cache hits, zero solve-path entries
//!   (asserted via the server's `solve_calls` counter). Reported:
//!   responses/sec plus p99 latency — the cache-hit fast path.
//!
//! The run also asserts the service invariant in countable form: every
//! request produced exactly one terminal response
//! (`zero_non_terminal = 1` is a Floor-gated schema metric).
//!
//! With `--check PATH` the run gates itself against a committed
//! snapshot: counts and invariants are Floors, latencies are Bands
//! (fail above `+tolerance%`), and rates are RateBands (fail below
//! `committed / (1 + tolerance%)`) — sized for cross-machine CI noise
//! via `--tolerance`.

use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use tela_bench::{
    arg_f64, arg_string, arg_usize, compare_trend, percentile, render_trend_json, Gate, TextTable,
};
use tela_model::{problem_to_text, Buffer, Problem};
use tela_server::{Client, Request, Server, ServerConfig, Status, TenantConfig};

const CONCURRENCY: [usize; 3] = [1, 4, 16];

fn main() {
    let requests = arg_usize("--requests", 96);
    let workers = arg_usize("--workers", 4);
    let tolerance = arg_usize("--tolerance", 50) as f64;
    let slack = arg_f64("--slack", 2.0);
    let out = arg_string("--out", "BENCH_pr9.json");
    let check = arg_string("--check", "");

    println!("# bench throughput: {requests} requests per phase, {workers} workers, N in {CONCURRENCY:?}");

    let mut metrics: Vec<(String, f64, Gate)> = Vec::new();
    let mut table = TextTable::new(["N", "phase", "rps", "p50", "p99", "max"]);
    let mut all_terminal = true;
    for &n in &CONCURRENCY {
        let (cold, warm, terminal) = measure(n, workers, requests);
        all_terminal &= terminal;
        table.row([
            n.to_string(),
            "cold".into(),
            format!("{:.0}", cold.rps),
            format!("{:.2}ms", cold.p50_ms),
            format!("{:.2}ms", cold.p99_ms),
            format!("{:.2}ms", cold.max_ms),
        ]);
        table.row([
            n.to_string(),
            "warm".into(),
            format!("{:.0}", warm.rps),
            format!("{:.2}ms", warm.p50_ms),
            format!("{:.2}ms", warm.p99_ms),
            format!("{:.2}ms", warm.max_ms),
        ]);
        metrics.push((format!("cold_rps_n{n}"), cold.rps, Gate::RateBand));
        metrics.push((format!("cold_p50_ms_n{n}"), cold.p50_ms, Gate::Band));
        metrics.push((format!("cold_p99_ms_n{n}"), cold.p99_ms, Gate::Band));
        metrics.push((format!("cold_max_ms_n{n}"), cold.max_ms, Gate::Band));
        metrics.push((format!("warm_rps_n{n}"), warm.rps, Gate::RateBand));
        metrics.push((format!("warm_p99_ms_n{n}"), warm.p99_ms, Gate::Band));
    }
    print!("{}", table.render());
    metrics.push((
        "zero_non_terminal".to_string(),
        if all_terminal { 1.0 } else { 0.0 },
        Gate::Floor,
    ));
    assert!(all_terminal, "some request did not get a terminal response");

    let borrowed: Vec<(&str, f64, Gate)> = metrics
        .iter()
        .map(|(k, v, g)| (k.as_str(), *v, *g))
        .collect();
    let json = render_trend_json(
        "throughput",
        &[
            ("requests_per_phase", requests as u64),
            ("server_workers", workers as u64),
        ],
        &borrowed,
    );
    if !check.is_empty() {
        let snapshot = std::fs::read_to_string(&check)
            .unwrap_or_else(|e| panic!("cannot read snapshot {check}: {e}"));
        let failures = compare_trend(&borrowed, &snapshot, tolerance, slack);
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("REGRESSION: {f}");
            }
            eprintln!(
                "# {} of {} gates failed against {check} (tolerance {tolerance}%)",
                failures.len(),
                borrowed.len()
            );
            std::process::exit(1);
        }
        println!(
            "# all {} gates within tolerance {tolerance}% of {check}",
            borrowed.len()
        );
    }
    std::fs::write(&out, json).expect("write benchmark artifact");
    println!("# wrote {out}");
}

#[derive(Debug, Clone, Copy)]
struct Phase {
    rps: f64,
    p50_ms: f64,
    p99_ms: f64,
    max_ms: f64,
}

/// A small always-feasible problem, structurally unique per `tag`
/// (peak live size 94 against capacity ≥ 128).
fn cold_problem(tag: u64) -> Problem {
    Problem::builder(128 + (tag % 7))
        .buffer(Buffer::new(0, 4, 40 + (tag % 31)))
        .buffer(Buffer::new(2, 6, 24))
        .buffer(Buffer::new(5, 9, 48))
        .buffer(Buffer::new(7, 9, 16 + ((tag / 31) % 17)))
        .build()
        .expect("cold problems are valid")
}

/// A renamed/shifted variant of the warm problem: same canonical form
/// (cache hit), different surface text.
fn warm_problem(variant: u64) -> Problem {
    let shift = (variant % 13) as u32;
    let mut buffers = vec![
        Buffer::new(shift, 4 + shift, 40),
        Buffer::new(2 + shift, 6 + shift, 24),
        Buffer::new(5 + shift, 9 + shift, 48),
    ];
    buffers.rotate_left((variant % 3) as usize);
    Problem::new(buffers, 96).expect("warm problems are valid")
}

/// Runs the cold and warm phases at concurrency `n` against a fresh
/// server; returns both phases plus the terminality check.
fn measure(n: usize, workers: usize, requests: usize) -> (Phase, Phase, bool) {
    let server = Server::new(ServerConfig {
        workers,
        queue_capacity: 256,
        degrade_watermark: 224,
        cache_capacity: 4 * requests,
        admission: TenantConfig {
            // The bench measures pipeline throughput, not the token
            // bucket: admit everything.
            refill_per_sec: 1_000_000,
            burst: 1_000_000,
            ..TenantConfig::default()
        },
        ..ServerConfig::default()
    });
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    let shutdown = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let serving = scope.spawn(|| server.serve(listener, &shutdown));
        // Panic-safe: flip shutdown BEFORE unwinding out of the scope, or
        // a failed assertion would leave the accept loop running and the
        // scope join would hang the whole bench.
        let measured = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            // Cold: distinct problems, full pipeline.
            let cold = drive(addr, n, requests, |i| cold_problem(0xC01D_0000 + i));
            let cold_solves = server.stats().solve_calls.load(Ordering::Relaxed);
            assert!(
                cold_solves >= requests as u64 / 2,
                "cold phase barely solved"
            );

            // Warm: prime one canonical form, then hammer renamed variants.
            let mut primer = Client::connect(addr).expect("connect primer");
            let primed = primer
                .request(&Request {
                    id: 0,
                    tenant: "bench".into(),
                    problem: problem_to_text(&warm_problem(0)),
                    max_steps: Some(500_000),
                    deadline_ms: Some(5_000),
                    trace: false,
                })
                .expect("prime the cache");
            assert_eq!(primed.status, Status::Solved, "warm primer must solve");
            let solves_before_warm = server.stats().solve_calls.load(Ordering::Relaxed);
            let warm = drive(addr, n, requests, warm_problem);
            // The warm phase must never have entered the solve path.
            assert_eq!(
                server.stats().solve_calls.load(Ordering::Relaxed),
                solves_before_warm,
                "warm requests leaked into the solve path"
            );
            (cold, warm)
        }));
        shutdown.store(true, Ordering::Release);
        serving.join().expect("server thread").expect("serve");
        let (cold, warm) = match measured {
            Ok(phases) => phases,
            Err(payload) => std::panic::resume_unwind(payload),
        };
        let stats = server.stats();
        let terminal = stats.terminal_total() == stats.responses.load(Ordering::Relaxed);
        (cold, warm, terminal)
    })
}

/// Fires `requests` requests from `n` client threads (`problem_of`
/// keyed by a global request index) and aggregates latencies.
fn drive(
    addr: SocketAddr,
    n: usize,
    requests: usize,
    problem_of: impl Fn(u64) -> Problem + Sync,
) -> Phase {
    let per_client = requests.div_ceil(n);
    let t0 = Instant::now();
    let mut latencies: Vec<Duration> = std::thread::scope(|scope| {
        let problem_of = &problem_of;
        let handles: Vec<_> = (0..n)
            .map(|c| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect client");
                    let mut latencies = Vec::with_capacity(per_client);
                    for i in 0..per_client {
                        let index = (c * per_client + i) as u64;
                        let request = Request {
                            id: index,
                            tenant: "bench".into(),
                            problem: problem_to_text(&problem_of(index)),
                            max_steps: Some(500_000),
                            deadline_ms: Some(5_000),
                            trace: false,
                        };
                        let sent = Instant::now();
                        let response = client.request(&request).expect("terminal response");
                        latencies.push(sent.elapsed());
                        assert_ne!(
                            response.status,
                            Status::Infeasible,
                            "bench problems are solvable"
                        );
                    }
                    latencies
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    let wall = t0.elapsed();
    latencies.sort_unstable();
    let pct = |p: usize| percentile(&latencies, p).as_secs_f64() * 1e3;
    Phase {
        rps: latencies.len() as f64 / wall.as_secs_f64().max(1e-9),
        p50_ms: pct(50),
        p99_ms: pct(99),
        max_ms: pct(100),
    }
}
