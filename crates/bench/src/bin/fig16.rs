//! Figure 16: learned-model inference time per candidate as a function
//! of batch size (paper §7.3: ~2µs per candidate; fast enough because
//! the model only runs on major backtracks).

use std::time::Instant;

use tela_bench::TextTable;
use tela_learned::{Gbt, GbtParams};

fn synthetic_model() -> Gbt {
    // 9 features like the deployment model; trained on synthetic scores.
    let rows: Vec<Vec<f64>> = (0..2_000)
        .map(|i| (0..9).map(|f| ((i * (f + 3)) % 97) as f64 / 97.0).collect())
        .collect();
    let targets: Vec<f64> = rows
        .iter()
        .map(|r| 10.0 - 5.0 * r[3] + 2.0 * r[2] - r[6])
        .collect();
    Gbt::fit(&rows, &targets, &GbtParams::default())
}

fn main() {
    println!("# Figure 16: model running time per candidate vs batch size");
    println!("# (100-tree forest, 9 features; paper: ~2us per candidate)\n");

    let model = synthetic_model();
    let mut table = TextTable::new(["Batch size", "Total", "Per candidate"]);
    for batch in [1usize, 2, 4, 8, 16, 32, 64, 128] {
        let rows: Vec<Vec<f64>> = (0..batch)
            .map(|i| {
                (0..9)
                    .map(|f| ((i * 31 + f * 7) % 89) as f64 / 89.0)
                    .collect()
            })
            .collect();
        // Warm up, then measure many repetitions.
        let reps = (100_000 / batch).max(100);
        let _ = model.predict_batch(&rows);
        let t0 = Instant::now();
        for _ in 0..reps {
            std::hint::black_box(model.predict_batch(std::hint::black_box(&rows)));
        }
        let total = t0.elapsed();
        let per_candidate = total / (reps * batch) as u32;
        table.row([
            batch.to_string(),
            format!("{:.2?}", total / reps as u32),
            format!("{per_candidate:.2?}"),
        ]);
    }
    print!("{}", table.render());
}
