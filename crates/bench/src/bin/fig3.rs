//! Figure 3: live memory over time under a best-fit allocator (BFC), the
//! domain-specific greedy heuristic, and a solver-based approach, against
//! a tight memory limit (paper §3.1).
//!
//! Prints one series per allocator (downsampled) plus the peaks; only
//! the solver stays under the tight limit.

use std::time::Duration;

use tela_bench::{arg_usize, TextTable};
use tela_model::{Budget, Solution};
use tela_workloads::{problem_with_slack, ModelKind};
use telamalloc::{solve, TelaConfig};

fn main() {
    let buckets = arg_usize("--buckets", 24);
    // ConvNet2D: a model where the heuristic needs noticeably more than
    // the solver.
    let problem = problem_with_slack(ModelKind::ConvNet2d.generate(0), 10);
    let horizon = problem.horizon() as usize;

    let bfc = tela_heuristics::bfc::solve(&problem);
    let greedy = tela_heuristics::greedy::solve(&problem);
    let budget = Budget::steps(1_000_000).with_timeout(Duration::from_secs(20));
    let tela = solve(&problem, &budget, &TelaConfig::default());
    let solver_solution = tela.outcome.solution().expect("solver handles ConvNet2D");

    // Recover full (capacity-unbounded) packings for profiling.
    let unbounded = problem.with_capacity(u64::MAX).expect("raising capacity");
    let profile = |s: &Solution| s.live_profile(&unbounded);
    let bfc_sol = rebuild_unbounded(&problem, |p| tela_heuristics::bfc::solve(p).solution);
    let greedy_sol = rebuild_unbounded(&problem, |p| tela_heuristics::greedy::solve(p).solution);
    let series = [
        ("bfc", profile(&bfc_sol)),
        ("heuristic", profile(&greedy_sol)),
        ("solver", profile(solver_solution)),
    ];

    println!("# Figure 3: live memory under BFC vs heuristic vs solver");
    println!(
        "# memory limit (dashed line in the paper): {}",
        problem.capacity()
    );
    println!(
        "# peaks: bfc={} heuristic={} solver={} contention={}\n",
        bfc.peak,
        greedy.peak,
        series[2].1.iter().max().copied().unwrap_or(0),
        problem.max_contention()
    );

    let mut table = TextTable::new(["t", "bfc", "heuristic", "solver", "limit"]);
    let step = horizon.div_ceil(buckets).max(1);
    for t0 in (0..horizon).step_by(step) {
        let t1 = (t0 + step).min(horizon);
        let max_in = |p: &Vec<u64>| p[t0..t1].iter().max().copied().unwrap_or(0);
        table.row([
            t0.to_string(),
            max_in(&series[0].1).to_string(),
            max_in(&series[1].1).to_string(),
            max_in(&series[2].1).to_string(),
            problem.capacity().to_string(),
        ]);
    }
    print!("{}", table.render());

    let over = |peak: u64| {
        if peak > problem.capacity() {
            "OVER LIMIT"
        } else {
            "fits"
        }
    };
    println!(
        "\nbfc: {}  heuristic: {}  solver: fits",
        over(bfc.peak),
        over(greedy.peak)
    );
}

/// Reruns a heuristic with unlimited capacity so a full packing is
/// always available for profiling, even when it misses the real limit.
fn rebuild_unbounded(
    problem: &tela_model::Problem,
    run: impl Fn(&tela_model::Problem) -> Option<Solution>,
) -> Solution {
    let unbounded = problem.with_capacity(u64::MAX).expect("raising capacity");
    run(&unbounded).expect("unbounded heuristics always produce a packing")
}
