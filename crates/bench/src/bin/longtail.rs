//! §7.3's long-tail study: over a large configuration sweep, find the
//! inputs where TelaMalloc backtracks heavily (the paper found 117 of
//! 1,192 with >1,000 backtracks), then measure how many the learned
//! policy improves.
//!
//! Paper results to compare shape against: ML improved 102 of 117 —
//! 56 timeouts now succeed, 34 inputs with ≥10× fewer backtracks —
//! while 4 inputs regressed to failure and 9 got >10× worse.
//!
//! Flags: `--inputs N` (certified-solvable instances, default 80),
//! `--steps S` (cap per solve, default 50000), `--train N` (training
//! instances, default 10).

use tela_bench::{arg_usize, TextTable};
use tela_model::{Budget, Problem};
use telamalloc::{solve, solve_with, BacktrackPolicy, NullObserver, TelaConfig};

fn main() {
    let inputs = arg_usize("--inputs", 80);
    let step_cap = arg_usize("--steps", 50_000) as u64;
    let train_n = arg_usize("--train", 10) as u64;

    println!("# Long-tail study: learned backtracking on high-backtrack inputs");
    println!("# ({inputs} certified-solvable instances, step cap {step_cap})\n");

    // Evaluation instances: seeds disjoint from training seeds.
    let configs = tela_workloads::sweep::certified_configs(inputs);
    let tela = TelaConfig::default();

    eprintln!("scanning for high-backtrack inputs...");
    let mut tail = Vec::new();
    for c in &configs {
        let r = solve(&c.problem, &Budget::steps(step_cap), &tela);
        let backtracks = r.stats.total_backtracks();
        if backtracks > 1_000 {
            tail.push((c.clone(), backtracks, r.outcome.is_solved()));
        }
    }
    println!(
        "high-backtrack inputs (>1000 backtracks): {} of {}",
        tail.len(),
        configs.len()
    );
    if tail.is_empty() {
        println!("(nothing in the tail at this scale; increase --inputs)");
        return;
    }

    eprintln!("training learned policy on {train_n} disjoint instances...");
    let train: Vec<(String, Problem)> = (10_000..10_000 + train_n)
        .map(|s| {
            (
                format!("train-{s}"),
                tela_workloads::sweep::certified_solvable(s),
            )
        })
        .collect();
    let options = tela_learned::TrainOptions {
        slack_percents: vec![0, 1, 3],
        search_budget: Budget::steps(40_000),
        ..tela_learned::TrainOptions::default()
    };
    let policy = tela_learned::train_policy(&train, &options);
    eprintln!("training done");

    let mut table = TextTable::new([
        "Input",
        "Backtracks (default)",
        "Backtracks (ML)",
        "Default",
        "ML",
        "Change",
    ]);
    let (mut improved, mut newly_solved, mut tenfold, mut worse, mut broke) = (0, 0, 0, 0, 0);
    for (config, base_bt, base_ok) in &tail {
        let mut p = policy.clone();
        let mut obs = NullObserver;
        let ml = solve_with(
            &config.problem,
            &Budget::steps(step_cap),
            &tela,
            &mut p as &mut dyn BacktrackPolicy,
            &mut obs,
        );
        let ml_bt = ml.stats.total_backtracks();
        let ml_ok = ml.outcome.is_solved();
        let change = if ml_ok && !base_ok {
            newly_solved += 1;
            improved += 1;
            "fixed"
        } else if *base_ok && !ml_ok {
            broke += 1;
            worse += 1;
            "broke"
        } else if ml_bt * 10 <= *base_bt {
            tenfold += 1;
            improved += 1;
            ">=10x fewer"
        } else if ml_bt < *base_bt {
            improved += 1;
            "fewer"
        } else if ml_bt >= base_bt * 10 {
            worse += 1;
            ">=10x more"
        } else if ml_bt > *base_bt {
            worse += 1;
            "more"
        } else {
            "same"
        };
        table.row([
            config.name.clone(),
            base_bt.to_string(),
            ml_bt.to_string(),
            if *base_ok { "solved" } else { "capped" }.to_string(),
            if ml_ok { "solved" } else { "capped" }.to_string(),
            change.to_string(),
        ]);
    }
    print!("{}", table.render());
    println!(
        "\nsummary: improved {improved}/{} (newly solved {newly_solved}, >=10x fewer {tenfold});",
        tail.len()
    );
    println!("worse {worse} (newly failing {broke})");
    println!("# paper: improved 102/117 (56 newly solved, 34 with >=10x fewer);");
    println!("# 4 newly failing, 9 with >10x more backtracks");
}
