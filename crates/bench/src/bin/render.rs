//! Renders the paper's key pictures as SVG files under `results/svg/`:
//! the Figure 1 running example (packed), the Figure 3 live-memory
//! comparison, and the Figure 19 OpenPose structure.
//!
//! Flags: `--out DIR` (default `results/svg`).

use std::path::PathBuf;

use tela_model::{Budget, Solution};
use tela_viz::{render_packing, render_problem, render_series, Style};
use tela_workloads::{problem_with_slack, ModelKind};
use telamalloc::{solve, TelaConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let out: PathBuf = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results/svg"));
    std::fs::create_dir_all(&out)?;

    // Figure 1: the running example, packed by TelaMalloc.
    let fig1 = tela_model::examples::figure1();
    let result = solve(&fig1, &Budget::steps(100_000), &TelaConfig::default());
    let solution = result.outcome.solution().expect("figure1 solves");
    let style = Style {
        labels: true,
        ..Style::default()
    };
    std::fs::write(
        out.join("figure1.svg"),
        render_packing(&fig1, solution, &style),
    )?;

    // Figure 3: live memory of BFC vs heuristic vs solver on ConvNet2D.
    let problem = problem_with_slack(ModelKind::ConvNet2d.generate(0), 10);
    let unbounded = problem.with_capacity(u64::MAX)?;
    let profile = |s: &Solution| s.live_profile(&unbounded);
    let bfc = tela_heuristics::bfc::solve(&unbounded)
        .solution
        .expect("unbounded bfc");
    let greedy = tela_heuristics::greedy::solve(&unbounded)
        .solution
        .expect("unbounded greedy");
    let tela = solve(&problem, &Budget::steps(1_000_000), &TelaConfig::default());
    let series = vec![
        ("bfc", profile(&bfc)),
        ("heuristic", profile(&greedy)),
        (
            "telamalloc",
            profile(tela.outcome.solution().expect("solver handles ConvNet2D")),
        ),
    ];
    std::fs::write(
        out.join("figure3.svg"),
        render_series(&problem, &series, &Style::default()),
    )?;

    // Figure 19: OpenPose input structure.
    let openpose = problem_with_slack(ModelKind::OpenPose.generate(0), 10);
    std::fs::write(out.join("figure19.svg"), render_problem(&openpose))?;

    println!("wrote {}", out.display());
    Ok(())
}
