//! Table 1: microbenchmark results — total allocation time and time per
//! step for `non-overlapping-{1K,10K}` and `full-overlap-{100,1K}`.
//!
//! These inputs require no backtracking; they characterize the raw cost
//! of TelaMalloc's step machinery and the quadratic pair set the CP
//! solver tracks (paper §7.1).

use std::time::Duration;

use tela_bench::{fmt_duration, median_time, TextTable};
use tela_model::{Budget, Problem};
use telamalloc::{solve, TelaConfig};

fn run(name: &str, problem: &Problem, table: &mut TextTable) {
    let config = TelaConfig::default();
    let runs = if problem.len() > 5_000 { 1 } else { 3 };
    let (total, result) = median_time(runs, || solve(problem, &Budget::unlimited(), &config));
    assert!(
        result.outcome.is_solved(),
        "{name} must solve without backtracking"
    );
    let steps = result.stats.steps.max(1);
    let per_step = Duration::from_nanos((total.as_nanos() / u128::from(steps)) as u64);
    table.row([
        name.to_string(),
        fmt_duration(total),
        fmt_duration(per_step),
        steps.to_string(),
        format!("{}", result.stats.total_backtracks()),
    ]);
}

fn main() {
    println!("# Table 1: Microbenchmark results");
    println!("# paper: non-overlapping-1K 12ms (0.01ms/step); non-overlapping-10K 1,260ms");
    println!("# (0.13ms/step); full-overlap-100 142ms (1.42ms/step); full-overlap-1K");
    println!("# 100,758ms (100.76ms/step). Shape: per-step cost grows with the");
    println!("# quadratic constraint set once blocks overlap.\n");

    let mut table = TextTable::new([
        "Benchmark",
        "Total Time",
        "Time/Step",
        "Steps",
        "Backtracks",
    ]);
    run(
        "non-overlapping-1K",
        &tela_workloads::micro::non_overlapping(1_000),
        &mut table,
    );
    run(
        "non-overlapping-10K",
        &tela_workloads::micro::non_overlapping(10_000),
        &mut table,
    );
    run(
        "full-overlap-100",
        &tela_workloads::micro::full_overlap(100),
        &mut table,
    );
    run(
        "full-overlap-1K",
        &tela_workloads::micro::full_overlap(1_000),
        &mut table,
    );
    print!("{}", table.render());
}
