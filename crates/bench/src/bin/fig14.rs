//! Figure 14: comparison of block-selection strategies over the large
//! input sweep (paper §7.2).
//!
//! The paper runs 1,192 configurations (596 inputs × 2 memory sizes) on
//! a distributed dataflow pipeline with a 500,000-step cap and reports
//! (a) the number of configurations that fail by reaching the cap and
//! (b) the geometric-mean step count on commonly-solved configurations.
//! TelaMalloc's combined strategy has 27-37× fewer failures and a
//! 1.36-1.80× geomean step advantage.
//!
//! Flags: `--inputs N` (default 120; 596 reproduces the paper's scale),
//! `--steps S` (cap, default 500000), `--threads T`, `--portfolio P`
//! (0 = off; otherwise adds a portfolio-race row at `P` workers).

use std::sync::{Mutex, PoisonError};

use tela_bench::{arg_usize, TextTable};
use tela_heuristics::SelectionStrategy;
use tela_model::Budget;
use tela_workloads::sweep::{sweep_configs, SweepConfig};
use telamalloc::{solve, solve_portfolio, TelaConfig};

#[derive(Clone)]
struct Variant {
    name: String,
    config: TelaConfig,
}

fn variants(portfolio: usize) -> Vec<Variant> {
    let mut v = vec![Variant {
        name: "TelaMalloc".to_string(),
        config: TelaConfig::default(),
    }];
    for strategy in SelectionStrategy::ALL {
        v.push(Variant {
            name: strategy.to_string(),
            config: TelaConfig::single_strategy(strategy),
        });
    }
    if portfolio > 0 {
        v.push(Variant {
            name: format!("portfolio@{portfolio}"),
            config: TelaConfig {
                threads: portfolio,
                ..TelaConfig::default()
            },
        });
    }
    v
}

fn main() {
    let inputs = arg_usize("--inputs", 120);
    let step_cap = arg_usize("--steps", 500_000) as u64;
    let threads = arg_usize("--threads", 1).max(1);
    let portfolio = arg_usize("--portfolio", 0);

    println!("# Figure 14: block-selection strategies over {inputs} inputs x 2 memory sizes");
    println!("# step cap {step_cap}; paper shape: the combined TelaMalloc strategy has");
    println!("# far fewer failing configurations and the lowest geomean steps.\n");

    let configs = sweep_configs(inputs);
    let variants = variants(portfolio);
    // results[v][c] = Some(steps) if solved, None if failed/capped.
    let results: Vec<Mutex<Vec<Option<u64>>>> = variants
        .iter()
        .map(|_| Mutex::new(vec![None; configs.len()]))
        .collect();

    // The paper scales out on a dataflow pipeline; we use scoped worker
    // threads over (variant, config) work items.
    let work: Vec<(usize, usize)> = (0..variants.len())
        .flat_map(|v| (0..configs.len()).map(move |c| (v, c)))
        .collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let Some(&(v, c)) = work.get(i) else { break };
                let outcome = run_one(&variants[v], &configs[c], step_cap);
                results[v].lock().unwrap_or_else(PoisonError::into_inner)[c] = outcome;
            });
        }
    });

    // Configurations solved by every strategy, for the geomean comparison.
    let solved: Vec<Vec<Option<u64>>> = results
        .iter()
        .map(|m| m.lock().unwrap_or_else(PoisonError::into_inner).clone())
        .collect();
    let common: Vec<usize> = (0..configs.len())
        .filter(|&c| solved.iter().all(|v| v[c].is_some()))
        .collect();

    let mut table = TextTable::new([
        "Strategy",
        "Failing inputs",
        "Geomean steps (common)",
        "Solved",
    ]);
    for (v, variant) in variants.iter().enumerate() {
        let fails = solved[v].iter().filter(|r| r.is_none()).count();
        let geomean = if common.is_empty() {
            0.0
        } else {
            let log_sum: f64 = common
                .iter()
                .map(|&c| {
                    (solved[v][c].expect("common is solved") as f64)
                        .max(1.0)
                        .ln()
                })
                .sum();
            (log_sum / common.len() as f64).exp()
        };
        table.row([
            variant.name.clone(),
            fails.to_string(),
            format!("{geomean:.1}"),
            format!("{}/{}", configs.len() - fails, configs.len()),
        ]);
    }
    print!("{}", table.render());
    println!(
        "\n# common (all-strategy-solved) configurations: {}",
        common.len()
    );
}

fn run_one(variant: &Variant, config: &SweepConfig, step_cap: u64) -> Option<u64> {
    let budget = Budget::steps(step_cap);
    let result = if variant.config.threads > 1 {
        solve_portfolio(&config.problem, &budget, &variant.config).result
    } else {
        solve(&config.problem, &budget, &variant.config)
    };
    result.outcome.is_solved().then_some(result.stats.steps)
}
