//! Figure 13: the same model workloads on a workstation, with two extra
//! comparison points: the pure CP-SAT-style search (the CP encoding
//! without TelaMalloc's heuristics) and TelaMalloc with the learned
//! backtracking policy (paper §7.2).
//!
//! Expected shape: CP-only is roughly comparable to the ILP baseline
//! ("no conclusive evidence in either direction", §5.1), both far behind
//! TelaMalloc; the ML policy only changes the long-tail inputs.

use tela_bench::{
    fmt_duration, median_time, model_problems, outcome_tag, solver_budget, TextTable,
};
use tela_model::{Budget, Problem};
use telamalloc::{solve, solve_with, BacktrackPolicy, NullObserver, TelaConfig};

fn main() {
    println!("# Figure 13: workstation comparison incl. CP-SAT-only and +ML\n");

    // Train the backtracking model on these same benchmarks, as §7.3
    // does for this figure ("a model only trained on the benchmarks in
    // Figure 13").
    eprintln!("training learned policy on the model workloads...");
    let train: Vec<(String, Problem)> = model_problems(1)
        .into_iter()
        .map(|(k, p)| (k.name().to_string(), p))
        .collect();
    let options = tela_learned::TrainOptions {
        slack_percents: vec![0, 2, 5],
        search_budget: Budget::steps(20_000),
        ..tela_learned::TrainOptions::default()
    };
    let policy = tela_learned::train_policy(&train, &options);
    eprintln!("training done ({} trees)", policy.model().num_trees());

    let mut table = TextTable::new([
        "Benchmark",
        "TelaMalloc",
        "Tela+ML",
        "ILP",
        "CP-SAT",
        "ILP stat",
        "CP stat",
    ]);
    let config = TelaConfig::default();
    for (kind, problem) in model_problems(0) {
        let (tela_time, _) = median_time(3, || solve(&problem, &solver_budget(), &config));
        let (ml_time, _) = median_time(3, || {
            let mut p = policy.clone();
            let mut obs = NullObserver;
            solve_with(
                &problem,
                &solver_budget(),
                &config,
                &mut p as &mut dyn BacktrackPolicy,
                &mut obs,
            )
        });
        let (ilp_time, (ilp_outcome, _)) =
            median_time(1, || tela_ilp::solve_ilp(&problem, &solver_budget()));
        let (cp_time, (cp_outcome, _)) = median_time(1, || {
            tela_cp::search::solve_cp_only(&problem, &solver_budget())
        });
        table.row([
            kind.name().to_string(),
            fmt_duration(tela_time),
            fmt_duration(ml_time),
            fmt_duration(ilp_time),
            fmt_duration(cp_time),
            outcome_tag(&ilp_outcome).to_string(),
            outcome_tag(&cp_outcome).to_string(),
        ]);
    }
    print!("{}", table.render());
    println!("\n# paper shape: ILP and CP-SAT are comparable to each other and both");
    println!("# orders of magnitude slower than TelaMalloc on the hard models; the");
    println!("# ML column matches plain TelaMalloc except on long-tail inputs.");
}
