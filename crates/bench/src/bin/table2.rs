//! Table 2: the baseline greedy heuristic's execution time and minimum
//! required memory relative to the best solver packing (paper §7.2).
//!
//! The greedy heuristic packs bottom-up without a capacity, so its
//! minimum required memory is simply its packing peak. The solver
//! optimum is approximated by binary-searching the smallest capacity at
//! which TelaMalloc finds a packing (lower-bounded by the contention).

use std::time::Duration;

use tela_bench::{fmt_duration, median_time, model_problems, TextTable};
use tela_model::{Budget, Problem, Size};
use telamalloc::{solve, TelaConfig};

/// Smallest capacity at which TelaMalloc solves, between the contention
/// bound and `upper`.
fn solver_min_memory(problem: &Problem, upper: Size) -> Size {
    let config = TelaConfig::default();
    let feasible = |capacity: Size| {
        let p = problem
            .with_capacity(capacity)
            .expect("upper bound fits buffers");
        let budget = Budget::steps(300_000).with_timeout(Duration::from_secs(5));
        solve(&p, &budget, &config).outcome.is_solved()
    };
    let (mut lo, mut hi) = (problem.max_contention().max(1), upper.max(1));
    if !feasible(hi) {
        return hi; // conservative: report the greedy peak itself
    }
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if feasible(mid) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    hi
}

fn main() {
    println!("# Table 2: heuristic execution time and minimum required memory");
    println!("# relative to the solver minimum. Paper ratios range 1.00x (FPN)");
    println!("# to 1.43x (StereoNet) with runtimes 0.6ms-76ms; the shape to match");
    println!("# is: the heuristic runs orders of magnitude faster than the solver");
    println!("# approaches but needs more memory on entangled models.\n");

    let mut table = TextTable::new([
        "Benchmark",
        "Min Required Memory",
        "Time",
        "Greedy Peak",
        "Solver Min",
        "Contention",
    ]);
    for (kind, problem) in model_problems(0) {
        let (time, result) = median_time(5, || tela_heuristics::greedy::solve(&problem));
        let greedy_peak = result.peak;
        let solver_min = solver_min_memory(&problem, greedy_peak);
        table.row([
            kind.name().to_string(),
            format!("{:.2}x", greedy_peak as f64 / solver_min as f64),
            fmt_duration(time),
            greedy_peak.to_string(),
            solver_min.to_string(),
            problem.max_contention().to_string(),
        ]);
    }
    print!("{}", table.render());
}
