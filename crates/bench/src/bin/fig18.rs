//! Figure 18: execution-time speedup of compiled TPU programs when the
//! XLA repacker uses TelaMalloc instead of the best-fit algorithm
//! (paper §7.4: up to ~7%, muted on non-memory-bound models, with no
//! significant compile-time regression).

use std::time::Instant;

use tela_bench::{fmt_duration, TextTable};
use tela_xla::{assign_memory_space, execution_time, MemoryConfig, Packer};

fn main() {
    println!("# Figure 18: program speedup with the TelaMalloc repacker vs best-fit\n");

    let config = MemoryConfig::default();
    let mut table = TextTable::new([
        "Program",
        "Speedup",
        "SRAM traffic (tela)",
        "SRAM traffic (best-fit)",
        "Repack time (tela)",
        "Repack time (bf)",
    ]);
    let mut speedups = Vec::new();
    for program in tela_xla::tpu_workloads(0) {
        let t0 = Instant::now();
        let best_fit = assign_memory_space(&program, &config, Packer::BestFit);
        let bf_compile = t0.elapsed();
        let t0 = Instant::now();
        let tela = assign_memory_space(&program, &config, Packer::TelaMalloc);
        let tela_compile = t0.elapsed();
        let t_bf = execution_time(&program, &best_fit, &config);
        let t_tela = execution_time(&program, &tela, &config);
        let speedup = t_bf / t_tela;
        speedups.push(speedup);
        let traffic = program.total_traffic().max(1);
        table.row([
            program.name.clone(),
            format!("{:+.2}%", (speedup - 1.0) * 100.0),
            format!("{:.0}%", tela.sram_traffic as f64 / traffic as f64 * 100.0),
            format!(
                "{:.0}%",
                best_fit.sram_traffic as f64 / traffic as f64 * 100.0
            ),
            fmt_duration(tela_compile),
            fmt_duration(bf_compile),
        ]);
    }
    print!("{}", table.render());
    let max = speedups.iter().cloned().fold(1.0f64, f64::max);
    println!(
        "\nmax speedup: {:+.2}% (paper: up to ~7%, muted on",
        (max - 1.0) * 100.0
    );
    println!("# non-memory-bound programs; compile time within noise)");
}
