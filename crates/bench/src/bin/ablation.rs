//! Ablation of TelaMalloc's design choices (§5.2-§5.4): each variant
//! disables one feature of the full configuration, over a mix of tight
//! model workloads and certified-solvable instances.
//!
//! This quantifies what the paper argues qualitatively: solver-guided
//! placement is necessary to escape local optima (§5.2), contention
//! grouping exploits phase structure (§5.3), and conflict-guided
//! backtracking with candidate prepending handles the rest (§5.4).
//!
//! Flags: `--inputs N` (certified instances, default 40), `--steps S`
//! (cap, default 100000).

use tela_bench::{arg_usize, TextTable};
use tela_model::{Budget, Problem};
use telamalloc::{solve, TelaConfig};

fn variants() -> Vec<(&'static str, TelaConfig)> {
    let full = TelaConfig::default;
    vec![
        ("full", full()),
        (
            "no-solver-placement",
            TelaConfig {
                solver_guided_placement: false,
                ..full()
            },
        ),
        (
            "no-grouping",
            TelaConfig {
                contention_grouping: false,
                ..full()
            },
        ),
        (
            "no-prepending",
            TelaConfig {
                candidate_prepending: false,
                ..full()
            },
        ),
        (
            "fixed-backtrack",
            TelaConfig {
                conflict_guided_backtracking: false,
                fixed_backtrack_steps: 1,
                ..full()
            },
        ),
        (
            "no-stuck-escape",
            TelaConfig {
                stuck_subtree_limit: 0,
                ..full()
            },
        ),
        (
            "no-split",
            TelaConfig {
                split_independent: false,
                ..full()
            },
        ),
        (
            "minimized-conflicts",
            TelaConfig {
                minimize_conflicts: true,
                ..full()
            },
        ),
    ]
}

fn instances(count: usize) -> Vec<(String, Problem)> {
    let mut out: Vec<(String, Problem)> = tela_workloads::sweep::certified_configs(count)
        .into_iter()
        .map(|c| (c.name, c.problem))
        .collect();
    for kind in tela_workloads::ModelKind::PIXEL6 {
        // Tight (2% slack) model instances stress the search.
        out.push((
            kind.name().to_string(),
            tela_workloads::problem_with_slack(kind.generate(0), 2),
        ));
    }
    out
}

fn main() {
    let count = arg_usize("--inputs", 40);
    let step_cap = arg_usize("--steps", 100_000) as u64;
    let set = instances(count);
    println!(
        "# Ablation of TelaMalloc design choices over {} instances",
        set.len()
    );
    println!("# (step cap {step_cap})\n");

    let mut table = TextTable::new(["Variant", "Solved", "Failed", "Geomean steps (solved)"]);
    for (name, config) in variants() {
        let mut solved = 0usize;
        let mut failed = 0usize;
        let mut log_steps = 0.0f64;
        for (_, problem) in &set {
            let r = solve(problem, &Budget::steps(step_cap), &config);
            if r.outcome.is_solved() {
                solved += 1;
                log_steps += (r.stats.steps.max(1) as f64).ln();
            } else {
                failed += 1;
            }
        }
        let geomean = if solved > 0 {
            (log_steps / solved as f64).exp()
        } else {
            0.0
        };
        table.row([
            name.to_string(),
            solved.to_string(),
            failed.to_string(),
            format!("{geomean:.1}"),
        ]);
    }
    print!("{}", table.render());
    println!("\n# paper expectation: the full configuration solves the most; removing");
    println!("# solver-guided placement hurts most (§5.2), then grouping (§5.3).");
}
