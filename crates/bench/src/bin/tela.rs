//! `tela` — command-line front-end for the reproduction.
//!
//! Subcommands:
//!
//! - `gen --model <name>|--certified <seed> [--slack PCT] [--seed N]` —
//!   emit a problem trace (text format) on stdout.
//! - `solve --alloc <tela|greedy|bfc|ilp|cp|pipeline> [--steps N]
//!   [--timeout-ms N]` — read a trace from stdin (or `--trace FILE`) and
//!   allocate.
//! - `stats` — read a trace and print its structural summary.
//!
//! Example:
//!
//! ```text
//! tela gen --model openpose --slack 10 > op.trace
//! tela solve --alloc tela --trace op.trace
//! tela stats --trace op.trace
//! ```

use std::io::Read;
use std::time::{Duration, Instant};

use tela_bench::outcome_tag;
use tela_model::{parse_problem, problem_to_text, Budget, InstanceStats, PackingStats, Problem};
use tela_workloads::{problem_with_slack, ModelKind};
use telamalloc::{Allocator, Stage, TelaConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("gen") => cmd_gen(&args[1..]),
        Some("solve") => cmd_solve(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        _ => {
            eprintln!("usage: tela <gen|solve|stats> [options]   (see --bin tela source)");
            std::process::exit(2);
        }
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

type CliResult = Result<(), Box<dyn std::error::Error>>;

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn model_by_name(name: &str) -> Option<ModelKind> {
    ModelKind::PIXEL6
        .into_iter()
        .chain([ModelKind::Srgan])
        .find(|k| k.name().eq_ignore_ascii_case(name) || slug(k.name()) == slug(name))
}

fn slug(s: &str) -> String {
    s.chars()
        .filter(|c| c.is_ascii_alphanumeric())
        .collect::<String>()
        .to_lowercase()
}

fn cmd_gen(args: &[String]) -> CliResult {
    let slack: u32 = flag(args, "--slack")
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(10);
    let seed: u64 = flag(args, "--seed")
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(0);
    let problem = if let Some(cert) = flag(args, "--certified") {
        tela_workloads::sweep::certified_solvable(cert.parse()?)
    } else if let Some(name) = flag(args, "--model") {
        let kind = model_by_name(&name).ok_or_else(|| {
            format!(
                "unknown model {name:?}; expected one of {}",
                ModelKind::PIXEL6
                    .iter()
                    .map(|k| slug(k.name()))
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        })?;
        problem_with_slack(kind.generate(seed), slack)
    } else {
        return Err("gen needs --model <name> or --certified <seed>".into());
    };
    print!("{}", problem_to_text(&problem));
    Ok(())
}

fn read_trace(args: &[String]) -> Result<Problem, Box<dyn std::error::Error>> {
    let text = match flag(args, "--trace") {
        Some(path) => std::fs::read_to_string(path)?,
        None => {
            let mut buf = String::new();
            std::io::stdin().read_to_string(&mut buf)?;
            buf
        }
    };
    Ok(parse_problem(&text)?)
}

fn cmd_solve(args: &[String]) -> CliResult {
    let problem = read_trace(args)?;
    let alloc = flag(args, "--alloc").unwrap_or_else(|| "pipeline".to_string());
    let steps: u64 = flag(args, "--steps")
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(500_000);
    let timeout_ms: u64 = flag(args, "--timeout-ms")
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(30_000);
    let budget = Budget::steps(steps).with_timeout(Duration::from_millis(timeout_ms));

    let t0 = Instant::now();
    let (tag, solution, detail) = match alloc.as_str() {
        "pipeline" => {
            let r = Allocator::default().allocate(&problem, &budget);
            let stage = match r.stage {
                Stage::Heuristic => "heuristic",
                Stage::TelaMalloc => "telamalloc",
            };
            (
                outcome_tag(&r.outcome),
                r.outcome.into_solution(),
                format!("stage={stage} steps={}", r.stats.steps),
            )
        }
        "tela" => {
            let r = telamalloc::solve(&problem, &budget, &TelaConfig::default());
            (
                outcome_tag(&r.outcome),
                r.outcome.into_solution(),
                format!(
                    "steps={} backtracks={}",
                    r.stats.steps,
                    r.stats.total_backtracks()
                ),
            )
        }
        "greedy" => {
            let r = tela_heuristics::greedy::solve(&problem);
            let tag = if r.solution.is_some() {
                "solved"
            } else {
                "gave-up"
            };
            (tag, r.solution, format!("peak={}", r.peak))
        }
        "bfc" => {
            let r = tela_heuristics::bfc::solve(&problem);
            let tag = if r.solution.is_some() {
                "solved"
            } else {
                "gave-up"
            };
            (tag, r.solution, format!("peak={}", r.peak))
        }
        "ilp" => {
            let (outcome, stats) = tela_ilp::solve_ilp(&problem, &budget);
            (
                outcome_tag(&outcome),
                outcome.into_solution(),
                format!("steps={}", stats.steps),
            )
        }
        "cp" => {
            let (outcome, stats) = tela_cp::search::solve_cp_only(&problem, &budget);
            (
                outcome_tag(&outcome),
                outcome.into_solution(),
                format!("steps={}", stats.steps),
            )
        }
        other => return Err(format!("unknown allocator {other:?}").into()),
    };
    let elapsed = t0.elapsed();
    println!("outcome:   {tag}");
    println!("time:      {elapsed:.2?}");
    println!("detail:    {detail}");
    if let Some(solution) = solution {
        let peak = solution.validate(&problem)?;
        let stats = PackingStats::of(&problem, &solution);
        println!("peak:      {peak} / {}", problem.capacity());
        println!(
            "packing:   {:.3}x contention, {:.0}% mean utilization",
            stats.peak_over_contention,
            stats.mean_utilization * 100.0
        );
    }
    Ok(())
}

fn cmd_stats(args: &[String]) -> CliResult {
    let problem = read_trace(args)?;
    let stats = InstanceStats::of(&problem);
    println!("{stats}");
    println!("slack over contention: {:.3}x", stats.slack_ratio);
    println!(
        "dominant buffer: {:.1}% of capacity",
        stats.dominant_buffer_fraction * 100.0
    );
    Ok(())
}
