//! Figure 15: effect of the learned backtracking policy on different
//! portions of SRGAN, one of the long-tail models (paper §7.3).
//!
//! For each SRGAN slice we locate the *hardness frontier*: the smallest
//! capacity at which the default search still succeeds within the step
//! cap. We then compare backtracks at that capacity and one unit below
//! it (where the default search fails within the cap — the regime the
//! learned policy targets).

use tela_bench::{arg_usize, outcome_tag, TextTable};
use tela_model::{Budget, Problem, Size};
use telamalloc::{solve, solve_with, BacktrackPolicy, NullObserver, TelaConfig, TelaResult};

/// SRGAN slices with realistic alignment on the short-lived buffers
/// (weight slices / scratch need vector-unit alignment, §5.5); alignment
/// padding is what makes these slices thrash at tight capacities.
fn srgan_buffers(blocks: usize) -> Vec<tela_model::Buffer> {
    tela_workloads::srgan_portion(0, blocks)
        .into_iter()
        .map(|b| {
            let align = if b.lifetime() <= 2 { 64 } else { 32 };
            tela_model::Buffer::new(b.start(), b.end(), b.size()).with_align(align)
        })
        .collect()
}

fn run_default(problem: &Problem, cap: u64) -> TelaResult {
    solve(problem, &Budget::steps(cap), &TelaConfig::default())
}

/// Smallest capacity (between contention and the greedy peak) where the
/// default search solves within the cap.
fn frontier(buffers: &[tela_model::Buffer], step_cap: u64) -> Size {
    let unbounded = Problem::new(buffers.to_vec(), u64::MAX).expect("valid");
    let greedy_peak = tela_heuristics::greedy::solve(&unbounded).peak;
    let (mut lo, mut hi) = (unbounded.max_contention().max(1), greedy_peak);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        let p = unbounded.with_capacity(mid).expect("fits");
        if run_default(&p, step_cap).outcome.is_solved() {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    hi
}

fn main() {
    let step_cap = arg_usize("--steps", 100_000) as u64;
    println!("# Figure 15: backtracks on SRGAN portions, default vs learned policy");
    println!("# (each portion at its hardness frontier; step cap {step_cap})\n");

    eprintln!("training learned policy...");
    let mut train: Vec<(String, Problem)> = (300..318u64)
        .map(|s| {
            (
                format!("cert-{s}"),
                tela_workloads::sweep::certified_solvable(s),
            )
        })
        .collect();
    for seed in [7u64, 9] {
        let buffers: Vec<_> = tela_workloads::srgan_portion(seed, 16)
            .into_iter()
            .map(|b| {
                let align = if b.lifetime() <= 2 { 64 } else { 32 };
                tela_model::Buffer::new(b.start(), b.end(), b.size()).with_align(align)
            })
            .collect();
        train.push((
            format!("srgan-seed{seed}"),
            Problem::new(buffers, u64::MAX).expect("valid"),
        ));
    }
    let options = tela_learned::TrainOptions {
        slack_percents: vec![0, 1, 3],
        search_budget: Budget::steps(40_000),
        ..tela_learned::TrainOptions::default()
    };
    let policy = tela_learned::train_policy(&train, &options);
    eprintln!("training done");

    let mut table = TextTable::new([
        "SRGAN portion",
        "Capacity",
        "Backtracks (default)",
        "Backtracks (ML)",
        "Default",
        "ML",
    ]);
    for blocks in [8usize, 12, 16, 20, 24] {
        let buffers = srgan_buffers(blocks);
        let edge = frontier(&buffers, step_cap);
        // At the frontier (default solves, possibly with effort) and one
        // unit below (default fails within the cap).
        for capacity in [edge, edge.saturating_sub(1).max(1)] {
            let Ok(problem) = Problem::new(buffers.clone(), capacity) else {
                continue;
            };
            if problem.max_contention() > capacity {
                continue;
            }
            let base = run_default(&problem, step_cap);
            let mut p = policy.clone();
            let mut obs = NullObserver;
            let ml = solve_with(
                &problem,
                &Budget::steps(step_cap),
                &TelaConfig::default(),
                &mut p as &mut dyn BacktrackPolicy,
                &mut obs,
            );
            table.row([
                format!("{blocks} blocks"),
                capacity.to_string(),
                base.stats.total_backtracks().to_string(),
                ml.stats.total_backtracks().to_string(),
                outcome_tag(&base.outcome).to_string(),
                outcome_tag(&ml.outcome).to_string(),
            ]);
        }
    }
    print!("{}", table.render());
    println!("\n# paper shape: the ML policy reduces backtracks by up to two orders");
    println!("# of magnitude on the portions where the default search gets stuck.");
    println!("# note: rows one unit below the frontier may be genuinely infeasible");
    println!("# (the hardness cliff coincides with the feasibility cliff on these");
    println!("# slices); the certified-solvable long-tail study (--bin longtail)");
    println!("# isolates the solvable-but-stuck regime with a feasibility certificate.");
}
