//! `bench trend`: the schema-stable performance snapshot behind
//! `BENCH_pr8.json`, with tolerance-band regression gating.
//!
//! One run measures three layers and writes them as a flat, stable
//! schema (`schema_version` guards shape changes):
//!
//! - **suite** — the baseline workload of `baseline.rs` (sweep +
//!   certified configurations), measured two ways: a **single** pass
//!   running the default variant solo (the direct comparable to the
//!   `telamalloc` row of `BENCH_pr2.json`, whose 670 ms worst case is
//!   the number PR 7 set out to beat — `single_max_wall_ms` is the
//!   headline metric), and a **portfolio** race at `--threads` workers
//!   (solved count, median and worst-case wall). Wall times take the
//!   best of `--repeats` runs: the regression gate cares about the
//!   floor the code can hit, not scheduler noise on top of it.
//!   An **adaptive** pass repeats the portfolio measurement at 2 and at
//!   `--threads` workers with the committed `tela-learned` variant
//!   ranker driving the bandit scheduler (`adaptive2_*`/`adaptive4_*`):
//!   the PR 8 headline is that ranked seeding plus quota scheduling at
//!   2 threads solves what the blind race needs 4 threads for.
//! - **giant** — one bounded-degree certified-solvable instance with
//!   `--giant` buffers (default 30 000, the ROADMAP's smoke-scale
//!   giant-instance item): solved flag and wall time.
//! - **micro** — in-process op-sequence timings for the propagate,
//!   sweep, and trail primitives (the same sequences as the
//!   `cp_core` criterion bench), best-of-`--repeats` in ns.
//!
//! With `--check PATH` the run additionally compares itself against a
//! committed snapshot and exits non-zero when any gate fails:
//! solved counts must not drop (no band), and every wall/ns metric must
//! stay within `--tolerance` percent (default 50, sized for
//! cross-machine CI noise) of the snapshot. Metrics the snapshot does
//! not know yet (new in this PR) are reported and skipped, so a fresh
//! artifact can gate against the previous PR's snapshot. Refresh the
//! snapshot by committing the new artifact: `cargo bench-trend` (alias
//! for this binary) writes `BENCH_pr8.json` in place.
//!
//! Every run additionally performs one **traced re-run**: a wall-clock
//! traced solve of a fixed representative instance (the largest
//! certified configuration, independent of `--inputs`/`--certified` so
//! traces from different runs are comparable), exported as
//! `--trace-out` JSONL plus a `--flame` flamegraph SVG — the CI
//! artifacts. When a gate fails, the committed `--baseline-trace` is
//! diffed against the fresh trace via `tela-prof` and the top guilty
//! spans are printed next to the `REGRESSION:` lines, closing the loop
//! from "a gate failed" to "this span regressed" (the same attribution
//! `cargo prof diff old.jsonl new.jsonl` gives offline). Refresh the
//! baseline alongside the snapshot by committing `--trace-out` as
//! `traces/trend_baseline.jsonl`.

use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

use tela_bench::{
    arg_f64, arg_string, arg_usize, compare_trend, render_trend_json, Gate, TextTable,
};
use tela_cp::CpSolver;
use tela_model::{Budget, BufferId, SolveOutcome};
use tela_prof::{build_tree, diff, flamegraph, profile_jsonl, render_diff, rollup, Rollup};
use tela_trace::{write_jsonl, Tracer};
use tela_workloads::sweep::{certified_configs, giant_config, sweep_configs, SweepConfig};
use telamalloc::{
    solve, solve_portfolio, AdaptiveConfig, EscalationLadder, TelaConfig, VariantRanker,
};

fn main() {
    let inputs = arg_usize("--inputs", 4);
    let certified = arg_usize("--certified", 14);
    let step_cap = arg_usize("--steps", 200_000) as u64;
    let threads = arg_usize("--threads", 4);
    let repeats = arg_usize("--repeats", 3).max(1);
    let giant_n = arg_usize("--giant", 30_000);
    let tolerance = arg_usize("--tolerance", 50) as f64;
    let slack = arg_f64("--slack", 0.5);
    let out = arg_string("--out", "BENCH_pr8.json");
    let check = arg_string("--check", "");
    let trace_out = arg_string("--trace-out", "trend_trace.jsonl");
    let flame_out = arg_string("--flame", "trend_flame.svg");
    let baseline_trace = arg_string("--baseline-trace", "traces/trend_baseline.jsonl");

    let mut configs = sweep_configs(inputs);
    configs.extend(certified_configs(certified));
    println!(
        "# bench trend: {} suite configurations @{threads} threads, giant {giant_n}, step cap {step_cap}",
        configs.len()
    );

    // Suite, single pass: the default variant solo. This is the
    // apples-to-apples successor of the `telamalloc` row in
    // `BENCH_pr2.json` — same solver configuration, same suite — whose
    // worst case was 670 ms there.
    let solo_config = TelaConfig::default();
    let solo_reps = repeats.max(7);
    let mut single_walls: Vec<f64> = Vec::with_capacity(configs.len());
    let mut single_solved = 0usize;
    for c in &configs {
        let (ms, outcome) = best_time(solo_reps, || {
            solve(&c.problem, &Budget::steps(step_cap), &solo_config).outcome
        });
        single_walls.push(ms);
        if outcome.is_solved() {
            single_solved += 1;
        }
    }
    single_walls.sort_unstable_by(f64::total_cmp);
    let single_max_ms = single_walls.last().copied().unwrap_or(0.0);
    println!(
        "# single (default variant): {single_solved}/{} solved, worst case {single_max_ms:.2}ms",
        configs.len()
    );

    // Suite, portfolio race over the same workload.
    let race_config = TelaConfig {
        threads,
        ..TelaConfig::default()
    };
    let mut walls: Vec<f64> = Vec::with_capacity(configs.len());
    let mut solved = 0usize;
    let mut table = TextTable::new(["Instance", "Outcome", "Wall"]);
    for c in &configs {
        let (ms, outcome) = best_time(repeats, || {
            solve_portfolio(&c.problem, &Budget::steps(step_cap), &race_config)
                .result
                .outcome
        });
        walls.push(ms);
        if outcome.is_solved() {
            solved += 1;
        } else {
            table.row([c.name.clone(), format!("{outcome:?}"), format!("{ms:.2}ms")]);
        }
    }
    walls.sort_unstable_by(f64::total_cmp);
    let median_ms = walls[walls.len() / 2];
    let max_ms = walls.last().copied().unwrap_or(0.0);
    println!("# unsolved instances:");
    print!("{}", table.render());
    println!(
        "# suite: {solved}/{} solved, median {median_ms:.2}ms, worst case {max_ms:.2}ms",
        configs.len()
    );

    // Suite, adaptive passes: the same race driven by the committed
    // ranker model and the bandit quota scheduler, at 2 workers (the
    // efficiency claim: ranked seeding recovers the blind race's solve
    // count on half the threads) and at `--threads` (the latency claim:
    // no slower than blind at equal width).
    let ranker = tela_learned::PortfolioRanker::embedded().into_shared();
    let (adaptive2_solved, adaptive2_median_ms, adaptive2_max_ms) =
        adaptive_pass(&configs, &ranker, 2, step_cap, repeats);
    let (adaptive4_solved, adaptive4_median_ms, adaptive4_max_ms) =
        adaptive_pass(&configs, &ranker, threads, step_cap, repeats);

    // Giant: one bounded-degree instance at smoke scale. One timed run
    // (it dominates the trend wall time; its band is sized accordingly).
    let giant = giant_config(giant_n, 5);
    let (giant_ms, giant_outcome) = best_time(1, || {
        solve_portfolio(&giant.problem, &Budget::steps(step_cap * 10), &race_config)
            .result
            .outcome
    });
    println!(
        "# giant: {} ({} buffers) -> {} in {giant_ms:.2}ms",
        giant.name,
        giant.problem.len(),
        if giant_outcome.is_solved() {
            "solved"
        } else {
            "UNSOLVED"
        },
    );

    // Micro: raw op sequences on a prepared solver (see the cp_core
    // criterion bench for the same shapes), best-of-`repeats`.
    let micro_reps = repeats.max(5);
    let propagate_ns = best_of(micro_reps, propagate_chain_ns);
    let sweep_ns = best_of(micro_reps, sweep_queries_ns);
    let trail_ns = best_of(micro_reps, trail_churn_ns);
    println!(
        "# micro: propagate chain {propagate_ns} ns, sweep queries {sweep_ns} ns, trail churn {trail_ns} ns"
    );

    let metrics: Vec<(&str, f64, Gate)> = vec![
        ("suite_configurations", configs.len() as f64, Gate::Floor),
        ("single_solved", single_solved as f64, Gate::Floor),
        ("single_max_wall_ms", single_max_ms, Gate::Band),
        ("suite_solved", solved as f64, Gate::Floor),
        ("suite_median_wall_ms", median_ms, Gate::Band),
        ("suite_max_wall_ms", max_ms, Gate::Band),
        ("adaptive2_solved", adaptive2_solved as f64, Gate::Floor),
        ("adaptive2_median_wall_ms", adaptive2_median_ms, Gate::Band),
        ("adaptive2_max_wall_ms", adaptive2_max_ms, Gate::Band),
        ("adaptive4_solved", adaptive4_solved as f64, Gate::Floor),
        ("adaptive4_median_wall_ms", adaptive4_median_ms, Gate::Band),
        ("adaptive4_max_wall_ms", adaptive4_max_ms, Gate::Band),
        ("giant_buffers", giant.problem.len() as f64, Gate::Floor),
        (
            "giant_solved",
            if giant_outcome.is_solved() { 1.0 } else { 0.0 },
            Gate::Floor,
        ),
        ("giant_wall_ms", giant_ms, Gate::Band),
        ("micro_propagate_chain_ns", propagate_ns as f64, Gate::Band),
        ("micro_sweep_queries_ns", sweep_ns as f64, Gate::Band),
        ("micro_trail_churn_ns", trail_ns as f64, Gate::Band),
    ];

    // Traced re-run: one wall-clock solve of the fixed representative
    // instance with tracing on, exported as JSONL + flamegraph SVG.
    // Deliberately *after* every timed measurement so the tracer cannot
    // perturb the gated numbers.
    let profile = trace_representative(step_cap, &trace_out, &flame_out);

    // Flat metric list: `(key, value, gate)` — the JSON is generated
    // from this, so emit order and key set stay schema-stable.
    let json = render_trend_json(
        "trend",
        &[
            ("step_cap", step_cap),
            ("portfolio_threads", threads as u64),
        ],
        &metrics,
    );
    if !check.is_empty() {
        let snapshot = std::fs::read_to_string(&check)
            .unwrap_or_else(|e| panic!("cannot read snapshot {check}: {e}"));
        let failures = compare_trend(&metrics, &snapshot, tolerance, slack);
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("REGRESSION: {f}");
            }
            print_guilty_spans(&baseline_trace, &profile);
            eprintln!(
                "# {} of {} gates failed against {check} (tolerance {tolerance}%)",
                failures.len(),
                metrics.len()
            );
            std::process::exit(1);
        }
        println!(
            "# all {} gates within tolerance {tolerance}% of {check}",
            metrics.len()
        );
    }
    std::fs::write(&out, json).expect("write benchmark artifact");
    println!("# wrote {out}");
}

/// Solves the fixed representative instance — the largest certified
/// configuration, the same one in every run so traces stay
/// diff-comparable — under a wall-clock tracer, writes the trace as
/// JSONL to `trace_out` and its flamegraph SVG to `flame_out`, and
/// returns the span rollup.
fn trace_representative(step_cap: u64, trace_out: &str, flame_out: &str) -> Rollup {
    let config = certified_configs(14)
        .pop()
        .expect("certified suite is non-empty");
    let tracer = Tracer::wall();
    let ladder = EscalationLadder::new(TelaConfig {
        tracer: tracer.clone(),
        ..TelaConfig::default()
    });
    let outcome = ladder
        .solve(&config.problem, &Budget::steps(step_cap))
        .outcome;
    let trace = tracer.snapshot().expect("wall tracer is enabled");
    std::fs::write(trace_out, write_jsonl(&trace)).expect("write trace artifact");
    let tree = build_tree(&trace);
    let svg = tela_viz::render_flamegraph(&flamegraph(&tree), &Default::default());
    std::fs::write(flame_out, svg).expect("write flamegraph artifact");
    let profile = rollup(&tree);
    println!(
        "# traced re-run: {} -> {} in {:.2}ms over {} span keys; wrote {trace_out}, {flame_out}",
        config.name,
        if outcome.is_solved() {
            "solved"
        } else {
            "UNSOLVED"
        },
        profile.root_total as f64 / 1e6,
        profile.entries.len(),
    );
    profile
}

/// Attributes a failed gate to spans: diffs the committed baseline
/// trace against the fresh traced re-run and prints the top five
/// contributors. Falls back to the fresh rollup's top self-time spans
/// when no baseline is committed yet.
fn print_guilty_spans(baseline_trace: &str, fresh: &Rollup) {
    let baseline = std::fs::read_to_string(baseline_trace)
        .ok()
        .and_then(|text| profile_jsonl(&text).ok());
    match baseline {
        Some(old) => {
            let d = diff(&old, fresh);
            eprintln!("# guilty spans ({baseline_trace} -> this run, self-time ns):");
            eprint!("{}", render_diff(&d, 5));
        }
        None => {
            eprintln!(
                "# no committed baseline trace at {baseline_trace}; top self-time spans this run:"
            );
            for e in fresh.entries.iter().take(5) {
                eprintln!(
                    "#   {}: self {} ns over {} calls",
                    e.key, e.self_time, e.count
                );
            }
        }
    }
}

/// One adaptive suite pass: `(solved, median ms, max ms)` with the
/// learned ranker and the bandit scheduler at `threads` workers.
fn adaptive_pass(
    configs: &[SweepConfig],
    ranker: &Arc<dyn VariantRanker>,
    threads: usize,
    step_cap: u64,
    repeats: usize,
) -> (usize, f64, f64) {
    let config = TelaConfig {
        threads,
        adaptive: AdaptiveConfig {
            ranker: Some(Arc::clone(ranker)),
            ..AdaptiveConfig::default()
        },
        ..TelaConfig::default()
    };
    let mut walls: Vec<f64> = Vec::with_capacity(configs.len());
    let mut solved = 0usize;
    for c in configs {
        let (ms, outcome) = best_time(repeats, || {
            solve_portfolio(&c.problem, &Budget::steps(step_cap), &config)
                .result
                .outcome
        });
        walls.push(ms);
        if outcome.is_solved() {
            solved += 1;
        }
    }
    walls.sort_unstable_by(f64::total_cmp);
    let median_ms = walls[walls.len() / 2];
    let max_ms = walls.last().copied().unwrap_or(0.0);
    println!(
        "# adaptive@{threads}: {solved}/{} solved, median {median_ms:.2}ms, worst case {max_ms:.2}ms",
        configs.len()
    );
    (solved, median_ms, max_ms)
}

fn best_of(reps: usize, f: impl Fn() -> u64) -> u64 {
    (0..reps).map(|_| f()).min().unwrap_or(0)
}

/// Best-of-`reps` wall time in ms; the outcome is checked to be
/// identical across repeats (a solve whose outcome flips between runs
/// would make the timing meaningless).
fn best_time(reps: usize, mut f: impl FnMut() -> SolveOutcome) -> (f64, SolveOutcome) {
    let mut best = f64::MAX;
    let mut outcome = None;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        let o = f();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
        if let Some(prev) = &outcome {
            assert_eq!(
                std::mem::discriminant(prev),
                std::mem::discriminant(&o),
                "outcome flipped between repeats"
            );
        }
        outcome = Some(o);
    }
    (best, outcome.expect("at least one repeat"))
}

/// Prefix-sum stacking addresses for the exact-fit clique.
fn clique() -> (tela_model::Problem, Vec<u64>) {
    let problem = tela_workloads::micro::full_overlap(64);
    let addrs = problem
        .buffers()
        .iter()
        .scan(0u64, |acc, b| {
            let a = *acc;
            *acc += b.size();
            Some(a)
        })
        .collect();
    (problem, addrs)
}

/// ns for one assign-all + pop cycle over the 64-clique (propagation
/// dominated: every assignment tightens all decided pairs).
fn propagate_chain_ns() -> u64 {
    let (problem, addrs) = clique();
    let mut solver = CpSolver::new(&problem).expect("clique builds");
    // Warm-up grows scratch to steady state.
    for _ in 0..2 {
        for (i, &a) in addrs.iter().enumerate() {
            solver
                .assign_deferred(BufferId::new(i), a)
                .expect("exact fit");
        }
        solver.pop_to_level(0);
    }
    let start = Instant::now();
    for (i, &a) in addrs.iter().enumerate() {
        solver
            .assign_deferred(BufferId::new(i), black_box(a))
            .expect("exact fit");
    }
    solver.pop_to_level(0);
    start.elapsed().as_nanos() as u64
}

/// ns for 32 lowest-fit queries against a half-fixed clique.
fn sweep_queries_ns() -> u64 {
    let (problem, addrs) = clique();
    let mut solver = CpSolver::new(&problem).expect("clique builds");
    for (i, &a) in addrs.iter().enumerate().take(32) {
        solver
            .assign_deferred(BufferId::new(i), a)
            .expect("first half places");
    }
    let _ = solver.min_feasible_pos(BufferId::new(32)); // warm the timeline
    let start = Instant::now();
    let mut acc = 0u64;
    for i in 32..64usize {
        acc += solver
            .min_feasible_pos(black_box(BufferId::new(i)))
            .expect("headroom remains");
    }
    black_box(acc);
    start.elapsed().as_nanos() as u64
}

/// ns for 64 single-assignment push/undo round trips.
fn trail_churn_ns() -> u64 {
    let (problem, addrs) = clique();
    let mut solver = CpSolver::new(&problem).expect("clique builds");
    for (i, &a) in addrs.iter().enumerate() {
        solver.assign_deferred(BufferId::new(i), a).expect("warm");
        solver.pop_level();
    }
    let start = Instant::now();
    for (i, &a) in addrs.iter().enumerate() {
        solver
            .assign_deferred(BufferId::new(i), black_box(a))
            .expect("consistent");
        solver.pop_level();
    }
    start.elapsed().as_nanos() as u64
}
