//! Synthetic stand-ins for the paper's evaluation models (§7.2, Table 2,
//! Figures 12/13/15/19).
//!
//! Each generator follows the corresponding model's public architecture
//! closely enough to reproduce the *allocation-relevant* structure: how
//! many buffers, how long they live, where contention plateaus and
//! troughs fall. Sizes are in KiB-like units with deterministic jitter.

use tela_model::Buffer;

use crate::graph::{GraphBuilder, TensorId};

/// The model workloads of the paper's Pixel 6 evaluation, plus SRGAN
/// from the ML long-tail study (§7.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// Feature Pyramid Network: backbone + top-down pathway with lateral
    /// connections (long-lived multi-scale features).
    Fpn,
    /// A plain 2D CNN: convolution chain with pooling.
    ConvNet2d,
    /// Inception-ResNet: multi-branch cells with residual connections.
    InceptionResnet,
    /// Face detection: light backbone + anchor heads over several
    /// scales.
    FaceDetection,
    /// OpenPose: dense backbone phase, then staged refinement with
    /// alternating high/low contention (§8.1, Figure 19).
    OpenPose,
    /// StereoNet: twin feature extractors + cost volume (one giant
    /// buffer) + refinement.
    StereoNet,
    /// Encoder-decoder segmentation with skip connections.
    Segmentation,
    /// ResNet-152: a very deep residual chain.
    ResNet152,
    /// Saliency model: mid-size encoder-decoder with attention maps.
    Saliency,
    /// Anonymized image model 1: wide multi-branch trunk (hard for
    /// solvers in the paper).
    ImageModel1,
    /// Anonymized image model 2: like image model 1 with heavier heads.
    ImageModel2,
    /// SRGAN generator: residual blocks + upsampling (late giant
    /// buffers); the paper's long-tail example (Figure 15).
    Srgan,
}

impl ModelKind {
    /// All Pixel 6 evaluation models, in the paper's Table 2 order.
    pub const PIXEL6: [ModelKind; 11] = [
        ModelKind::Fpn,
        ModelKind::ConvNet2d,
        ModelKind::InceptionResnet,
        ModelKind::FaceDetection,
        ModelKind::OpenPose,
        ModelKind::StereoNet,
        ModelKind::Segmentation,
        ModelKind::ResNet152,
        ModelKind::Saliency,
        ModelKind::ImageModel1,
        ModelKind::ImageModel2,
    ];

    /// Human-readable name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            ModelKind::Fpn => "FPN Model",
            ModelKind::ConvNet2d => "ConvNet2D",
            ModelKind::InceptionResnet => "Inception-ResNet",
            ModelKind::FaceDetection => "Face Detection",
            ModelKind::OpenPose => "OpenPose",
            ModelKind::StereoNet => "StereoNet",
            ModelKind::Segmentation => "Segmentation",
            ModelKind::ResNet152 => "ResNet-152",
            ModelKind::Saliency => "Saliency Model",
            ModelKind::ImageModel1 => "Image Model 1",
            ModelKind::ImageModel2 => "Image Model 2",
            ModelKind::Srgan => "SRGAN",
        }
    }

    /// Generates the buffer set for this model, deterministically in
    /// `seed`.
    pub fn generate(&self, seed: u64) -> Vec<Buffer> {
        let mut g = GraphBuilder::new(seed ^ (*self as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        match self {
            ModelKind::Fpn => fpn(&mut g),
            ModelKind::ConvNet2d => convnet2d(&mut g),
            ModelKind::InceptionResnet => inception_resnet(&mut g),
            ModelKind::FaceDetection => face_detection(&mut g),
            ModelKind::OpenPose => openpose(&mut g),
            ModelKind::StereoNet => stereonet(&mut g),
            ModelKind::Segmentation => segmentation(&mut g),
            ModelKind::ResNet152 => resnet152(&mut g),
            ModelKind::Saliency => saliency(&mut g),
            ModelKind::ImageModel1 => image_model(&mut g, 16, 9),
            ModelKind::ImageModel2 => image_model(&mut g, 20, 10),
            ModelKind::Srgan => srgan(&mut g, 24),
        }
        g.finish()
    }
}

/// One convolution-like layer: consumes `input`, uses a weight slice and
/// scratch, produces the output feature map.
fn conv(g: &mut GraphBuilder, input: TensorId, out_size: u64) -> TensorId {
    g.step(1);
    g.consume(input);
    let w = g.jitter(out_size / 4 + 1, 30);
    g.scratch(w);
    let acc = g.jitter(out_size / 8 + 1, 20);
    g.scratch(acc);
    let out = g.jitter(out_size, 15).max(1);
    g.produce(out)
}

/// A residual block: two convs plus the skip tensor living across both.
fn residual_block(g: &mut GraphBuilder, input: TensorId, size: u64) -> TensorId {
    let narrow = conv(g, input, size / 2 + 1);
    let mid = conv(g, narrow, size / 2 + 1);
    let out = conv(g, mid, size);
    // The skip path keeps the block input alive until the addition.
    g.consume(input);
    out
}

/// An inception-style cell: `branches` parallel paths whose outputs all
/// stay live until the concat.
fn inception_cell(g: &mut GraphBuilder, input: TensorId, size: u64, branches: usize) -> TensorId {
    let mut outs = Vec::new();
    for b in 0..branches {
        let branch_size = g.jitter(size / branches as u64 + 1, 25);
        let mid = conv(g, input, branch_size);
        // Deeper branches get an extra conv.
        let out = if b % 2 == 0 {
            conv(g, mid, branch_size)
        } else {
            mid
        };
        outs.push(out);
    }
    g.step(1);
    for o in &outs {
        g.consume(*o);
    }
    let out = g.jitter(size, 10);
    g.produce(out)
}

fn fpn(g: &mut GraphBuilder) {
    // Bottom-up backbone with shrinking maps; keep each level's output
    // alive for the top-down pathway (lateral connections).
    let mut x = g.produce(512);
    let mut laterals = Vec::new();
    let mut size = 512u64;
    for _ in 0..6 {
        for _ in 0..20 {
            x = conv(g, x, size);
        }
        laterals.push(x);
        size = (size / 2).max(16);
    }
    // Top-down pathway consuming laterals in reverse.
    let mut top = conv(g, x, size.max(16));
    for lateral in laterals.iter().rev() {
        g.step(1);
        g.consume(*lateral);
        g.consume(top);
        let lateral_size = g.size_of(*lateral).max(16);
        top = g.produce(lateral_size);
        // Per-level head.
        let head_size = g.size_of(top) / 2 + 1;
        let head = conv(g, top, head_size);
        g.step(1);
        g.consume(head);
    }
}

fn convnet2d(g: &mut GraphBuilder) {
    let mut x = g.produce(768);
    let mut size = 768u64;
    for stage in 0..5 {
        for _ in 0..16 {
            x = conv(g, x, size);
        }
        // Pooling halves the map.
        size = (size / 2).max(8);
        x = conv(g, x, size);
        if stage == 4 {
            // Dense classifier tail.
            for _ in 0..3 {
                x = conv(g, x, 64);
            }
        }
    }
    g.step(1);
    g.consume(x);
}

fn inception_resnet(g: &mut GraphBuilder) {
    let mut x = g.produce(384);
    for _ in 0..4 {
        x = conv(g, x, 384);
    }
    for block in 0..26 {
        let cell = inception_cell(g, x, 320, 4);
        // Residual connection around the cell.
        g.consume(x);
        x = cell;
        if block % 5 == 4 {
            // Reduction cell.
            x = conv(g, x, 256);
        }
    }
    for _ in 0..3 {
        x = conv(g, x, 128);
    }
    g.step(1);
    g.consume(x);
}

fn face_detection(g: &mut GraphBuilder) {
    let mut x = g.produce(256);
    let mut scales = Vec::new();
    let mut size = 256u64;
    for _ in 0..6 {
        for _ in 0..7 {
            x = residual_block(g, x, size);
        }
        scales.push(x);
        size = (size * 2 / 3).max(16);
    }
    // Anchor heads over every scale; all scale maps stay live until
    // their head runs.
    for s in scales {
        let map = g.size_of(s);
        let boxes = conv(g, s, map / 3 + 1);
        let scores = conv(g, s, map / 4 + 1);
        g.step(1);
        g.consume(boxes);
        g.consume(scores);
    }
}

fn openpose(g: &mut GraphBuilder) {
    // Phase 1: a dense VGG-style backbone — sustained high contention
    // (§8.1: "one phase of high contention at the beginning").
    let mut x = g.produce(512);
    for _ in 0..28 {
        x = conv(g, x, 512);
        // Extra parallel maps raise the plateau.
        let side_size = g.jitter(256, 20);
        let side = g.produce(side_size);
        g.step(1);
        g.consume(side);
    }
    let features = conv(g, x, 384);
    // Phases 2..N: staged refinement; each stage re-reads the backbone
    // features (long-lived buffer) and the previous stage's belief maps,
    // with a contention trough between stages.
    let mut belief = conv(g, features, 128);
    for _ in 0..8 {
        g.step(3); // trough: nothing but `features` and `belief` live
        let mut y = g.produce(192);
        g.consume(features);
        g.consume(belief);
        for _ in 0..11 {
            y = conv(g, y, 224);
        }
        belief = conv(g, y, 128);
    }
    g.step(1);
    g.consume(features);
    g.consume(belief);
}

fn stereonet(g: &mut GraphBuilder) {
    // Twin feature extractors (weights shared, buffers not).
    let left = g.produce(256);
    let right = g.produce(256);
    let mut l = left;
    let mut r = right;
    for _ in 0..18 {
        l = conv(g, l, 192);
        r = conv(g, r, 192);
    }
    // Cost volume: one giant, long-lived buffer.
    g.step(1);
    g.consume(l);
    g.consume(r);
    let volume = g.produce(1400);
    // 3D conv filtering over the volume.
    let mut v = volume;
    for _ in 0..12 {
        v = conv(g, v, 700);
        g.consume(volume);
    }
    // Refinement with the input re-read.
    let mut d = conv(g, v, 128);
    for _ in 0..10 {
        d = residual_block(g, d, 128);
    }
    g.step(1);
    g.consume(d);
}

fn segmentation(g: &mut GraphBuilder) {
    // U-Net style hourglass with skip connections.
    let mut x = g.produce(400);
    let mut skips = Vec::new();
    let mut size = 400u64;
    for _ in 0..6 {
        for _ in 0..5 {
            x = conv(g, x, size);
        }
        skips.push(x);
        size = (size / 2).max(16);
        x = conv(g, x, size);
    }
    for skip in skips.iter().rev() {
        size = g.size_of(*skip);
        g.step(1);
        g.consume(x);
        g.consume(*skip);
        x = g.produce(size);
        for _ in 0..4 {
            x = conv(g, x, size);
        }
    }
    g.step(1);
    g.consume(x);
}

fn resnet152(g: &mut GraphBuilder) {
    let mut x = g.produce(256);
    let stages: [(usize, u64); 4] = [(3, 256), (8, 192), (36, 128), (3, 96)];
    for (blocks, size) in stages {
        for _ in 0..blocks {
            x = residual_block(g, x, size);
        }
        x = conv(g, x, size / 2 + 8);
    }
    g.step(1);
    g.consume(x);
}

fn saliency(g: &mut GraphBuilder) {
    let mut x = g.produce(320);
    let mut skips = Vec::new();
    for _ in 0..14 {
        x = residual_block(g, x, 240);
        skips.push(x);
    }
    // Attention maps multiply feature maps: both live simultaneously.
    for skip in skips.iter().rev() {
        let attn = conv(g, *skip, 96);
        g.step(1);
        g.consume(attn);
        g.consume(*skip);
        g.consume(x);
        x = g.produce(200);
    }
    for _ in 0..10 {
        x = conv(g, x, 120);
    }
    g.step(1);
    g.consume(x);
}

/// The anonymized "Image Model" family: a wide trunk of parallel
/// branches with 64-unit-aligned buffers — the instances that were
/// hardest for the paper's ILP baseline.
fn image_model(g: &mut GraphBuilder, cells: usize, branches: usize) {
    let mut x = g.produce_aligned(640, 64);
    for c in 0..cells {
        let mut outs = Vec::new();
        for _ in 0..branches {
            let size = g.jitter(640 / branches as u64 + 1, 35);
            g.step(1);
            g.consume(x);
            let w = g.jitter(size / 3 + 1, 20);
            g.scratch(w);
            let mid = g.produce_aligned(size, 32);
            let out = conv(g, mid, size);
            outs.push(out);
        }
        g.step(1);
        for o in &outs {
            g.consume(*o);
        }
        g.consume(x);
        let trunk = g.jitter(640, 10);
        x = g.produce_aligned(trunk, 64);
        if c % 3 == 2 {
            x = conv(g, x, 512);
        }
    }
    g.step(1);
    g.consume(x);
}

fn srgan(g: &mut GraphBuilder, blocks: usize) {
    let mut x = g.produce(128);
    let trunk_in = x;
    for _ in 0..blocks {
        x = residual_block(g, x, 128);
    }
    // Global skip from the trunk input to the trunk output.
    g.step(1);
    g.consume(trunk_in);
    g.consume(x);
    let mut y = g.produce(128);
    // Upsampling: pixel-shuffle quadruples the map twice (late giants).
    for _ in 0..2 {
        let up = g.size_of(y) * 4;
        y = conv(g, y, up);
    }
    for _ in 0..3 {
        let same = g.size_of(y);
        y = conv(g, y, same);
    }
    g.step(1);
    g.consume(y);
}

/// Slices of the SRGAN generator used by the paper's Figure 15
/// ("different portions of SRGAN"): the first `blocks` residual blocks
/// plus the upsampling tail.
pub fn srgan_portion(seed: u64, blocks: usize) -> Vec<Buffer> {
    let mut g = GraphBuilder::new(seed ^ 0x5247_414E); // "RGAN"
    srgan(&mut g, blocks);
    g.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem_with_slack;
    use tela_model::{PhasePartition, Problem, Size};

    #[test]
    fn generators_are_deterministic() {
        for kind in ModelKind::PIXEL6 {
            let a = kind.generate(7);
            let b = kind.generate(7);
            assert_eq!(a, b, "{} not deterministic", kind.name());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = ModelKind::Fpn.generate(1);
        let b = ModelKind::Fpn.generate(2);
        assert_ne!(a, b);
    }

    #[test]
    fn buffer_counts_are_model_scale() {
        for kind in ModelKind::PIXEL6 {
            let n = kind.generate(0).len();
            assert!(
                (150..12000).contains(&n),
                "{}: {} buffers out of expected range",
                kind.name(),
                n
            );
        }
    }

    #[test]
    fn resnet152_is_deepest() {
        let resnet = ModelKind::ResNet152.generate(0);
        let convnet = ModelKind::ConvNet2d.generate(0);
        assert!(resnet.len() > convnet.len());
    }

    #[test]
    fn openpose_contention_is_front_loaded_with_phases() {
        // §8.1: one high-contention phase at the beginning, then
        // alternating high/low phases.
        let p = problem_with_slack(ModelKind::OpenPose.generate(0), 10);
        let contention = p.contention();
        let horizon = p.horizon() as usize;
        let early_max = (0..horizon / 4)
            .map(|t| contention.at(t as u32))
            .max()
            .unwrap();
        let late_max = (horizon / 2..horizon)
            .map(|t| contention.at(t as u32))
            .max()
            .unwrap();
        assert!(
            early_max >= late_max,
            "early {early_max} vs late {late_max}"
        );
        let partition = PhasePartition::compute(&p);
        assert!(
            partition.len() >= 3,
            "expected staged phases, got {}",
            partition.len()
        );
    }

    #[test]
    fn stereonet_has_a_dominant_buffer() {
        // The cost volume dominates: a single buffer close to half of
        // peak contention forces loose packings (Table 2 shows 1.43x for
        // StereoNet).
        let buffers = ModelKind::StereoNet.generate(0);
        let p = Problem::new(buffers, Size::MAX).unwrap();
        let biggest = p.buffers().iter().map(|b| b.size()).max().unwrap();
        assert!(biggest * 3 >= p.max_contention());
    }

    #[test]
    fn image_models_carry_alignment() {
        for kind in [ModelKind::ImageModel1, ModelKind::ImageModel2] {
            let buffers = kind.generate(0);
            assert!(buffers.iter().any(|b| b.align() >= 32), "{}", kind.name());
        }
    }

    #[test]
    fn srgan_portions_grow_with_blocks() {
        let small = srgan_portion(0, 4);
        let large = srgan_portion(0, 16);
        assert!(large.len() > small.len());
    }

    #[test]
    fn all_models_form_valid_problems() {
        for kind in ModelKind::PIXEL6 {
            let p = problem_with_slack(kind.generate(3), 10);
            assert!(p.max_contention() <= p.capacity());
        }
    }

    #[test]
    fn names_match_paper_tables() {
        assert_eq!(ModelKind::Fpn.name(), "FPN Model");
        assert_eq!(ModelKind::ImageModel2.name(), "Image Model 2");
        assert_eq!(ModelKind::PIXEL6.len(), 11);
    }
}
