//! The large-scale input sweep of the paper's Figure 14 and §7.3:
//! "a collection of 1,192 inputs (596 inputs from various sources at
//! different memory sizes)".
//!
//! We generate 596 deterministic inputs from six structural families
//! (model-like graphs and random live-range soups) and pair each with
//! two memory slack factors, yielding the 1,192 configurations.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use tela_model::{Buffer, Problem};

use crate::models::ModelKind;
use crate::problem_with_slack;

/// One configuration of the sweep: a named problem at a specific memory
/// slack.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Stable identifier, e.g. `"resid-017@5%"`.
    pub name: String,
    /// The problem instance (capacity already applied).
    pub problem: Problem,
    /// Slack percent over the contention bound.
    pub slack_percent: u32,
}

/// Memory slack factors used for each input (the paper sweeps memory
/// sizes; we use tight and near-tight capacities where search behaviour
/// differs most).
pub const SLACK_PERCENTS: [u32; 2] = [5, 10];

/// Generates `count` base inputs (the paper uses 596).
pub fn sweep_inputs(count: usize) -> Vec<(String, Vec<Buffer>)> {
    (0..count).map(|i| sweep_input(i as u64)).collect()
}

/// Generates the full configuration set: `count` inputs × slack factors
/// (596 × 2 = 1,192 in the paper).
pub fn sweep_configs(count: usize) -> Vec<SweepConfig> {
    let mut out = Vec::with_capacity(count * SLACK_PERCENTS.len());
    for (name, buffers) in sweep_inputs(count) {
        for slack in SLACK_PERCENTS {
            out.push(SweepConfig {
                name: format!("{name}@{slack}%"),
                problem: problem_with_slack(buffers.clone(), slack),
                slack_percent: slack,
            });
        }
    }
    out
}

/// One deterministic input drawn from six families.
fn sweep_input(index: u64) -> (String, Vec<Buffer>) {
    let mut rng = StdRng::seed_from_u64(index.wrapping_mul(0xA24B_AED4_963E_E407));
    match index % 6 {
        0 => {
            let kind = ModelKind::PIXEL6[(index / 6) as usize % ModelKind::PIXEL6.len()];
            (format!("model-{index:03}"), kind.generate(index))
        }
        1 => (format!("soup-{index:03}"), random_soup(&mut rng)),
        2 => (format!("plateau-{index:03}"), plateaus(&mut rng)),
        3 => (format!("resid-{index:03}"), residual_chain(&mut rng)),
        4 => (format!("branchy-{index:03}"), branchy(&mut rng)),
        _ => (format!("aligned-{index:03}"), aligned_mix(&mut rng)),
    }
}

/// Uniformly random live ranges and sizes.
fn random_soup(rng: &mut StdRng) -> Vec<Buffer> {
    let n = rng.random_range(120..500);
    let horizon = rng.random_range(60u32..240);
    (0..n)
        .map(|_| {
            let start = rng.random_range(0..horizon);
            let len = rng.random_range(1..=(horizon - start).min(24));
            let size = rng.random_range(8u64..512);
            Buffer::new(start, start + len, size)
        })
        .collect()
}

/// Bursts of fully-overlapping blocks separated by quiet gaps.
fn plateaus(rng: &mut StdRng) -> Vec<Buffer> {
    let bursts = rng.random_range(4..10);
    let mut buffers = Vec::new();
    let mut t = 0u32;
    for _ in 0..bursts {
        let width = rng.random_range(4u32..12);
        let blocks = rng.random_range(8..40);
        for _ in 0..blocks {
            let s = t + rng.random_range(0..width / 2);
            let e = (t + width)
                .saturating_sub(rng.random_range(0..width / 2))
                .max(s + 1);
            buffers.push(Buffer::new(s, e, rng.random_range(16u64..256)));
        }
        // A couple of bridge buffers crossing into the gap.
        for _ in 0..rng.random_range(0..3) {
            buffers.push(Buffer::new(t, t + width + 4, rng.random_range(8u64..64)));
        }
        t += width + rng.random_range(2u32..8);
    }
    buffers
}

/// A deep residual chain with varying skip lengths.
fn residual_chain(rng: &mut StdRng) -> Vec<Buffer> {
    let layers = rng.random_range(80..300);
    let mut buffers = Vec::new();
    for l in 0..layers {
        let t = l * 2;
        let size = rng.random_range(32u64..256);
        buffers.push(Buffer::new(t, t + 3, size)); // activation
        buffers.push(Buffer::new(t, t + 2, size / 3 + 1)); // weights slice
        if l % 4 == 0 {
            let skip = rng.random_range(4u32..16) * 2;
            buffers.push(Buffer::new(t, t + skip + 2, size / 2 + 1)); // skip
        }
    }
    buffers
}

/// Wide parallel branches joined at concat points.
fn branchy(rng: &mut StdRng) -> Vec<Buffer> {
    let cells = rng.random_range(6..20);
    let mut buffers = Vec::new();
    let mut t = 0u32;
    for _ in 0..cells {
        let branches = rng.random_range(3..8);
        let span = rng.random_range(4u32..10);
        for b in 0..branches {
            let s = t + (b % span.max(1));
            buffers.push(Buffer::new(s, t + span, rng.random_range(32u64..192)));
        }
        buffers.push(Buffer::new(
            t + span,
            t + span + 2,
            rng.random_range(64u64..256),
        ));
        t += span + 1;
    }
    buffers
}

/// A mix with heavy alignment requirements.
fn aligned_mix(rng: &mut StdRng) -> Vec<Buffer> {
    let n = rng.random_range(100..350);
    let horizon = rng.random_range(50u32..150);
    (0..n)
        .map(|_| {
            let start = rng.random_range(0..horizon);
            let len = rng.random_range(1..=(horizon - start).min(16));
            let size = rng.random_range(16u64..384);
            let align = *[1u64, 1, 16, 32, 64]
                .get(rng.random_range(0..5usize))
                .expect("index in range");
            Buffer::new(start, start + len, size).with_align(align)
        })
        .collect()
}

/// Generates an instance that is *solvable by construction*: blocks are
/// first packed into a strip (lowest-fit at random time intervals) and
/// the capacity is set to the packing's exact peak. The resulting
/// problems are tight (zero slack over a known packing) and therefore
/// hard for incomplete searches — the population the paper's ML long
/// tail study draws from (§7.3) — while a solution provably exists.
pub fn certified_solvable(seed: u64) -> Problem {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xC0FFEE);
    let height: u64 = rng.random_range(150..600);
    let horizon: u32 = rng.random_range(40u32..160);
    let target_blocks = rng.random_range(120usize..420);
    let mut placed: Vec<(Buffer, u64)> = Vec::new();
    let mut failures = 0;
    while placed.len() < target_blocks && failures < 200 {
        let start = rng.random_range(0..horizon);
        let len = rng.random_range(1..=(horizon - start).min(20));
        let size = rng.random_range(4u64..height / 3);
        let b = Buffer::new(start, start + len, size);
        // Lowest fit among already placed, like a random bottom-left fill.
        let mut occupied: Vec<(u64, u64)> = placed
            .iter()
            .filter(|(p, _)| p.overlaps_in_time(&b))
            .map(|&(p, addr)| (addr, addr + p.size()))
            .collect();
        occupied.sort_unstable();
        let mut addr = 0u64;
        for &(s, e) in &occupied {
            if s >= addr + size {
                break;
            }
            if e > addr {
                addr = e;
            }
        }
        if addr + size <= height {
            placed.push((b, addr));
        } else {
            failures += 1;
        }
    }
    let peak = placed.iter().map(|&(b, a)| a + b.size()).max().unwrap_or(1);
    let buffers: Vec<Buffer> = placed.into_iter().map(|(b, _)| b).collect();
    Problem::new(buffers, peak).expect("constructed packing fits its peak")
}

/// A giant certified-solvable instance: `n` buffers streamed along a
/// long timeline with bounded concurrent liveness, packed lowest-fit so
/// a solution exists by construction, with `slack_percent` headroom
/// over the packing's peak.
///
/// This is the smoke-scale version of the ROADMAP's 10⁵–10⁶-buffer
/// item: the pair count stays linear in `n` (concurrency is bounded by
/// the birth rate × lifetime window, not by `n`), so asymptotic wins in
/// the propagate/sweep core show up as wall-time, not as a pair-count
/// explosion.
pub fn giant(seed: u64, n: usize, slack_percent: u32) -> Problem {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0xD6E8_FEB8_6659_FD93) ^ 0x617E);
    // Two births per timestep and lifetimes up to 24 steps bound the
    // expected concurrency around two dozen buffers.
    let mut placed: Vec<(Buffer, u64)> = Vec::new();
    let mut peak = 0u64;
    for i in 0..n {
        let start = (i / 2) as u32;
        let len = rng.random_range(1u32..=24);
        let size = rng.random_range(8u64..256);
        let b = Buffer::new(start, start + len, size);
        // Lowest fit among the still-live placed buffers; the scan only
        // sees the bounded-concurrency window, never all of `placed`.
        let mut occupied: Vec<(u64, u64)> = placed
            .iter()
            .rev()
            .take_while(|(p, _)| p.end() + 64 > start)
            .filter(|(p, _)| p.overlaps_in_time(&b))
            .map(|&(p, addr)| (addr, addr + p.size()))
            .collect();
        occupied.sort_unstable();
        let mut addr = 0u64;
        for &(s, e) in &occupied {
            if s >= addr + size {
                break;
            }
            if e > addr {
                addr = e;
            }
        }
        peak = peak.max(addr + size);
        placed.push((b, addr));
    }
    let buffers: Vec<Buffer> = placed.into_iter().map(|(b, _)| b).collect();
    let capacity = peak * u64::from(100 + slack_percent) / 100;
    Problem::new(buffers, capacity).expect("constructed packing fits its peak")
}

/// The [`giant`] instance as a named sweep configuration
/// (e.g. `"giant-030000@5%"`).
pub fn giant_config(n: usize, slack_percent: u32) -> SweepConfig {
    SweepConfig {
        name: format!("giant-{n:06}@{slack_percent}%"),
        problem: giant(1, n, slack_percent),
        slack_percent,
    }
}

/// Memory slacks applied to certified instances, relative to the known
/// packing's peak (two memory sizes per input, as in the paper's sweep).
pub const CERTIFIED_SLACKS: [u32; 2] = [1, 3];

/// A batch of certified-solvable configurations: `count` instances (see
/// [`certified_solvable`]), each at the [`CERTIFIED_SLACKS`] capacities.
pub fn certified_configs(count: usize) -> Vec<SweepConfig> {
    let mut out = Vec::with_capacity(count * CERTIFIED_SLACKS.len());
    for i in 0..count {
        let base = certified_solvable(i as u64);
        for slack in CERTIFIED_SLACKS {
            let capacity = base.capacity() * u64::from(100 + slack) / 100;
            out.push(SweepConfig {
                name: format!("certified-{i:03}@{slack}%"),
                problem: base.with_capacity(capacity).expect("raising capacity"),
                slack_percent: slack,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn certified_instances_are_solvable_by_construction() {
        // Re-derive the packing: lowest-fit in generation order succeeds
        // within the capacity.
        for seed in 0..8 {
            let p = certified_solvable(seed);
            assert!(p.len() >= 50, "seed {seed}: {} blocks", p.len());
            let mut placed: Vec<(Buffer, u64)> = Vec::new();
            for &b in p.buffers() {
                let mut occupied: Vec<(u64, u64)> = placed
                    .iter()
                    .filter(|(q, _)| q.overlaps_in_time(&b))
                    .map(|&(q, a)| (a, a + q.size()))
                    .collect();
                occupied.sort_unstable();
                let mut addr = 0u64;
                for &(s, e) in &occupied {
                    if s >= addr + b.size() {
                        break;
                    }
                    if e > addr {
                        addr = e;
                    }
                }
                assert!(
                    addr + b.size() <= p.capacity(),
                    "seed {seed}: replay exceeded capacity"
                );
                placed.push((b, addr));
            }
        }
    }

    #[test]
    fn certified_configs_are_named_and_tight() {
        let configs = certified_configs(4);
        assert_eq!(configs.len(), 4 * CERTIFIED_SLACKS.len());
        for c in &configs {
            assert!(c.name.starts_with("certified-"));
            assert!(c.problem.max_contention() <= c.problem.capacity());
        }
    }

    #[test]
    fn giant_instances_are_bounded_degree_and_deterministic() {
        let p = giant(1, 10_000, 5);
        assert_eq!(p.len(), 10_000);
        assert!(p.max_contention() <= p.capacity());
        // Bounded concurrency: the pair set stays linear in n, far from
        // the quadratic worst case.
        let pairs = p.overlapping_pairs().count();
        assert!(
            pairs < 60 * p.len(),
            "{pairs} pairs for {} buffers — concurrency unbounded?",
            p.len()
        );
        assert_eq!(p.buffers(), giant(1, 10_000, 5).buffers());
        let config = giant_config(10_000, 5);
        assert_eq!(config.name, "giant-010000@5%");
    }

    #[test]
    fn inputs_are_deterministic() {
        let a = sweep_inputs(12);
        let b = sweep_inputs(12);
        assert_eq!(a.len(), 12);
        for ((na, ba), (nb, bb)) in a.iter().zip(&b) {
            assert_eq!(na, nb);
            assert_eq!(ba, bb);
        }
    }

    #[test]
    fn configs_multiply_by_slack_factors() {
        let configs = sweep_configs(10);
        assert_eq!(configs.len(), 10 * SLACK_PERCENTS.len());
        for c in &configs {
            assert!(c.problem.max_contention() <= c.problem.capacity());
        }
    }

    #[test]
    fn full_sweep_shape_matches_paper() {
        // 596 inputs x 2 memory sizes = 1,192 configurations.
        let inputs = sweep_inputs(596);
        assert_eq!(inputs.len(), 596);
        assert_eq!(inputs.len() * SLACK_PERCENTS.len(), 1192);
    }

    #[test]
    fn families_cover_all_six() {
        let names: Vec<String> = sweep_inputs(6).into_iter().map(|(n, _)| n).collect();
        let prefixes: Vec<&str> = names.iter().map(|n| n.split('-').next().unwrap()).collect();
        assert_eq!(
            prefixes,
            vec!["model", "soup", "plateau", "resid", "branchy", "aligned"]
        );
    }

    #[test]
    fn every_input_is_nonempty_and_valid() {
        for (name, buffers) in sweep_inputs(24) {
            assert!(!buffers.is_empty(), "{name} is empty");
            let p = problem_with_slack(buffers, 10);
            assert!(p.max_contention() <= p.capacity(), "{name}");
        }
    }
}
