//! A small dataflow-graph builder that lowers to buffer live ranges.
//!
//! Model generators describe a schedule of operators; each operator
//! consumes tensors (extending their live ranges) and produces new ones.
//! Lowering yields exactly the `(start, end, size, align)` tuples the
//! allocator sees — the same shape as the on-device allocator inputs the
//! paper's evaluation replays (§7).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use tela_model::{Buffer, Size, TimeStep};

/// Identifies a tensor produced during graph construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TensorId(usize);

#[derive(Debug, Clone, Copy)]
struct Tensor {
    size: Size,
    align: Size,
    produced: TimeStep,
    last_use: TimeStep,
}

/// Builds buffer live ranges from an operator schedule.
///
/// # Example
///
/// ```
/// use tela_workloads::GraphBuilder;
///
/// let mut g = GraphBuilder::new(7);
/// let a = g.produce(128);
/// g.step(1);
/// let b = g.produce(64);
/// g.consume(a);
/// g.step(1);
/// g.consume(b);
/// let buffers = g.finish();
/// assert_eq!(buffers.len(), 2);
/// assert_eq!(buffers[0].lifetime(), 2); // `a` lives through its consumer
/// ```
#[derive(Debug)]
pub struct GraphBuilder {
    time: TimeStep,
    tensors: Vec<Tensor>,
    rng: StdRng,
}

impl GraphBuilder {
    /// Creates a builder whose size jitter is seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        GraphBuilder {
            time: 0,
            tensors: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Current logical time.
    pub fn time(&self) -> TimeStep {
        self.time
    }

    /// Advances logical time by `dur` steps (one operator slot each).
    pub fn step(&mut self, dur: TimeStep) {
        self.time += dur;
    }

    /// Produces a tensor at the current time with no alignment
    /// constraint; it stays live at least one step.
    pub fn produce(&mut self, size: Size) -> TensorId {
        self.produce_aligned(size, 1)
    }

    /// Produces a tensor with an alignment requirement.
    ///
    /// # Panics
    ///
    /// Panics if `size` or `align` is zero.
    pub fn produce_aligned(&mut self, size: Size, align: Size) -> TensorId {
        assert!(size > 0, "tensor size must be positive");
        assert!(align > 0, "tensor alignment must be positive");
        let id = TensorId(self.tensors.len());
        self.tensors.push(Tensor {
            size,
            align,
            produced: self.time,
            last_use: self.time + 1,
        });
        id
    }

    /// Marks `tensor` as consumed by an operator at the current time,
    /// extending its live range through this step.
    pub fn consume(&mut self, tensor: TensorId) {
        let t = &mut self.tensors[tensor.0];
        t.last_use = t.last_use.max(self.time + 1);
    }

    /// A scratch buffer used only by the operator at the current time.
    pub fn scratch(&mut self, size: Size) {
        let _ = self.produce(size);
    }

    /// The size of a previously produced tensor.
    pub fn size_of(&self, tensor: TensorId) -> Size {
        self.tensors[tensor.0].size
    }

    /// A deterministic jittered size: `base ± pct%`.
    pub fn jitter(&mut self, base: Size, pct: u32) -> Size {
        if pct == 0 || base == 0 {
            return base.max(1);
        }
        let spread = (base * u64::from(pct)) / 100;
        let lo = base.saturating_sub(spread).max(1);
        let hi = base + spread;
        self.rng.random_range(lo..=hi)
    }

    /// A deterministic uniform draw in `[lo, hi]`.
    pub fn uniform(&mut self, lo: u64, hi: u64) -> u64 {
        self.rng.random_range(lo..=hi)
    }

    /// Lowers the graph to buffer live ranges, in production order.
    pub fn finish(self) -> Vec<Buffer> {
        self.tensors
            .into_iter()
            .map(|t| Buffer::new(t.produced, t.last_use, t.size).with_align(t.align))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unconsumed_tensor_lives_one_step() {
        let mut g = GraphBuilder::new(0);
        g.step(3);
        g.produce(10);
        let b = g.finish();
        assert_eq!((b[0].start(), b[0].end()), (3, 4));
    }

    #[test]
    fn consumption_extends_live_range() {
        let mut g = GraphBuilder::new(0);
        let t = g.produce(10);
        g.step(5);
        g.consume(t);
        let b = g.finish();
        assert_eq!((b[0].start(), b[0].end()), (0, 6));
    }

    #[test]
    fn multiple_consumers_keep_latest() {
        let mut g = GraphBuilder::new(0);
        let t = g.produce(10);
        g.step(2);
        g.consume(t);
        g.step(4);
        g.consume(t);
        let b = g.finish();
        assert_eq!(b[0].end(), 7);
    }

    #[test]
    fn alignment_preserved() {
        let mut g = GraphBuilder::new(0);
        g.produce_aligned(8, 64);
        let b = g.finish();
        assert_eq!(b[0].align(), 64);
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let mut g1 = GraphBuilder::new(9);
        let mut g2 = GraphBuilder::new(9);
        for _ in 0..50 {
            let a = g1.jitter(100, 20);
            let b = g2.jitter(100, 20);
            assert_eq!(a, b);
            assert!((80..=120).contains(&a));
        }
    }

    #[test]
    fn zero_jitter_is_identity() {
        let mut g = GraphBuilder::new(1);
        assert_eq!(g.jitter(77, 0), 77);
    }
}
