//! Microbenchmark inputs (paper §7.1, Table 1).
//!
//! These inputs require no backtracking and stress specific parts of the
//! allocator: `non-overlapping-N` exercises the step machinery with an
//! idle constraint store, `full-overlap-N` exercises the quadratic pair
//! set (100 blocks → 10,000 ordering constraints → every step pays
//! propagation cost).

use tela_model::{Buffer, Problem};

/// `non-overlapping-N`: `N` blocks that never coexist, with ample
/// memory — the CP solver has no pairs to track.
///
/// # Example
///
/// ```
/// let p = tela_workloads::micro::non_overlapping(1000);
/// assert_eq!(p.len(), 1000);
/// assert_eq!(p.overlapping_pairs().count(), 0);
/// ```
pub fn non_overlapping(n: u32) -> Problem {
    let buffers: Vec<Buffer> = (0..n)
        .map(|i| {
            // Vary sizes deterministically so free-space handling is
            // exercised without randomness.
            let size = 64 + u64::from(i % 13) * 16;
            Buffer::new(i, i + 1, size)
        })
        .collect();
    let capacity = buffers.iter().map(|b| b.size()).max().unwrap_or(1) * 2;
    Problem::new(buffers, capacity).expect("buffers fit individually")
}

/// `full-overlap-N`: `N` blocks all live at once, with exactly enough
/// memory for all of them — the pair set is `N·(N-1)/2`.
///
/// # Example
///
/// ```
/// let p = tela_workloads::micro::full_overlap(100);
/// assert_eq!(p.overlapping_pairs().count(), 100 * 99 / 2);
/// assert_eq!(p.max_contention(), p.capacity());
/// ```
pub fn full_overlap(n: u32) -> Problem {
    let buffers: Vec<Buffer> = (0..n)
        .map(|i| Buffer::new(0, 8, 16 + u64::from(i % 7) * 4))
        .collect();
    let capacity = buffers.iter().map(|b| b.size()).sum();
    Problem::new(buffers, capacity).expect("capacity is the exact sum")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn non_overlapping_has_no_pairs() {
        let p = non_overlapping(50);
        assert_eq!(p.overlapping_pairs().count(), 0);
        assert_eq!(p.len(), 50);
    }

    #[test]
    fn full_overlap_pairs_are_quadratic() {
        let p = full_overlap(40);
        assert_eq!(p.overlapping_pairs().count(), 40 * 39 / 2);
    }

    #[test]
    fn full_overlap_is_an_exact_fit() {
        let p = full_overlap(20);
        assert_eq!(p.max_contention(), p.capacity());
    }

    #[test]
    fn sizes_vary_deterministically() {
        let a = non_overlapping(100);
        let b = non_overlapping(100);
        assert_eq!(a, b);
        let distinct: std::collections::HashSet<u64> =
            a.buffers().iter().map(|x| x.size()).collect();
        assert!(distinct.len() > 1);
    }
}
