//! Synthetic workload generators for the TelaMalloc reproduction.
//!
//! The paper evaluates on proprietary Pixel 6 model traces (FPN,
//! ConvNet2D, Inception-ResNet, Face Detection, OpenPose, StereoNet,
//! Segmentation, ResNet-152, a saliency model, and two anonymized image
//! models, plus SRGAN in the ML long-tail study). Those traces are not
//! public, so this crate generates deterministic synthetic equivalents
//! shaped after each model's public architecture: the allocation problem
//! depends only on the multiset of `(start, end, size, align)` tuples,
//! and these generators reproduce the structural features that make each
//! model easy or hard (skip connections → long-lived buffers, multi-
//! branch cells → high contention plateaus, staged refinement → phase
//! structure, upsampling → late giant buffers).
//!
//! All generators are pure functions of `(spec, seed)`.
//!
//! # Example
//!
//! ```
//! use tela_workloads::{ModelKind, problem_with_slack};
//!
//! let buffers = ModelKind::OpenPose.generate(42);
//! let problem = problem_with_slack(buffers, 10); // 110% of contention
//! assert!(problem.len() > 300);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod graph;
pub mod micro;
mod models;
pub mod sweep;

pub use graph::GraphBuilder;
pub use models::{srgan_portion, ModelKind};

use tela_model::{Buffer, Problem, Size};

/// Builds a problem whose capacity is `(100 + slack_percent)%` of the
/// buffer set's maximum contention — the paper benchmarks at 110% of the
/// minimum required memory (§7), and maximum contention is the
/// structural lower bound on that minimum.
///
/// # Panics
///
/// Panics if `buffers` is empty.
pub fn problem_with_slack(buffers: Vec<Buffer>, slack_percent: u32) -> Problem {
    assert!(!buffers.is_empty(), "workload has no buffers");
    let probe = Problem::new(buffers, Size::MAX).expect("unbounded problem is valid");
    let contention = probe.max_contention();
    let capacity = contention
        .saturating_mul(u64::from(100 + slack_percent))
        .div_ceil(100)
        .max(1);
    probe
        .with_capacity(capacity)
        .expect("slack capacity fits every buffer")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slack_scales_contention() {
        let buffers = vec![Buffer::new(0, 4, 100), Buffer::new(2, 6, 100)];
        let p = problem_with_slack(buffers, 10);
        assert_eq!(p.max_contention(), 200);
        assert_eq!(p.capacity(), 220);
    }

    #[test]
    fn zero_slack_is_tight() {
        let buffers = vec![Buffer::new(0, 4, 7)];
        let p = problem_with_slack(buffers, 0);
        assert_eq!(p.capacity(), 7);
    }

    #[test]
    #[should_panic(expected = "no buffers")]
    fn empty_workload_rejected() {
        let _ = problem_with_slack(Vec::new(), 10);
    }
}
