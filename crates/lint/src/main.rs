//! CLI for `tela-lint`. Exit codes: 0 clean, 1 violations or stale
//! baseline, 2 usage/setup error.

use std::path::PathBuf;
use std::process::ExitCode;

use tela_lint::baseline::Baseline;
use tela_lint::engine;
use tela_lint::manifest::{rules, Manifest};

const USAGE: &str = "\
tela-lint — workspace-invariant static analyzer

USAGE:
    cargo run -p tela-lint -- <COMMAND> [OPTIONS]

COMMANDS:
    check    Scan the workspace and compare against lint-baseline.json
    rules    List the rule set with rationales
    help     Show this message

OPTIONS (check):
    --root <DIR>        Workspace root (default: auto-detected from cwd)
    --baseline <FILE>   Baseline path (default: <root>/lint-baseline.json)
    --update-baseline   Rewrite the baseline from this scan (the ratchet)
    --no-baseline       Ignore the baseline: report every violation

Inline suppression:
    // tela-lint: allow(<rule>, reason = \"why this site is sound\")
Hot-path marking (enables no-hot-alloc for the next fn):
    // tela-lint: hot-path
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = args.first().map(String::as_str).unwrap_or("check");
    match command {
        "check" => check(&args[1..]),
        "rules" => {
            print_rules();
            ExitCode::SUCCESS
        }
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("tela-lint: unknown command `{other}`\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn print_rules() {
    let entries: &[(&str, &str)] = &[
        (
            rules::NO_SOLVE_PATH_PANIC,
            "no unwrap/expect/panic!/slice-indexing in solve-hot-path modules \
             (CP search & propagate, portfolio, resilience ladder, heuristic \
             placers, ILP baseline); degrade through typed errors instead",
        ),
        (
            rules::NO_HOT_ALLOC,
            "no allocating constructs (Vec::new, to_vec, clone, Box::new, \
             format!, collect, …) inside functions marked `// tela-lint: \
             hot-path`; static face of the counting-allocator tests",
        ),
        (
            rules::DETERMINISTIC_CLOCK,
            "Instant::now/SystemTime only inside the tela-trace clock and the \
             Budget/fault machinery; everything else stays logically clocked \
             so traces replay byte-identically",
        ),
        (
            rules::POISON_PROOF_LOCKS,
            "every .lock() recovers from poisoning via \
             .unwrap_or_else(PoisonError::into_inner); a panicked portfolio \
             worker must not wedge the race bookkeeping",
        ),
        (
            rules::SCOPED_THREADS_ONLY,
            "std::thread::spawn only inside the portfolio module; all other \
             concurrency uses scoped threads that join, cancel, and isolate \
             panics",
        ),
        (
            rules::FEATURE_GATE_HYGIENE,
            "cfg(feature = …) references must be declared in the crate's \
             [features] table, and declared trace/fault-inject/\
             debug-invariants features must gate code or forward",
        ),
        (
            rules::SUPPRESSION_HYGIENE,
            "allow(…) needs a reason and must still suppress something; \
             malformed tela-lint directives are errors",
        ),
    ];
    for (id, rationale) in entries {
        println!("{id}\n    {rationale}\n");
    }
}

fn check(args: &[String]) -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut update = false;
    let mut no_baseline = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => root = it.next().map(PathBuf::from),
            "--baseline" => baseline_path = it.next().map(PathBuf::from),
            "--update-baseline" => update = true,
            "--no-baseline" => no_baseline = true,
            other => {
                eprintln!("tela-lint: unknown option `{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let Some(root) = root.or_else(find_root) else {
        eprintln!(
            "tela-lint: could not find the workspace root (no Cargo.toml with \
             [workspace] above the current directory); pass --root"
        );
        return ExitCode::from(2);
    };
    let baseline_path = baseline_path.unwrap_or_else(|| root.join("lint-baseline.json"));

    let manifest = Manifest::default();
    let report = match engine::scan_workspace(&root, &manifest) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("tela-lint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };
    let fresh = Baseline::from_diagnostics(&report.diagnostics);

    println!(
        "tela-lint: scanned {} files across {} crates ({} violation(s), {} suppressed)",
        report.files_scanned,
        report.crates_scanned,
        fresh.total(),
        report.suppressed
    );

    if update {
        if let Err(e) = std::fs::write(&baseline_path, fresh.render()) {
            eprintln!("tela-lint: cannot write {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        println!(
            "tela-lint: baseline written to {} ({} entries)",
            baseline_path.display(),
            fresh.total()
        );
        return ExitCode::SUCCESS;
    }

    if no_baseline {
        for d in &report.diagnostics {
            println!("{d}");
        }
        return if report.diagnostics.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    let committed = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => match Baseline::parse(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!(
                    "tela-lint: {} is malformed ({e}); regenerate with \
                     --update-baseline",
                    baseline_path.display()
                );
                return ExitCode::FAILURE;
            }
        },
        Err(_) => {
            eprintln!(
                "tela-lint: no baseline at {}; run with --update-baseline to \
                 create the ratchet",
                baseline_path.display()
            );
            return ExitCode::FAILURE;
        }
    };

    let diff = committed.diff(&fresh);
    if diff.is_clean() {
        println!(
            "tela-lint: OK — no new violations; {} baselined (ratchet down by \
             fixing and re-running with --update-baseline)",
            committed.total()
        );
        return ExitCode::SUCCESS;
    }

    for (rule, file, base, found) in &diff.grown {
        println!("NEW: [{rule}] {file}: {found} violation(s), baseline allows {base}:");
        for d in report
            .diagnostics
            .iter()
            .filter(|d| d.rule == rule && &d.path == file)
        {
            println!("  {d}");
        }
    }
    for (rule, file, base, found) in &diff.stale {
        println!(
            "STALE: [{rule}] {file}: baseline says {base}, scan found {found} — \
             ratchet down with --update-baseline"
        );
    }
    println!(
        "tela-lint: FAILED — {} new, {} stale",
        diff.grown.len(),
        diff.stale.len()
    );
    ExitCode::FAILURE
}

/// Walks up from the current directory to the first `Cargo.toml`
/// containing a `[workspace]` section.
fn find_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let candidate = dir.join("Cargo.toml");
        if candidate.is_file() {
            if let Ok(text) = std::fs::read_to_string(&candidate) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
