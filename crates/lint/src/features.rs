//! `feature-gate-hygiene`: cross-checks each crate's `cfg(feature =
//! "…")` references against its `Cargo.toml` `[features]` table.
//!
//! Two failure modes:
//! 1. a source file gates on a feature the crate never declares — the
//!    gate silently never fires, so "gated" code is dead (or worse,
//!    unconditionally compiled via a typo'd twin);
//! 2. a declared *invariant* feature (`trace`, `fault-inject`,
//!    `debug-invariants`) is neither referenced in any `cfg` nor
//!    forwarded to a dependency's feature — the knob is wired to
//!    nothing, and the CI feature matrix is testing a no-op.

use crate::manifest::{rules, Manifest};
use crate::rules::Diagnostic;
use crate::source::SourceFile;

/// One `name = […]` entry of a `[features]` table.
#[derive(Debug, Clone)]
pub struct FeatureDecl {
    pub name: String,
    /// 1-based line of the declaration in `Cargo.toml`.
    pub line: u32,
    /// True when the value array names at least one dependency feature
    /// (`"tela-cp/trace"`): forwarding is a legitimate use on its own.
    pub forwards: bool,
}

/// The slice of a crate's `Cargo.toml` the hygiene rule needs.
#[derive(Debug, Clone)]
pub struct CrateManifest {
    /// Crate name from `[package] name = "…"` (falls back to the
    /// directory name the caller supplies).
    pub name: String,
    /// Repo-relative path of the `Cargo.toml`.
    pub path: String,
    pub features: Vec<FeatureDecl>,
}

/// Extracts `[package] name` and the `[features]` table. Line-oriented
/// on purpose: workspace `Cargo.toml`s are machine-edited and flat, and
/// a full TOML parser is exactly the kind of dependency this crate
/// refuses.
pub fn parse_cargo_toml(path: &str, text: &str, fallback_name: &str) -> CrateManifest {
    let mut name = fallback_name.to_string();
    let mut features = Vec::new();
    let mut section = String::new();
    let mut pending: Option<(String, u32, String)> = None; // multi-line array
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx as u32 + 1;
        let line = raw.trim();
        if let Some((decl_name, decl_line, acc)) = &mut pending {
            acc.push_str(raw);
            if balanced(acc) {
                features.push(FeatureDecl {
                    name: decl_name.clone(),
                    line: *decl_line,
                    forwards: acc.contains('"'),
                });
                pending = None;
            }
            continue;
        }
        if line.starts_with('[') {
            section = line.to_string();
            continue;
        }
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if section == "[package]" && name == fallback_name {
            if let Some(v) = line.strip_prefix("name") {
                let v = v.trim_start().trim_start_matches('=').trim();
                if let Some(n) = v.strip_prefix('"').and_then(|v| v.split('"').next()) {
                    name = n.to_string();
                }
            }
        }
        if section == "[features]" {
            if let Some((key, value)) = line.split_once('=') {
                let key = key.trim();
                if key.is_empty() || key == "default" {
                    continue;
                }
                if balanced(value) {
                    features.push(FeatureDecl {
                        name: key.to_string(),
                        line: line_no,
                        forwards: value.contains('"'),
                    });
                } else {
                    pending = Some((key.to_string(), line_no, value.to_string()));
                }
            }
        }
    }
    CrateManifest {
        name,
        path: path.to_string(),
        features,
    }
}

/// Are `[`/`]` balanced in `s` (ignoring string contents — feature
/// arrays never contain brackets inside strings)?
fn balanced(s: &str) -> bool {
    let opens = s.bytes().filter(|&b| b == b'[').count();
    let closes = s.bytes().filter(|&b| b == b']').count();
    opens == closes
}

/// Every `feature = "…"` reference in `file`, as `(name, line, col)`.
/// In practice this token sequence only occurs inside `cfg`/`cfg_attr`
/// attributes and `cfg!` macros.
pub fn feature_refs(file: &SourceFile) -> Vec<(String, u32, u32)> {
    let mut refs = Vec::new();
    for i in 0..file.tokens.len() {
        if file.is_ident(i, "feature")
            && file.is_punct(i + 1, '=')
            && file
                .tokens
                .get(i + 2)
                .is_some_and(|t| t.kind == crate::lexer::TokenKind::Str)
        {
            let lit = file.tok_str(i + 2);
            let name = lit.trim_matches(|c| c == '"' || c == 'r' || c == '#');
            let t = &file.tokens[i + 2];
            refs.push((name.to_string(), t.line, t.col));
        }
    }
    refs
}

/// Runs the hygiene checks for one crate.
pub fn check_feature_hygiene(
    krate: &CrateManifest,
    files: &[&SourceFile],
    manifest: &Manifest,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut referenced: Vec<String> = Vec::new();
    for file in files {
        for (name, line, col) in feature_refs(file) {
            if !krate.features.iter().any(|f| f.name == name) {
                out.push(Diagnostic {
                    rule: rules::FEATURE_GATE_HYGIENE,
                    path: file.path.clone(),
                    line,
                    col,
                    message: format!(
                        "cfg references feature \"{name}\" which {} does not declare \
                         in its [features] table ({})",
                        krate.name, krate.path
                    ),
                });
            }
            referenced.push(name);
        }
    }
    for decl in &krate.features {
        let invariant = manifest.invariant_features.iter().any(|f| f == &decl.name);
        if invariant && !decl.forwards && !referenced.iter().any(|r| r == &decl.name) {
            out.push(Diagnostic {
                rule: rules::FEATURE_GATE_HYGIENE,
                path: krate.path.clone(),
                line: decl.line,
                col: 1,
                message: format!(
                    "feature \"{}\" is declared but neither cfg-gates any code in \
                     {} nor forwards to a dependency feature; the knob is wired to \
                     nothing",
                    decl.name, krate.name
                ),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOML: &str = r#"
[package]
name = "tela-demo"

[features]
# gates the deep event stream
trace = []
fault-inject = ["tela-model/fault-inject"]
debug-invariants = []
"#;

    #[test]
    fn parses_package_and_features() {
        let m = parse_cargo_toml("crates/demo/Cargo.toml", TOML, "demo");
        assert_eq!(m.name, "tela-demo");
        assert_eq!(m.features.len(), 3);
        assert!(!m.features[0].forwards);
        assert!(m.features[1].forwards);
    }

    #[test]
    fn undeclared_reference_is_flagged_at_site() {
        let m = parse_cargo_toml("crates/demo/Cargo.toml", TOML, "demo");
        let f = SourceFile::parse(
            "crates/demo/src/lib.rs",
            "#[cfg(feature = \"trase\")]\nfn gated() {}\n",
        );
        let d = check_feature_hygiene(&m, &[&f], &Manifest::default());
        // The typo'd reference, plus `trace` and `debug-invariants` now
        // being declared-but-unused.
        let typo: Vec<_> = d
            .iter()
            .filter(|d| d.message.contains("\"trase\""))
            .collect();
        assert_eq!(typo.len(), 1);
        assert_eq!(typo[0].line, 1);
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn unused_invariant_feature_is_flagged_unless_forwarding() {
        let m = parse_cargo_toml("crates/demo/Cargo.toml", TOML, "demo");
        let f = SourceFile::parse(
            "crates/demo/src/lib.rs",
            "#[cfg(feature = \"trace\")]\nfn gated() {}\n",
        );
        let d = check_feature_hygiene(&m, &[&f], &Manifest::default());
        // `trace` referenced, `fault-inject` forwards; `debug-invariants`
        // is declared and wired to nothing.
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("debug-invariants"));
        assert!(d[0].path.ends_with("Cargo.toml"));
    }
}
