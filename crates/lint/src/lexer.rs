//! A lightweight Rust scanner: tokens plus line comments, with enough
//! structure (strings, char-vs-lifetime, nested block comments, raw
//! strings, attributes) that rule checks never fire inside literals or
//! doc text. Deliberately *not* a parser — the rules only need token
//! sequences, brace matching, and attribute spans, so a full grammar
//! would be cost without benefit (and a dependency magnet).

/// What a token is. Punctuation is kept one character at a time; rules
/// match multi-character operators (`::`, `->`) as adjacent puncts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (including raw `r#ident`s, prefix stripped).
    Ident,
    /// A single punctuation character.
    Punct(char),
    /// String literal of any flavor (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// Character or byte literal (`'a'`, `b'\n'`).
    Char,
    /// Numeric literal (integer or the leading part of a float).
    Num,
    /// Lifetime (`'a`) or loop label.
    Lifetime,
}

/// One token with its position. `start..end` is the byte span in the
/// source text; `line`/`col` are 1-based.
#[derive(Debug, Clone, Copy)]
pub struct Token {
    pub kind: TokenKind,
    pub start: usize,
    pub end: usize,
    pub line: u32,
    pub col: u32,
}

/// One `//` line comment (block comments are skipped: directives live in
/// line comments only, by design — they must be grep-able line-locally).
#[derive(Debug, Clone)]
pub struct Comment {
    /// Comment text including the leading slashes.
    pub text: String,
    pub line: u32,
    pub col: u32,
}

/// Scanner output: the token stream plus every line comment.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

/// Scans `text` into tokens and line comments. Never fails: unterminated
/// literals extend to end-of-file, unknown bytes become punctuation.
pub fn lex(text: &str) -> Lexed {
    Scanner::new(text).run()
}

struct Scanner<'a> {
    text: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
    out: Lexed,
}

impl<'a> Scanner<'a> {
    fn new(text: &'a str) -> Self {
        Scanner {
            text,
            bytes: text.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
            out: Lexed::default(),
        }
    }

    fn peek(&self, ahead: usize) -> u8 {
        self.bytes.get(self.pos + ahead).copied().unwrap_or(0)
    }

    /// Advances one byte, maintaining line/col. Multi-byte UTF-8
    /// continuation bytes advance the column once per leading byte,
    /// which keeps columns byte-accurate enough for diagnostics.
    fn bump(&mut self) {
        if self.peek(0) == b'\n' {
            self.line += 1;
            self.col = 1;
        } else if !is_utf8_continuation(self.peek(0)) {
            self.col += 1;
        }
        self.pos += 1;
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    fn push(&mut self, kind: TokenKind, start: usize, line: u32, col: u32) {
        self.out.tokens.push(Token {
            kind,
            start,
            end: self.pos,
            line,
            col,
        });
    }

    fn run(mut self) -> Lexed {
        while self.pos < self.bytes.len() {
            let (start, line, col) = (self.pos, self.line, self.col);
            let c = self.peek(0);
            match c {
                b' ' | b'\t' | b'\r' | b'\n' => self.bump(),
                b'/' if self.peek(1) == b'/' => self.line_comment(),
                b'/' if self.peek(1) == b'*' => self.block_comment(),
                b'"' => {
                    self.string_literal();
                    self.push(TokenKind::Str, start, line, col);
                }
                b'\'' => self.char_or_lifetime(start, line, col),
                b'r' | b'b' if self.is_literal_prefix() => {
                    self.prefixed_literal(start, line, col);
                }
                _ if is_ident_start(c) => {
                    while is_ident_continue(self.peek(0)) {
                        self.bump();
                    }
                    self.push(TokenKind::Ident, start, line, col);
                }
                b'0'..=b'9' => {
                    while is_ident_continue(self.peek(0)) {
                        self.bump();
                    }
                    self.push(TokenKind::Num, start, line, col);
                }
                _ => {
                    self.bump();
                    self.push(TokenKind::Punct(c as char), start, line, col);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        let (start, line, col) = (self.pos, self.line, self.col);
        while self.pos < self.bytes.len() && self.peek(0) != b'\n' {
            self.bump();
        }
        self.out.comments.push(Comment {
            text: self.text[start..self.pos].to_string(),
            line,
            col,
        });
    }

    fn block_comment(&mut self) {
        self.bump_n(2);
        let mut depth = 1usize;
        while self.pos < self.bytes.len() && depth > 0 {
            if self.peek(0) == b'/' && self.peek(1) == b'*' {
                depth += 1;
                self.bump_n(2);
            } else if self.peek(0) == b'*' && self.peek(1) == b'/' {
                depth -= 1;
                self.bump_n(2);
            } else {
                self.bump();
            }
        }
    }

    /// Consumes a `"…"` literal, honoring `\"` and `\\` escapes.
    fn string_literal(&mut self) {
        self.bump(); // opening quote
        while self.pos < self.bytes.len() {
            match self.peek(0) {
                b'\\' => self.bump_n(2),
                b'"' => {
                    self.bump();
                    return;
                }
                _ => self.bump(),
            }
        }
    }

    /// `'` starts either a char literal or a lifetime. Heuristic: if an
    /// identifier follows and is *not* closed by another `'`, it is a
    /// lifetime (`'a`, `'static`); otherwise a char literal (`'a'`,
    /// `'\n'`).
    fn char_or_lifetime(&mut self, start: usize, line: u32, col: u32) {
        if is_ident_start(self.peek(1)) {
            // Find the end of the identifier run after the quote.
            let mut k = 1;
            while is_ident_continue(self.peek(k)) {
                k += 1;
            }
            if self.peek(k) != b'\'' {
                self.bump_n(k);
                self.push(TokenKind::Lifetime, start, line, col);
                return;
            }
        }
        // Char literal: quote, (escape | char), closing quote.
        self.bump();
        if self.peek(0) == b'\\' {
            self.bump_n(2);
            // Multi-char escapes (\x7f, \u{..}) run to the closing quote.
            while self.pos < self.bytes.len() && self.peek(0) != b'\'' {
                self.bump();
            }
        } else if self.pos < self.bytes.len() {
            self.bump();
            while self.pos < self.bytes.len()
                && self.peek(0) != b'\''
                && is_utf8_continuation(self.peek(0))
            {
                self.bump();
            }
        }
        if self.peek(0) == b'\'' {
            self.bump();
        }
        self.push(TokenKind::Char, start, line, col);
    }

    /// True when the `r`/`b` at the cursor starts a literal (raw string,
    /// byte string, byte char, raw identifier) rather than an ident.
    fn is_literal_prefix(&self) -> bool {
        match (self.peek(0), self.peek(1)) {
            (b'r' | b'b', b'"') => true,
            (b'r', b'#') => true, // raw string r#"…"# or raw ident r#ident
            (b'b', b'\'') => true,
            (b'b', b'r') => self.peek(2) == b'"' || self.peek(2) == b'#',
            _ => false,
        }
    }

    fn prefixed_literal(&mut self, start: usize, line: u32, col: u32) {
        // Skip the prefix letters.
        while matches!(self.peek(0), b'r' | b'b') && self.pos - start < 2 {
            self.bump();
        }
        if self.peek(0) == b'#' && is_ident_start(self.peek(1)) {
            // Raw identifier r#ident: emit as Ident.
            self.bump();
            while is_ident_continue(self.peek(0)) {
                self.bump();
            }
            self.push(TokenKind::Ident, start, line, col);
            return;
        }
        let mut hashes = 0usize;
        while self.peek(0) == b'#' {
            hashes += 1;
            self.bump();
        }
        match self.peek(0) {
            b'"' => {
                if hashes == 0 {
                    // Only `b"…"` reaches here with escapes; raw strings
                    // (r"…") have no escapes, but treating both like a
                    // plain string is safe because `\"` cannot appear in
                    // our raw strings' grammar position unescaped.
                    self.raw_or_plain_string(hashes);
                } else {
                    self.raw_or_plain_string(hashes);
                }
                self.push(TokenKind::Str, start, line, col);
            }
            b'\'' => {
                self.char_or_lifetime(self.pos, line, col);
                // Re-tag the token we just pushed so the span covers the
                // b prefix.
                if let Some(last) = self.out.tokens.last_mut() {
                    last.start = start;
                    last.col = col;
                }
            }
            _ => {
                // `r#` followed by nothing useful: emit puncts and move on.
                self.push(TokenKind::Punct('#'), start, line, col);
            }
        }
    }

    /// Consumes a string opened at the cursor. `hashes > 0` means raw
    /// string closed by `"` + that many `#`; `hashes == 0` with a raw
    /// `r"` prefix still ends at the first unescaped quote, which is
    /// correct for every raw string that contains no `\"` sequence.
    fn raw_or_plain_string(&mut self, hashes: usize) {
        self.bump(); // opening quote
        while self.pos < self.bytes.len() {
            if hashes == 0 && self.peek(0) == b'\\' {
                self.bump_n(2);
                continue;
            }
            if self.peek(0) == b'"' {
                let mut ok = true;
                for k in 0..hashes {
                    if self.peek(1 + k) != b'#' {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    self.bump_n(1 + hashes);
                    return;
                }
            }
            self.bump();
        }
    }
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_'
}

fn is_ident_continue(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

fn is_utf8_continuation(c: u8) -> bool {
    (c & 0xC0) == 0x80
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).tokens.iter().map(|t| t.kind).collect()
    }

    fn texts(src: &str) -> Vec<String> {
        let lexed = lex(src);
        lexed
            .tokens
            .iter()
            .map(|t| src[t.start..t.end].to_string())
            .collect()
    }

    #[test]
    fn idents_puncts_numbers() {
        assert_eq!(texts("let x = 42;"), vec!["let", "x", "=", "42", ";"],);
        assert_eq!(
            kinds("a.b()"),
            vec![
                TokenKind::Ident,
                TokenKind::Punct('.'),
                TokenKind::Ident,
                TokenKind::Punct('('),
                TokenKind::Punct(')'),
            ]
        );
    }

    #[test]
    fn strings_hide_their_contents() {
        // The word `unwrap` inside a string must not produce an Ident.
        let toks = lex(r#"let s = "x.unwrap()";"#);
        assert!(toks.tokens.iter().all(|t| t.kind != TokenKind::Ident
            || &r#"let s = "x.unwrap()";"#[t.start..t.end] != "unwrap"));
        assert_eq!(kinds(r#""a\"b""#), vec![TokenKind::Str]);
    }

    #[test]
    fn raw_strings_and_byte_strings() {
        assert_eq!(
            kinds(r###"r#"has "quotes" inside"#"###),
            vec![TokenKind::Str]
        );
        assert_eq!(kinds(r#"b"bytes""#), vec![TokenKind::Str]);
        assert_eq!(kinds("b'\\n'"), vec![TokenKind::Char]);
    }

    #[test]
    fn lifetime_vs_char() {
        assert_eq!(
            kinds("&'a str"),
            vec![TokenKind::Punct('&'), TokenKind::Lifetime, TokenKind::Ident,]
        );
        assert_eq!(kinds("'a'"), vec![TokenKind::Char]);
        assert_eq!(kinds("'\\''"), vec![TokenKind::Char]);
        assert_eq!(kinds("'static"), vec![TokenKind::Lifetime]);
    }

    #[test]
    fn comments_are_collected_not_tokenized() {
        let lexed = lex("a // tela-lint: hot-path\nb /* block\nunwrap() */ c");
        let idents = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .count();
        assert_eq!(idents, 3);
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(lexed.comments[0].text, "// tela-lint: hot-path");
        assert_eq!(lexed.comments[0].line, 1);
    }

    #[test]
    fn nested_block_comments() {
        assert_eq!(kinds("/* a /* b */ c */ x"), vec![TokenKind::Ident]);
    }

    #[test]
    fn positions_are_one_based() {
        let lexed = lex("a\n  bb");
        assert_eq!((lexed.tokens[0].line, lexed.tokens[0].col), (1, 1));
        assert_eq!((lexed.tokens[1].line, lexed.tokens[1].col), (2, 3));
    }

    #[test]
    fn raw_identifier() {
        let lexed = lex("r#type");
        assert_eq!(lexed.tokens.len(), 1);
        assert_eq!(lexed.tokens[0].kind, TokenKind::Ident);
    }
}
