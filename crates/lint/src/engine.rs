//! Workspace scanning and suppression handling: walks the crates,
//! parses every source file, runs the per-file and per-crate rules,
//! applies inline `allow(…)` suppressions, and reports what survived.

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::features::{self, CrateManifest};
use crate::manifest::{rules, Manifest};
use crate::rules::{check_file, Diagnostic};
use crate::source::SourceFile;

/// Everything one scan produced.
#[derive(Debug, Default)]
pub struct Report {
    /// Violations that survived suppression, sorted by
    /// `(path, line, col, rule)`.
    pub diagnostics: Vec<Diagnostic>,
    /// How many diagnostics an inline `allow(…)` absorbed.
    pub suppressed: usize,
    pub files_scanned: usize,
    pub crates_scanned: usize,
}

/// Scans the workspace rooted at `root`.
///
/// Covered: every `crates/*/src/**/*.rs`, the root package's `src/` and
/// `examples/`, plus each crate's `Cargo.toml` for the feature-table
/// checks. Deliberately not covered: `tests/` directories (integration
/// tests unwrap and clock freely, like `#[cfg(test)]` code), `target/`,
/// and `compat/` (stand-ins that mirror external crates' APIs, not our
/// invariants).
///
/// # Errors
///
/// Only on I/O failure walking or reading the tree; individual files
/// that fail to read UTF-8 are skipped.
pub fn scan_workspace(root: &Path, manifest: &Manifest) -> io::Result<Report> {
    let mut units: Vec<(CrateManifest, Vec<SourceFile>)> = Vec::new();

    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = Vec::new();
    if crates_dir.is_dir() {
        for entry in fs::read_dir(&crates_dir)? {
            let path = entry?.path();
            if path.is_dir() && path.join("Cargo.toml").is_file() {
                crate_dirs.push(path);
            }
        }
    }
    crate_dirs.sort();

    for dir in crate_dirs {
        let fallback = dir
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let toml_path = dir.join("Cargo.toml");
        let toml_text = fs::read_to_string(&toml_path)?;
        let krate = features::parse_cargo_toml(&relative(root, &toml_path), &toml_text, &fallback);
        let mut files = Vec::new();
        collect_rs(root, &dir.join("src"), &mut files)?;
        units.push((krate, files));
    }

    // The root package: `src/` and `examples/` under the workspace
    // `Cargo.toml`.
    let root_toml = root.join("Cargo.toml");
    if root_toml.is_file() {
        let toml_text = fs::read_to_string(&root_toml)?;
        let krate = features::parse_cargo_toml("Cargo.toml", &toml_text, "workspace-root");
        let mut files = Vec::new();
        collect_rs(root, &root.join("src"), &mut files)?;
        collect_rs(root, &root.join("examples"), &mut files)?;
        units.push((krate, files));
    }

    let mut report = Report {
        crates_scanned: units.len(),
        ..Report::default()
    };
    let mut raw: Vec<Diagnostic> = Vec::new();
    for (krate, files) in &units {
        report.files_scanned += files.len();
        for file in files {
            raw.extend(check_file(file, manifest));
        }
        let refs: Vec<&SourceFile> = files.iter().collect();
        raw.extend(features::check_feature_hygiene(krate, &refs, manifest));
    }

    let all_files: Vec<&SourceFile> = units.iter().flat_map(|(_, fs)| fs.iter()).collect();
    let (survivors, suppressed) = apply_suppressions(raw, &all_files);
    report.suppressed = suppressed;
    report.diagnostics = survivors;
    report
        .diagnostics
        .sort_by(|a, b| (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule)));
    Ok(report)
}

/// Checks a single in-memory file (fixture tests and scratch edits).
/// Applies the same suppression semantics as a workspace scan, minus
/// the cross-file feature checks.
pub fn check_source(virtual_path: &str, text: &str, manifest: &Manifest) -> Vec<Diagnostic> {
    let file = SourceFile::parse(virtual_path, text);
    let raw = check_file(&file, manifest);
    let (mut survivors, _) = apply_suppressions(raw, &[&file]);
    survivors.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    survivors
}

/// Applies inline suppressions and appends suppression-hygiene
/// diagnostics (reason-less or unknown-rule or never-firing `allow`s,
/// malformed directives). Returns `(survivors, suppressed_count)`.
fn apply_suppressions(raw: Vec<Diagnostic>, files: &[&SourceFile]) -> (Vec<Diagnostic>, usize) {
    let by_path: BTreeMap<&str, &SourceFile> =
        files.iter().map(|f| (f.path.as_str(), *f)).collect();
    let mut used: BTreeMap<(String, usize), bool> = BTreeMap::new();
    for file in files {
        for (i, _) in file.suppressions.iter().enumerate() {
            used.insert((file.path.clone(), i), false);
        }
    }

    let mut survivors = Vec::new();
    let mut suppressed = 0usize;
    for d in raw {
        let mut absorbed = false;
        if let Some(file) = by_path.get(d.path.as_str()) {
            for (i, s) in file.suppressions.iter().enumerate() {
                // A suppression covers its own line (trailing comment)
                // and the line below (comment above the code).
                let covers = s.line == d.line || s.line + 1 == d.line;
                if covers && s.reasoned && s.rule == d.rule {
                    used.insert((file.path.clone(), i), true);
                    absorbed = true;
                    break;
                }
            }
        }
        if absorbed {
            suppressed += 1;
        } else {
            survivors.push(d);
        }
    }

    for file in files {
        for bad in &file.bad_directives {
            survivors.push(Diagnostic {
                rule: rules::SUPPRESSION_HYGIENE,
                path: file.path.clone(),
                line: bad.line,
                col: bad.col,
                message: bad.message.clone(),
            });
        }
        for (i, s) in file.suppressions.iter().enumerate() {
            if !s.reasoned {
                continue; // already reported as a bad directive
            }
            if !rules::ALL.contains(&s.rule.as_str()) {
                survivors.push(Diagnostic {
                    rule: rules::SUPPRESSION_HYGIENE,
                    path: file.path.clone(),
                    line: s.line,
                    col: s.col,
                    message: format!("allow({}) names an unknown rule", s.rule),
                });
            } else if !used[&(file.path.clone(), i)] {
                survivors.push(Diagnostic {
                    rule: rules::SUPPRESSION_HYGIENE,
                    path: file.path.clone(),
                    line: s.line,
                    col: s.col,
                    message: format!(
                        "allow({}) suppresses nothing — the violation is gone, \
                         delete the comment",
                        s.rule
                    ),
                });
            }
        }
    }
    (survivors, suppressed)
}

/// Recursively collects `.rs` files under `dir` (no-op when absent).
fn collect_rs(root: &Path, dir: &Path, out: &mut Vec<SourceFile>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(root, &path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            if let Ok(text) = fs::read_to_string(&path) {
                out.push(SourceFile::parse(&relative(root, &path), &text));
            }
        }
    }
    Ok(())
}

/// Repo-relative path with `/` separators.
fn relative(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reasoned_suppression_absorbs_and_unused_is_flagged() {
        let src = "\
fn f(o: Option<u32>) -> u32 {
    // tela-lint: allow(no-solve-path-panic, reason = \"proven Some by caller\")
    o.unwrap()
}
";
        let d = check_source("crates/cp/src/x.rs", src, &Manifest::default());
        assert!(d.is_empty(), "suppressed diagnostic leaked: {d:?}");

        let unused = "\
fn f() {}
// tela-lint: allow(no-solve-path-panic, reason = \"nothing here\")
fn g() {}
";
        let d = check_source("crates/cp/src/x.rs", unused, &Manifest::default());
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "suppression-hygiene");
        assert!(d[0].message.contains("suppresses nothing"));
    }

    #[test]
    fn reasonless_suppression_does_not_suppress() {
        let src = "\
fn f(o: Option<u32>) -> u32 {
    o.unwrap() // tela-lint: allow(no-solve-path-panic)
}
";
        let d = check_source("crates/cp/src/x.rs", src, &Manifest::default());
        // The unwrap survives AND the bad directive is reported.
        assert_eq!(d.len(), 2);
        assert!(d.iter().any(|d| d.rule == "no-solve-path-panic"));
        assert!(d.iter().any(|d| d.rule == "suppression-hygiene"));
    }

    #[test]
    fn unknown_rule_suppression_is_flagged() {
        let src = "// tela-lint: allow(no-such-rule, reason = \"typo\")\nfn f() {}\n";
        let d = check_source("crates/cp/src/x.rs", src, &Manifest::default());
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("unknown rule"));
    }
}
