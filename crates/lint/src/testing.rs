//! Shared test instrumentation: the counting global allocator behind
//! the workspace's "zero allocations on the hot path" regression tests.
//!
//! PR 2 introduced this as a private shim inside
//! `crates/cp/tests/propagate_allocs.rs`; it is promoted here so every
//! allocation-guard test binary (`propagate_allocs`, `trace_overhead`,
//! future arena work) installs the same audited shim instead of
//! re-rolling its own `unsafe impl GlobalAlloc`.
//!
//! Usage — the `#[global_allocator]` attribute must live in the test
//! binary itself:
//!
//! ```ignore
//! use tela_lint::testing::CountingAlloc;
//!
//! #[global_allocator]
//! static GLOBAL: CountingAlloc = CountingAlloc::new();
//!
//! let (allocs, result) = tela_lint::testing::count_allocations(|| vec![0u8; 64]);
//! assert!(allocs >= 1);
//! ```
//!
//! The counter is process-global and other threads (the libtest
//! harness) occasionally allocate inside the measurement window, so the
//! noise is purely additive; take the minimum over a few repetitions
//! (see [`min_allocations`]) for an exact figure.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);

/// A [`System`]-backed allocator that counts every `alloc`/`realloc`.
/// Deallocations are not counted: the guarded property is "no new heap
/// traffic", and frees always pair with a counted allocation.
pub struct CountingAlloc;

impl CountingAlloc {
    /// `const` constructor for `#[global_allocator]` statics.
    pub const fn new() -> Self {
        CountingAlloc
    }
}

impl Default for CountingAlloc {
    fn default() -> Self {
        CountingAlloc::new()
    }
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

/// Global allocation count so far. Only meaningful in a binary whose
/// `#[global_allocator]` is a [`CountingAlloc`]; otherwise stays zero.
pub fn allocation_count() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// Runs `f` and returns `(allocations during f, f's result)`.
pub fn count_allocations<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = allocation_count();
    let result = f();
    (allocation_count() - before, result)
}

/// Runs `f` `repetitions` times and returns its minimum allocation
/// count (with the last run's result). The minimum is exact for a
/// deterministic workload: harness-thread noise in the window is purely
/// additive.
pub fn min_allocations<R>(repetitions: usize, mut f: impl FnMut() -> R) -> (u64, R) {
    assert!(repetitions > 0, "need at least one repetition");
    let (mut best, mut result) = count_allocations(&mut f);
    for _ in 1..repetitions {
        let (allocs, r) = count_allocations(&mut f);
        best = best.min(allocs);
        result = r;
    }
    (best, result)
}
