//! A scanned source file: tokens plus the derived structure rules need —
//! test-code regions (skipped by every rule), `tela-lint:` directives
//! parsed out of line comments, and small token-sequence helpers.

use crate::lexer::{lex, Comment, Token, TokenKind};

/// An inline `// tela-lint: allow(rule, reason = "…")` suppression.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// The rule id being suppressed.
    pub rule: String,
    /// Whether a non-empty `reason = "…"` was supplied. Reason-less
    /// suppressions do not suppress — they are a hygiene violation.
    pub reasoned: bool,
    /// Line the comment sits on. It covers diagnostics on this line and
    /// the next, so it can trail the offending code or sit above it.
    pub line: u32,
    pub col: u32,
}

/// A malformed `tela-lint:` directive (unknown verb, bad syntax).
#[derive(Debug, Clone)]
pub struct BadDirective {
    pub line: u32,
    pub col: u32,
    pub message: String,
}

/// A fully scanned file ready for rule checks.
#[derive(Debug)]
pub struct SourceFile {
    /// Repo-relative path with `/` separators (stable across hosts).
    pub path: String,
    pub text: String,
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
    /// Byte ranges of `#[test]` / `#[cfg(test)]`-attributed items (and
    /// everything under a `#![cfg(test)]` inner attribute). Rules skip
    /// tokens inside these: tests unwrap and clock freely by design.
    test_regions: Vec<(usize, usize)>,
    pub suppressions: Vec<Suppression>,
    /// Lines carrying a `// tela-lint: hot-path` marker.
    pub hot_markers: Vec<u32>,
    pub bad_directives: Vec<BadDirective>,
}

impl SourceFile {
    /// Scans `text` under the given repo-relative path.
    pub fn parse(path: &str, text: &str) -> SourceFile {
        let lexed = lex(text);
        let test_regions = find_test_regions(&lexed.tokens, text);
        let mut suppressions = Vec::new();
        let mut hot_markers = Vec::new();
        let mut bad_directives = Vec::new();
        for c in &lexed.comments {
            parse_directive(c, &mut suppressions, &mut hot_markers, &mut bad_directives);
        }
        SourceFile {
            path: path.to_string(),
            text: text.to_string(),
            tokens: lexed.tokens,
            comments: lexed.comments,
            test_regions,
            suppressions,
            hot_markers,
            bad_directives,
        }
    }

    /// The source text of token `i`.
    pub fn tok_str(&self, i: usize) -> &str {
        let t = &self.tokens[i];
        &self.text[t.start..t.end]
    }

    /// Is token `i` the identifier `name`?
    pub fn is_ident(&self, i: usize, name: &str) -> bool {
        self.tokens
            .get(i)
            .is_some_and(|t| t.kind == TokenKind::Ident && self.tok_str(i) == name)
    }

    /// Is token `i` the punctuation `c`?
    pub fn is_punct(&self, i: usize, c: char) -> bool {
        self.tokens
            .get(i)
            .is_some_and(|t| t.kind == TokenKind::Punct(c))
    }

    /// Does `::` start at token `i`?
    pub fn is_path_sep(&self, i: usize) -> bool {
        self.is_punct(i, ':') && self.is_punct(i + 1, ':')
    }

    /// Is token `i` inside test code?
    pub fn in_test(&self, i: usize) -> bool {
        let pos = self.tokens[i].start;
        self.test_regions
            .iter()
            .any(|&(lo, hi)| pos >= lo && pos < hi)
    }

    /// Index of the matching close for the open bracket at `open`
    /// (`(`/`)`, `[`/`]`, `{`/`}`), or `tokens.len()` if unbalanced.
    pub fn matching_close(&self, open: usize) -> usize {
        let (o, c) = match self.tokens[open].kind {
            TokenKind::Punct('(') => ('(', ')'),
            TokenKind::Punct('[') => ('[', ']'),
            TokenKind::Punct('{') => ('{', '}'),
            _ => return self.tokens.len(),
        };
        let mut depth = 0usize;
        for j in open..self.tokens.len() {
            if self.is_punct(j, o) {
                depth += 1;
            } else if self.is_punct(j, c) {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
        }
        self.tokens.len()
    }
}

/// Parses one comment for a `tela-lint:` directive.
fn parse_directive(
    c: &Comment,
    suppressions: &mut Vec<Suppression>,
    hot_markers: &mut Vec<u32>,
    bad: &mut Vec<BadDirective>,
) {
    let body = c.text.trim_start_matches('/').trim();
    let Some(rest) = body.strip_prefix("tela-lint:") else {
        return;
    };
    let rest = rest.trim();
    if rest == "hot-path" {
        hot_markers.push(c.line);
        return;
    }
    if let Some(args) = rest
        .strip_prefix("allow(")
        .and_then(|r| r.strip_suffix(')'))
    {
        let (rule, tail) = match args.split_once(',') {
            Some((r, t)) => (r.trim(), t.trim()),
            None => (args.trim(), ""),
        };
        if rule.is_empty() {
            bad.push(BadDirective {
                line: c.line,
                col: c.col,
                message: "allow(…) names no rule".to_string(),
            });
            return;
        }
        let reasoned = tail
            .strip_prefix("reason")
            .map(|t| t.trim_start().trim_start_matches('='))
            .map(|t| {
                let t = t.trim();
                t.len() > 2 && t.starts_with('"') && t.ends_with('"')
            })
            .unwrap_or(false);
        if !reasoned {
            bad.push(BadDirective {
                line: c.line,
                col: c.col,
                message: format!(
                    "allow({rule}) has no reason — write allow({rule}, reason = \"…\")"
                ),
            });
        }
        suppressions.push(Suppression {
            rule: rule.to_string(),
            reasoned,
            line: c.line,
            col: c.col,
        });
        return;
    }
    bad.push(BadDirective {
        line: c.line,
        col: c.col,
        message: format!("unknown tela-lint directive `{rest}`"),
    });
}

/// Finds byte ranges of test code by walking attributes in the token
/// stream. An attribute is "testish" when it contains the ident `test`
/// outside a `not(…)` group: `#[test]`, `#[cfg(test)]`,
/// `#[cfg(all(test, …))]`, `#[cfg_attr(test, …)]`. The attributed item
/// extends to the first top-level `;` or the close of its first
/// top-level `{…}` block. An inner `#![cfg(test)]` marks the whole file.
fn find_test_regions(tokens: &[Token], text: &str) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let is_punct = |i: usize, c: char| {
        tokens
            .get(i)
            .is_some_and(|t: &Token| t.kind == TokenKind::Punct(c))
    };
    let mut i = 0;
    while i < tokens.len() {
        if !is_punct(i, '#') {
            i += 1;
            continue;
        }
        let inner = is_punct(i + 1, '!');
        let bracket = if inner { i + 2 } else { i + 1 };
        if !is_punct(bracket, '[') {
            i += 1;
            continue;
        }
        // Find the matching `]`.
        let mut depth = 0usize;
        let mut close = None;
        for j in bracket..tokens.len() {
            if is_punct(j, '[') {
                depth += 1;
            } else if is_punct(j, ']') {
                depth -= 1;
                if depth == 0 {
                    close = Some(j);
                    break;
                }
            }
        }
        let Some(close) = close else { break };
        if attr_is_testish(tokens, text, bracket + 1, close) {
            if inner {
                regions.push((tokens[i].start, text.len()));
                return regions;
            }
            if let Some(end) = item_end(tokens, close + 1, &is_punct) {
                regions.push((tokens[i].start, end));
            }
        }
        i = close + 1;
    }
    regions
}

/// Is there an ident `test` in `tokens[lo..hi]` outside a `not(…)`
/// group?
fn attr_is_testish(tokens: &[Token], text: &str, lo: usize, hi: usize) -> bool {
    let word = |t: &Token| &text[t.start..t.end];
    let mut j = lo;
    while j < hi {
        let t = &tokens[j];
        if t.kind == TokenKind::Ident {
            match word(t) {
                "not"
                    if tokens
                        .get(j + 1)
                        .is_some_and(|n| n.kind == TokenKind::Punct('(')) =>
                {
                    // Skip the whole not(…) group.
                    let mut depth = 0usize;
                    j += 1;
                    while j < hi {
                        match tokens[j].kind {
                            TokenKind::Punct('(') => depth += 1,
                            TokenKind::Punct(')') => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                }
                "test" => return true,
                _ => {}
            }
        }
        j += 1;
    }
    false
}

/// Span of the item following an attribute: from the attribute's first
/// token to the first top-level `;` or the close of the first top-level
/// brace block. Leading extra attributes are consumed into the item.
fn item_end(
    tokens: &[Token],
    mut k: usize,
    is_punct: &dyn Fn(usize, char) -> bool,
) -> Option<usize> {
    // Skip any further attributes stacked on the same item.
    while is_punct(k, '#') && is_punct(k + 1, '[') {
        let mut depth = 0usize;
        let mut j = k + 1;
        loop {
            if j >= tokens.len() {
                return None;
            }
            if is_punct(j, '[') {
                depth += 1;
            } else if is_punct(j, ']') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            j += 1;
        }
        k = j + 1;
    }
    let mut brace_depth = 0usize;
    let mut angle_guard = 0usize; // parens/brackets, so `;` in `[u8; 4]` is skipped
    for (j, tok) in tokens.iter().enumerate().skip(k) {
        if is_punct(j, '(') || is_punct(j, '[') {
            angle_guard += 1;
        } else if is_punct(j, ')') || is_punct(j, ']') {
            angle_guard = angle_guard.saturating_sub(1);
        } else if is_punct(j, '{') {
            brace_depth += 1;
        } else if is_punct(j, '}') {
            brace_depth -= 1;
            if brace_depth == 0 {
                return Some(tok.end);
            }
        } else if is_punct(j, ';') && brace_depth == 0 && angle_guard == 0 {
            return Some(tok.end);
        }
    }
    None
}
