//! The rule set. Each rule is a token-sequence check over a
//! [`SourceFile`]; `feature-gate-hygiene` additionally reads the crate's
//! `Cargo.toml`. Rules never fire inside string literals or comments
//! (the lexer hides those) nor inside test code (`#[test]` /
//! `#[cfg(test)]` regions), because tests unwrap, clock, and allocate
//! freely by design.

use crate::lexer::TokenKind;
use crate::manifest::{rules, Manifest};
use crate::source::SourceFile;

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule id (see [`crate::manifest::rules`]).
    pub rule: &'static str,
    /// Repo-relative path.
    pub path: String,
    pub line: u32,
    pub col: u32,
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {}",
            self.path, self.line, self.col, self.rule, self.message
        )
    }
}

/// Runs every per-file rule that applies to `file` under `manifest`.
pub fn check_file(file: &SourceFile, manifest: &Manifest) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if manifest.on_solve_path(&file.path) {
        no_solve_path_panic(file, &mut out);
    }
    no_hot_alloc(file, &mut out);
    if !manifest.clock_exempt(&file.path) {
        deterministic_clock(file, &mut out);
    }
    poison_proof_locks(file, &mut out);
    if !manifest.thread_exempt(&file.path) {
        scoped_threads_only(file, &mut out);
    }
    out
}

fn diag(file: &SourceFile, rule: &'static str, tok: usize, message: String) -> Diagnostic {
    let t = &file.tokens[tok];
    Diagnostic {
        rule,
        path: file.path.clone(),
        line: t.line,
        col: t.col,
        message,
    }
}

/// `no-solve-path-panic`: no `unwrap`/`expect`, no panic-family macros,
/// no slice/array indexing in solve-hot-path modules. A panic inside
/// the search kernel either aborts a production compile or (in the
/// portfolio) silently costs a variant; degrade through typed errors,
/// `Option`, or `SolveOutcome::GaveUp` instead.
fn no_solve_path_panic(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];
    for i in 0..file.tokens.len() {
        if file.in_test(i) {
            continue;
        }
        let t = &file.tokens[i];
        match t.kind {
            TokenKind::Ident => {
                let word = file.tok_str(i);
                let called = file.is_punct(i + 1, '(');
                let defined = i > 0 && file.is_ident(i - 1, "fn");
                if (word == "unwrap" || word == "expect") && called && !defined {
                    out.push(diag(
                        file,
                        rules::NO_SOLVE_PATH_PANIC,
                        i,
                        format!(
                            "`{word}()` can panic on the solve path; return a typed \
                             error or degrade to GaveUp/BestEffort"
                        ),
                    ));
                } else if PANIC_MACROS.contains(&word) && file.is_punct(i + 1, '!') {
                    out.push(diag(
                        file,
                        rules::NO_SOLVE_PATH_PANIC,
                        i,
                        format!(
                            "`{word}!` aborts the solve; solve-path modules must \
                             degrade, not panic"
                        ),
                    ));
                }
            }
            TokenKind::Punct('[') if i > 0 => {
                let prev = &file.tokens[i - 1];
                let indexing = matches!(
                    prev.kind,
                    TokenKind::Ident | TokenKind::Punct(')') | TokenKind::Punct(']')
                );
                // `ident [` is indexing only when the ident is an
                // expression, not a macro (`vec![`) or attribute
                // (`#[`), which the prev-token kinds already exclude.
                if indexing {
                    out.push(diag(
                        file,
                        rules::NO_SOLVE_PATH_PANIC,
                        i,
                        "slice/array indexing panics out of bounds on the solve \
                         path; use get()/get_mut() or suppress with the proven \
                         invariant as the reason"
                            .to_string(),
                    ));
                }
            }
            _ => {}
        }
    }
}

/// `no-hot-alloc`: no allocating constructs inside a function marked
/// `// tela-lint: hot-path`. This is the static face of the
/// counting-allocator regression tests: the dynamic test proves the
/// steady state allocates zero times, this rule stops the obvious
/// regressions before they run.
fn no_hot_alloc(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    const ALLOC_METHODS: &[&str] = &["to_vec", "to_owned", "to_string", "collect", "clone"];
    const ALLOC_TYPES: &[&str] = &[
        "Vec", "Box", "String", "HashMap", "BTreeMap", "HashSet", "BTreeSet", "VecDeque",
    ];
    const ALLOC_CTORS: &[&str] = &["new", "with_capacity", "from"];
    const ALLOC_MACROS: &[&str] = &["format", "vec"];
    const REF_COUNTED: &[&str] = &["Arc", "Rc"]; // Arc::clone is a refcount bump, not an allocation

    for &marker_line in &file.hot_markers {
        // The marker governs the next `fn` item below it.
        let Some(fn_tok) = file
            .tokens
            .iter()
            .position(|t| t.line > marker_line)
            .and_then(|from| (from..file.tokens.len()).find(|&i| file.is_ident(i, "fn")))
        else {
            out.push(Diagnostic {
                rule: rules::SUPPRESSION_HYGIENE,
                path: file.path.clone(),
                line: marker_line,
                col: 1,
                message: "hot-path marker is not followed by a function".to_string(),
            });
            continue;
        };
        // Body = first `{` after the signature's parens close.
        let mut paren_depth = 0usize;
        let mut body_open = None;
        for i in fn_tok..file.tokens.len() {
            match file.tokens[i].kind {
                TokenKind::Punct('(') => paren_depth += 1,
                TokenKind::Punct(')') => paren_depth -= 1,
                TokenKind::Punct('{') if paren_depth == 0 => {
                    body_open = Some(i);
                    break;
                }
                TokenKind::Punct(';') if paren_depth == 0 => break, // trait method decl
                _ => {}
            }
        }
        let Some(open) = body_open else { continue };
        let close = file.matching_close(open);
        for i in open..close {
            if file.in_test(i) || file.tokens[i].kind != TokenKind::Ident {
                continue;
            }
            let word = file.tok_str(i);
            let flag = |msg: String, out: &mut Vec<Diagnostic>| {
                out.push(diag(file, rules::NO_HOT_ALLOC, i, msg));
            };
            if ALLOC_METHODS.contains(&word) && file.is_punct(i + 1, '(') {
                // `Arc::clone(…)` / `Rc::clone(…)` are exempt.
                let qualifier_exempt = word == "clone"
                    && i >= 2
                    && file.is_path_sep(i - 2)
                    && i >= 3
                    && REF_COUNTED.iter().any(|q| file.is_ident(i - 3, q));
                if !qualifier_exempt {
                    flag(
                        format!(
                            "`{word}()` allocates inside a hot-path function; reuse a \
                             scratch buffer or hoist it out of the loop"
                        ),
                        out,
                    );
                }
            } else if ALLOC_TYPES.contains(&word)
                && file.is_path_sep(i + 1)
                && file
                    .tokens
                    .get(i + 3)
                    .is_some_and(|t| t.kind == TokenKind::Ident)
                && ALLOC_CTORS.contains(&file.tok_str(i + 3))
            {
                flag(
                    format!(
                        "`{word}::{}` constructs a heap container inside a hot-path \
                         function",
                        file.tok_str(i + 3)
                    ),
                    out,
                );
            } else if ALLOC_MACROS.contains(&word) && file.is_punct(i + 1, '!') {
                flag(
                    format!("`{word}!` allocates inside a hot-path function"),
                    out,
                );
            }
        }
    }
}

/// `deterministic-clock`: wall clocks (`Instant::now`, `SystemTime`)
/// only inside the sanctioned clock abstractions. Everything else must
/// take time through `Budget` deadlines or the tracer's logical clock,
/// or byte-identical trace replay breaks.
fn deterministic_clock(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    for i in 0..file.tokens.len() {
        if file.in_test(i) || file.tokens[i].kind != TokenKind::Ident {
            continue;
        }
        let word = file.tok_str(i);
        if word == "Instant" && file.is_path_sep(i + 1) && file.is_ident(i + 3, "now") {
            out.push(diag(
                file,
                rules::DETERMINISTIC_CLOCK,
                i,
                "`Instant::now()` outside the clock abstractions breaks \
                 deterministic replay; take time from `Budget` or the tracer's \
                 logical clock"
                    .to_string(),
            ));
        } else if word == "SystemTime" {
            out.push(diag(
                file,
                rules::DETERMINISTIC_CLOCK,
                i,
                "`SystemTime` outside the clock abstractions breaks deterministic \
                 replay"
                    .to_string(),
            ));
        }
    }
}

/// `poison-proof-locks`: every `.lock()` must recover from poisoning via
/// `.unwrap_or_else(PoisonError::into_inner)` (the PR 4 pattern). A
/// panicking portfolio worker must never take the race's bookkeeping
/// down with it.
fn poison_proof_locks(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    for i in 0..file.tokens.len() {
        if file.in_test(i) {
            continue;
        }
        if !(file.is_punct(i, '.')
            && file.is_ident(i + 1, "lock")
            && file.is_punct(i + 2, '(')
            && file.is_punct(i + 3, ')'))
        {
            continue;
        }
        let recovered = file.is_punct(i + 4, '.')
            && file.is_ident(i + 5, "unwrap_or_else")
            && file.is_punct(i + 6, '(')
            && {
                let close = file.matching_close(i + 6);
                (i + 6..close).any(|j| file.is_ident(j, "into_inner"))
            };
        if !recovered {
            out.push(diag(
                file,
                rules::POISON_PROOF_LOCKS,
                i + 1,
                "`.lock()` without poison recovery; use \
                 `.lock().unwrap_or_else(PoisonError::into_inner)` so a panicked \
                 holder cannot wedge every later locker"
                    .to_string(),
            ));
        }
    }
}

/// `scoped-threads-only`: `std::thread::spawn` detaches a thread the
/// solve cannot join or cancel; all solver concurrency goes through the
/// portfolio's scoped threads, which propagate panics and honor the
/// shared cancel flag.
fn scoped_threads_only(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    for i in 0..file.tokens.len() {
        if file.in_test(i) {
            continue;
        }
        if file.is_ident(i, "thread") && file.is_path_sep(i + 1) && file.is_ident(i + 3, "spawn") {
            out.push(diag(
                file,
                rules::SCOPED_THREADS_ONLY,
                i,
                "`thread::spawn` outside the portfolio module; use \
                 `std::thread::scope` via the portfolio so threads are joined, \
                 cancellable, and panic-isolated"
                    .to_string(),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(path: &str, src: &str) -> Vec<Diagnostic> {
        check_file(&SourceFile::parse(path, src), &Manifest::default())
    }

    #[test]
    fn unwrap_on_solve_path_flagged_with_position() {
        let d = check(
            "crates/cp/src/x.rs",
            "fn f(o: Option<u32>) -> u32 {\n    o.unwrap()\n}\n",
        );
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "no-solve-path-panic");
        assert_eq!((d[0].line, d[0].col), (2, 7));
    }

    #[test]
    fn unwrap_off_solve_path_ignored() {
        let d = check(
            "crates/viz/src/x.rs",
            "fn f(o: Option<u32>) { o.unwrap(); }",
        );
        assert!(d.is_empty());
    }

    #[test]
    fn test_mod_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn g() { None::<u32>.unwrap(); }\n}\n";
        assert!(check("crates/cp/src/x.rs", src).is_empty());
    }

    #[test]
    fn indexing_flagged_but_types_are_not() {
        let d = check(
            "crates/cp/src/x.rs",
            "fn f(xs: &[u32], i: usize) -> u32 { xs[i] }\n",
        );
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("indexing"));
        let clean = check("crates/cp/src/x.rs", "fn g() -> [u8; 4] { *b\"abcd\" }\n");
        assert!(clean.is_empty());
    }

    #[test]
    fn hot_path_marker_governs_next_fn() {
        let src = "\
// tela-lint: hot-path
fn hot(xs: &mut Vec<u32>) {
    let v = Vec::new();
    xs.clone();
}
fn cold() { let _ = Vec::<u32>::new(); }
";
        let d = check("crates/viz/src/x.rs", src);
        assert_eq!(d.len(), 2);
        assert!(d.iter().all(|d| d.rule == "no-hot-alloc"));
        assert_eq!(d[0].line, 3);
        assert_eq!(d[1].line, 4);
    }

    #[test]
    fn arc_clone_is_exempt_in_hot_path() {
        let src = "// tela-lint: hot-path\nfn hot(x: &Arc<u32>) { let _ = Arc::clone(x); }\n";
        assert!(check("crates/viz/src/x.rs", src).is_empty());
    }

    #[test]
    fn clock_rule_respects_manifest() {
        let src = "fn f() { let _ = Instant::now(); }";
        assert_eq!(check("crates/cp/src/x.rs", src).len(), 1);
        assert!(check("crates/model/src/budget.rs", src).is_empty());
        assert!(check("crates/bench/src/bin/x.rs", src).is_empty());
    }

    #[test]
    fn poisoned_lock_patterns() {
        let bad = "fn f(m: &Mutex<u32>) { let _ = m.lock().unwrap(); }";
        let d = check("crates/viz/src/x.rs", bad);
        // `.lock().unwrap()` trips poison rule (and nothing else off the
        // solve path).
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "poison-proof-locks");
        let good =
            "fn f(m: &Mutex<u32>) { let _ = m.lock().unwrap_or_else(PoisonError::into_inner); }";
        assert!(check("crates/viz/src/x.rs", good).is_empty());
    }

    #[test]
    fn thread_spawn_only_in_portfolio() {
        let src = "fn f() { std::thread::spawn(|| {}); }";
        assert_eq!(check("crates/viz/src/x.rs", src).len(), 1);
        assert!(check("crates/core/src/portfolio.rs", src).is_empty());
    }
}
