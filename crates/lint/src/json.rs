//! Minimal JSON reader/writer for the baseline file. Hand-rolled like
//! `tela-trace`'s JSONL layer: objects, arrays, strings, unsigned
//! integers, booleans, and null — exactly what `lint-baseline.json`
//! needs, nothing more.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value. Numbers are `u64`: the baseline only stores counts.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(u64),
    Str(String),
    Arr(Vec<Json>),
    /// Object with stable (sorted) key order.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_num(&self) -> Option<u64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Pretty-prints with two-space indentation and a trailing newline,
    /// so the committed baseline diffs line-per-entry.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    pad(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                pad(out, indent);
                out.push(']');
            }
            Json::Obj(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    pad(out, indent + 1);
                    write_string(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                out.push('\n');
                pad(out, indent);
                out.push('}');
            }
        }
    }
}

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document. Returns a message with a byte offset on
/// malformed input.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> u8 {
        self.bytes.get(self.pos).copied().unwrap_or(0)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), b' ' | b'\t' | b'\n' | b'\r') {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == c {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected `{}` at byte {}, found `{}`",
                c as char,
                self.pos,
                self.peek() as char
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::Str(self.string()?)),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'n' => self.literal("null", Json::Null),
            b'0'..=b'9' => self.number(),
            other => Err(format!(
                "unexpected `{}` at byte {}",
                other as char, self.pos
            )),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self.peek().is_ascii_digit() {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                0 => return Err("unterminated string".to_string()),
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    match self.peek() {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("bad \\u escape at {}", self.pos))?;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(format!("bad escape `\\{}`", other as char));
                        }
                    }
                    self.pos += 1;
                }
                _ => {
                    // Copy the full UTF-8 sequence.
                    let start = self.pos;
                    self.pos += 1;
                    while self.peek() & 0xC0 == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("?"));
                }
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == b'}' {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                other => {
                    return Err(format!(
                        "expected `,` or `}}` at byte {}, found `{}`",
                        self.pos, other as char
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == b']' {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected `,` or `]` at byte {}, found `{}`",
                        self.pos, other as char
                    ))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut rules = BTreeMap::new();
        let mut files = BTreeMap::new();
        files.insert("crates/cp/src/solver.rs".to_string(), Json::Num(12));
        rules.insert("no-solve-path-panic".to_string(), Json::Obj(files));
        let mut top = BTreeMap::new();
        top.insert("version".to_string(), Json::Num(1));
        top.insert("rules".to_string(), Json::Obj(rules));
        let doc = Json::Obj(top);
        let text = doc.render();
        assert_eq!(parse(&text).unwrap(), doc);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{,}").is_err());
        assert!(parse("{\"a\": 1} x").is_err());
    }

    #[test]
    fn string_escapes() {
        let doc = Json::Str("a\"b\\c\nd".to_string());
        assert_eq!(parse(&doc.render()).unwrap(), doc);
    }
}
