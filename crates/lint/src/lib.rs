//! `tela-lint` — workspace-invariant static analysis for the TelaMalloc
//! reproduction.
//!
//! The last several PRs each introduced an invariant that, until now,
//! only convention enforced: no panics on the solve path, zero
//! steady-state allocations in the propagate loop, deterministic
//! logical-clock tracing, poison-proof locking in the panic-isolated
//! portfolio, and scoped-thread-only concurrency. This crate enforces
//! them mechanically:
//!
//! - a hand-rolled Rust scanner ([`lexer`], [`source`]) — tokens plus
//!   brace/attribute/cfg tracking, not a full parse, matching the
//!   workspace's from-scratch style;
//! - a rule engine ([`rules`], [`features`], [`engine`]) with
//!   `file:line:col` diagnostics and inline suppression via
//!   `// tela-lint: allow(<rule>, reason = "…")`;
//! - a ratcheted baseline ([`baseline`]): existing violations live in a
//!   committed `lint-baseline.json`; CI fails on new violations *and*
//!   on a stale baseline, so the count can only go down;
//! - shared test instrumentation ([`testing`]): the counting global
//!   allocator used by the zero-allocation regression tests.
//!
//! Run it as `cargo run -p tela-lint -- check`; see `tela-lint help`.

pub mod baseline;
pub mod engine;
pub mod features;
pub mod json;
pub mod lexer;
pub mod manifest;
pub mod rules;
pub mod source;
pub mod testing;

pub use baseline::{Baseline, BaselineDiff};
pub use engine::{check_source, scan_workspace, Report};
pub use manifest::Manifest;
pub use rules::Diagnostic;
