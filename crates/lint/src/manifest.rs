//! Which rules apply where. Paths are repo-relative with `/` separators;
//! an entry ending in `/` is a directory prefix, otherwise an exact file.
//!
//! The defaults encode this workspace's invariants:
//! - the solve hot path (CP search/propagate, the portfolio and
//!   resilience ladder, the heuristic placers, the ILP baseline) must
//!   not panic;
//! - wall clocks live only in `tela-trace` and the `Budget`/fault
//!   machinery (benches and examples report wall time by design);
//! - raw `std::thread::spawn` is reserved to the portfolio module —
//!   everything else uses scoped threads through it.

/// Rule ids, as they appear in diagnostics, suppressions, and the
/// baseline file.
pub mod rules {
    pub const NO_SOLVE_PATH_PANIC: &str = "no-solve-path-panic";
    pub const NO_HOT_ALLOC: &str = "no-hot-alloc";
    pub const DETERMINISTIC_CLOCK: &str = "deterministic-clock";
    pub const POISON_PROOF_LOCKS: &str = "poison-proof-locks";
    pub const SCOPED_THREADS_ONLY: &str = "scoped-threads-only";
    pub const FEATURE_GATE_HYGIENE: &str = "feature-gate-hygiene";
    pub const SUPPRESSION_HYGIENE: &str = "suppression-hygiene";

    /// Every rule id, for `tela-lint rules` and suppression validation.
    pub const ALL: &[&str] = &[
        NO_SOLVE_PATH_PANIC,
        NO_HOT_ALLOC,
        DETERMINISTIC_CLOCK,
        POISON_PROOF_LOCKS,
        SCOPED_THREADS_ONLY,
        FEATURE_GATE_HYGIENE,
        SUPPRESSION_HYGIENE,
    ];
}

/// Path scoping for the rule set.
#[derive(Debug, Clone)]
pub struct Manifest {
    /// `no-solve-path-panic` applies only under these paths.
    pub solve_hot_paths: Vec<String>,
    /// Carve-outs inside `solve_hot_paths` where panicking is the
    /// documented contract (the `debug-invariants` audit layer exists to
    /// halt with a structured report).
    pub solve_path_exempt: Vec<String>,
    /// `deterministic-clock` is waived under these paths.
    pub clock_allowed: Vec<String>,
    /// `scoped-threads-only` is waived under these paths.
    pub thread_allowed: Vec<String>,
    /// Features whose declaration a crate must actually use (gate or
    /// forward); referenced-but-undeclared is always an error.
    pub invariant_features: Vec<String>,
}

impl Default for Manifest {
    fn default() -> Self {
        let s = |v: &[&str]| v.iter().map(|p| p.to_string()).collect();
        Manifest {
            solve_hot_paths: s(&[
                "crates/cp/src/",
                "crates/core/src/portfolio.rs",
                "crates/core/src/resilience.rs",
                "crates/heuristics/src/",
                "crates/ilp/src/",
            ]),
            solve_path_exempt: s(&["crates/cp/src/solver/invariants.rs"]),
            clock_allowed: s(&[
                "crates/trace/src/",
                "crates/model/src/budget.rs",
                "crates/model/src/fault.rs",
                "crates/bench/",
                // The server lives in wall-clock time by design: token
                // buckets refill, deadlines expire, and retry hints are
                // computed against real elapsed time. Determinism there
                // comes from injecting explicit `Instant`s in tests.
                "crates/server/src/",
                "examples/",
            ]),
            thread_allowed: s(&["crates/core/src/portfolio.rs"]),
            invariant_features: s(&["trace", "fault-inject", "debug-invariants"]),
        }
    }
}

impl Manifest {
    /// Does `path` fall under any entry of `set`?
    fn matches(set: &[String], path: &str) -> bool {
        set.iter().any(|entry| {
            if entry.ends_with('/') {
                path.starts_with(entry.as_str())
            } else {
                path == entry
            }
        })
    }

    /// Is `path` on the no-panic solve hot path?
    pub fn on_solve_path(&self, path: &str) -> bool {
        Self::matches(&self.solve_hot_paths, path) && !Self::matches(&self.solve_path_exempt, path)
    }

    /// May `path` read wall clocks?
    pub fn clock_exempt(&self, path: &str) -> bool {
        Self::matches(&self.clock_allowed, path)
    }

    /// May `path` call `std::thread::spawn`?
    pub fn thread_exempt(&self, path: &str) -> bool {
        Self::matches(&self.thread_allowed, path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scoping() {
        let m = Manifest::default();
        assert!(m.on_solve_path("crates/cp/src/solver.rs"));
        assert!(!m.on_solve_path("crates/cp/src/solver/invariants.rs"));
        assert!(m.on_solve_path("crates/core/src/portfolio.rs"));
        assert!(!m.on_solve_path("crates/core/src/frontend.rs"));
        assert!(m.clock_exempt("crates/model/src/budget.rs"));
        assert!(m.clock_exempt("crates/server/src/admission.rs"));
        assert!(!m.clock_exempt("crates/model/src/problem.rs"));
        assert!(m.thread_exempt("crates/core/src/portfolio.rs"));
        assert!(!m.thread_exempt("crates/core/src/resilience.rs"));
    }
}
