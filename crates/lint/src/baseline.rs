//! The ratchet: known violations live in a committed
//! `lint-baseline.json`, keyed `rule → file → count`. CI fails on *new*
//! violations (count above baseline) and on a *stale* baseline (count
//! below, or an entry whose file is clean) — so the only way the file
//! changes is downward, via `--update-baseline` after a real fix.
//!
//! Counts are per `(rule, file)` rather than per line on purpose:
//! editing unrelated code in a file moves line numbers constantly, and
//! a line-keyed baseline would churn on every refactor. Count-keyed
//! entries are stable until someone actually adds or removes a
//! violation.

use std::collections::BTreeMap;

use crate::json::{self, Json};
use crate::rules::Diagnostic;

/// Baseline contents: `rule → file → violation count`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Baseline {
    pub rules: BTreeMap<String, BTreeMap<String, u64>>,
}

/// Outcome of comparing a fresh scan against the committed baseline.
#[derive(Debug, Default)]
pub struct BaselineDiff {
    /// `(rule, file, baselined, found)` where `found > baselined`.
    pub grown: Vec<(String, String, u64, u64)>,
    /// `(rule, file, baselined, found)` where `found < baselined`: the
    /// baseline is stale and must be regenerated to ratchet down.
    pub stale: Vec<(String, String, u64, u64)>,
}

impl BaselineDiff {
    pub fn is_clean(&self) -> bool {
        self.grown.is_empty() && self.stale.is_empty()
    }
}

impl Baseline {
    /// Builds a baseline from a scan's surviving diagnostics.
    pub fn from_diagnostics(diags: &[Diagnostic]) -> Baseline {
        let mut rules: BTreeMap<String, BTreeMap<String, u64>> = BTreeMap::new();
        for d in diags {
            *rules
                .entry(d.rule.to_string())
                .or_default()
                .entry(d.path.clone())
                .or_insert(0) += 1;
        }
        Baseline { rules }
    }

    /// Total baselined violations.
    pub fn total(&self) -> u64 {
        self.rules.values().flat_map(|m| m.values()).sum()
    }

    /// Baselined count for one `(rule, file)`.
    pub fn count(&self, rule: &str, file: &str) -> u64 {
        self.rules
            .get(rule)
            .and_then(|m| m.get(file))
            .copied()
            .unwrap_or(0)
    }

    /// Compares `fresh` (a new scan) against `self` (the committed
    /// ratchet).
    pub fn diff(&self, fresh: &Baseline) -> BaselineDiff {
        let mut out = BaselineDiff::default();
        let mut keys: Vec<(String, String)> = Vec::new();
        for (rule, files) in self.rules.iter().chain(fresh.rules.iter()) {
            for file in files.keys() {
                let key = (rule.clone(), file.clone());
                if !keys.contains(&key) {
                    keys.push(key);
                }
            }
        }
        keys.sort();
        for (rule, file) in keys {
            let base = self.count(&rule, &file);
            let found = fresh.count(&rule, &file);
            if found > base {
                out.grown.push((rule, file, base, found));
            } else if found < base {
                out.stale.push((rule, file, base, found));
            }
        }
        out
    }

    /// Serializes to the committed JSON format.
    pub fn render(&self) -> String {
        let mut rules = BTreeMap::new();
        for (rule, files) in &self.rules {
            let mut obj = BTreeMap::new();
            for (file, count) in files {
                obj.insert(file.clone(), Json::Num(*count));
            }
            rules.insert(rule.clone(), Json::Obj(obj));
        }
        let mut top = BTreeMap::new();
        top.insert("version".to_string(), Json::Num(1));
        top.insert(
            "generated-by".to_string(),
            Json::Str("tela-lint --update-baseline".to_string()),
        );
        top.insert("rules".to_string(), Json::Obj(rules));
        Json::Obj(top).render()
    }

    /// Parses the committed JSON format.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let doc = json::parse(text)?;
        let top = doc.as_obj().ok_or("baseline root must be an object")?;
        match top.get("version").and_then(Json::as_num) {
            Some(1) => {}
            other => return Err(format!("unsupported baseline version {other:?}")),
        }
        let mut rules = BTreeMap::new();
        let table = top
            .get("rules")
            .and_then(Json::as_obj)
            .ok_or("baseline is missing the \"rules\" object")?;
        for (rule, files) in table {
            let files = files
                .as_obj()
                .ok_or_else(|| format!("rule {rule} must map files to counts"))?;
            let mut counts = BTreeMap::new();
            for (file, count) in files {
                let n = count
                    .as_num()
                    .ok_or_else(|| format!("count for {rule}/{file} must be a number"))?;
                counts.insert(file.clone(), n);
            }
            rules.insert(rule.clone(), counts);
        }
        Ok(Baseline { rules })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(rule: &'static str, path: &str) -> Diagnostic {
        Diagnostic {
            rule,
            path: path.to_string(),
            line: 1,
            col: 1,
            message: String::new(),
        }
    }

    #[test]
    fn counts_round_trip_through_json() {
        let base = Baseline::from_diagnostics(&[
            d("deterministic-clock", "crates/cp/src/search.rs"),
            d("no-solve-path-panic", "crates/cp/src/solver.rs"),
            d("no-solve-path-panic", "crates/cp/src/solver.rs"),
        ]);
        assert_eq!(base.total(), 3);
        let parsed = Baseline::parse(&base.render()).unwrap();
        assert_eq!(parsed, base);
    }

    #[test]
    fn diff_classifies_growth_and_staleness() {
        let committed = Baseline::from_diagnostics(&[
            d("deterministic-clock", "a.rs"),
            d("deterministic-clock", "a.rs"),
            d("no-solve-path-panic", "b.rs"),
        ]);
        let fresh = Baseline::from_diagnostics(&[
            d("deterministic-clock", "a.rs"),
            d("poison-proof-locks", "c.rs"),
        ]);
        let diff = committed.diff(&fresh);
        assert_eq!(
            diff.grown,
            vec![("poison-proof-locks".to_string(), "c.rs".to_string(), 0, 1)]
        );
        assert_eq!(diff.stale.len(), 2); // a.rs 2→1, b.rs 1→0
        assert!(!diff.is_clean());
        assert!(committed.diff(&committed).is_clean());
    }
}
