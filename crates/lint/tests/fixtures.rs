//! Fixture-driven rule tests, in the `compiletest` annotation style.
//!
//! Each `.rs` file under `tests/fixtures/` opens with a
//! `//@ path: <virtual path>` directive selecting which manifest scope
//! the fixture is checked under, and marks every expected diagnostic
//! with a `//~ ERROR <rule>` annotation — on the offending line itself,
//! or pointing N lines up with N carets (`//~^ ERROR <rule>`). The
//! harness runs [`tela_lint::check_source`] and demands the annotated
//! and reported `(line, rule)` multisets match exactly, so a fixture
//! fails both when a rule misses a seeded violation and when it
//! over-reports.

use std::collections::BTreeMap;
use std::path::PathBuf;

use tela_lint::manifest::Manifest;

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// `(line, rule)` expectations parsed from `//~` annotations.
fn expectations(text: &str) -> Vec<(u32, String)> {
    let mut out = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let line_no = idx as u32 + 1;
        let mut rest = line;
        while let Some(at) = rest.find("//~") {
            rest = &rest[at + 3..];
            let carets = rest.chars().take_while(|&c| c == '^').count();
            let tail = rest[carets..].trim_start();
            let Some(rule_part) = tail.strip_prefix("ERROR") else {
                panic!("malformed annotation on line {line_no}: {line}");
            };
            let rule = rule_part
                .split_whitespace()
                .next()
                .unwrap_or_else(|| panic!("annotation names no rule on line {line_no}"));
            out.push((line_no - carets as u32, rule.to_string()));
        }
    }
    out.sort();
    out
}

#[test]
fn fixtures_report_exactly_the_annotated_diagnostics() {
    let dir = fixture_dir();
    let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("no fixture dir {}: {e}", dir.display()))
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    entries.sort();
    assert!(entries.len() >= 6, "fixture set went missing from {dir:?}");

    let manifest = Manifest::default();
    let mut failures = Vec::new();
    for path in entries {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let text = std::fs::read_to_string(&path).unwrap();
        let first = text.lines().next().unwrap_or_default();
        let virtual_path = first
            .strip_prefix("//@ path:")
            .unwrap_or_else(|| panic!("{name}: first line must be `//@ path: <path>`"))
            .trim();

        let expected = expectations(&text);
        let mut actual: Vec<(u32, String)> =
            tela_lint::check_source(virtual_path, &text, &manifest)
                .into_iter()
                .map(|d| (d.line, d.rule.to_string()))
                .collect();
        actual.sort();

        if expected != actual {
            let fmt = |v: &[(u32, String)]| {
                v.iter()
                    .map(|(l, r)| format!("{l}:{r}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            };
            failures.push(format!(
                "{name} (as {virtual_path}):\n  expected [{}]\n  actual   [{}]",
                fmt(&expected),
                fmt(&actual)
            ));
        }
    }
    assert!(failures.is_empty(), "\n{}", failures.join("\n"));
}

/// Every rule id must appear in at least one fixture annotation, so a
/// new rule cannot ship without fixture coverage. `feature-gate-hygiene`
/// is crate-level and covered by [`feature_table_fixture`] instead.
#[test]
fn every_rule_has_fixture_coverage() {
    let mut covered: BTreeMap<String, usize> = BTreeMap::new();
    for entry in std::fs::read_dir(fixture_dir()).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|e| e == "rs") {
            let text = std::fs::read_to_string(&path).unwrap();
            for (_, rule) in expectations(&text) {
                *covered.entry(rule).or_default() += 1;
            }
        }
    }
    for rule in tela_lint::manifest::rules::ALL {
        if *rule == tela_lint::manifest::rules::FEATURE_GATE_HYGIENE {
            continue;
        }
        assert!(
            covered.contains_key(*rule),
            "rule `{rule}` has no fixture annotation; add one under tests/fixtures/"
        );
    }
}

/// Crate-level fixture for `feature-gate-hygiene`: a typo'd cfg
/// reference is flagged at the use site, and a declared-but-unwired
/// invariant feature is flagged at its Cargo.toml line.
#[test]
fn feature_table_fixture() {
    use tela_lint::features::{check_feature_hygiene, parse_cargo_toml};
    use tela_lint::source::SourceFile;

    let toml = "\
[package]
name = \"tela-fixture\"

[features]
trace = []
debug-invariants = []
";
    let krate = parse_cargo_toml("crates/fixture/Cargo.toml", toml, "fixture");
    let src = SourceFile::parse(
        "crates/fixture/src/lib.rs",
        "#[cfg(feature = \"trase\")]\nfn gated() {}\n",
    );
    let d = check_feature_hygiene(&krate, &[&src], &Manifest::default());

    // The typo'd reference at its use site…
    let typo: Vec<_> = d
        .iter()
        .filter(|d| d.message.contains("\"trase\""))
        .collect();
    assert_eq!(typo.len(), 1);
    assert_eq!(typo[0].path, "crates/fixture/src/lib.rs");
    assert_eq!(typo[0].line, 1);
    // …and both invariant features flagged at their declaration lines
    // (`trace` is only referenced through the typo, so it too is unwired).
    let decls: Vec<_> = d
        .iter()
        .filter(|d| d.path.ends_with("Cargo.toml"))
        .collect();
    assert_eq!(decls.len(), 2);
    assert_eq!(decls[0].line, 5);
    assert_eq!(decls[1].line, 6);
}
