//! Golden test: the committed `lint-baseline.json` must match a fresh
//! scan of the workspace exactly. This is the same comparison CI's
//! `tela-lint` job performs, run from `cargo test` so a PR that adds a
//! violation (baseline too small) or fixes one without ratcheting
//! (baseline stale) fails locally too. Regenerate with
//! `cargo run -p tela-lint -- check --update-baseline`.

use std::path::PathBuf;

use tela_lint::baseline::Baseline;
use tela_lint::engine::scan_workspace;
use tela_lint::manifest::Manifest;

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root exists")
}

#[test]
fn committed_baseline_matches_fresh_scan() {
    let root = workspace_root();
    let report = scan_workspace(&root, &Manifest::default()).expect("scan succeeds");
    let fresh = Baseline::from_diagnostics(&report.diagnostics);

    let path = root.join("lint-baseline.json");
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing {} ({e}); generate it with `cargo run -p tela-lint -- check \
             --update-baseline`",
            path.display()
        )
    });
    let committed = Baseline::parse(&text).expect("committed baseline parses");

    let diff = committed.diff(&fresh);
    let mut lines = Vec::new();
    for (rule, file, base, found) in &diff.grown {
        lines.push(format!("NEW: [{rule}] {file}: {found} > baseline {base}"));
    }
    for (rule, file, base, found) in &diff.stale {
        lines.push(format!("STALE: [{rule}] {file}: {found} < baseline {base}"));
    }
    assert!(
        diff.is_clean(),
        "lint-baseline.json is out of date; re-run `cargo run -p tela-lint -- \
         check --update-baseline`:\n{}",
        lines.join("\n")
    );

    // The rendered form must round-trip byte-identically too, so hand
    // edits to the JSON cannot drift from the writer's format.
    assert_eq!(
        text,
        committed.render(),
        "lint-baseline.json is not in canonical form; regenerate it"
    );
}
