//@ path: crates/cp/src/fixture.rs
// A solve-hot-path module: unwrap/expect, panic-family macros, and
// slice indexing are all violations; test code is exempt.

fn hot(o: Option<u32>, xs: &[u32]) -> u32 {
    let a = o.unwrap(); //~ ERROR no-solve-path-panic
    let b = o.expect("present"); //~ ERROR no-solve-path-panic
    if a > b {
        panic!("impossible"); //~ ERROR no-solve-path-panic
    }
    xs[0] //~ ERROR no-solve-path-panic
}

fn degraded(o: Option<u32>, xs: &[u32]) -> Option<u32> {
    // The sanctioned shapes: `?`-style options and get().
    let a = o?;
    xs.get(a as usize).copied()
}

fn suppressed(xs: &[u32]) -> u32 {
    // tela-lint: allow(no-solve-path-panic, reason = "index proven in bounds by the caller")
    xs[1] + unreachable_len(xs)
}

fn unreachable_len(xs: &[u32]) -> u32 {
    match xs.len() {
        0 => unreachable!("caller checked non-empty"), //~ ERROR no-solve-path-panic
        n => n as u32,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_unwrap_freely() {
        let xs = vec![1u32, 2];
        assert_eq!(xs.first().copied().unwrap(), xs[0]);
    }
}
