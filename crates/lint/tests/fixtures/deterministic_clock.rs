//@ path: crates/model/src/clock_fixture.rs
// A non-exempt module: wall-clock reads break deterministic replay.

fn stamp() -> u128 {
    let start = std::time::Instant::now(); //~ ERROR deterministic-clock
    let wall = std::time::SystemTime::now(); //~ ERROR deterministic-clock
    let _ = wall;
    start.elapsed().as_nanos()
}
