//@ path: crates/core/src/thread_fixture.rs
// Raw spawns are reserved to the portfolio module; everyone else uses
// scoped threads through it.

fn detached() {
    std::thread::spawn(|| {}); //~ ERROR scoped-threads-only
}

fn scoped() {
    std::thread::scope(|s| {
        s.spawn(|| {});
    });
}
