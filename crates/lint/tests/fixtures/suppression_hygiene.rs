//@ path: crates/cp/src/suppress_fixture.rs
// Suppressions need a reason, a known rule, and a live violation.

fn reasonless(o: Option<u32>) -> u32 {
    o.unwrap() // tela-lint: allow(no-solve-path-panic)
    //~^ ERROR no-solve-path-panic
    //~^^ ERROR suppression-hygiene
}

// tela-lint: allow(no-such-rule, reason = "typo in the rule id")
//~^ ERROR suppression-hygiene
fn misnamed() {}

// tela-lint: allow(no-solve-path-panic, reason = "nothing to suppress")
//~^ ERROR suppression-hygiene
fn unused() {}
