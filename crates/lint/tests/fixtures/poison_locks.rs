//@ path: crates/core/src/lock_fixture.rs
// Every `.lock()` must recover from poisoning (the PR 4 pattern).

use std::sync::{Mutex, PoisonError};

fn locks(m: &Mutex<u64>) -> u64 {
    let wedged = *m.lock().unwrap(); //~ ERROR poison-proof-locks
    let recovered = *m.lock().unwrap_or_else(PoisonError::into_inner);
    wedged + recovered
}
