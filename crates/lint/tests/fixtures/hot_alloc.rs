//@ path: crates/viz/src/alloc_fixture.rs
// `no-hot-alloc` fires only inside a function marked hot-path.

use std::sync::Arc;

// tela-lint: hot-path
fn marked(xs: &Vec<u64>, shared: &Arc<u64>) -> Vec<u64> {
    let mut out = Vec::new(); //~ ERROR no-hot-alloc
    let copy = xs.to_vec(); //~ ERROR no-hot-alloc
    let label = format!("{}", copy.len()); //~ ERROR no-hot-alloc
    let _refcount_bump = Arc::clone(shared); // exempt: not an allocation
    out.push(label.len() as u64);
    out
}

fn unmarked() -> Vec<u64> {
    // Same constructs, no marker: allocation is fine off the hot path.
    let mut out = Vec::new();
    out.push(1);
    out.to_vec()
}
