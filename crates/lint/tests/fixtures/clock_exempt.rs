//@ path: crates/trace/src/clock_fixture.rs
// The trace crate owns the wall clock: no diagnostics expected here.

fn sanctioned() -> std::time::Instant {
    std::time::Instant::now()
}
