//! Constraint-propagation engine for the TelaMalloc reproduction.
//!
//! This crate is the reproduction's substitute for the paper's
//! Telamon-over-CP-SAT stack (§4, §5.1): a solver for the memory
//! allocation constraint model that, instead of solving the whole problem
//! itself, exposes the narrow interface the TelaMalloc search needs:
//!
//! - make one variable assignment at a time ([`CpSolver::assign`]),
//! - query valid ranges for each position variable
//!   ([`CpSolver::domain`]) and the lowest feasible placement
//!   ([`CpSolver::min_feasible_pos`], §5.2 "solver-guided placement"),
//! - learn *why* an assignment failed ([`Conflict::culprits`], used by
//!   smart backtracking, §5.4),
//! - backtrack to any earlier decision level ([`CpSolver::pop_to_level`]).
//!
//! The constraint model matches the paper's CP encoding: one integer
//! `pos(X)` per buffer with domain `[0, M - size(X)]` (alignment-aware,
//! §5.5) and, for every pair of time-overlapping buffers, an ordering
//! decision `before(X, Y) ⊕ before(Y, X)` enforcing
//! `pos(X) + size(X) ≤ pos(Y)` when `X` is placed below `Y`.
//!
//! [`search::solve_cp_only`] runs the engine stand-alone with a generic
//! first-fail branching strategy — the "CP-SAT encoding without the
//! heuristic-driven search" baseline of the paper's Figure 13.
//!
//! # Example
//!
//! ```
//! use tela_cp::CpSolver;
//! use tela_model::examples;
//!
//! let problem = examples::tiny();
//! let mut solver = CpSolver::new(&problem)?;
//! // Place buffer 0 at the lowest feasible address, CP-guided.
//! let id = tela_model::BufferId::new(0);
//! let pos = solver.min_feasible_pos(id).expect("placeable");
//! solver.assign(id, pos).expect("assignment is consistent");
//! assert_eq!(solver.assignment(id), Some(pos));
//! # Ok::<(), tela_cp::ModelError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod domain;
pub mod explain;
mod ids;
mod model;
pub mod search;
mod solver;
mod sweep;

pub use domain::Domain;
pub use ids::{PairId, VarId};
pub use model::{CpModel, ModelError};
pub use solver::{Conflict, ConflictSeed, CpSolver, InvariantReport, OrderState};
