//! Lowest-fit sweep over already-placed buffers.
//!
//! Given the fixed (placed) buffers that overlap a candidate buffer in
//! time, the sweep finds the lowest aligned address at which the candidate
//! fits — the "ask the solver for the lowest valid location" query of the
//! paper's §5.2 — and, when no address exists, reports which placements
//! blocked it (feeding conflict-guided backtracking, §5.4).

use tela_model::{Address, Size};

use crate::domain::align_up;

/// Outcome of a lowest-fit sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct SweepResult {
    /// Lowest feasible aligned start address, if any.
    pub pos: Option<Address>,
    /// Buffer indices (of fixed placements) that forced the candidate
    /// upward. On failure this is the blocking set.
    pub blockers: Vec<u32>,
}

/// Finds the lowest aligned address in `[lo, hi]` where a buffer of
/// `size` fits without intersecting any of `occupied`.
///
/// `occupied` holds `(start, end, var)` address intervals of fixed buffers
/// that overlap the candidate in time, sorted by start address. The
/// solver maintains these lists incrementally (see
/// `CpSolver::occupancy_insert`), so the sweep no longer sorts per query.
pub(crate) fn lowest_fit(
    size: Size,
    align: Size,
    lo: Address,
    hi: Address,
    occupied: &[(Address, Address, u32)],
) -> SweepResult {
    debug_assert!(
        occupied.windows(2).all(|w| w[0].0 <= w[1].0),
        "occupied intervals must be sorted by start address"
    );
    let mut blockers = Vec::new();
    let mut candidate = match align_up(lo, align) {
        Some(c) => c,
        None => {
            return SweepResult {
                pos: None,
                blockers,
            }
        }
    };
    if candidate > hi {
        return SweepResult {
            pos: None,
            blockers,
        };
    }
    for &(start, end, var) in occupied.iter() {
        // Intervals are visited in start order; once an interval starts at
        // or past the candidate's top, no later interval can block it.
        if start >= candidate.saturating_add(size) {
            break;
        }
        if end > candidate {
            // This interval intersects [candidate, candidate + size).
            blockers.push(var);
            candidate = match align_up(end, align) {
                Some(c) => c,
                None => {
                    return SweepResult {
                        pos: None,
                        blockers,
                    }
                }
            };
            if candidate > hi {
                return SweepResult {
                    pos: None,
                    blockers,
                };
            }
        }
    }
    SweepResult {
        pos: Some(candidate),
        blockers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fit(
        size: Size,
        align: Size,
        lo: Address,
        hi: Address,
        occupied: &[(Address, Address, u32)],
    ) -> SweepResult {
        let mut sorted = occupied.to_vec();
        sorted.sort_unstable_by_key(|&(start, _, _)| start);
        lowest_fit(size, align, lo, hi, &sorted)
    }

    #[test]
    fn empty_memory_places_at_lower_bound() {
        let r = fit(4, 1, 0, 12, &[]);
        assert_eq!(r.pos, Some(0));
        assert!(r.blockers.is_empty());
    }

    #[test]
    fn skips_over_blocking_interval() {
        let r = fit(4, 1, 0, 12, &[(0, 6, 7)]);
        assert_eq!(r.pos, Some(6));
        assert_eq!(r.blockers, vec![7]);
    }

    #[test]
    fn fits_in_gap_between_intervals() {
        let r = fit(3, 1, 0, 12, &[(0, 2, 1), (5, 9, 2)]);
        assert_eq!(r.pos, Some(2));
        assert_eq!(r.blockers, vec![1]);
    }

    #[test]
    fn gap_too_small_is_skipped() {
        let r = fit(4, 1, 0, 12, &[(0, 2, 1), (5, 9, 2)]);
        assert_eq!(r.pos, Some(9));
        assert_eq!(r.blockers, vec![1, 2]);
    }

    #[test]
    fn unsorted_input_is_sorted_by_the_helper() {
        // `lowest_fit` itself requires sorted input (the solver maintains
        // sorted occupancy lists); the test helper sorts on its behalf.
        let r = fit(4, 1, 0, 12, &[(5, 9, 2), (0, 2, 1)]);
        assert_eq!(r.pos, Some(9));
    }

    #[test]
    fn respects_lower_bound() {
        let r = fit(2, 1, 5, 12, &[]);
        assert_eq!(r.pos, Some(5));
    }

    #[test]
    fn respects_upper_bound() {
        let r = fit(4, 1, 0, 5, &[(0, 6, 3)]);
        assert_eq!(r.pos, None);
        assert_eq!(r.blockers, vec![3]);
    }

    #[test]
    fn alignment_rounds_candidate_up() {
        let r = fit(4, 8, 0, 32, &[(0, 3, 0)]);
        assert_eq!(r.pos, Some(8));
    }

    #[test]
    fn interval_touching_candidate_top_does_not_block() {
        // Interval starts exactly where the candidate ends.
        let r = fit(4, 1, 0, 12, &[(4, 8, 0)]);
        assert_eq!(r.pos, Some(0));
        assert!(r.blockers.is_empty());
    }

    #[test]
    fn overlapping_occupied_intervals() {
        let r = fit(2, 1, 0, 10, &[(0, 4, 0), (2, 6, 1), (3, 5, 2)]);
        assert_eq!(r.pos, Some(6));
        assert_eq!(r.blockers, vec![0, 1]);
    }

    #[test]
    fn blocked_everywhere_returns_none_with_blockers() {
        let r = fit(2, 1, 0, 2, &[(0, 2, 0), (2, 5, 1)]);
        assert_eq!(r.pos, None);
        assert_eq!(r.blockers, vec![0, 1]);
    }
}
