//! Lowest-fit sweep over already-placed buffers.
//!
//! Given the fixed (placed) buffers that overlap a candidate buffer in
//! time, the sweep finds the lowest aligned address at which the candidate
//! fits — the "ask the solver for the lowest valid location" query of the
//! paper's §5.2 — and, when no address exists, reports which placements
//! blocked it (feeding conflict-guided backtracking, §5.4).
//!
//! Two implementations share the same semantics:
//!
//! - [`BitTimeline`] marks occupied address intervals as bits in a flat
//!   word array and scans for the lowest aligned zero-run of the
//!   candidate's size. Marking and clearing are word-masked range
//!   operations, so a query touches only the words its intervals cover;
//!   the timeline is reused across queries and allocates only when the
//!   capacity first grows. This is the hot path for on-chip-sized
//!   capacities.
//! - [`lowest_fit_pos`]/[`lowest_fit_explain`] walk a sorted interval
//!   list, bumping the candidate past each blocking interval. The
//!   interval walk is the fallback for capacities too large to bitmap
//!   and the only form that reports *which* placements blocked a failed
//!   candidate (the cold explanation path).
//!
//! Both return the same address for the same occupied set: the lowest
//! aligned address in `[lo, hi]` whose `size`-wide window intersects no
//! occupied interval.

use tela_model::{Address, Size};

use crate::domain::align_up;
use crate::ids::Arena;

/// Capacities up to this many bits use the bitset timeline; larger
/// capacities fall back to the sorted-interval walk. 1 Mi bits = 128 KiB
/// of scratch per solver, far above any realistic on-chip arena while
/// keeping portfolio workers cheap.
pub(crate) const BITMAP_MAX_BITS: u64 = 1 << 20;

const WORD_BITS: usize = u64::BITS as usize;

/// A reusable bitset over `[0, capacity)` addresses: bit `a` is set while
/// some fixed buffer occupies address `a` during the candidate's
/// lifetime. Queries mark intervals, scan, and clear the same intervals,
/// leaving the timeline all-zero between queries.
#[derive(Debug, Default)]
pub(crate) struct BitTimeline {
    words: Vec<u64>,
}

impl BitTimeline {
    /// Ensures the timeline covers `bits` addresses. Allocates only on
    /// growth; steady-state queries reuse the existing words.
    pub(crate) fn ensure_bits(&mut self, bits: u64) {
        let need = (bits as usize).div_ceil(WORD_BITS);
        if self.words.len() < need {
            self.words.resize(need, 0);
        }
    }

    /// True when no bit is set (the between-queries resting state; used
    /// by the `debug-invariants` audit).
    #[cfg(feature = "debug-invariants")]
    pub(crate) fn is_clear(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Sets bits `[start, end)`.
    // tela-lint: hot-path
    #[inline]
    pub(crate) fn mark(&mut self, start: Address, end: Address) {
        let (start, end) = (start as usize, end as usize);
        if start >= end {
            return;
        }
        let (first, last) = (start / WORD_BITS, (end - 1) / WORD_BITS);
        let head = !0u64 << (start % WORD_BITS);
        let tail = !0u64 >> (WORD_BITS - 1 - (end - 1) % WORD_BITS);
        if first == last {
            *self.words.at_mut(first) |= head & tail;
        } else {
            *self.words.at_mut(first) |= head;
            for wi in first + 1..last {
                *self.words.at_mut(wi) = !0;
            }
            *self.words.at_mut(last) |= tail;
        }
    }

    /// Clears bits `[start, end)`. Clearing each marked interval (even
    /// when intervals overlapped) restores the all-zero resting state.
    // tela-lint: hot-path
    #[inline]
    pub(crate) fn clear(&mut self, start: Address, end: Address) {
        let (start, end) = (start as usize, end as usize);
        if start >= end {
            return;
        }
        let (first, last) = (start / WORD_BITS, (end - 1) / WORD_BITS);
        let head = !0u64 << (start % WORD_BITS);
        let tail = !0u64 >> (WORD_BITS - 1 - (end - 1) % WORD_BITS);
        if first == last {
            *self.words.at_mut(first) &= !(head & tail);
        } else {
            *self.words.at_mut(first) &= !head;
            for wi in first + 1..last {
                *self.words.at_mut(wi) = 0;
            }
            *self.words.at_mut(last) &= !tail;
        }
    }

    /// Index of the first set bit in `[start, end)`, if any.
    // tela-lint: hot-path
    #[inline]
    fn first_set_in(&self, start: usize, end: usize) -> Option<usize> {
        if start >= end {
            return None;
        }
        let last = (end - 1) / WORD_BITS;
        let mut wi = start / WORD_BITS;
        let mut word = *self.words.at(wi) & (!0u64 << (start % WORD_BITS));
        loop {
            if wi == last {
                word &= !0u64 >> (WORD_BITS - 1 - (end - 1) % WORD_BITS);
            }
            if word != 0 {
                return Some(wi * WORD_BITS + word.trailing_zeros() as usize);
            }
            if wi == last {
                return None;
            }
            wi += 1;
            word = *self.words.at(wi);
        }
    }

    /// Index of the first clear bit at or after `from` (capped at the
    /// timeline's end, where everything beyond the marked intervals is
    /// clear by construction).
    // tela-lint: hot-path
    #[inline]
    fn next_clear_from(&self, from: usize) -> usize {
        let mut wi = from / WORD_BITS;
        let mut word = !*self.words.at(wi) & (!0u64 << (from % WORD_BITS));
        loop {
            if word != 0 {
                return wi * WORD_BITS + word.trailing_zeros() as usize;
            }
            wi += 1;
            if wi >= self.words.len() {
                return self.words.len() * WORD_BITS;
            }
            word = !*self.words.at(wi);
        }
    }

    /// Lowest aligned address in `[lo, hi]` whose `size`-wide window has
    /// no set bit. Intervals must already be marked; the caller clears
    /// them afterwards.
    // tela-lint: hot-path
    pub(crate) fn lowest_fit(
        &self,
        size: Size,
        align: Size,
        lo: Address,
        hi: Address,
    ) -> Option<Address> {
        let mut candidate = align_up(lo, align)?;
        while candidate <= hi {
            match self.first_set_in(candidate as usize, (candidate + size) as usize) {
                None => return Some(candidate),
                Some(p) => {
                    let next = self.next_clear_from(p) as Address;
                    candidate = align_up(next, align)?;
                }
            }
        }
        None
    }
}

/// Finds the lowest aligned address in `[lo, hi]` where a buffer of
/// `size` fits without intersecting any of `occupied` — the interval-walk
/// twin of [`BitTimeline::lowest_fit`], used when the capacity is too
/// large to bitmap.
///
/// `occupied` holds `(start, end, var)` address intervals of fixed
/// buffers that overlap the candidate in time, sorted by start address.
// tela-lint: hot-path
pub(crate) fn lowest_fit_pos(
    size: Size,
    align: Size,
    lo: Address,
    hi: Address,
    occupied: &[(Address, Address, u32)],
) -> Option<Address> {
    debug_assert!(
        // tela-lint: allow(no-solve-path-panic, reason = "debug-only precondition check; windows(2) yields exactly-2-element slices")
        occupied.windows(2).all(|w| w[0].0 <= w[1].0),
        "occupied intervals must be sorted by start address"
    );
    let mut candidate = align_up(lo, align)?;
    if candidate > hi {
        return None;
    }
    for &(start, end, _) in occupied.iter() {
        // Intervals are visited in start order; once an interval starts at
        // or past the candidate's top, no later interval can block it.
        if start >= candidate.saturating_add(size) {
            break;
        }
        if end > candidate {
            // This interval intersects [candidate, candidate + size).
            candidate = align_up(end, align)?;
            if candidate > hi {
                return None;
            }
        }
    }
    Some(candidate)
}

/// Outcome of an explaining lowest-fit sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct SweepResult {
    /// Lowest feasible aligned start address, if any.
    pub pos: Option<Address>,
    /// Buffer indices (of fixed placements) that forced the candidate
    /// upward. On failure this is the blocking set.
    pub blockers: Vec<u32>,
}

/// [`lowest_fit_pos`] with blocker attribution: records which placements
/// forced the candidate upward. Only used on the cold explanation path
/// (building a [`Conflict`](crate::Conflict) after a sweep failure), so
/// the blocker `Vec` allocation is acceptable here.
pub(crate) fn lowest_fit_explain(
    size: Size,
    align: Size,
    lo: Address,
    hi: Address,
    occupied: &[(Address, Address, u32)],
) -> SweepResult {
    debug_assert!(
        // tela-lint: allow(no-solve-path-panic, reason = "debug-only precondition check; windows(2) yields exactly-2-element slices")
        occupied.windows(2).all(|w| w[0].0 <= w[1].0),
        "occupied intervals must be sorted by start address"
    );
    let mut blockers = Vec::new();
    let mut candidate = match align_up(lo, align) {
        Some(c) => c,
        None => {
            return SweepResult {
                pos: None,
                blockers,
            }
        }
    };
    if candidate > hi {
        return SweepResult {
            pos: None,
            blockers,
        };
    }
    for &(start, end, var) in occupied.iter() {
        if start >= candidate.saturating_add(size) {
            break;
        }
        if end > candidate {
            blockers.push(var);
            candidate = match align_up(end, align) {
                Some(c) => c,
                None => {
                    return SweepResult {
                        pos: None,
                        blockers,
                    }
                }
            };
            if candidate > hi {
                return SweepResult {
                    pos: None,
                    blockers,
                };
            }
        }
    }
    SweepResult {
        pos: Some(candidate),
        blockers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Runs the same query through the interval walk, the explaining
    /// walk, and the bitset timeline, asserting all three agree on the
    /// position before returning the explained result.
    fn fit(
        size: Size,
        align: Size,
        lo: Address,
        hi: Address,
        occupied: &[(Address, Address, u32)],
    ) -> SweepResult {
        let mut sorted = occupied.to_vec();
        sorted.sort_unstable();
        let explained = lowest_fit_explain(size, align, lo, hi, &sorted);
        assert_eq!(
            lowest_fit_pos(size, align, lo, hi, &sorted),
            explained.pos,
            "interval walk disagrees with its explaining twin"
        );
        let bits = occupied
            .iter()
            .map(|&(_, end, _)| end)
            .max()
            .unwrap_or(0)
            .max(hi + size);
        let mut timeline = BitTimeline::default();
        timeline.ensure_bits(bits);
        for &(start, end, _) in occupied {
            timeline.mark(start, end);
        }
        assert_eq!(
            timeline.lowest_fit(size, align, lo, hi),
            explained.pos,
            "bitset timeline disagrees with the interval walk"
        );
        for &(start, end, _) in occupied {
            timeline.clear(start, end);
        }
        assert!(timeline.words.iter().all(|&w| w == 0), "clear is total");
        explained
    }

    #[test]
    fn empty_memory_places_at_lower_bound() {
        let r = fit(4, 1, 0, 12, &[]);
        assert_eq!(r.pos, Some(0));
        assert!(r.blockers.is_empty());
    }

    #[test]
    fn skips_over_blocking_interval() {
        let r = fit(4, 1, 0, 12, &[(0, 6, 7)]);
        assert_eq!(r.pos, Some(6));
        assert_eq!(r.blockers, vec![7]);
    }

    #[test]
    fn fits_in_gap_between_intervals() {
        let r = fit(3, 1, 0, 12, &[(0, 2, 1), (5, 9, 2)]);
        assert_eq!(r.pos, Some(2));
        assert_eq!(r.blockers, vec![1]);
    }

    #[test]
    fn gap_too_small_is_skipped() {
        let r = fit(4, 1, 0, 12, &[(0, 2, 1), (5, 9, 2)]);
        assert_eq!(r.pos, Some(9));
        assert_eq!(r.blockers, vec![1, 2]);
    }

    #[test]
    fn unsorted_input_is_sorted_by_the_helper() {
        // The sweep entry points require sorted input (the solver gathers
        // and sorts fixed neighbors); the test helper sorts on its behalf.
        let r = fit(4, 1, 0, 12, &[(5, 9, 2), (0, 2, 1)]);
        assert_eq!(r.pos, Some(9));
    }

    #[test]
    fn respects_lower_bound() {
        let r = fit(2, 1, 5, 12, &[]);
        assert_eq!(r.pos, Some(5));
    }

    #[test]
    fn respects_upper_bound() {
        let r = fit(4, 1, 0, 5, &[(0, 6, 3)]);
        assert_eq!(r.pos, None);
        assert_eq!(r.blockers, vec![3]);
    }

    #[test]
    fn alignment_rounds_candidate_up() {
        let r = fit(4, 8, 0, 32, &[(0, 3, 0)]);
        assert_eq!(r.pos, Some(8));
    }

    #[test]
    fn interval_touching_candidate_top_does_not_block() {
        // Interval starts exactly where the candidate ends.
        let r = fit(4, 1, 0, 12, &[(4, 8, 0)]);
        assert_eq!(r.pos, Some(0));
        assert!(r.blockers.is_empty());
    }

    #[test]
    fn overlapping_occupied_intervals() {
        let r = fit(2, 1, 0, 10, &[(0, 4, 0), (2, 6, 1), (3, 5, 2)]);
        assert_eq!(r.pos, Some(6));
        assert_eq!(r.blockers, vec![0, 1]);
    }

    #[test]
    fn blocked_everywhere_returns_none_with_blockers() {
        let r = fit(2, 1, 0, 2, &[(0, 2, 0), (2, 5, 1)]);
        assert_eq!(r.pos, None);
        assert_eq!(r.blockers, vec![0, 1]);
    }

    #[test]
    fn word_boundary_runs() {
        // Intervals crossing 64-bit word boundaries: candidate must land
        // exactly past the run regardless of word alignment.
        let r = fit(5, 1, 0, 200, &[(0, 63, 0), (63, 130, 1)]);
        assert_eq!(r.pos, Some(130));
        let r = fit(64, 1, 0, 200, &[(10, 70, 0)]);
        assert_eq!(r.pos, Some(70));
        let r = fit(1, 1, 0, 200, &[(0, 64, 0)]);
        assert_eq!(r.pos, Some(64));
    }

    #[test]
    fn exact_word_sized_gap() {
        // A free gap of exactly one word between two runs.
        let r = fit(64, 1, 0, 500, &[(0, 64, 0), (128, 256, 1)]);
        assert_eq!(r.pos, Some(64));
        let r = fit(65, 1, 0, 500, &[(0, 64, 0), (128, 256, 1)]);
        assert_eq!(r.pos, Some(256));
    }

    #[test]
    fn timeline_grows_lazily_and_reuses() {
        let mut t = BitTimeline::default();
        t.ensure_bits(10);
        assert_eq!(t.words.len(), 1);
        t.ensure_bits(1000);
        assert_eq!(t.words.len(), 16);
        t.ensure_bits(10); // never shrinks
        assert_eq!(t.words.len(), 16);
    }
}
