//! Runtime auditing of [`CpSolver`]'s internal invariants (the
//! `debug-invariants` cargo feature).
//!
//! The solver's correctness rests on a handful of structural invariants
//! that the type system cannot express. With the feature enabled, four
//! families of checks run after every decision, conflict, and backtrack:
//!
//! 1. **Trail/level monotonicity** — level marks grow monotonically and
//!    never point past the live trail, and the fixed-order stack agrees
//!    with the per-buffer fixed flags.
//! 2. **Domain-shrink monotonicity** — within one decision, propagation
//!    only ever narrows domains (`lo` never decreases, `hi` never
//!    increases), bounds stay aligned, and no domain is empty at a
//!    successful fixpoint.
//! 3. **Ordering ↔ address consistency** — every decided pair's bounds
//!    satisfy `lo(above) ≥ lo(below) + size(below)` at the fixpoint, and
//!    a pair whose two buffers are both fixed is never left undecided.
//! 4. **Explanation well-formedness** — a [`Conflict`]'s culprits are
//!    fixed placements (so backtracking targets exist) and contain no
//!    duplicates.
//!
//! A violation panics with a structured report in debug builds; in
//! release builds it is only counted, so production-shaped benchmark
//! runs can measure the audit's overhead without aborting. Either way
//! the counters are available through
//! [`CpSolver::invariant_report`].

use std::cell::Cell;

use tela_model::Address;

use super::{Conflict, CpSolver, DomainsBefore, InvariantReport, OrderState};
use crate::ids::PairId;

/// Interior-mutable check/violation tallies: audits run from `&self`
/// query paths as well as `&mut self` decision paths.
#[derive(Debug, Default)]
pub(super) struct AuditCounters {
    checks: Cell<u64>,
    violations: Cell<u64>,
}

impl AuditCounters {
    pub(super) fn report(&self) -> InvariantReport {
        InvariantReport {
            checks: self.checks.get(),
            violations: self.violations.get(),
        }
    }
}

impl CpSolver {
    /// Captures every domain's bounds ahead of a decision, for the
    /// shrink-monotonicity audit at the resulting fixpoint.
    pub(super) fn audit_snapshot(&self) -> DomainsBefore {
        self.domains.iter().map(|d| d.snapshot()).collect()
    }

    /// Full audit at a propagation fixpoint reached by a successful
    /// [`assign`](CpSolver::assign) or [`decide`](CpSolver::decide).
    pub(super) fn audit_decision_fixpoint(&self, before: &DomainsBefore) {
        self.check(
            self.queue.is_empty(),
            "propagation queue drained at fixpoint",
            || format!("{} entries left queued", self.queue.len()),
        );
        self.check_level_marks();
        self.check_fixed_consistency();
        self.check_domain_wellformedness(true);
        self.check_domain_monotonicity(before);
        self.check_decided_orders();
        self.check_sweep_consistency();
    }

    /// Audits a conflict explanation before the failed level is rolled
    /// back (culprits must refer to placements that are still fixed).
    pub(super) fn audit_conflict(&self, conflict: &Conflict) {
        for &culprit in &conflict.culprits {
            self.check(
                self.fixed[culprit.index()],
                "conflict culprits are fixed placements",
                || format!("culprit {culprit} is not assigned in {conflict}"),
            );
        }
        let mut seen = conflict.culprits.clone();
        seen.sort_unstable();
        seen.dedup();
        self.check(
            seen.len() == conflict.culprits.len(),
            "conflict culprits are unique",
            || format!("duplicate culprit in {conflict}"),
        );
    }

    /// Audits the restored state after [`pop_to_level`](CpSolver::pop_to_level).
    ///
    /// The restored state is an earlier fixpoint, so everything except
    /// the monotonicity-relative-to-a-snapshot check applies.
    pub(super) fn audit_backtrack(&self, target: usize) {
        self.check(
            self.level() == target,
            "backtrack reaches its target",
            || format!("asked for level {target}, at level {}", self.level()),
        );
        self.check(
            self.queue.is_empty(),
            "propagation queue cleared on backtrack",
            || format!("{} entries left queued", self.queue.len()),
        );
        self.check_level_marks();
        self.check_fixed_consistency();
        self.check_domain_wellformedness(false);
        self.check_decided_orders();
        self.check_sweep_consistency();
    }

    /// Invariant audit counters accumulated so far.
    ///
    /// `violations` stays zero in debug builds because the first
    /// violation panics; release builds only count, so the field is
    /// observable there.
    pub fn invariant_report(&self) -> InvariantReport {
        self.audit.report()
    }

    /// Level marks must be monotone and within the live trail and
    /// fixed-order stacks.
    fn check_level_marks(&self) {
        let mut prev = (0usize, 0usize);
        for (i, mark) in self.levels.iter().enumerate() {
            self.check(
                mark.trail_len >= prev.0 && mark.fixed_len >= prev.1,
                "level marks are monotone",
                || {
                    format!(
                        "level {i} mark (trail {}, fixed {}) below predecessor {prev:?}",
                        mark.trail_len, mark.fixed_len
                    )
                },
            );
            prev = (mark.trail_len, mark.fixed_len);
        }
        self.check(
            prev.0 <= self.trail.len() && prev.1 <= self.fixed_order.len(),
            "level marks stay within the trail",
            || {
                format!(
                    "last mark {prev:?} vs trail {} / fixed {}",
                    self.trail.len(),
                    self.fixed_order.len()
                )
            },
        );
    }

    /// The fixed-order stack and the per-buffer flags must describe the
    /// same set, and a fixed buffer's domain must be a singleton.
    fn check_fixed_consistency(&self) {
        let flagged = self.fixed.iter().filter(|&&f| f).count();
        self.check(
            flagged == self.fixed_order.len(),
            "fixed flags agree with the assignment stack",
            || {
                format!(
                    "{flagged} flags set, {} stack entries",
                    self.fixed_order.len()
                )
            },
        );
        for (i, &var) in self.fixed_order.iter().enumerate() {
            self.check(
                self.fixed[var as usize],
                "assignment stack entries are flagged fixed",
                || format!("b{var} on the stack but not flagged"),
            );
            self.check(
                self.rank[var as usize] as usize == i,
                "ranks mirror the assignment stack",
                || {
                    format!(
                        "b{var} at stack position {i} but rank {}",
                        self.rank[var as usize]
                    )
                },
            );
            self.check(
                self.domains[var as usize].is_fixed(),
                "fixed buffers have singleton domains",
                || {
                    let d = &self.domains[var as usize];
                    format!("b{var} fixed with domain [{}, {}]", d.lo(), d.hi())
                },
            );
        }
    }

    /// Bounds stay aligned and within `[0, capacity - size]`; at a
    /// fixpoint (`at_fixpoint`) no domain may be empty, since every
    /// wipe-out must have surfaced as a propagation conflict.
    fn check_domain_wellformedness(&self, at_fixpoint: bool) {
        let capacity = self.problem().capacity();
        for (i, d) in self.domains.iter().enumerate() {
            if d.is_empty() {
                self.check(!at_fixpoint, "no empty domains at a fixpoint", || {
                    format!("b{i} wiped out without a conflict")
                });
                continue;
            }
            let b = &self.problem().buffers()[i];
            self.check(
                d.lo() <= d.hi()
                    && d.lo().is_multiple_of(b.align())
                    && d.hi().is_multiple_of(b.align()),
                "domain bounds are ordered and aligned",
                || {
                    format!(
                        "b{i} domain [{}, {}] with alignment {}",
                        d.lo(),
                        d.hi(),
                        b.align()
                    )
                },
            );
            self.check(
                d.hi() + b.size() <= capacity,
                "domain upper bound respects capacity",
                || {
                    format!(
                        "b{i} hi {} + size {} exceeds capacity {capacity}",
                        d.hi(),
                        b.size()
                    )
                },
            );
        }
    }

    /// Propagation within one decision only ever shrinks domains.
    fn check_domain_monotonicity(&self, before: &[(Address, Address, bool)]) {
        for (i, (&(lo, hi, empty), d)) in before.iter().zip(&self.domains).enumerate() {
            self.check(
                empty == d.is_empty() || !empty,
                "propagation never revives a domain",
                || format!("b{i} went from empty back to [{}, {}]", d.lo(), d.hi()),
            );
            if !d.is_empty() {
                self.check(
                    d.lo() >= lo && d.hi() <= hi,
                    "propagation only shrinks domains",
                    || format!("b{i} went from [{lo}, {hi}] to [{}, {}]", d.lo(), d.hi()),
                );
            }
        }
    }

    /// Decided orderings must be reflected in the bounds, and two fixed
    /// buffers of a time-overlapping pair must have an ordering decided
    /// (propagation derives one from any disjoint placement).
    fn check_decided_orders(&self) {
        for (p, &state) in self.orders.iter().enumerate() {
            let (x, y) = self.model.pair(PairId::new(p as u32));
            let (below, above) = match state {
                OrderState::FirstBelow => (x, y),
                OrderState::SecondBelow => (y, x),
                OrderState::Undecided => {
                    self.check(
                        !(self.fixed[x as usize] && self.fixed[y as usize]),
                        "fixed pairs have a decided ordering",
                        || format!("pair {p} (b{x}, b{y}) fixed but undecided"),
                    );
                    continue;
                }
            };
            let db = &self.domains[below as usize];
            let da = &self.domains[above as usize];
            if db.is_empty() || da.is_empty() {
                continue;
            }
            let size = self.problem().buffers()[below as usize].size();
            self.check(
                da.lo() >= db.lo() + size && db.hi() + size <= da.hi(),
                "decided orderings hold on the bounds",
                || {
                    format!(
                        "pair {p}: b{below} [{}, {}] not below b{above} [{}, {}] (size {size})",
                        db.lo(),
                        db.hi(),
                        da.lo(),
                        da.hi()
                    )
                },
            );
            if self.fixed[below as usize] && self.fixed[above as usize] {
                self.check(
                    db.lo() + size <= da.lo(),
                    "fixed addresses respect the decided ordering",
                    || {
                        format!(
                            "pair {p}: pos(b{below})={} size {size} overlaps pos(b{above})={}",
                            db.lo(),
                            da.lo()
                        )
                    },
                );
            }
        }
    }

    /// The solver's min-feasible-position machinery must be
    /// self-consistent: the reusable bitset timeline is clean between
    /// queries (every `mark` was undone by a matching `clear`), and for
    /// every buffer the solver's sweep — bitset or sorted-interval mode,
    /// whichever the capacity selects — agrees with a from-scratch
    /// reference walk over a freshly rebuilt fixed-neighbor interval
    /// list.
    fn check_sweep_consistency(&self) {
        self.check(
            self.sweep.borrow().timeline.is_clear(),
            "sweep timeline is clear between queries",
            || "a marked interval was not cleared".to_string(),
        );
        for i in 0..self.problem().len() {
            let var = i as u32;
            let d = self.domains[i];
            if d.is_empty() {
                continue;
            }
            let (size, align) = (self.sizes[i], self.aligns[i]);
            let mut occupied: Vec<(Address, Address, u32)> = Vec::new();
            for at in self.model.row(var) {
                let other = self.model.row_other(at) as usize;
                if self.fixed[other] {
                    let addr = self.domains[other].lo();
                    occupied.push((addr, addr + self.sizes[other], other as u32));
                }
            }
            occupied.sort_unstable();
            let reference = crate::sweep::lowest_fit_pos(size, align, d.lo(), d.hi(), &occupied);
            let swept = self.sweep_lowest(var, size, align, d.lo(), d.hi());
            self.check(
                swept == reference,
                "sweep agrees with the reference interval walk",
                || format!("b{i}: sweep {swept:?} vs reference {reference:?} over {occupied:?}"),
            );
        }
    }

    /// Evaluates one invariant: tally it, and on failure panic with a
    /// structured report in debug builds or count it in release builds.
    fn check(&self, ok: bool, what: &str, detail: impl FnOnce() -> String) {
        self.audit.checks.set(self.audit.checks.get() + 1);
        if ok {
            return;
        }
        self.audit.violations.set(self.audit.violations.get() + 1);
        if cfg!(debug_assertions) {
            panic!(
                "tela-cp invariant violated: {what}\n  \
                 state: level={} fixed={}/{} trail={} pairs={}\n  {}",
                self.level(),
                self.fixed_count(),
                self.problem().len(),
                self.trail.len(),
                self.orders.len(),
                detail()
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use tela_model::{examples, BufferId};

    use crate::CpSolver;

    #[test]
    fn healthy_search_audits_clean() {
        let p = examples::figure1();
        let addrs = [0u64, 2, 1, 0, 2, 3, 0, 2, 2, 0];
        let mut s = CpSolver::new(&p).unwrap();
        for (i, &a) in addrs.iter().enumerate() {
            s.assign(BufferId::new(i), a).unwrap();
        }
        let report = s.invariant_report();
        assert!(report.checks > 0, "audit ran");
        assert_eq!(report.violations, 0);
    }

    #[test]
    fn conflicts_and_backtracks_are_audited() {
        let p = examples::tiny();
        let mut s = CpSolver::new(&p).unwrap();
        s.assign(BufferId::new(0), 0).unwrap();
        // Overlapping placement: conflict path (explanation audit).
        assert!(s.assign(BufferId::new(1), 0).is_err());
        let after_conflict = s.invariant_report();
        s.pop_to_level(0);
        let after_pop = s.invariant_report();
        assert!(after_pop.checks > after_conflict.checks);
        assert_eq!(after_pop.violations, 0);
    }
}
