use tela_model::{BufferId, Problem};

/// Index of an ordering pair within a [`CpModel`].
pub type PairId = u32;

/// The static constraint model of an allocation problem: the
/// `OverlappingBuffers` pair set and, per buffer, the pairs it
/// participates in.
///
/// A `CpModel` is immutable; [`CpSolver`](crate::CpSolver) layers mutable
/// search state (domains, ordering decisions, trail) on top of it. Build
/// one model per problem and share it across repeated solves.
///
/// # Example
///
/// ```
/// use tela_cp::CpModel;
/// use tela_model::examples;
///
/// let model = CpModel::new(&examples::figure1())?;
/// assert!(model.pair_count() > 0);
/// # Ok::<(), tela_cp::ModelError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CpModel {
    problem: Problem,
    /// `(x, y)` buffer index pairs with `x < y`, time-overlapping.
    pairs: Vec<(u32, u32)>,
    /// For each buffer, indices into `pairs` it participates in.
    adjacency: Vec<Vec<PairId>>,
}

/// Errors detected while building a [`CpModel`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// The per-time-step contention exceeds the capacity, so the problem
    /// is trivially infeasible before any search.
    ContentionExceedsCapacity {
        /// The maximum contention found.
        contention: u64,
        /// The memory capacity.
        capacity: u64,
    },
    /// A buffer (after alignment rounding) has no feasible address at all.
    Unplaceable(BufferId),
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::ContentionExceedsCapacity {
                contention,
                capacity,
            } => write!(
                f,
                "contention {contention} exceeds memory capacity {capacity}: trivially infeasible"
            ),
            ModelError::Unplaceable(id) => {
                write!(f, "buffer {id} has no feasible aligned address")
            }
        }
    }
}

impl std::error::Error for ModelError {}

impl CpModel {
    /// Builds the pair set and adjacency lists for `problem`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::ContentionExceedsCapacity`] when the problem
    /// is infeasible by the contention lower bound, and
    /// [`ModelError::Unplaceable`] when some buffer admits no aligned
    /// address within the capacity. Both conditions mean no search is
    /// needed: the instance has no solution.
    pub fn new(problem: &Problem) -> Result<Self, ModelError> {
        let contention = problem.max_contention();
        if contention > problem.capacity() {
            return Err(ModelError::ContentionExceedsCapacity {
                contention,
                capacity: problem.capacity(),
            });
        }
        for (id, b) in problem.iter() {
            let limit = problem.capacity() - b.size();
            if crate::domain::align_up(0, b.align()).is_none()
                || crate::domain::align_down(limit, b.align()) > limit
            {
                return Err(ModelError::Unplaceable(id));
            }
            // Note: align_down(limit) <= limit always holds, and address 0
            // is always aligned, so with the capacity check in
            // `Problem::new` every buffer has at least address 0.
        }
        let mut pairs: Vec<(u32, u32)> = problem
            .overlapping_pairs()
            .map(|(a, b)| (a.index() as u32, b.index() as u32))
            .collect();
        pairs.sort_unstable();
        let mut adjacency = vec![Vec::new(); problem.len()];
        for (i, &(x, y)) in pairs.iter().enumerate() {
            adjacency[x as usize].push(i as PairId);
            adjacency[y as usize].push(i as PairId);
        }
        Ok(CpModel {
            problem: problem.clone(),
            pairs,
            adjacency,
        })
    }

    /// The underlying problem.
    pub fn problem(&self) -> &Problem {
        &self.problem
    }

    /// Number of ordering pairs (the quadratic term the paper's Table 1
    /// microbenchmarks stress).
    pub fn pair_count(&self) -> usize {
        self.pairs.len()
    }

    /// The `(x, y)` buffer indices of pair `pair` (with `x < y`).
    pub(crate) fn pair(&self, pair: PairId) -> (u32, u32) {
        self.pairs[pair as usize]
    }

    /// Pairs involving buffer index `var`.
    pub(crate) fn pairs_of(&self, var: u32) -> &[PairId] {
        &self.adjacency[var as usize]
    }

    /// Buffer ids overlapping `id` in time.
    pub fn neighbors(&self, id: BufferId) -> impl Iterator<Item = BufferId> + '_ {
        let var = id.index() as u32;
        self.adjacency[id.index()].iter().map(move |&p| {
            let (x, y) = self.pair(p);
            BufferId::new(if x == var { y as usize } else { x as usize })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tela_model::{examples, Buffer};

    #[test]
    fn figure1_pair_count_matches_enumeration() {
        let p = examples::figure1();
        let model = CpModel::new(&p).unwrap();
        assert_eq!(model.pair_count(), p.overlapping_pairs().count());
    }

    #[test]
    fn contention_infeasibility_detected_at_build() {
        let err = CpModel::new(&examples::infeasible()).unwrap_err();
        assert!(matches!(
            err,
            ModelError::ContentionExceedsCapacity {
                contention: 9,
                capacity: 8
            }
        ));
        assert!(err.to_string().contains("trivially infeasible"));
    }

    #[test]
    fn neighbors_are_symmetric() {
        let p = examples::figure1();
        let model = CpModel::new(&p).unwrap();
        for (id, _) in p.iter() {
            for n in model.neighbors(id) {
                assert!(
                    model.neighbors(n).any(|m| m == id),
                    "neighbor relation must be symmetric: {id} vs {n}"
                );
            }
        }
    }

    #[test]
    fn no_pairs_for_disjoint_buffers() {
        let p = Problem::builder(10)
            .buffer(Buffer::new(0, 1, 5))
            .buffer(Buffer::new(1, 2, 5))
            .build()
            .unwrap();
        let model = CpModel::new(&p).unwrap();
        assert_eq!(model.pair_count(), 0);
    }

    #[test]
    fn full_overlap_pair_count_is_quadratic() {
        let n = 30u32;
        let p = Problem::builder(1000)
            .buffers((0..n).map(|_| Buffer::new(0, 4, 1)))
            .build()
            .unwrap();
        let model = CpModel::new(&p).unwrap();
        assert_eq!(model.pair_count(), (n * (n - 1) / 2) as usize);
    }
}
