use tela_model::{BufferId, Problem};

use crate::ids::{Arena, PairId, VarId};

/// The static constraint model of an allocation problem: the
/// `OverlappingBuffers` pair set and, per buffer, the pairs it
/// participates in.
///
/// A `CpModel` is immutable; [`CpSolver`](crate::CpSolver) layers mutable
/// search state (domains, ordering decisions, trail) on top of it. Build
/// one model per problem and share it across repeated solves.
///
/// # Layout
///
/// The adjacency relation is stored in compressed-sparse-row form: one
/// offsets array (`adj_off`, length `n + 1`) and two parallel flat
/// payload arrays indexed by the same position — the pair index
/// (`adj_pair`) and the *other* endpoint of that pair (`adj_other`),
/// precomputed so the propagation loop never re-derives it with a
/// branch. Per-buffer rows are ordered by ascending pair index, which
/// makes iteration order (and therefore propagation order) identical to
/// the historical `Vec<Vec<PairId>>` layout.
///
/// # Example
///
/// ```
/// use tela_cp::CpModel;
/// use tela_model::examples;
///
/// let model = CpModel::new(&examples::figure1())?;
/// assert!(model.pair_count() > 0);
/// # Ok::<(), tela_cp::ModelError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CpModel {
    problem: Problem,
    /// `(x, y)` buffer index pairs with `x < y`, time-overlapping,
    /// sorted ascending.
    pairs: Vec<(u32, u32)>,
    /// CSR offsets: buffer `v`'s adjacency row is
    /// `adj_pair[adj_off[v]..adj_off[v + 1]]`.
    adj_off: Vec<u32>,
    /// Flat pair indices, rows ordered by ascending pair index.
    adj_pair: Vec<PairId>,
    /// Parallel to `adj_pair`: the other endpoint of each pair.
    adj_other: Vec<u32>,
    /// Per pair: its two flat adjacency slots — `[slot in x's row,
    /// slot in y's row]`. Lets the solver maintain per-slot order
    /// state without searching the rows.
    pair_slots: Vec<[u32; 2]>,
    /// Largest adjacency row length (used to preallocate sweep scratch).
    max_degree: u32,
}

/// Errors detected while building a [`CpModel`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// The per-time-step contention exceeds the capacity, so the problem
    /// is trivially infeasible before any search.
    ContentionExceedsCapacity {
        /// The maximum contention found.
        contention: u64,
        /// The memory capacity.
        capacity: u64,
    },
    /// A buffer (after alignment rounding) has no feasible address at all.
    Unplaceable(BufferId),
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::ContentionExceedsCapacity {
                contention,
                capacity,
            } => write!(
                f,
                "contention {contention} exceeds memory capacity {capacity}: trivially infeasible"
            ),
            ModelError::Unplaceable(id) => {
                write!(f, "buffer {id} has no feasible aligned address")
            }
        }
    }
}

impl std::error::Error for ModelError {}

impl CpModel {
    /// Builds the pair set and CSR adjacency for `problem`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::ContentionExceedsCapacity`] when the problem
    /// is infeasible by the contention lower bound, and
    /// [`ModelError::Unplaceable`] when some buffer admits no aligned
    /// address within the capacity. Both conditions mean no search is
    /// needed: the instance has no solution.
    pub fn new(problem: &Problem) -> Result<Self, ModelError> {
        let contention = problem.max_contention();
        if contention > problem.capacity() {
            return Err(ModelError::ContentionExceedsCapacity {
                contention,
                capacity: problem.capacity(),
            });
        }
        for (id, b) in problem.iter() {
            let limit = problem.capacity() - b.size();
            if crate::domain::align_up(0, b.align()).is_none()
                || crate::domain::align_down(limit, b.align()) > limit
            {
                return Err(ModelError::Unplaceable(id));
            }
            // Note: align_down(limit) <= limit always holds, and address 0
            // is always aligned, so with the capacity check in
            // `Problem::new` every buffer has at least address 0.
        }
        let mut pairs: Vec<(u32, u32)> = problem
            .overlapping_pairs()
            .map(|(a, b)| (a.index() as u32, b.index() as u32))
            .collect();
        pairs.sort_unstable();

        // CSR build: count row lengths, prefix-sum into offsets, then
        // fill each row in ascending pair-index order with a per-row
        // write cursor.
        let n = problem.len();
        let mut adj_off = vec![0u32; n + 1];
        for &(x, y) in &pairs {
            *adj_off.at_mut(x as usize + 1) += 1;
            *adj_off.at_mut(y as usize + 1) += 1;
        }
        let mut max_degree = 0u32;
        let mut running = 0u32;
        for v in 0..n {
            let degree = *adj_off.at(v + 1);
            max_degree = max_degree.max(degree);
            running += degree;
            *adj_off.at_mut(v + 1) = running;
        }
        let total = adj_off.last().copied().unwrap_or(0) as usize;
        let mut adj_pair = vec![PairId::new(0); total];
        let mut adj_other = vec![0u32; total];
        let mut cursor: Vec<u32> = adj_off.iter().take(n).copied().collect();
        let mut pair_slots = Vec::with_capacity(pairs.len());
        for (i, &(x, y)) in pairs.iter().enumerate() {
            let p = PairId::new(i as u32);
            let cx = *cursor.at(x as usize) as usize;
            *adj_pair.at_mut(cx) = p;
            *adj_other.at_mut(cx) = y;
            *cursor.at_mut(x as usize) += 1;
            let cy = *cursor.at(y as usize) as usize;
            *adj_pair.at_mut(cy) = p;
            *adj_other.at_mut(cy) = x;
            *cursor.at_mut(y as usize) += 1;
            pair_slots.push([cx as u32, cy as u32]);
        }

        Ok(CpModel {
            problem: problem.clone(),
            pairs,
            adj_off,
            adj_pair,
            adj_other,
            pair_slots,
            max_degree,
        })
    }

    /// The underlying problem.
    pub fn problem(&self) -> &Problem {
        &self.problem
    }

    /// Number of ordering pairs (the quadratic term the paper's Table 1
    /// microbenchmarks stress).
    pub fn pair_count(&self) -> usize {
        self.pairs.len()
    }

    /// The `(x, y)` buffer indices of pair `pair` (with `x < y`).
    #[inline(always)]
    pub(crate) fn pair(&self, pair: PairId) -> (u32, u32) {
        *self.pairs.at(pair.idx())
    }

    /// The position range of buffer `var`'s adjacency row in the flat
    /// CSR arrays.
    #[inline(always)]
    pub(crate) fn row(&self, var: u32) -> std::ops::Range<usize> {
        *self.adj_off.at(var as usize) as usize..*self.adj_off.at(var as usize + 1) as usize
    }

    /// The pair index stored at flat adjacency position `at`.
    #[inline(always)]
    pub(crate) fn row_pair(&self, at: usize) -> PairId {
        *self.adj_pair.at(at)
    }

    /// The other endpoint stored at flat adjacency position `at`.
    #[inline(always)]
    pub(crate) fn row_other(&self, at: usize) -> u32 {
        *self.adj_other.at(at)
    }

    /// The two flat adjacency slots of `pair`: `[x's row, y's row]`.
    #[inline(always)]
    pub(crate) fn pair_slots(&self, pair: PairId) -> [u32; 2] {
        *self.pair_slots.at(pair.idx())
    }

    /// Total number of flat adjacency slots (twice the pair count).
    pub(crate) fn adj_len(&self) -> usize {
        self.adj_other.len()
    }

    /// Pairs involving buffer index `var`, ascending by pair index.
    #[cfg(test)]
    pub(crate) fn pairs_of(&self, var: u32) -> &[PairId] {
        self.adj_pair.get(self.row(var)).unwrap_or(&[])
    }

    /// Largest number of pairs any single buffer participates in.
    pub(crate) fn max_degree(&self) -> usize {
        self.max_degree as usize
    }

    /// Buffer ids overlapping `id` in time.
    pub fn neighbors(&self, id: BufferId) -> impl Iterator<Item = BufferId> + '_ {
        let var = VarId::from(id);
        self.adj_other
            .get(self.row(var.raw()))
            .unwrap_or(&[])
            .iter()
            .map(|&o| BufferId::new(o as usize))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tela_model::{examples, Buffer};

    #[test]
    fn figure1_pair_count_matches_enumeration() {
        let p = examples::figure1();
        let model = CpModel::new(&p).unwrap();
        assert_eq!(model.pair_count(), p.overlapping_pairs().count());
    }

    #[test]
    fn contention_infeasibility_detected_at_build() {
        let err = CpModel::new(&examples::infeasible()).unwrap_err();
        assert!(matches!(
            err,
            ModelError::ContentionExceedsCapacity {
                contention: 9,
                capacity: 8
            }
        ));
        assert!(err.to_string().contains("trivially infeasible"));
    }

    #[test]
    fn neighbors_are_symmetric() {
        let p = examples::figure1();
        let model = CpModel::new(&p).unwrap();
        for (id, _) in p.iter() {
            for n in model.neighbors(id) {
                assert!(
                    model.neighbors(n).any(|m| m == id),
                    "neighbor relation must be symmetric: {id} vs {n}"
                );
            }
        }
    }

    #[test]
    fn csr_rows_are_sorted_by_pair_index_and_consistent() {
        let p = examples::figure1();
        let model = CpModel::new(&p).unwrap();
        let mut total = 0;
        for (id, _) in p.iter() {
            let var = id.index() as u32;
            let row = model.pairs_of(var);
            assert!(row.windows(2).all(|w| w[0] < w[1]), "row sorted for {id}");
            for (at, &pair) in model.row(var).zip(row.iter()) {
                let (x, y) = model.pair(pair);
                assert!(x == var || y == var, "pair endpoint mismatch");
                let other = if x == var { y } else { x };
                assert_eq!(model.row_other(at), other, "precomputed other endpoint");
                assert_eq!(model.row_pair(at), pair);
            }
            total += row.len();
            assert!(row.len() <= model.max_degree());
        }
        assert_eq!(total, 2 * model.pair_count(), "every pair in two rows");
    }

    #[test]
    fn no_pairs_for_disjoint_buffers() {
        let p = Problem::builder(10)
            .buffer(Buffer::new(0, 1, 5))
            .buffer(Buffer::new(1, 2, 5))
            .build()
            .unwrap();
        let model = CpModel::new(&p).unwrap();
        assert_eq!(model.pair_count(), 0);
        assert_eq!(model.max_degree(), 0);
    }

    #[test]
    fn full_overlap_pair_count_is_quadratic() {
        let n = 30u32;
        let p = Problem::builder(1000)
            .buffers((0..n).map(|_| Buffer::new(0, 4, 1)))
            .build()
            .unwrap();
        let model = CpModel::new(&p).unwrap();
        assert_eq!(model.pair_count(), (n * (n - 1) / 2) as usize);
        assert_eq!(model.max_degree(), (n - 1) as usize);
    }
}
