use tela_model::{Address, Size};

/// An interval domain `[lo, hi]` of candidate start addresses for one
/// buffer, restricted to multiples of the buffer's alignment.
///
/// Both bounds are always aligned; a domain *wipes out* (becomes empty)
/// when tightening drives `lo` past `hi`.
///
/// # Example
///
/// ```
/// use tela_cp::Domain;
///
/// let mut d = Domain::new(0, 100, 32);
/// assert_eq!(d.hi(), 96); // rounded down to a multiple of 32
/// assert!(d.tighten_lo(33)); // changed
/// assert_eq!(d.lo(), 64);
/// assert!(!d.is_empty());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Domain {
    lo: Address,
    hi: Address,
    align: Size,
    empty: bool,
}

impl Domain {
    /// Creates a domain covering aligned addresses in `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `align == 0`.
    pub fn new(lo: Address, hi: Address, align: Size) -> Self {
        assert!(align > 0, "alignment must be positive");
        let mut d = Domain {
            lo: 0,
            hi: align_down(hi, align),
            align,
            empty: false,
        };
        if let Some(alo) = align_up(lo, align) {
            d.lo = alo;
        } else {
            d.empty = true;
        }
        if d.lo > d.hi {
            d.empty = true;
        }
        d
    }

    /// Lowest address in the domain.
    pub fn lo(&self) -> Address {
        self.lo
    }

    /// Highest address in the domain.
    pub fn hi(&self) -> Address {
        self.hi
    }

    /// Alignment step between domain values.
    pub fn align(&self) -> Size {
        self.align
    }

    /// Returns true if no addresses remain.
    pub fn is_empty(&self) -> bool {
        self.empty
    }

    /// Returns true if the domain is a single address.
    pub fn is_fixed(&self) -> bool {
        !self.empty && self.lo == self.hi
    }

    /// Returns true if `addr` is in the domain.
    pub fn contains(&self, addr: Address) -> bool {
        !self.empty && self.lo <= addr && addr <= self.hi && addr.is_multiple_of(self.align)
    }

    /// Raises the lower bound to at least `bound` (rounded up to
    /// alignment). Returns true if the domain changed.
    pub fn tighten_lo(&mut self, bound: Address) -> bool {
        if self.empty {
            return false;
        }
        let aligned = match align_up(bound, self.align) {
            Some(a) => a,
            None => {
                self.empty = true;
                return true;
            }
        };
        if aligned <= self.lo {
            return false;
        }
        self.lo = aligned;
        if self.lo > self.hi {
            self.empty = true;
        }
        true
    }

    /// Lowers the upper bound to at most `bound` (rounded down to
    /// alignment). Returns true if the domain changed.
    pub fn tighten_hi(&mut self, bound: Address) -> bool {
        if self.empty {
            return false;
        }
        let aligned = align_down(bound, self.align);
        if aligned >= self.hi {
            return false;
        }
        self.hi = aligned;
        if self.lo > self.hi {
            self.empty = true;
        }
        true
    }

    /// Fixes the domain to a single address. Returns true if the domain
    /// changed.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not currently in the domain.
    pub fn fix(&mut self, addr: Address) -> bool {
        assert!(
            self.contains(addr),
            "cannot fix domain to excluded address {addr}"
        );
        let changed = self.lo != addr || self.hi != addr;
        self.lo = addr;
        self.hi = addr;
        changed
    }

    /// Restores previously saved bounds (used by the trail on backtrack).
    pub(crate) fn restore(&mut self, lo: Address, hi: Address, empty: bool) {
        self.lo = lo;
        self.hi = hi;
        self.empty = empty;
    }

    /// Snapshot of the current bounds for the trail.
    pub(crate) fn snapshot(&self) -> (Address, Address, bool) {
        (self.lo, self.hi, self.empty)
    }
}

/// Rounds `addr` up to a multiple of `align`; `None` on overflow.
pub(crate) fn align_up(addr: Address, align: Size) -> Option<Address> {
    if align <= 1 {
        return Some(addr);
    }
    let rem = addr % align;
    if rem == 0 {
        Some(addr)
    } else {
        addr.checked_add(align - rem)
    }
}

/// Rounds `addr` down to a multiple of `align`.
pub(crate) fn align_down(addr: Address, align: Size) -> Address {
    if align <= 1 {
        addr
    } else {
        addr - addr % align
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_aligns_both_bounds() {
        let d = Domain::new(5, 70, 16);
        assert_eq!(d.lo(), 16);
        assert_eq!(d.hi(), 64);
        assert!(!d.is_empty());
    }

    #[test]
    fn unaligned_domain_keeps_bounds() {
        let d = Domain::new(5, 70, 1);
        assert_eq!((d.lo(), d.hi()), (5, 70));
    }

    #[test]
    fn empty_when_no_aligned_value_fits() {
        let d = Domain::new(1, 15, 16);
        assert!(d.is_empty());
    }

    #[test]
    fn tighten_lo_rounds_up() {
        let mut d = Domain::new(0, 100, 8);
        assert!(d.tighten_lo(9));
        assert_eq!(d.lo(), 16);
        assert!(!d.tighten_lo(10)); // already >= 16
    }

    #[test]
    fn tighten_hi_rounds_down() {
        let mut d = Domain::new(0, 100, 8);
        assert!(d.tighten_hi(63));
        assert_eq!(d.hi(), 56);
    }

    #[test]
    fn crossing_bounds_wipes_out() {
        let mut d = Domain::new(0, 20, 1);
        assert!(d.tighten_lo(15));
        assert!(d.tighten_hi(10));
        assert!(d.is_empty());
    }

    #[test]
    fn contains_respects_alignment() {
        let d = Domain::new(0, 64, 32);
        assert!(d.contains(0));
        assert!(d.contains(32));
        assert!(!d.contains(16));
        assert!(!d.contains(96));
    }

    #[test]
    fn fix_narrows_to_single_value() {
        let mut d = Domain::new(0, 64, 32);
        assert!(d.fix(32));
        assert!(d.is_fixed());
        assert_eq!((d.lo(), d.hi()), (32, 32));
        assert!(!d.fix(32)); // unchanged
    }

    #[test]
    #[should_panic(expected = "excluded address")]
    fn fix_out_of_domain_panics() {
        let mut d = Domain::new(0, 64, 32);
        d.fix(16);
    }

    #[test]
    fn tighten_lo_overflow_empties() {
        let mut d = Domain::new(0, u64::MAX - 3, 16);
        assert!(d.tighten_lo(u64::MAX - 1));
        assert!(d.is_empty());
    }

    #[test]
    fn snapshot_restore_round_trip() {
        let mut d = Domain::new(0, 100, 4);
        let snap = d.snapshot();
        d.tighten_lo(50);
        d.tighten_hi(20);
        assert!(d.is_empty());
        d.restore(snap.0, snap.1, snap.2);
        assert_eq!((d.lo(), d.hi()), (0, 100));
        assert!(!d.is_empty());
    }
}
